#!/usr/bin/env bash
# Docs link checker: fail on dead *relative* links in the repo's Markdown.
#
# Scans every tracked *.md for inline links [text](target) and verifies that
# relative targets exist on disk (anchors and queries are stripped first).
# External schemes (http/https/mailto) and pure in-page anchors (#...) are
# skipped — this guards the docs' internal wiring, not the internet.
#
# Usage: scripts/check_docs_links.sh   (exits non-zero on any dead link)
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  mapfile -t md_files < <(git ls-files '*.md')
else
  mapfile -t md_files < <(find . -name '*.md' -not -path './build*/*')
fi

failures=0
checked=0

for md in "${md_files[@]}"; do
  dir="$(dirname "$md")"
  # Inline links only; reference-style links are rare enough here to skip.
  # The grep emits "line:target" pairs for every [..](..) occurrence.
  while IFS=: read -r line target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"     # strip anchor
    path="${path%%\?*}"      # strip query
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "dead link: $md:$line -> $target" >&2
      failures=$((failures + 1))
    fi
  done < <(grep -no -E '\[[^][]*\]\([^()[:space:]]+\)' "$md" 2>/dev/null |
           sed -E 's/^([0-9]+):\[[^][]*\]\(([^()[:space:]]+)\)$/\1:\2/')
done

echo "checked $checked relative links in ${#md_files[@]} markdown files," \
     "$failures dead"
[ "$failures" -eq 0 ]
