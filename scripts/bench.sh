#!/usr/bin/env bash
# Run every benchmark binary and collect results into BENCH_*.json at the
# repo root, seeding the perf trajectory tracked across PRs.
#
#   - bench_micro_* (Google Benchmark) emit native JSON via
#     --benchmark_format=json.
#   - bench_fig* / bench_ablation_* / bench_table1_* (figure and table
#     reproductions) print human-readable text; their stdout is wrapped in a
#     JSON envelope {bench, exit_code, seconds, output}.
#
# The build directory defaults to ./build; the CMake `bench` target invokes
# this script with PAPAYA_BENCH_DIR pointing at the active build tree.
#
# Usage: scripts/bench.sh [name-filter]
#   e.g. scripts/bench.sh fig2      # only benches whose name contains "fig2"
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${PAPAYA_BENCH_DIR:-$ROOT/build}"
FILTER="${1:-}"

if ! command -v jq > /dev/null; then
  echo "error: jq is required to collect bench results" >&2
  exit 1
fi

if ! compgen -G "$BUILD/bench_*" > /dev/null; then
  echo "error: no bench_* binaries in $BUILD — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

failures=0
ran=0

for bin in "$BUILD"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    *"$FILTER"*) ;;
    *) continue ;;
  esac
  out_json="$ROOT/BENCH_${name#bench_}.json"
  # Stage into a temp file so a crashing bench or failing jq never clobbers
  # the committed baseline with a truncated/empty JSON.  mktemp creates the
  # file 0600; restore umask-default perms so other uids can read results.
  tmp_json="$(mktemp)"
  chmod 644 "$tmp_json"
  printf '== %s\n' "$name"
  start=$(date +%s.%N)
  if [[ "$name" == bench_micro_* ]]; then
    # Google Benchmark: native JSON straight to the collection file.
    if "$bin" --benchmark_format=json > "$tmp_json"; then
      mv "$tmp_json" "$out_json"
    else
      echo "   FAILED (exit $?)" >&2
      rm -f "$tmp_json"
      failures=$((failures + 1))
    fi
  else
    output="$("$bin" 2>&1)"
    rc=$?
    end=$(date +%s.%N)
    if jq -n \
      --arg bench "$name" \
      --argjson exit_code "$rc" \
      --argjson seconds "$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')" \
      --arg output "$output" \
      '{bench: $bench, exit_code: $exit_code, seconds: $seconds, output: $output}' \
      > "$tmp_json" && [ "$rc" -eq 0 ]; then
      mv "$tmp_json" "$out_json"
    else
      echo "   FAILED (exit $rc)" >&2
      printf '%s\n' "$output" | tail -20 >&2
      rm -f "$tmp_json"
      failures=$((failures + 1))
    fi
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "error: filter '$FILTER' matched no bench binaries in $BUILD" >&2
  exit 1
fi

echo
echo "ran $ran benches, $failures failed; results in $ROOT/BENCH_*.json"
[ "$failures" -eq 0 ]
