#!/usr/bin/env bash
# Run every benchmark binary and collect results into BENCH_*.json at the
# repo root, seeding the perf trajectory tracked across PRs.
#
#   - bench_micro_* (Google Benchmark) emit native JSON via
#     --benchmark_format=json.
#   - bench_fig* / bench_ablation_* / bench_table1_* (figure and table
#     reproductions) print human-readable text; their stdout is wrapped in a
#     JSON envelope {bench, exit_code, seconds, output}.
#
# The build directory defaults to ./build; the CMake `bench` target invokes
# this script with PAPAYA_BENCH_DIR pointing at the active build tree.
#
# Usage: scripts/bench.sh [--compare] [name-filter]
#   e.g. scripts/bench.sh fig2            # only benches matching "fig2"
#        scripts/bench.sh --compare fig13 # regenerate + delta vs committed
#
# --compare enforces the ROADMAP "perf baseline discipline": after each
# bench regenerates its BENCH_*.json, every time metric is diffed against
# the baseline committed at HEAD (git show), the delta is printed, and the
# script exits nonzero if any metric regressed by more than
# PAPAYA_BENCH_TOLERANCE (default 0.10 = +10%).  Regression means *slower*:
# micro benches compare per-benchmark real_time, figure benches compare the
# envelope's wall-clock seconds.
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${PAPAYA_BENCH_DIR:-$ROOT/build}"
TOLERANCE="${PAPAYA_BENCH_TOLERANCE:-0.10}"

COMPARE=0
FILTER=""
for arg in "$@"; do
  case "$arg" in
    --compare) COMPARE=1 ;;
    --*)
      echo "error: unknown flag '$arg' (usage: bench.sh [--compare] [filter])" >&2
      exit 2
      ;;
    *) FILTER="$arg" ;;
  esac
done

if ! command -v jq > /dev/null; then
  echo "error: jq is required to collect bench results" >&2
  exit 1
fi

if ! compgen -G "$BUILD/bench_*" > /dev/null; then
  echo "error: no bench_* binaries in $BUILD — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

failures=0
ran=0
compare_failures=0

# Print the delta of each time metric in $2 (fresh JSON) against the
# baseline committed at HEAD for bench $1; count metrics beyond TOLERANCE.
# A bench whose own source changed since HEAD is reported informationally
# but not gated — a bench that gained a column legitimately runs longer,
# and flagging that as a perf regression would train authors to ignore the
# gate (regenerate + commit the new baseline instead).
compare_with_baseline() {
  local name="$1" new_json="$2"
  local out_name="BENCH_${name#bench_}.json"
  local old_json
  if ! old_json="$(git -C "$ROOT" show "HEAD:$out_name" 2>/dev/null)"; then
    printf '   compare: no committed baseline for %s (new bench)\n' "$out_name"
    return 0
  fi
  local gated=1
  if ! git -C "$ROOT" diff --quiet HEAD -- "bench/$name.cpp" 2>/dev/null; then
    gated=0
    printf '   compare: bench/%s.cpp changed since HEAD — deltas are informational, not gated\n' \
      "$name"
  fi
  local rows
  if [[ "$name" == bench_micro_* ]]; then
    # Metrics present only in the fresh run (a bench that gained a strategy
    # sweep or a new arg) are reported as NEW and never gated: there is no
    # baseline to regress against, and erroring on them would block the very
    # commit that introduces the column.
    rows="$(jq -rn '
      (input | [.benchmarks[]? | {key: .name, value: .real_time}]
             | from_entries) as $old
      | (input | .benchmarks[]?)
      | if $old[.name] != null and ($old[.name] > 0) then
          [.name, $old[.name], .real_time,
           ((.real_time / $old[.name] - 1) * 100)]
        else
          [.name, "new", .real_time, "new"]
        end
      | @tsv' <(printf '%s' "$old_json") "$new_json" 2>/dev/null)"
  else
    rows="$(jq -rn '
      (input | .seconds) as $old
      | (input | .seconds) as $new
      | select($old != null and $new != null and ($old > 0))
      | ["seconds", $old, $new, (($new / $old - 1) * 100)]
      | @tsv' <(printf '%s' "$old_json") "$new_json" 2>/dev/null)"
  fi
  if [ -z "$rows" ]; then
    printf '   compare: no comparable metrics for %s\n' "$name"
    return 0
  fi
  local bad
  printf '%s\n' "$rows" | awk -F'\t' -v tol="$TOLERANCE" -v gated="$gated" '
    $2 == "new" {
      printf "     %-44s %14s -> %14.3f  NEW (informational)\n", $1, "-", $3
      next
    }
    {
      flag = (gated && $4 > tol * 100) ? "  REGRESSION" : ""
      printf "     %-44s %14.3f -> %14.3f  %+7.1f%%%s\n", $1, $2, $3, $4, flag
    }'
  bad="$(printf '%s\n' "$rows" | awk -F'\t' -v tol="$TOLERANCE" \
    -v gated="$gated" '$2 != "new" && gated && $4 > tol * 100 { n++ } END { print n+0 }')"
  compare_failures=$((compare_failures + bad))
  return 0
}

for bin in "$BUILD"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    *"$FILTER"*) ;;
    *) continue ;;
  esac
  out_json="$ROOT/BENCH_${name#bench_}.json"
  # Stage into a temp file so a crashing bench or failing jq never clobbers
  # the committed baseline with a truncated/empty JSON.  mktemp creates the
  # file 0600; restore umask-default perms so other uids can read results.
  tmp_json="$(mktemp)"
  chmod 644 "$tmp_json"
  printf '== %s\n' "$name"
  start=$(date +%s.%N)
  if [[ "$name" == bench_micro_* ]]; then
    # Google Benchmark: native JSON straight to the collection file.
    if "$bin" --benchmark_format=json > "$tmp_json"; then
      [ "$COMPARE" -eq 1 ] && compare_with_baseline "$name" "$tmp_json"
      mv "$tmp_json" "$out_json"
    else
      echo "   FAILED (exit $?)" >&2
      rm -f "$tmp_json"
      failures=$((failures + 1))
    fi
  else
    output="$("$bin" 2>&1)"
    rc=$?
    end=$(date +%s.%N)
    if jq -n \
      --arg bench "$name" \
      --argjson exit_code "$rc" \
      --argjson seconds "$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')" \
      --arg output "$output" \
      '{bench: $bench, exit_code: $exit_code, seconds: $seconds, output: $output}' \
      > "$tmp_json" && [ "$rc" -eq 0 ]; then
      [ "$COMPARE" -eq 1 ] && compare_with_baseline "$name" "$tmp_json"
      mv "$tmp_json" "$out_json"
    else
      echo "   FAILED (exit $rc)" >&2
      printf '%s\n' "$output" | tail -20 >&2
      rm -f "$tmp_json"
      failures=$((failures + 1))
    fi
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "error: filter '$FILTER' matched no bench binaries in $BUILD" >&2
  exit 1
fi

echo
echo "ran $ran benches, $failures failed; results in $ROOT/BENCH_*.json"
if [ "$COMPARE" -eq 1 ]; then
  echo "compare: $compare_failures metric(s) regressed beyond +$(awk \
    -v t="$TOLERANCE" 'BEGIN { printf "%.0f", t * 100 }')% of the HEAD baseline"
fi
[ "$failures" -eq 0 ] && [ "$compare_failures" -eq 0 ]
