#!/usr/bin/env bash
# Repo invariant linter: grep-level rules that the type system cannot state.
# Runs in CI next to the compiler checks; exits nonzero with a pointer to the
# offending line on any violation.
#
#   1. Raw synchronization primitives appear ONLY in src/util/sync.hpp.  All
#      other code must use the capability-annotated util:: wrappers so Clang
#      Thread Safety Analysis sees every lock (see that header).
#   2. No ad-hoc randomness anywhere in src/: no rand()/srand(), no
#      std::mt19937*, no std::random_device.  All randomness flows through
#      util/rng.hpp so runs are reproducible from a single seed.
#   3. Simulator randomness is keyed by entity: any util::Rng or
#      util::SplitMix64 constructed in src/sim/ must take its seed from
#      sim::SimStreams (so per-device draws are stable under reordering), or
#      carry a `sim-streams-exempt` marker explaining why (init-path RNGs
#      that run before the event loop starts).
#   4. Every bench/bench_X.cpp has a committed BENCH_X.json at the repo root
#      and vice versa — the figure reproductions stay in lockstep with their
#      recorded results.
#   5. Every tests/*_test.cpp is registered in CMakeLists.txt — a suite that
#      exists but never runs is worse than no suite.
#   6. FSM harness randomness stays replayable: src/fsm/ must not construct
#      its own util::Rng / util::SplitMix64 (or seed from entropy) — every
#      draw flows through the per-actor StreamRng references the harness
#      materializes from sim::SimStreams, or the printed --seed repro line
#      cannot reproduce the run.  `fsm-rng-exempt` marks deliberate
#      exceptions.
#   7. The fsm test suites stay wired: fsm_workload_test and
#      secagg_flood_test must carry the "fsm" ctest label in CMakeLists.txt,
#      or `ctest -L fsm` (the CI smoke step and the TSan acceptance gate)
#      silently runs nothing.
#   8. The committed BENCH_macro_population.json carries the scale
#      acceptance artifacts: a devices=1000000 row, a devices=10000000 row,
#      and a peak_rss_mb= line.  A reseed that silently dropped a sweep
#      (quick mode, OOM, a scoped-down row list) would otherwise go
#      unnoticed.
set -uo pipefail

cd "$(dirname "$0")/.."

failures=0

fail() {
  echo "INVARIANT VIOLATION: $1" >&2
  shift
  for line in "$@"; do echo "    $line" >&2; done
  failures=$((failures + 1))
}

# fail_with_hits <message> <multiline hit list>
fail_with_hits() {
  echo "INVARIANT VIOLATION: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  failures=$((failures + 1))
}

# --- 1. raw sync primitives only in src/util/sync.hpp ----------------------
raw_sync='std::(mutex|shared_mutex|timed_mutex|recursive_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)'
hits=$(grep -rnE "$raw_sync" src tests bench examples \
  | grep -v '^src/util/sync.hpp:' || true)
if [[ -n "$hits" ]]; then
  fail_with_hits "raw std:: synchronization primitive outside src/util/sync.hpp \
(use util::Mutex / util::LockGuard / util::CondVar from util/sync.hpp)" \
    "$hits"
fi

# --- 2. no ad-hoc randomness in src/ ---------------------------------------
raw_rng='std::mt19937|std::random_device|[^a-zA-Z_](rand|srand)[[:space:]]*\('
hits=$(grep -rnE "$raw_rng" src || true)
if [[ -n "$hits" ]]; then
  fail_with_hits \
    "ad-hoc randomness in src/ (seed a util::Rng from util/rng.hpp instead)" \
    "$hits"
fi

# --- 3. simulator RNG construction goes through SimStreams -----------------
# The exemption marker may sit on the construction line or the line above it.
hits=$(grep -rn -B1 -E 'util::(Rng|SplitMix64)[[:space:]]+[a-zA-Z_]+[[:space:]]*[({]' src/sim \
  | awk -F'[-:]' '
      /sim-streams-exempt/ { exempt_next = 1; next }
      /util::(Rng|SplitMix64)/ {
        if (!exempt_next && $0 !~ /streams_/) print $0
        exempt_next = 0; next
      }
      { exempt_next = 0 }' || true)
if [[ -n "$hits" ]]; then
  fail_with_hits "util::Rng constructed in src/sim/ without a SimStreams-derived seed \
(key it via sim::SimStreams, or add a '// sim-streams-exempt: <why>' marker)" \
    "$hits"
fi

# --- 4. bench binaries <-> BENCH_*.json lockstep ---------------------------
for bench_src in bench/bench_*.cpp; do
  name=$(basename "$bench_src" .cpp)
  json="BENCH_${name#bench_}.json"
  if [[ ! -f "$json" ]]; then
    fail "bench target $name has no committed $json (run the bench target and commit its result)"
  fi
done
for json in BENCH_*.json; do
  name="bench/bench_${json#BENCH_}"
  src="${name%.json}.cpp"
  if [[ ! -f "$src" ]]; then
    fail "$json has no matching $src (stale result file?)"
  fi
done

# --- 5. every test suite is registered with CTest --------------------------
for test_src in tests/*_test.cpp; do
  base=$(basename "$test_src")
  if ! grep -q "tests/$base" CMakeLists.txt; then
    fail "$test_src is not registered in CMakeLists.txt (add it to PAPAYA_TEST_SOURCES)"
  fi
done

# --- 6. FSM harness draws only from its SimStreams-derived streams ---------
hits=$(grep -rn -B1 -E 'util::(Rng|SplitMix64)[[:space:]]+[a-zA-Z_]+[[:space:]]*[({]' src/fsm \
  | awk -F'[-:]' '
      /fsm-rng-exempt/ { exempt_next = 1; next }
      /util::(Rng|SplitMix64)/ {
        if (!exempt_next) print $0
        exempt_next = 0; next
      }
      { exempt_next = 0 }' || true)
if [[ -n "$hits" ]]; then
  fail_with_hits "util::Rng constructed in src/fsm/ — harness draws must come from the \
per-actor StreamRng streams (StepContext::rng() / the scenario stream), or the printed \
--seed repro line cannot replay the run.  Add '// fsm-rng-exempt: <why>' if deliberate." \
    "$hits"
fi

# --- 7. the fsm label stays wired to its suites ----------------------------
for fsm_suite in fsm_workload_test secagg_flood_test; do
  if ! grep -Ezq "set_tests_properties\([^)]*${fsm_suite}[^)]*LABELS \"?[^\")]*fsm" CMakeLists.txt; then
    fail "$fsm_suite is not labeled 'fsm' in CMakeLists.txt (ctest -L fsm — the CI smoke \
step and the TSan gate — would silently skip it)"
  fi
done

# --- 8. the macro-population baseline keeps its scale artifacts ------------
if [[ -f BENCH_macro_population.json ]]; then
  if ! grep -q 'devices=1000000 ' BENCH_macro_population.json; then
    fail "BENCH_macro_population.json has no devices=1000000 row (reseed with \
scripts/bench.sh macro_population — the full sweep, not PAPAYA_MACRO_QUICK)"
  fi
  if ! grep -q 'devices=10000000 ' BENCH_macro_population.json; then
    fail "BENCH_macro_population.json has no devices=10000000 row (the \
ten-million-device headline; reseed with scripts/bench.sh macro_population)"
  fi
  if ! grep -q 'peak_rss_mb=' BENCH_macro_population.json; then
    fail "BENCH_macro_population.json has no peak_rss_mb= line (the million-device \
memory acceptance artifact)"
  fi
fi

if [[ $failures -gt 0 ]]; then
  echo "check_invariants: $failures violation(s)" >&2
  exit 1
fi
echo "check_invariants: OK"
