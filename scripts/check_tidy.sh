#!/usr/bin/env bash
# clang-tidy over every src/ translation unit with the curated .clang-tidy
# check set (the CI "tidy" job).  Needs a compile_commands.json — configure
# first (CMAKE_EXPORT_COMPILE_COMMANDS is always on):
#
#   cmake -B build -S .
#   scripts/check_tidy.sh [build-dir]      # default build dir: build/
#
# Honors $CLANG_TIDY to select a specific binary (clang-tidy-15 etc.).
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "check_tidy: '$tidy' not found on PATH" >&2
  echo "check_tidy: install clang-tidy or set CLANG_TIDY=<binary>" >&2
  exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "check_tidy: $build_dir/compile_commands.json not found" >&2
  echo "check_tidy: run 'cmake -B $build_dir -S .' first" >&2
  exit 2
fi

echo "check_tidy: $("$tidy" --version | head -n2 | tail -n1)"

# Only hand-written library TUs: generated header-check stubs are covered via
# HeaderFilterRegex when their includers are scanned, and tests/bench lean on
# GoogleTest macros that trip bugprone checks by design.
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "check_tidy: scanning ${#sources[@]} translation units"

"$tidy" -p "$build_dir" --quiet "${sources[@]}"
echo "check_tidy: OK"
