#!/usr/bin/env bash
# Determinism gate for the simulator's clock-honesty refactor (run in CI).
#
# Runs the fig9 convergence sim and byte-diffs the exported loss-curve
# trajectories across three invocations:
#   1. twice from the same seed              -> must be byte-identical
#      (run-to-run determinism of the event schedule + RNG streams);
#   2. once with pipelined_clients toggled   -> must be byte-identical
#      (the open-loop pipelined latency model is observational: it may not
#      perturb training dynamics while closed_loop_clients is off).
#
# Usage: scripts/check_determinism.sh [build-dir]   (default ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BIN="$BUILD/bench_fig9_convergence"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built — build with -DPAPAYA_BUILD_BENCH=ON first" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== run 1 (baseline)"
PAPAYA_FIG9_QUICK=1 PAPAYA_FIG9_EXPORT="$workdir/run1.csv" "$BIN" > /dev/null

echo "== run 2 (same seed)"
PAPAYA_FIG9_QUICK=1 PAPAYA_FIG9_EXPORT="$workdir/run2.csv" "$BIN" > /dev/null

echo "== run 3 (pipelined_clients toggled, closed loop off)"
PAPAYA_FIG9_QUICK=1 PAPAYA_FIG9_PIPELINED=1 \
  PAPAYA_FIG9_EXPORT="$workdir/run3.csv" "$BIN" > /dev/null

fail=0
if ! cmp -s "$workdir/run1.csv" "$workdir/run2.csv"; then
  echo "FAIL: same-seed reruns exported different trajectories" >&2
  diff "$workdir/run1.csv" "$workdir/run2.csv" | head -10 >&2 || true
  fail=1
fi
if ! cmp -s "$workdir/run1.csv" "$workdir/run3.csv"; then
  echo "FAIL: pipelined_clients perturbed the trajectories (must be" \
       "observational with closed_loop_clients off)" >&2
  diff "$workdir/run1.csv" "$workdir/run3.csv" | head -10 >&2 || true
  fail=1
fi

lines="$(wc -l < "$workdir/run1.csv")"
if [ "$lines" -eq 0 ]; then
  echo "FAIL: export produced no trajectory points" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "OK: $lines trajectory points byte-identical across all three runs"
fi
exit "$fail"
