#!/usr/bin/env bash
# Tier-1 verify: the exact ROADMAP command — configure, build everything
# (library, test suites, benches, examples), and run every CTest suite.
# Exits nonzero on any configure, compile, link, or test failure.
#
# Usage: scripts/verify.sh [-- extra cmake configure args...]
#   e.g. scripts/verify.sh -- -DCMAKE_BUILD_TYPE=Debug -DPAPAYA_WERROR=ON
#        scripts/verify.sh -- -DPAPAYA_SANITIZE=address
#        CXX=clang++ scripts/verify.sh -- -DPAPAYA_WERROR=ON
#
# Bare args (no --) are still forwarded to cmake for compatibility with the
# pre-banner invocation style.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake_args=()
if [[ "${1:-}" == "--" ]]; then
  shift
  cmake_args=("$@")
elif [[ $# -gt 0 ]]; then
  cmake_args=("$@")
fi

cmake -B build -S . "${cmake_args[@]}"

# Banner: which toolchain and configuration this verify actually ran — the
# sanitizer/compiler matrix in CI reuses this script, so make each leg
# self-identifying in the logs.
compiler=$(grep -m1 '^CMAKE_CXX_COMPILER:' build/CMakeCache.txt | cut -d= -f2-)
build_type=$(grep -m1 '^CMAKE_BUILD_TYPE:' build/CMakeCache.txt | cut -d= -f2-)
sanitize=$(grep -m1 '^PAPAYA_SANITIZE:' build/CMakeCache.txt | cut -d= -f2- || true)
compiler_version=$("${compiler}" --version 2>/dev/null | head -n1 || echo "unknown")
echo "=============================================================="
echo " verify: compiler   = ${compiler} (${compiler_version})"
echo " verify: build type = ${build_type:-<default>}"
echo " verify: sanitizer  = ${sanitize:-<none>}"
echo "=============================================================="

cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
