#!/usr/bin/env bash
# Tier-1 verify: the exact ROADMAP command — configure, build everything
# (library, 19 test suites, benches, examples), and run every CTest suite.
# Exits nonzero on any configure, compile, link, or test failure.
#
# Usage: scripts/verify.sh [extra cmake configure args...]
#   e.g. scripts/verify.sh -DCMAKE_BUILD_TYPE=Debug -DPAPAYA_WERROR=ON
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
