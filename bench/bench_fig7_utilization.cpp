// Figure 7 reproduction: number of active clients over time for AsyncFL vs
// SyncFL at the same max concurrency.
//
// Paper result (concurrency 1300, SyncFL with 30% over-selection): AsyncFL
// holds utilization essentially flat at the concurrency target, while SyncFL
// saw-tooths — active clients ramp up as a cohort forms and drain as the
// round waits on stragglers.

#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct UtilizationSummary {
  sim::TimeSeries series;
  double end_time;
};

UtilizationSummary run(fl::TrainingMode mode, std::size_t concurrency) {
  sim::SimulationConfig cfg =
      mode == fl::TrainingMode::kAsync
          ? async_config(concurrency, /*goal=*/13)
          : sync_config(static_cast<std::size_t>(concurrency / 1.3),
                        kOverSelection);
  if (mode == fl::TrainingMode::kSync) cfg.task.concurrency = concurrency;
  cfg.max_server_steps = mode == fl::TrainingMode::kAsync ? 150 : 15;
  cfg.max_sim_time_s = 1.0e6;
  cfg.record_utilization = true;
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  sim::SimulationResult result = simulator.run();
  return {std::move(result.active_clients), result.end_time_s};
}

}  // namespace

int main() {
  const std::size_t concurrency = 130;  // scaled from the paper's 1300
  print_header("Figure 7: active clients over time (max concurrency 130)");

  const UtilizationSummary async_util =
      run(fl::TrainingMode::kAsync, concurrency);
  const UtilizationSummary sync_util =
      run(fl::TrainingMode::kSync, concurrency);

  const double horizon = std::min(async_util.end_time, sync_util.end_time);
  const int samples = 30;
  std::printf("%-12s %-14s %-14s\n", "time (s)", "SyncFL active",
              "AsyncFL active");
  for (int i = 1; i <= samples; ++i) {
    const double t = horizon * i / samples;
    std::printf("%-12.0f %-14.0f %-14.0f\n", t, sync_util.series.value_at(t),
                async_util.series.value_at(t));
  }

  // Post-warm-up summary statistics.
  auto summarize = [&](const UtilizationSummary& u, const char* name) {
    std::vector<double> active;
    for (std::size_t i = 0; i < u.series.size(); ++i) {
      if (u.series.times[i] >= horizon / 4.0 && u.series.times[i] <= horizon) {
        active.push_back(u.series.values[i]);
      }
    }
    std::printf("%-8s mean=%6.1f  min=%6.0f  max=%6.0f  (target %zu)\n", name,
                util::mean(active), util::percentile(active, 0.0),
                util::percentile(active, 100.0), concurrency);
  };
  std::printf("\nutilization after warm-up:\n");
  summarize(sync_util, "SyncFL");
  summarize(async_util, "AsyncFL");
  std::printf(
      "\nExpected shape (paper): AsyncFL ~flat near the concurrency target; "
      "SyncFL\noscillates between ~0 (end of round) and the cohort size.\n");
  return 0;
}
