// Figure 7 reproduction: number of active clients over time for AsyncFL vs
// SyncFL at the same max concurrency.
//
// Paper result (concurrency 1300, SyncFL with 30% over-selection): AsyncFL
// holds utilization essentially flat at the concurrency target, while SyncFL
// saw-tooths — active clients ramp up as a cohort forms and drain as the
// round waits on stragglers.

#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct UtilizationSummary {
  sim::TimeSeries series;
  double end_time;
};

UtilizationSummary run(fl::TrainingMode mode, std::size_t concurrency) {
  sim::SimulationConfig cfg =
      mode == fl::TrainingMode::kAsync
          ? async_config(concurrency, /*goal=*/13)
          : sync_config(static_cast<std::size_t>(concurrency / 1.3),
                        kOverSelection);
  if (mode == fl::TrainingMode::kSync) cfg.task.concurrency = concurrency;
  cfg.max_server_steps = mode == fl::TrainingMode::kAsync ? 150 : 15;
  cfg.max_sim_time_s = 1.0e6;
  cfg.record_utilization = true;
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  sim::SimulationResult result = simulator.run();
  return {std::move(result.active_clients), result.end_time_s};
}

}  // namespace

int main() {
  const std::size_t concurrency = 130;  // scaled from the paper's 1300
  print_header("Figure 7: active clients over time (max concurrency 130)");

  const UtilizationSummary async_util =
      run(fl::TrainingMode::kAsync, concurrency);
  const UtilizationSummary sync_util =
      run(fl::TrainingMode::kSync, concurrency);

  const double horizon = std::min(async_util.end_time, sync_util.end_time);
  const int samples = 30;
  std::printf("%-12s %-14s %-14s\n", "time (s)", "SyncFL active",
              "AsyncFL active");
  for (int i = 1; i <= samples; ++i) {
    const double t = horizon * i / samples;
    std::printf("%-12.0f %-14.0f %-14.0f\n", t, sync_util.series.value_at(t),
                async_util.series.value_at(t));
  }

  // Post-warm-up summary statistics.
  auto summarize = [&](const UtilizationSummary& u, const char* name) {
    std::vector<double> active;
    for (std::size_t i = 0; i < u.series.size(); ++i) {
      if (u.series.times[i] >= horizon / 4.0 && u.series.times[i] <= horizon) {
        active.push_back(u.series.values[i]);
      }
    }
    std::printf("%-8s mean=%6.1f  min=%6.0f  max=%6.0f  (target %zu)\n", name,
                util::mean(active), util::percentile(active, 0.0),
                util::percentile(active, 100.0), concurrency);
  };
  std::printf("\nutilization after warm-up:\n");
  summarize(sync_util, "SyncFL");
  summarize(async_util, "AsyncFL");
  std::printf(
      "\nExpected shape (paper): AsyncFL ~flat near the concurrency target; "
      "SyncFL\noscillates between ~0 (end of round) and the cohort size.\n");

  // Pipelined client runtime (Sec. 6.1): with train ∥ serialize ∥ chunked
  // upload overlapped, a device finishes its work before its serving slot
  // closes.  The busy series meters device-side work; the gap to the
  // active (slot-held) series is the overlap saving in device-seconds.
  std::printf("\nPipelined device-busy vs slot-held (AsyncFL, uplink 0.02 "
              "Mbps):\n");
  sim::SimulationConfig pcfg = async_config(/*concurrency=*/30, /*goal=*/6);
  pcfg.max_server_steps = 40;
  pcfg.max_sim_time_s = 1.0e6;
  pcfg.network.mean_upload_mbps = 0.02;
  pcfg.population.min_examples = 1;
  pcfg.population.max_examples = 8;
  pcfg.upload_chunk_bytes = 1024;
  pcfg.task.pipelined_clients = true;
  pcfg.record_utilization = true;
  pcfg.record_participations = false;
  sim::FlSimulator pipelined(pcfg);
  const sim::SimulationResult pres = pipelined.run();

  auto mean_after_warmup = [&](const sim::TimeSeries& series) {
    std::vector<double> values;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series.times[i] >= pres.end_time_s / 4.0) {
        values.push_back(series.values[i]);
      }
    }
    return util::mean(values);
  };
  const double slot_held = mean_after_warmup(pres.active_clients);
  const double device_busy = mean_after_warmup(pres.busy_clients);
  std::printf("  mean slots held:    %6.1f\n", slot_held);
  std::printf("  mean devices busy:  %6.1f\n", device_busy);
  std::printf("  overlap frees %.1f%% of device-time at the same protocol "
              "schedule\n",
              100.0 * (1.0 - device_busy / slot_held));

  // Closed-loop column: when the pipelined completion times drive the
  // schedule (TaskConfig::closed_loop_clients), a slot is released the
  // moment the overlapped upload finishes — the slot-held and device-busy
  // series coincide, and the freed device-time becomes protocol throughput
  // instead of idle slot time.
  sim::SimulationConfig ccfg = pcfg;
  ccfg.task.closed_loop_clients = true;
  sim::FlSimulator closed(ccfg);
  const sim::SimulationResult cres = closed.run();
  auto closed_mean = [&](const sim::TimeSeries& series) {
    std::vector<double> values;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series.times[i] >= cres.end_time_s / 4.0) {
        values.push_back(series.values[i]);
      }
    }
    return util::mean(values);
  };
  const double closed_slots = closed_mean(cres.active_clients);
  const double closed_busy = closed_mean(cres.busy_clients);
  std::printf("\nClosed-loop (same task, arrivals at pipelined completion):\n");
  std::printf("  mean slots held:    %6.1f\n", closed_slots);
  std::printf("  mean devices busy:  %6.1f\n", closed_busy);
  std::printf("  residual slot/busy gap: %.1f%% (open loop: %.1f%%) — the "
              "schedule reclaimed the overlap\n",
              100.0 * (1.0 - closed_busy / closed_slots),
              100.0 * (1.0 - device_busy / slot_held));
  std::printf("  reached %llu server steps by t=%.0f s (open loop: t=%.0f "
              "s)\n",
              static_cast<unsigned long long>(cres.server_steps),
              cres.end_time_s, pres.end_time_s);
  return 0;
}
