// Figure 10 reproduction: at fixed concurrency, how the aggregation goal K
// affects (top) time to reach a target perplexity and (bottom) the server
// model update rate.
//
// Paper result (concurrency 1300, K from 100 to 1300; scaled here to
// concurrency 130, K from 13 to 130): larger K means fewer, bigger server
// steps — the update rate falls ~linearly in 1/K and the time to target
// grows.  (K below ~100 is not explored in the paper because moderate K
// stabilizes convergence and the server's write bandwidth bounds the step
// rate.)

#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  const std::size_t concurrency = 130;
  print_header("Figure 10: effect of aggregation goal K (concurrency 130)");
  std::printf("%-8s %-18s %-22s %-10s\n", "K", "time to target (h)",
              "server updates per h", "reached");

  for (const std::size_t k : std::vector<std::size_t>{13, 26, 52, 104, 130}) {
    sim::SimulationConfig cfg = async_config(concurrency, k);
    cfg.target_loss = kTargetLoss;
    cfg.max_sim_time_s = 2.0e6;
    cfg.record_participations = false;
    cfg.eval_every_steps = k >= 52 ? 1 : 5;
    sim::FlSimulator simulator(cfg);
    const sim::SimulationResult result = simulator.run();
    std::printf("%-8zu %-18.2f %-22.1f %-10s\n", k,
                sim_hours(result.time_to_target_s),
                static_cast<double>(result.server_steps) /
                    sim_hours(result.end_time_s),
                result.reached_target ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape (paper): updates/hour falls as K grows; time to "
      "target\ngrows with K (moderate K controls staleness; small K steps "
      "more often).\n");
  return 0;
}
