// Table 1 reproduction: test perplexity after a fixed budget of applied
// client updates, for all clients and for clients in the 75th / 99th
// percentile of training-data volume, under three regimes:
//   SyncFL w/o over-selection  (unbiased but slow),
//   SyncFL w/  over-selection  (fast but biased against data-rich clients),
//   AsyncFL                    (fast and unbiased).
//
// Paper result (1M client updates; scaled here to 6000): over-selection
// costs ~6% perplexity overall and ~50% for the 99th-percentile (data-rich)
// clients; AsyncFL is the best across the board and as fast as SyncFL w/ OS,
// while SyncFL w/o OS takes ~7-10x longer.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

constexpr std::uint64_t kUpdateBudget = 6000;

struct Row {
  const char* name = nullptr;
  double ppl_all = 0.0;
  double ppl_p75 = 0.0;
  double ppl_p99 = 0.0;
  double hours = 0.0;
};

Row run(const char* name, sim::SimulationConfig cfg) {
  cfg.max_applied_updates = kUpdateBudget;
  cfg.max_sim_time_s = 1.0e7;
  cfg.eval_every_steps = 50;
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();

  // Build per-percentile test sets from the device population: "75% and 99%
  // represent clients with data volume in the 75th and 99th percentiles".
  const sim::DevicePopulation& population = simulator.population();
  std::vector<double> volumes;
  for (const auto& d : population.devices()) {
    volumes.push_back(static_cast<double>(d.num_examples));
  }
  const double p75 = util::percentile(volumes, 75.0);
  const double p99 = util::percentile(volumes, 99.0);

  std::vector<ml::Sequence> all_test, p75_test, p99_test;
  std::size_t sampled = 0;
  for (const auto& d : population.devices()) {
    if (sampled++ >= 1500) break;  // bounded evaluation cost
    const auto dataset = simulator.corpus().client_dataset(d.id, d.num_examples);
    for (const auto& seq : dataset.test) {
      all_test.push_back(seq);
      if (static_cast<double>(d.num_examples) >= p75) p75_test.push_back(seq);
      if (static_cast<double>(d.num_examples) >= p99) p99_test.push_back(seq);
    }
  }

  const auto model = simulator.make_model_with_params(result.final_model);
  Row row;
  row.name = name;
  row.ppl_all = model->perplexity(all_test);
  row.ppl_p75 = model->perplexity(p75_test);
  row.ppl_p99 = model->perplexity(p99_test);
  row.hours = sim_hours(result.end_time_s);
  return row;
}

}  // namespace

int main() {
  print_header("Table 1: test perplexity after a fixed client-update budget");
  std::printf("budget: %llu applied client updates (scaled from the paper's "
              "1M)\n\n",
              static_cast<unsigned long long>(kUpdateBudget));

  std::vector<Row> rows;
  {
    sim::SimulationConfig cfg = sync_config(/*goal=*/100, /*os=*/0.0);
    rows.push_back(run("SyncFL w/o OS", cfg));
  }
  {
    sim::SimulationConfig cfg = sync_config(/*goal=*/100, kOverSelection);
    rows.push_back(run("SyncFL with OS", cfg));
  }
  {
    sim::SimulationConfig cfg = async_config(/*concurrency=*/130, /*goal=*/13);
    rows.push_back(run("AsyncFL", cfg));
  }

  std::printf("%-16s %-10s %-10s %-10s %-12s\n", "Method", "All", "75%",
              "99%", "Time (h)");
  for (const Row& row : rows) {
    std::printf("%-16s %-10.2f %-10.2f %-10.2f %-12.2f\n", row.name,
                row.ppl_all, row.ppl_p75, row.ppl_p99, row.hours);
  }
  std::printf(
      "\nExpected shape (paper Table 1): AsyncFL lowest perplexity in every "
      "column\nand fastest; SyncFL w/ OS worst for data-rich (99%%) clients; "
      "SyncFL w/o OS\nunbiased but many times slower.\n");
  return 0;
}
