// Ablation: SMPC-based synchronous SecAgg (Bonawitz et al. 2016) versus
// PAPAYA's TEE-based Asynchronous SecAgg (Sec. 5).
//
// The paper's argument for a new protocol is architectural: SMPC SecAgg
// "requires clients participating in a round to form a cohort and run a
// multi-leg protocol through the duration of the round", which is
// incompatible with asynchronous training.  This bench makes the costs
// concrete by running both protocols end to end and metering
//   - synchronous protocol legs every client must stay online for,
//   - client<->server traffic (SMPC's O(n^2) share ciphertexts vs
//     AsyncSecAgg's O(1) per-client overhead),
//   - server-side wall time per released aggregate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/secagg_batch.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"
#include "smpc/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kVectorLength = 1024;  // 4 KB masked payload

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct SmpcNumbers {
  double wall_ms = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t overhead_bytes = 0;  ///< total minus the masked payloads
};

SmpcNumbers run_smpc(std::size_t n) {
  util::Rng rng(n);
  std::vector<secagg::GroupVec> inputs(n);
  for (auto& v : inputs) {
    v.resize(kVectorLength);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());
  }
  smpc::SmpcConfig config;
  config.vector_length = kVectorLength;
  config.threshold = (2 * n + 2) / 3;

  const auto start = Clock::now();
  const auto result = smpc::run_smpc_round(config, inputs, {}, n);
  SmpcNumbers out;
  out.wall_ms = ms_since(start);
  out.total_bytes = result.traffic.client_to_server_bytes +
                    result.traffic.server_to_client_bytes;
  const std::uint64_t payload = n * (4 * kVectorLength + 8);
  out.overhead_bytes = out.total_bytes - payload;
  return out;
}

struct AsyncNumbers {
  double wall_ms = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t overhead_bytes = 0;
};

AsyncNumbers run_async(std::size_t k) {
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(1);
  const crypto::Digest binary = crypto::Sha256::hash(std::string("tsa"));
  crypto::VerifiableLog log;
  log.append(binary);

  secagg::SecAggParams params;
  params.vector_length = kVectorLength;
  params.threshold = k;
  const auto fp = secagg::FixedPointParams::for_budget(1.0, k);

  const auto start = Clock::now();
  secagg::TrustedSecureAggregator tsa(dh, params, k, platform, binary, 7);
  const secagg::QuoteExpectations expectations{params.hash(dh),
                                               log.snapshot()};
  secagg::SecureAggregationSession session(tsa, kVectorLength, k);
  const std::vector<float> update(kVectorLength, 0.01f);
  const auto proof = log.prove_inclusion(0);

  AsyncNumbers out;
  for (std::size_t c = 0; c < k; ++c) {
    secagg::SecAggClient client(dh, fp, c);
    const auto contribution = client.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(c), proof, update);
    session.accept(*contribution);
    // Per-client wire traffic: one DH initial message down, then one upload
    // of {masked vector, sealed 16-byte seed, DH completing message}.
    const std::uint64_t dh_bytes = 2 * dh.byte_width();
    const std::uint64_t seed_box = 12 + 16 + 32;  // nonce + body + tag
    out.total_bytes += dh_bytes + 4 * kVectorLength + 8 + seed_box;
    out.overhead_bytes += dh_bytes + seed_box;
  }
  (void)session.finalize();
  out.wall_ms = ms_since(start);
  return out;
}

// --------------------------------------------- Batched server-path sweep --
//
// Same async protocol, but comparing the server-side accept pipeline:
// per-update SecureAggregationSession vs BatchedSecureAggregationSession at
// several batch sizes.  Client preparation runs once outside the timers; the
// timed region is exactly the server/TSA work per released aggregate.

void run_batched_sweep() {
  constexpr std::size_t kSweepLength = 1 << 18;  // 1 MB masked updates
  constexpr std::size_t kSweepClients = 32;
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(1);
  const crypto::Digest binary = crypto::Sha256::hash(std::string("tsa"));
  crypto::VerifiableLog log;
  log.append(binary);

  secagg::SecAggParams params;
  params.vector_length = kSweepLength;
  params.threshold = kSweepClients;
  const auto fp = secagg::FixedPointParams::for_budget(1.0, kSweepClients);
  const secagg::QuoteExpectations expectations{params.hash(dh),
                                               log.snapshot()};
  const auto proof = log.prove_inclusion(0);
  const std::uint64_t tsa_seed = 7;
  const auto make_tsa = [&] {
    return std::make_unique<secagg::TrustedSecureAggregator>(
        dh, params, kSweepClients, platform, binary, tsa_seed);
  };

  std::vector<secagg::ClientContribution> contributions;
  {
    const auto reference_tsa = make_tsa();
    const std::vector<float> update(kSweepLength, 0.01f);
    for (std::size_t c = 0; c < kSweepClients; ++c) {
      secagg::SecAggClient client(dh, fp, c);
      auto contribution = client.prepare_contribution(
          platform, expectations, reference_tsa->initial_messages().at(c),
          proof, update);
      contributions.push_back(std::move(*contribution));
    }
  }

  std::printf(
      "\nBatched SecAgg server pipeline (l = %zu words, K = %zu clients; "
      "server-side accept+finalize only):\n",
      kSweepLength, kSweepClients);
  std::printf("%-12s | %-12s %-14s %-10s | %s\n", "batch", "wall ms",
              "ns/update", "speedup", "TSA crossings");

  double per_update_ms = 0.0;
  // batch = 0 encodes the per-update SecureAggregationSession baseline.
  for (const std::size_t batch : {0UL, 8UL, 32UL}) {
    const auto tsa = make_tsa();
    const auto start = Clock::now();
    std::uint64_t crossings = 0;
    if (batch == 0) {
      secagg::SecureAggregationSession session(*tsa, kSweepLength,
                                               kSweepClients);
      for (const auto& c : contributions) session.accept(c);
      (void)session.finalize();
    } else {
      secagg::BatchedSecureAggregationSession session(*tsa, kSweepLength,
                                                      kSweepClients);
      for (std::size_t base = 0; base < contributions.size(); base += batch) {
        const std::size_t n = std::min(batch, contributions.size() - base);
        session.accept_batch({contributions.data() + base, n});
      }
      (void)session.finalize();
    }
    const double wall = ms_since(start);
    crossings = tsa->boundary().calls();
    if (batch == 0) per_update_ms = wall;
    std::printf("%-12s | %-12.1f %-14.0f %-10.2f | %llu\n",
                batch == 0 ? "per-update" : std::to_string(batch).c_str(),
                wall, wall * 1e6 / kSweepClients,
                per_update_ms / wall,
                static_cast<unsigned long long>(crossings));
  }
}

}  // namespace

int main() {
  std::printf(
      "Ablation: SMPC SecAgg (Bonawitz et al. 2016) vs Asynchronous SecAgg "
      "(Sec. 5)\n");
  std::printf("vector length = %zu words (%zu KB payload per client)\n\n",
              kVectorLength, kVectorLength * 4 / 1024);
  std::printf("%-6s | %-10s %-12s %-12s | %-10s %-12s %-12s | %s\n", "n",
              "smpc ms", "smpc KB", "smpc ovh KB", "async ms", "async KB",
              "async ovh KB", "ovh ratio");
  double last_ovh_per_n2 = 0.0;
  for (const std::size_t n : {4UL, 8UL, 16UL, 32UL}) {
    const SmpcNumbers s = run_smpc(n);
    const AsyncNumbers a = run_async(n);
    const double ratio = static_cast<double>(s.overhead_bytes) /
                         static_cast<double>(a.overhead_bytes);
    std::printf(
        "%-6zu | %-10.1f %-12.1f %-12.1f | %-10.1f %-12.1f %-12.1f | %.1fx\n",
        n, s.wall_ms, s.total_bytes / 1024.0, s.overhead_bytes / 1024.0,
        a.wall_ms, a.total_bytes / 1024.0, a.overhead_bytes / 1024.0, ratio);
    last_ovh_per_n2 =
        static_cast<double>(s.overhead_bytes) / (static_cast<double>(n) * n);
  }

  // SMPC share traffic is quadratic in the cohort; extrapolate to the
  // paper's aggregation goals.
  std::printf("\nExtrapolated SMPC share overhead (quadratic fit):\n");
  for (const std::size_t n : {100UL, 1000UL}) {
    std::printf("  n = %-5zu ~ %.1f MB of share ciphertexts per round\n", n,
                last_ovh_per_n2 * n * n / (1024.0 * 1024.0));
  }
  std::printf(
      "\nStructural costs (why Sec. 5 rules SMPC out for AsyncFL):\n"
      "  SMPC SecAgg:  %d synchronous legs; cohort fixed at round start;\n"
      "                every client must hold shares of every other client.\n"
      "  AsyncSecAgg:  1 leg per client; no inter-client dependency; a\n"
      "                client can contribute the moment it finishes "
      "training.\n",
      smpc::SmpcTraffic::kSynchronousLegs);

  run_batched_sweep();
  return 0;
}
