// Macro-scale population sweep: fig8-class AsyncFL simulations at 10^4 to
// 10^6 virtual devices on one core, using the million-device recipe —
// lazy keyed device materialization (no per-device profile storage), the
// amortized-O(1) calendar event queue, dense per-entity stream counters,
// and streaming metrics (no raw record retention).
//
// Reported per row: wall-clock seconds, discrete events pumped, events/sec
// (the queue-throughput headline), server steps, and simulated end time.
// After the sweep the process's peak RSS is printed as a greppable
//   peak_rss_mb=<n>
// line — the acceptance artifact that a 1M-device run fits a small box.
//
// PAPAYA_MACRO_QUICK=1 runs only a shortened 1M-device row (the CI smoke).

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct Row {
  std::size_t devices;
  double checkin_interval_s;
  std::uint64_t server_steps;
};

sim::SimulationConfig macro_config(const Row& row) {
  sim::SimulationConfig cfg = base_config(7);
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 104;
  cfg.task.aggregation_goal = 13;
  cfg.population.num_devices = row.devices;
  cfg.population.synthesis = sim::ProfileSynthesis::kKeyedLazy;
  cfg.event_queue = sim::EventQueueBackend::kCalendar;
  cfg.rng_streams = sim::RngStreamMode::kPerEntity;
  cfg.mean_checkin_interval_s = row.checkin_interval_s;
  cfg.max_server_steps = row.server_steps;
  cfg.max_sim_time_s = 1.0e7;
  cfg.eval_every_steps = row.server_steps;  // evaluate once, at the end
  cfg.record_participations = false;
  cfg.metrics.max_timeseries_points = 256;
  return cfg;
}

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void run_row(const Row& row) {
  sim::FlSimulator simulator(macro_config(row));
  const auto start = std::chrono::steady_clock::now();
  const auto result = simulator.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "row devices=%zu checkin_s=%.0f wall_s=%.2f events=%llu "
      "events_per_s=%.0f server_steps=%llu sim_end_s=%.0f "
      "participations=%llu rss_mb=%.0f\n",
      row.devices, row.checkin_interval_s, wall_s,
      static_cast<unsigned long long>(result.events_processed),
      static_cast<double>(result.events_processed) / wall_s,
      static_cast<unsigned long long>(result.server_steps), result.end_time_s,
      static_cast<unsigned long long>(result.summary.records), peak_rss_mb());
  std::fflush(stdout);
}

}  // namespace

int main() {
  print_header(
      "Macro population sweep: AsyncFL (K=13, concurrency 104) at scale");
  std::printf(
      "(lazy keyed population + calendar event queue + dense stream "
      "counters + streaming metrics)\n\n");

  const bool quick = std::getenv("PAPAYA_MACRO_QUICK") != nullptr;
  std::vector<Row> rows;
  if (quick) {
    // CI smoke: prove the 1M-device path end to end, minimal steps.
    rows.push_back({1'000'000, 60.0, 5});
  } else {
    // Device axis at a fixed check-in load, then an event-rate axis at 1M
    // (halving the mean check-in interval doubles offered events/sec).
    rows.push_back({10'000, 60.0, 30});
    rows.push_back({100'000, 60.0, 30});
    rows.push_back({1'000'000, 120.0, 30});
    rows.push_back({1'000'000, 60.0, 30});
  }
  for (const Row& row : rows) run_row(row);

  std::printf("\npeak_rss_mb=%.0f\n", peak_rss_mb());
  std::printf(
      "Expected shape: events/sec stays flat as the device count grows 100x\n"
      "(calendar queue pops are O(1), device state is O(bytes) per device);\n"
      "peak RSS stays far below what 10^6 eager DeviceProfile + heap-queue\n"
      "state would need.\n");
  return 0;
}
