// Macro-scale population sweep: fig8-class AsyncFL simulations at 10^4 to
// 10^7 virtual devices on one core, using the million-device recipe —
// lazy keyed device materialization (no per-device profile storage), the
// amortized-O(1) calendar event queue pumping 32-byte POD event records
// (zero allocations per event — tests/event_engine_test.cpp), dense
// per-entity stream counters, and streaming metrics (no raw record
// retention; staleness percentiles come from O(1) P² sketches).
//
// Reported per row: wall-clock seconds, discrete events pumped, events/sec
// (the queue-throughput headline), server steps, simulated end time,
// staleness percentiles of applied updates, and the row's own peak RSS
// (VmHWM, reset via /proc/self/clear_refs before the row starts, so each
// population size reports the memory *it* needed, not what a larger
// earlier row left as the process high-water).  After the sweep the
// process-lifetime peak is printed as a greppable
//   peak_rss_mb=<n>
// line — the acceptance artifact that the 10M-device sweep fits one box.
//
// PAPAYA_MACRO_QUICK=1 runs shortened 1M- and 10M-device rows (CI smoke).

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct Row {
  std::size_t devices;
  double checkin_interval_s;
  std::uint64_t server_steps;
};

sim::SimulationConfig macro_config(const Row& row) {
  sim::SimulationConfig cfg = base_config(7);
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 104;
  cfg.task.aggregation_goal = 13;
  cfg.population.num_devices = row.devices;
  cfg.population.synthesis = sim::ProfileSynthesis::kKeyedLazy;
  cfg.event_queue = sim::EventQueueBackend::kCalendar;
  cfg.rng_streams = sim::RngStreamMode::kPerEntity;
  cfg.mean_checkin_interval_s = row.checkin_interval_s;
  cfg.max_server_steps = row.server_steps;
  cfg.max_sim_time_s = 1.0e7;
  cfg.eval_every_steps = row.server_steps;  // evaluate once, at the end
  cfg.record_participations = false;
  cfg.metrics.max_timeseries_points = 256;
  return cfg;
}

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Resets the kernel's VmHWM watermark so the next vm_hwm_mb() read covers
/// only the work since this call.  (getrusage's ru_maxrss is separate
/// accounting and is NOT reset — the final peak_rss_mb= artifact still
/// reports the true process-lifetime peak.)
void reset_peak_rss() {
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

/// Current VmHWM (peak RSS since the last reset) in MB; falls back to the
/// process-lifetime peak where /proc is unavailable.
double vm_hwm_mb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return static_cast<double>(kb) / 1024.0;
  }
  return peak_rss_mb();
}

void run_row(const Row& row) {
  reset_peak_rss();
  sim::FlSimulator simulator(macro_config(row));
  const auto start = std::chrono::steady_clock::now();
  const auto result = simulator.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto& s = result.summary;
  std::printf(
      "row devices=%zu checkin_s=%.0f wall_s=%.2f events=%llu "
      "events_per_s=%.0f server_steps=%llu sim_end_s=%.0f "
      "participations=%llu stale_p50=%.0f stale_p95=%.0f stale_p99=%.0f "
      "peak_rss_mb=%.0f\n",
      row.devices, row.checkin_interval_s, wall_s,
      static_cast<unsigned long long>(result.events_processed),
      static_cast<double>(result.events_processed) / wall_s,
      static_cast<unsigned long long>(result.server_steps), result.end_time_s,
      static_cast<unsigned long long>(s.records),
      s.applied > 0 ? s.stale_p50.value() : 0.0,
      s.applied > 0 ? s.stale_p95.value() : 0.0,
      s.applied > 0 ? s.stale_p99.value() : 0.0, vm_hwm_mb());
  std::fflush(stdout);
}

}  // namespace

int main() {
  print_header(
      "Macro population sweep: AsyncFL (K=13, concurrency 104) at scale");
  std::printf(
      "(lazy keyed population + calendar event queue + dense stream "
      "counters + streaming metrics)\n\n");

  const bool quick = std::getenv("PAPAYA_MACRO_QUICK") != nullptr;
  std::vector<Row> rows;
  if (quick) {
    // CI smoke: prove the 1M- and 10M-device paths end to end, minimal
    // steps each.
    rows.push_back({1'000'000, 60.0, 5});
    rows.push_back({10'000'000, 60.0, 2});
  } else {
    // Device axis at a fixed check-in load, then an event-rate axis at 1M
    // (halving the mean check-in interval doubles offered events/sec), then
    // the ten-million-device headline row.
    rows.push_back({10'000, 60.0, 30});
    rows.push_back({100'000, 60.0, 30});
    rows.push_back({1'000'000, 120.0, 30});
    rows.push_back({1'000'000, 60.0, 30});
    rows.push_back({10'000'000, 60.0, 30});
  }
  for (const Row& row : rows) run_row(row);

  std::printf("\npeak_rss_mb=%.0f\n", peak_rss_mb());
  std::printf(
      "Expected shape: events/sec stays flat as the device count grows "
      "1000x\n"
      "(POD event pops are allocation-free and O(1) amortized, device state\n"
      "is O(bytes) per device); per-row peak RSS grows linearly in devices\n"
      "and stays far below what 10^7 eager DeviceProfile + heap-queue state\n"
      "would need.\n");
  return 0;
}
