// Microbenchmarks for the SMPC SecAgg baseline: Shamir split/reconstruct
// cost vs (n, t), pairwise-mask derivation (one DH shared element + HKDF +
// ChaCha20 expansion), and whole-round cost vs cohort size — the numbers
// behind the Sec. 5 claim that SMPC's per-round work scales quadratically.

#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/dh.hpp"
#include "smpc/protocol.hpp"
#include "smpc/shamir.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

smpc::RandomBytesFn bench_random() {
  auto rng = std::make_shared<util::Rng>(99);
  return [rng](std::size_t n) {
    util::Bytes b(n);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng->next());
    return b;
  };
}

void BM_ShamirSplit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (2 * n + 2) / 3;
  const util::Bytes secret(16, 0xab);
  const auto rand = bench_random();
  for (auto _ : state) {
    benchmark::DoNotOptimize(smpc::shamir_split(secret, n, t, rand));
  }
}
BENCHMARK(BM_ShamirSplit)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_ShamirReconstruct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (2 * n + 2) / 3;
  const util::Bytes secret(16, 0xcd);
  const auto shares = smpc::shamir_split(secret, n, t, bench_random());
  for (auto _ : state) {
    benchmark::DoNotOptimize(smpc::shamir_reconstruct(shares, t));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_PairwiseMaskSeed(benchmark::State& state) {
  const crypto::DhParams& params = crypto::DhParams::simulation256();
  util::Bytes seed_a{1, 2, 3};
  util::Bytes seed_b{4, 5, 6};
  crypto::DhRandom ra(seed_a), rb(seed_b);
  const auto a = crypto::dh_generate(params, ra);
  const auto b = crypto::dh_generate(params, rb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smpc::pairwise_mask_seed(params, a.private_key, b.public_key));
  }
}
BENCHMARK(BM_PairwiseMaskSeed)->Unit(benchmark::kMicrosecond);

void BM_MaskExpansion(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  const util::Bytes seed(16, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smpc::expand_mask(seed, len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len) * 4);
}
BENCHMARK(BM_MaskExpansion)->Arg(1024)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

void BM_SmpcFullRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLen = 256;
  std::vector<secagg::GroupVec> inputs(n, secagg::GroupVec(kLen, 7));
  smpc::SmpcConfig config;
  config.vector_length = kLen;
  config.threshold = (2 * n + 2) / 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(smpc::run_smpc_round(config, inputs, {}, n));
  }
}
BENCHMARK(BM_SmpcFullRound)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
