// Figure 13 reproduction: hours to reach a target loss for the four FL
// configurations of Fig. 12.
//
// Paper result: SyncFL w/o over-selection ~235 h, SyncFL w/ over-selection
// ~80 h, AsyncFL K=1000 ~40 h, AsyncFL K=100 ~18 h (i.e. AsyncFL K=100 is
// ~4.3x faster than the best SyncFL; about half of that from smaller K and
// half from avoiding sampling bias).  Scaled: concurrency 130, K in
// {13, 100}, goal 100 for SyncFL.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

double run_to_target(sim::SimulationConfig cfg) {
  cfg.target_loss = kTargetLoss;
  cfg.max_sim_time_s = 4.0e6;
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  return result.reached_target ? sim_hours(result.time_to_target_s) : -1.0;
}

void print_bar(const char* name, double hours, double max_hours) {
  const int width = static_cast<int>(hours / max_hours * 46.0);
  std::printf("%-16s %7.2f h |%s\n", name, hours,
              std::string(static_cast<std::size_t>(width), '#').c_str());
}

}  // namespace

int main() {
  print_header("Figure 13: hours to target loss, four FL configurations");

  std::vector<std::pair<const char*, double>> rows;
  {
    sim::SimulationConfig cfg = sync_config(100, 0.0);
    rows.emplace_back("SyncFL w/o OS", run_to_target(cfg));
  }
  {
    sim::SimulationConfig cfg = sync_config(100, kOverSelection);
    rows.emplace_back("SyncFL w/ OS", run_to_target(cfg));
  }
  {
    sim::SimulationConfig cfg = async_config(130, 100);
    cfg.eval_every_steps = 1;
    rows.emplace_back("AsyncFL K=100", run_to_target(cfg));
  }
  {
    sim::SimulationConfig cfg = async_config(130, 13);
    rows.emplace_back("AsyncFL K=13", run_to_target(cfg));
  }

  double max_hours = 0.0;
  for (const auto& [_, h] : rows) max_hours = std::max(max_hours, h);
  for (const auto& [name, hours] : rows) {
    if (hours < 0.0) {
      std::printf("%-16s target not reached\n", name);
    } else {
      print_bar(name, hours, max_hours);
    }
  }
  const double best_sync = rows[1].second;
  const double async_k13 = rows[3].second;
  if (best_sync > 0.0 && async_k13 > 0.0) {
    std::printf("\nAsyncFL K=13 vs best SyncFL: %.1fx faster (paper: ~4.3x)\n",
                best_sync / async_k13);
  }

  // Closed-loop column: the pipelined per-stage completion times feed back
  // into the protocol schedule (TaskConfig::closed_loop_clients), so
  // aggregation-goal waits see the latency a pipelined fleet actually
  // delivers.  Comparable by construction: both rows run per-entity RNG
  // streams (identical draws per device), a constrained uplink and 1 KiB
  // chunks so the upload is a real, overlappable fraction of a
  // participation; the only difference is whether the overlap is
  // observational (open loop) or drives the arrival events (closed loop).
  std::printf("\nClosed-loop column (AsyncFL K=13, uplink 0.005 Mbps, 1 KiB "
              "chunks, per-entity streams):\n");
  auto constrained = [](bool closed_loop) {
    sim::SimulationConfig cfg = async_config(130, 13);
    cfg.rng_streams = sim::RngStreamMode::kPerEntity;
    cfg.task.pipelined_clients = true;
    cfg.task.closed_loop_clients = closed_loop;
    cfg.network.mean_upload_mbps = 0.005;
    cfg.upload_chunk_bytes = 1024;
    return run_to_target(cfg);
  };
  const double open_h = constrained(false);
  const double closed_h = constrained(true);
  std::printf("%-16s %7.2f h\n", "open loop", open_h);
  std::printf("%-16s %7.2f h\n", "closed loop", closed_h);
  if (open_h > 0.0 && closed_h > 0.0) {
    std::printf("closed-loop time-to-target delta: %+.1f%% (uploads overlap "
                "training, so goals fill earlier)\n",
                100.0 * (closed_h / open_h - 1.0));
  }
  return 0;
}
