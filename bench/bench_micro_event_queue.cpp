// Microbenchmarks for the discrete-event engine hot path (ISSUE 10): the
// steady-state schedule→pop→dispatch cycle that a 10M-device population
// executes hundreds of millions of times per run.
//
// BM_EventSchedule measures the POD event record (32 bytes, zero-alloc:
// tests/event_engine_test.cpp proves the allocation count) on each backend;
// BM_EventScheduleClosure runs the identical workload through the pooled
// std::function fallback so the dispatch-table win is a visible row pair in
// BENCH_micro_event_queue.json.
//
// The workload mirrors the simulator's check-in/backoff churn: constant
// pending size (512), deterministic cyclic delays of 1.0–4.75 s, every pop
// immediately rescheduling its event.  Constant occupancy keeps the
// calendar between its resize thresholds and the wheel's rings periodic, so
// the numbers reflect the per-event cost, not resize amortization.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "sim/event_queue.hpp"

namespace {

using namespace papaya;
using sim::EventKind;
using sim::EventQueue;
using sim::EventQueueBackend;

constexpr std::uint32_t kPending = 512;
constexpr int kWarmupPops = 60000;

struct ReschedulerCtx {
  EventQueue* q;
  std::uint64_t pops = 0;
};

void reschedule_dispatch(void* ctx, EventKind kind, std::uint32_t entity,
                         std::uint32_t payload, double) {
  auto* c = static_cast<ReschedulerCtx*>(ctx);
  const double delay = 1.0 + 0.25 * static_cast<double>(c->pops % 16);
  c->q->schedule_event_in(delay, entity, kind, entity, payload);
  ++c->pops;
}

void seed_queue_pod(EventQueue& q) {
  for (std::uint32_t i = 0; i < kPending; ++i) {
    q.schedule_event_at(0.01 * static_cast<double>(i), i,
                        static_cast<EventKind>(1 + i % 5), i, i);
  }
}

/// Steady-state POD cycle: pop one event, dispatch through the table,
/// reschedule it.  One item == one full event lifetime.
void BM_EventSchedule(benchmark::State& state) {
  const auto backend = static_cast<EventQueueBackend>(state.range(0));
  EventQueue q(backend);
  ReschedulerCtx ctx{&q};
  q.set_dispatcher(&reschedule_dispatch, &ctx);
  seed_queue_pod(q);
  // Warm past the wheel's level-1 ring revolution / the calendar's final
  // ring width so bucket capacities reach their periodic high-water marks.
  for (int i = 0; i < kWarmupPops; ++i) q.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.step());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSchedule)
    ->Arg(static_cast<int>(EventQueueBackend::kHeap))
    ->Arg(static_cast<int>(EventQueueBackend::kCalendar))
    ->Arg(static_cast<int>(EventQueueBackend::kWheel))
    ->Unit(benchmark::kNanosecond);

/// The same cycle through the legacy closure API (pool slot + std::function
/// move per event) — the baseline the POD record replaced.
void BM_EventScheduleClosure(benchmark::State& state) {
  const auto backend = static_cast<EventQueueBackend>(state.range(0));
  EventQueue q(backend);
  std::uint64_t pops = 0;
  std::function<void(double)> resched = [&](double) {
    const double delay = 1.0 + 0.25 * static_cast<double>(pops % 16);
    ++pops;
    q.schedule_in(delay, [&](double t) { resched(t); });
  };
  for (std::uint32_t i = 0; i < kPending; ++i) {
    q.schedule_at(0.01 * static_cast<double>(i), [&](double t) { resched(t); });
  }
  for (int i = 0; i < kWarmupPops; ++i) q.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.step());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventScheduleClosure)
    ->Arg(static_cast<int>(EventQueueBackend::kHeap))
    ->Arg(static_cast<int>(EventQueueBackend::kCalendar))
    ->Arg(static_cast<int>(EventQueueBackend::kWheel))
    ->Unit(benchmark::kNanosecond);

/// Cold bulk load: push kPending fresh events into an empty queue and drain
/// them — the shape of simulator start-up (every device's first check-in)
/// and of calendar resize storms.
void BM_EventBulkLoadDrain(benchmark::State& state) {
  const auto backend = static_cast<EventQueueBackend>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EventQueue q(backend);
    ReschedulerCtx ctx{&q};  // dispatch target only; never reschedules here
    q.set_dispatcher(
        [](void*, EventKind, std::uint32_t, std::uint32_t, double) {}, &ctx);
    state.ResumeTiming();
    seed_queue_pod(q);
    while (q.step()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * kPending);
}
BENCHMARK(BM_EventBulkLoadDrain)
    ->Arg(static_cast<int>(EventQueueBackend::kHeap))
    ->Arg(static_cast<int>(EventQueueBackend::kCalendar))
    ->Arg(static_cast<int>(EventQueueBackend::kWheel))
    ->Unit(benchmark::kMicrosecond);

}  // namespace
