// Figure 11 + Sec. 7.4 KS-test reproduction: distributions of participating
// clients (execution time and number of training examples) under SyncFL
// with over-selection, SyncFL without over-selection (the ground truth), and
// AsyncFL — plus the two-sample Kolmogorov-Smirnov tests.
//
// Paper result: over-selection drops the slowest clients, and the slowest
// clients have the most training examples, so SyncFL w/ OS is biased:
// KS D = 6.6e-2 (p = 0.0) vs the ground truth, while AsyncFL matches it:
// D = 8.8e-4 (p = 0.98).

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct Contributions {
  std::vector<double> exec_times;   // of clients whose update was applied
  std::vector<double> num_examples;
};

Contributions run(fl::TrainingMode mode, double over_selection,
                  std::size_t goal, std::uint64_t seed) {
  sim::SimulationConfig cfg = mode == fl::TrainingMode::kAsync
                                  ? async_config(130, 13, seed)
                                  : sync_config(goal, over_selection, seed);
  // The paper's AsyncFL rarely hits the staleness bound; at our scale the
  // slowest clients would cross max_staleness = 100 (steps are ~4 sim-s
  // apart), re-introducing a bias AsyncFL does not have in production.
  cfg.task.max_staleness = 1'000'000;
  // Production populations are ~100M devices and a device participates at
  // most once over an experiment (participation-history tracking, Sec. 4).
  // With a small re-participating pool, fast devices would contribute more
  // often under AsyncFL purely because they free their slot sooner — a
  // small-scale artifact, not the over-selection bias under study.  A large
  // pool + once-only participation removes it.
  cfg.population.num_devices = 20000;
  cfg.mean_checkin_interval_s = 60.0;
  cfg.eligibility.min_participation_interval_s = 1.0e9;
  cfg.max_applied_updates = 6000;
  cfg.max_sim_time_s = 4.0e6;
  cfg.eval_every_steps = 50;  // evaluation is irrelevant here
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();

  Contributions out;
  for (const auto& p : result.participations) {
    if (!p.update_applied) continue;
    out.exec_times.push_back(p.exec_time_s);
    out.num_examples.push_back(static_cast<double>(p.num_examples));
  }
  return out;
}

void print_hist(const char* title, std::span<const double> xs) {
  util::LogHistogram hist(0.5, 5000.0, 14);
  for (double x : xs) hist.add(x);
  std::printf("%s (n=%zu, mean=%.1f s)\n%s\n", title, xs.size(),
              util::mean(xs), hist.ascii(40).c_str());
}

}  // namespace

int main() {
  print_header("Figure 11 / Sec 7.4: sampling bias from over-selection");

  // Ground truth: SyncFL without over-selection accepts every completing
  // client, so its contribution distribution reflects the population.
  const Contributions truth =
      run(fl::TrainingMode::kSync, 0.0, /*goal=*/100, /*seed=*/7);
  const Contributions with_os =
      run(fl::TrainingMode::kSync, kOverSelection, /*goal=*/100, /*seed=*/7);
  const Contributions async_fl =
      run(fl::TrainingMode::kAsync, 0.0, /*goal=*/13, /*seed=*/7);

  print_hist("SyncFL w/o over-selection (ground truth), exec time",
             truth.exec_times);
  print_hist("SyncFL w/ 30% over-selection, exec time", with_os.exec_times);
  print_hist("AsyncFL, exec time", async_fl.exec_times);

  std::printf("mean #examples of contributing clients:\n");
  std::printf("  ground truth: %6.1f\n", util::mean(truth.num_examples));
  std::printf("  sync w/ OS:   %6.1f\n", util::mean(with_os.num_examples));
  std::printf("  async:        %6.1f\n\n", util::mean(async_fl.num_examples));

  const util::KsResult ks_async =
      util::ks_two_sample(async_fl.exec_times, truth.exec_times);
  const util::KsResult ks_os =
      util::ks_two_sample(with_os.exec_times, truth.exec_times);
  std::printf("KS test vs ground truth (execution time):\n");
  std::printf("  AsyncFL:    D = %.2e  p = %.3f   (paper: D = 8.8e-4, p = 0.98)\n",
              ks_async.d_statistic, ks_async.p_value);
  std::printf("  SyncFL OS:  D = %.2e  p = %.3f   (paper: D = 6.6e-2, p = 0.00)\n",
              ks_os.d_statistic, ks_os.p_value);

  const util::KsResult ks_async_ex =
      util::ks_two_sample(async_fl.num_examples, truth.num_examples);
  const util::KsResult ks_os_ex =
      util::ks_two_sample(with_os.num_examples, truth.num_examples);
  std::printf("KS test vs ground truth (#examples):\n");
  std::printf("  AsyncFL:    D = %.2e  p = %.3f\n", ks_async_ex.d_statistic,
              ks_async_ex.p_value);
  std::printf("  SyncFL OS:  D = %.2e  p = %.3f\n", ks_os_ex.d_statistic,
              ks_os_ex.p_value);

  std::printf(
      "\nExpected shape (paper): over-selection shifts the contributing "
      "distribution\ntoward fast clients (large D, p ~ 0) and away from "
      "data-rich clients;\nAsyncFL matches the ground truth (tiny D, large "
      "p).\n");
  return 0;
}
