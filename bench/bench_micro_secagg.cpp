// Microbenchmarks for the SecAgg building blocks: mask expansion, fixed-point
// encode, DH handshake, sealed-seed processing, Merkle proofs — plus the
// batch-size sweep over the server accept path (per-update
// SecureAggregationSession vs BatchedSecureAggregationSession).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "crypto/dh.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "secagg/attestation.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/otp.hpp"
#include "secagg/secagg_batch.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

void BM_MaskExpansion(benchmark::State& state) {
  secagg::Seed seed{};
  seed.fill(0x42);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::expand_mask(seed, n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 4));
}
BENCHMARK(BM_MaskExpansion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_MaskExpansionMulti(benchmark::State& state) {
  // Multi-stream expansion of `range(0)` seeds at the BM_MaskExpansion/65536
  // working size; compare ns/word against the scalar path.
  const auto n_seeds = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLength = 65536;
  std::vector<secagg::Seed> seeds(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) {
    seeds[i].fill(static_cast<std::uint8_t>(i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::expand_masks(seeds, kLength));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_seeds * kLength * 4));
}
BENCHMARK(BM_MaskExpansionMulti)->Arg(8)->Arg(32);

void BM_FixedPointEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 0.123f);
  const secagg::FixedPointParams fp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::encode(values, fp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FixedPointEncode)->Arg(1024)->Arg(65536);

void BM_DhHandshake256(benchmark::State& state) {
  const crypto::DhParams& params = crypto::DhParams::simulation256();
  const util::Bytes seed(32, 0x11);
  crypto::DhRandom random(seed);
  const crypto::DhKeyPair server = dh_generate(params, random);
  for (auto _ : state) {
    const crypto::DhKeyPair client = dh_generate(params, random);
    benchmark::DoNotOptimize(
        dh_shared_element(params, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_DhHandshake256);

void BM_DhHandshake1536(benchmark::State& state) {
  const crypto::DhParams& params = crypto::DhParams::rfc3526_1536();
  const util::Bytes seed(32, 0x11);
  crypto::DhRandom random(seed);
  const crypto::DhKeyPair server = dh_generate(params, random);
  for (auto _ : state) {
    const crypto::DhKeyPair client = dh_generate(params, random);
    benchmark::DoNotOptimize(
        dh_shared_element(params, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_DhHandshake1536);

void BM_Sha256(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Bytes data(n, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_MerkleInclusionProof(benchmark::State& state) {
  crypto::VerifiableLog log;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("binary-" + std::to_string(i));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.prove_inclusion(i++ % n));
  }
}
BENCHMARK(BM_MerkleInclusionProof)->Arg(64)->Arg(1024);

void BM_MerkleVerifyInclusion(benchmark::State& state) {
  crypto::VerifiableLog log;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("binary-" + std::to_string(i));
  }
  const auto proof = log.prove_inclusion(n / 2);
  const auto snap = log.snapshot();
  const std::string rec = "binary-" + std::to_string(n / 2);
  const auto leaf = crypto::VerifiableLog::leaf_hash(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(rec.data()), rec.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify_inclusion(leaf, proof, snap));
  }
}
BENCHMARK(BM_MerkleVerifyInclusion)->Arg(1024);

// ----------------------------------------------- Server accept batch sweep --
//
// The tentpole comparison: per-update SecureAggregationSession::accept vs
// BatchedSecureAggregationSession::accept_batch over the same contribution
// set, at the paper's model scale (2^20 group elements = a 4 MB masked
// update).  Per-contribution DH key recovery is inherent to the protocol in
// both paths; the batched path amortizes everything else (TSA crossing,
// mask expansion via the multi-stream ChaCha20 kernel, and the server fold,
// which becomes one cache-blocked reduction).  ns/update = real_time /
// items_per_second.

constexpr std::size_t kAcceptLength = 1 << 20;
constexpr std::size_t kAcceptContributions = 32;

struct AcceptWorld {
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  secagg::SimulatedEnclavePlatform platform{1};
  crypto::Digest binary = crypto::Sha256::hash(std::string("bench-tsa"));
  crypto::VerifiableLog log;
  secagg::SecAggParams params;
  secagg::FixedPointParams fp;
  std::uint64_t tsa_seed = 7;
  std::vector<secagg::ClientContribution> contributions;

  AcceptWorld() {
    params.vector_length = kAcceptLength;
    params.threshold = kAcceptContributions;
    fp = secagg::FixedPointParams::for_budget(1.0, kAcceptContributions);
    log.append(binary);
    const auto tsa = make_tsa();
    const secagg::QuoteExpectations expectations{params.hash(dh),
                                                 log.snapshot()};
    const auto proof = log.prove_inclusion(0);
    const std::vector<float> update(kAcceptLength, 0.01f);
    for (std::size_t c = 0; c < kAcceptContributions; ++c) {
      secagg::SecAggClient client(dh, fp, c);
      auto contribution = client.prepare_contribution(
          platform, expectations, tsa->initial_messages().at(c), proof,
          update);
      contributions.push_back(std::move(*contribution));
    }
  }

  /// A fresh TSA with the same enclave seed has identical DH keys, so the
  /// prepared contributions replay against every benchmark iteration.
  std::unique_ptr<secagg::TrustedSecureAggregator> make_tsa() const {
    return std::make_unique<secagg::TrustedSecureAggregator>(
        dh, params, kAcceptContributions, platform, binary, tsa_seed);
  }
};

const AcceptWorld& accept_world() {
  static const AcceptWorld* world = new AcceptWorld;
  return *world;
}

void BM_SecAggAcceptPerUpdate(benchmark::State& state) {
  const AcceptWorld& world = accept_world();
  for (auto _ : state) {
    state.PauseTiming();
    const auto tsa = world.make_tsa();
    secagg::SecureAggregationSession session(*tsa, kAcceptLength,
                                             kAcceptContributions);
    state.ResumeTiming();
    for (const auto& c : world.contributions) {
      benchmark::DoNotOptimize(session.accept(c));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAcceptContributions));
}
BENCHMARK(BM_SecAggAcceptPerUpdate)->Unit(benchmark::kMillisecond);

void BM_SecAggAcceptBatched(benchmark::State& state) {
  const AcceptWorld& world = accept_world();
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const auto tsa = world.make_tsa();
    secagg::BatchedSecureAggregationSession session(*tsa, kAcceptLength,
                                                    kAcceptContributions);
    state.ResumeTiming();
    for (std::size_t base = 0; base < world.contributions.size();
         base += batch_size) {
      const std::size_t n =
          std::min(batch_size, world.contributions.size() - base);
      benchmark::DoNotOptimize(session.accept_batch(
          {world.contributions.data() + base, n}));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAcceptContributions));
}
BENCHMARK(BM_SecAggAcceptBatched)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
