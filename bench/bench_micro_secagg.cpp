// Microbenchmarks for the SecAgg building blocks: mask expansion, fixed-point
// encode, DH handshake, sealed-seed processing, Merkle proofs.

#include <benchmark/benchmark.h>

#include "crypto/dh.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/otp.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

void BM_MaskExpansion(benchmark::State& state) {
  secagg::Seed seed{};
  seed.fill(0x42);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::expand_mask(seed, n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 4));
}
BENCHMARK(BM_MaskExpansion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_FixedPointEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 0.123f);
  const secagg::FixedPointParams fp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::encode(values, fp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FixedPointEncode)->Arg(1024)->Arg(65536);

void BM_DhHandshake256(benchmark::State& state) {
  const crypto::DhParams& params = crypto::DhParams::simulation256();
  const util::Bytes seed(32, 0x11);
  crypto::DhRandom random(seed);
  const crypto::DhKeyPair server = dh_generate(params, random);
  for (auto _ : state) {
    const crypto::DhKeyPair client = dh_generate(params, random);
    benchmark::DoNotOptimize(
        dh_shared_element(params, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_DhHandshake256);

void BM_DhHandshake1536(benchmark::State& state) {
  const crypto::DhParams& params = crypto::DhParams::rfc3526_1536();
  const util::Bytes seed(32, 0x11);
  crypto::DhRandom random(seed);
  const crypto::DhKeyPair server = dh_generate(params, random);
  for (auto _ : state) {
    const crypto::DhKeyPair client = dh_generate(params, random);
    benchmark::DoNotOptimize(
        dh_shared_element(params, client.private_key, server.public_key));
  }
}
BENCHMARK(BM_DhHandshake1536);

void BM_Sha256(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const util::Bytes data(n, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_MerkleInclusionProof(benchmark::State& state) {
  crypto::VerifiableLog log;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("binary-" + std::to_string(i));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.prove_inclusion(i++ % n));
  }
}
BENCHMARK(BM_MerkleInclusionProof)->Arg(64)->Arg(1024);

void BM_MerkleVerifyInclusion(benchmark::State& state) {
  crypto::VerifiableLog log;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("binary-" + std::to_string(i));
  }
  const auto proof = log.prove_inclusion(n / 2);
  const auto snap = log.snapshot();
  const std::string rec = "binary-" + std::to_string(n / 2);
  const auto leaf = crypto::VerifiableLog::leaf_hash(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(rec.data()), rec.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify_inclusion(leaf, proof, snap));
  }
}
BENCHMARK(BM_MerkleVerifyInclusion)->Arg(1024);

}  // namespace
