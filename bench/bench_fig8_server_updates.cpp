// Figure 8 reproduction: server model updates per hour as a function of
// concurrency, AsyncFL (fixed aggregation goal) vs SyncFL.
//
// Paper result: with K fixed at 100, AsyncFL's server-update rate grows
// nearly linearly with concurrency, reaching ~30x SyncFL's rate at
// concurrency 2300 (SyncFL's goal grows with its cohort, and each round
// waits on stragglers).  Scaled here: K = 13, concurrency 52 -> 416.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

double updates_per_hour(const sim::SimulationResult& result) {
  return static_cast<double>(result.server_steps) /
         sim_hours(result.end_time_s);
}

}  // namespace

int main() {
  print_header("Figure 8: server model updates per hour vs concurrency");
  std::printf("(AsyncFL aggregation goal fixed at 13 - scaled from the "
              "paper's 100)\n\n");
  std::printf("%-12s %-16s %-16s %-8s\n", "concurrency", "SyncFL upd/h",
              "AsyncFL upd/h", "ratio");

  const std::vector<std::size_t> concurrencies{52, 104, 208, 312, 416};
  for (const std::size_t concurrency : concurrencies) {
    sim::SimulationConfig async_cfg = async_config(concurrency, 13);
    async_cfg.max_server_steps = 400;
    async_cfg.max_sim_time_s = 1.0e6;
    async_cfg.record_participations = false;
    sim::FlSimulator async_sim(async_cfg);
    const auto async_result = async_sim.run();

    sim::SimulationConfig sync_cfg = sync_config(
        static_cast<std::size_t>(static_cast<double>(concurrency) /
                                 (1.0 + kOverSelection)),
        kOverSelection);
    sync_cfg.task.concurrency = concurrency;
    sync_cfg.max_server_steps = 15;
    sync_cfg.max_sim_time_s = 1.0e6;
    sync_cfg.record_participations = false;
    sim::FlSimulator sync_sim(sync_cfg);
    const auto sync_result = sync_sim.run();

    const double async_rate = updates_per_hour(async_result);
    const double sync_rate = updates_per_hour(sync_result);
    std::printf("%-12zu %-16.1f %-16.1f %-8.1f\n", concurrency, sync_rate,
                async_rate, async_rate / sync_rate);
  }
  std::printf(
      "\nExpected shape (paper): AsyncFL rate grows ~linearly with "
      "concurrency;\nSyncFL rate is ~flat (rounds are straggler-bound), "
      "giving a ratio that\ngrows toward ~30x at the top of the sweep.\n");
  return 0;
}
