// Figure 8 reproduction: server model updates per hour as a function of
// concurrency, AsyncFL (fixed aggregation goal) vs SyncFL.
//
// Paper result: with K fixed at 100, AsyncFL's server-update rate grows
// nearly linearly with concurrency, reaching ~30x SyncFL's rate at
// concurrency 2300 (SyncFL's goal grows with its cohort, and each round
// waits on stragglers).  Scaled here: K = 13, concurrency 52 -> 416.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

double updates_per_hour(const sim::SimulationResult& result) {
  return static_cast<double>(result.server_steps) /
         sim_hours(result.end_time_s);
}

}  // namespace

int main() {
  print_header("Figure 8: server model updates per hour vs concurrency");
  std::printf("(AsyncFL aggregation goal fixed at 13 - scaled from the "
              "paper's 100)\n\n");
  std::printf("%-12s %-16s %-16s %-8s\n", "concurrency", "SyncFL upd/h",
              "AsyncFL upd/h", "ratio");

  const std::vector<std::size_t> concurrencies{52, 104, 208, 312, 416};
  for (const std::size_t concurrency : concurrencies) {
    sim::SimulationConfig async_cfg = async_config(concurrency, 13);
    async_cfg.max_server_steps = 400;
    async_cfg.max_sim_time_s = 1.0e6;
    async_cfg.record_participations = false;
    sim::FlSimulator async_sim(async_cfg);
    const auto async_result = async_sim.run();

    sim::SimulationConfig sync_cfg = sync_config(
        static_cast<std::size_t>(static_cast<double>(concurrency) /
                                 (1.0 + kOverSelection)),
        kOverSelection);
    sync_cfg.task.concurrency = concurrency;
    sync_cfg.max_server_steps = 15;
    sync_cfg.max_sim_time_s = 1.0e6;
    sync_cfg.record_participations = false;
    sim::FlSimulator sync_sim(sync_cfg);
    const auto sync_result = sync_sim.run();

    const double async_rate = updates_per_hour(async_result);
    const double sync_rate = updates_per_hour(sync_result);
    std::printf("%-12zu %-16.1f %-16.1f %-8.1f\n", concurrency, sync_rate,
                async_rate, async_rate / sync_rate);
  }
  std::printf(
      "\nExpected shape (paper): AsyncFL rate grows ~linearly with "
      "concurrency;\nSyncFL rate is ~flat (rounds are straggler-bound), "
      "giving a ratio that\ngrows toward ~30x at the top of the sweep.\n");

  // Closed-loop column: with TaskConfig::closed_loop_clients the pipelined
  // arrival process drives the schedule, so the server-update rate reflects
  // the cadence a pipelined fleet sustains.  Constrained uplink + 1 KiB
  // chunks make the overlap material; both columns run per-entity streams
  // so each device draws identically and only the arrival timing differs.
  std::printf("\nClosed-loop column (AsyncFL K=13, uplink 0.005 Mbps, 1 KiB "
              "chunks):\n");
  std::printf("%-12s %-16s %-16s %-8s\n", "concurrency", "open-loop upd/h",
              "closed-loop upd/h", "delta");
  for (const std::size_t concurrency : {52UL, 104UL, 208UL}) {
    auto make_cfg = [&](bool closed_loop) {
      sim::SimulationConfig cfg = async_config(concurrency, 13);
      cfg.rng_streams = sim::RngStreamMode::kPerEntity;
      cfg.task.pipelined_clients = true;
      cfg.task.closed_loop_clients = closed_loop;
      cfg.network.mean_upload_mbps = 0.005;
      cfg.upload_chunk_bytes = 1024;
      cfg.max_server_steps = 150;
      cfg.max_sim_time_s = 1.0e6;
      cfg.record_participations = false;
      return cfg;
    };
    sim::FlSimulator open_sim(make_cfg(false));
    const auto open_result = open_sim.run();
    sim::FlSimulator closed_sim(make_cfg(true));
    const auto closed_result = closed_sim.run();
    const double open_rate = updates_per_hour(open_result);
    const double closed_rate = updates_per_hour(closed_result);
    std::printf("%-12zu %-16.1f %-16.1f %+.1f%%\n", concurrency, open_rate,
                closed_rate, 100.0 * (closed_rate / open_rate - 1.0));
  }
  std::printf("Expected shape: closed-loop rate is higher — overlapped "
              "uploads land earlier,\nso aggregation goals fill sooner at "
              "the same concurrency.\n");
  return 0;
}
