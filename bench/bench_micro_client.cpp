// Microbenchmarks for the pipelined client runtime (Sec. 6.1 stage
// overlap): the streaming chunk serializer vs the materialize-then-split
// path, and the full device-side pipelined round — stream-serialize a model
// update, drive the pipeline state machine, reassemble server-side.

#include <benchmark/benchmark.h>

#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/model_update.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

fl::ModelUpdate make_update(std::size_t model_size) {
  util::Rng rng(99);
  fl::ModelUpdate u;
  u.client_id = 1;
  u.initial_version = 7;
  u.num_examples = 20;
  u.delta.resize(model_size);
  for (auto& v : u.delta) v = static_cast<float>(rng.normal());
  return u;
}

/// Sequential baseline: materialize the full serialized update, then split.
void BM_SequentialSerializeAndChunk(benchmark::State& state) {
  const auto chunk_size = static_cast<std::size_t>(state.range(0));
  const fl::ModelUpdate update = make_update(65536);
  for (auto _ : state) {
    const util::Bytes serialized = update.serialize();
    benchmark::DoNotOptimize(fl::chunk_upload(1, serialized, chunk_size));
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(fl::serialized_update_bytes(65536)));
}
BENCHMARK(BM_SequentialSerializeAndChunk)
    ->Arg(4096)->Arg(65536)->Arg(1 << 20);

/// Streaming path: chunks emitted as soon as their bytes are serialized —
/// the CPU cost must stay comparable to the sequential baseline (the win is
/// latency overlap, not cycles).
void BM_StreamingSerializeAndChunk(benchmark::State& state) {
  const auto chunk_size = static_cast<std::size_t>(state.range(0));
  const fl::ModelUpdate update = make_update(65536);
  for (auto _ : state) {
    std::size_t chunks = 0;
    fl::stream_update_chunks(1, update, chunk_size, /*block_floats=*/1024,
                             [&](fl::UploadChunk chunk) {
                               benchmark::DoNotOptimize(chunk);
                               ++chunks;
                             });
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(fl::serialized_update_bytes(65536)));
}
BENCHMARK(BM_StreamingSerializeAndChunk)
    ->Arg(4096)->Arg(65536)->Arg(1 << 20);

/// One full pipelined client round, device side: stream-serialize a
/// 64k-param update into chunks, reassemble server-side (the simulator's
/// pipelined upload path), and run the pipeline state machine that
/// schedules the overlapped stages.  Sweeps the chunk size — smaller
/// chunks mean finer overlap granularity but more per-chunk work.
void BM_PipelinedClientRound(benchmark::State& state) {
  const auto chunk_size = static_cast<std::size_t>(state.range(0));
  const std::size_t model_size = 65536;
  const fl::ModelUpdate update = make_update(model_size);
  const std::uint64_t wire = fl::serialized_update_bytes(model_size);
  const std::uint32_t chunks = fl::chunk_count(wire, chunk_size);

  for (auto _ : state) {
    // Stage-timing plan (what the simulator computes per participation).
    fl::PipelineTimings timings;
    timings.train_s = 10.0;
    timings.serialize_chunk_s.assign(chunks, 1e-4);
    timings.upload_chunk_s.assign(chunks, 1e-2);
    fl::PipelinedClientSession pipeline(std::move(timings));
    benchmark::DoNotOptimize(pipeline.finish_time());

    // Byte-level path: stream chunks, reassemble, recover the update.
    fl::ChunkAssembler assembler(1);
    fl::stream_update_chunks(1, update, chunk_size, /*block_floats=*/1024,
                             [&](fl::UploadChunk chunk) {
                               assembler.accept(chunk);
                             });
    benchmark::DoNotOptimize(assembler.assemble());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire));
  state.counters["chunks"] = static_cast<double>(chunks);
}
BENCHMARK(BM_PipelinedClientRound)
    ->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
