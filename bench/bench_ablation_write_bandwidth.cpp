// Ablation: the server's write-bandwidth ceiling on model-update frequency
// (Sec. 7.3).
//
// The paper explains why aggregation goals below ~100 are not explored:
// "the frequency of server updates is limited by the system's write
// bandwidth.  Thus, we cannot create a new server model too often."  This
// bench drives the write-bandwidth-limited ModelStore with the server-step
// stream produced by an AsyncFL deployment at concurrency 1300 and shows,
// for each aggregation goal K, the demanded versus sustainable update rate
// and the fraction of steps that stall behind the store.

#include <algorithm>
#include <cstdio>

#include "fl/model_store.hpp"

namespace {

using namespace papaya;

// Fleet model: concurrency 1300, mean client execution time 120 s (Fig. 2's
// scale) -> ~10.8 client updates arriving per second; a 20 MB model.
constexpr double kUpdateArrivalsPerS = 1300.0 / 120.0;
constexpr std::size_t kModelBytes = 20 * 1000 * 1000;

struct Outcome {
  double demanded_per_h = 0.0;
  double achieved_per_h = 0.0;
  double backlog_s = 0.0;  ///< store write queue remaining at the horizon
};

Outcome run(std::size_t aggregation_goal, double bandwidth_mb_per_s) {
  fl::ModelStore store({bandwidth_mb_per_s * 1000 * 1000, 0.050});

  const double step_interval_s =
      static_cast<double>(aggregation_goal) / kUpdateArrivalsPerS;
  constexpr double kHorizonS = 4 * 3600.0;

  std::uint64_t version = 0;
  for (double t = step_interval_s; t <= kHorizonS; t += step_interval_s) {
    (void)store.publish(++version, kModelBytes, t);
  }

  Outcome out;
  out.demanded_per_h = 3600.0 / step_interval_s;
  out.achieved_per_h =
      static_cast<double>(store.visible_version(kHorizonS)) / (kHorizonS /
                                                               3600.0);
  out.backlog_s = std::max(0.0, store.busy_until() - kHorizonS);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: write-bandwidth ceiling on server update rate (Sec. 7.3)\n");
  std::printf(
      "concurrency 1300, 20 MB model, 50 ms commit latency, 4 h horizon\n\n");

  for (const double bw : {5.0, 20.0, 100.0}) {
    std::printf("store bandwidth %.0f MB/s (min interval %.2f s):\n", bw,
                fl::ModelStore({bw * 1e6, 0.050})
                    .min_publish_interval_s(kModelBytes));
    std::printf("  %-6s %-16s %-16s %-14s\n", "K", "demanded (/h)",
                "achieved (/h)", "backlog at end");
    for (const std::size_t k : {10UL, 50UL, 100UL, 500UL, 1000UL}) {
      const Outcome o = run(k, bw);
      std::printf("  %-6zu %-16.0f %-16.0f %10.0f s\n", k, o.demanded_per_h,
                  o.achieved_per_h, o.backlog_s);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: at small K the demanded rate exceeds what the store\n"
      "can write and publishes stall (the reason the paper's Fig. 10 sweep\n"
      "starts at K = 100); at large K the store is idle and the achieved\n"
      "rate tracks the demanded rate.\n");
  return 0;
}
