// Ablation: the FedBuff update-weighting design choices (Sec. 3.1 /
// App. E.2) and the differential-privacy extension (Sec. 9 future work).
//
//  1. Staleness down-weighting w = 1/sqrt(1+s): without it, stale updates
//     drag the model toward outdated directions; convergence to the target
//     slows or destabilizes at high concurrency/K ratios.
//  2. Example-count weighting: without it, data-poor clients get equal say
//     and the effective batch the server sees is noisier.
//  3. Central DP (clip + Gaussian noise): quantifies the accuracy cost of
//     increasing noise multipliers at a fixed update budget.

#include <cstdio>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

double time_to_target(sim::SimulationConfig cfg) {
  cfg.target_loss = kTargetLoss;
  cfg.max_sim_time_s = 2.0e6;
  // Hard cap so a non-converging ablation arm terminates quickly.
  cfg.max_applied_updates = 25000;
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();
  return result.reached_target ? sim_hours(result.time_to_target_s) : -1.0;
}

double loss_after_budget(sim::SimulationConfig cfg, std::uint64_t budget) {
  cfg.max_applied_updates = budget;
  cfg.max_sim_time_s = 2.0e6;
  cfg.record_participations = false;
  cfg.eval_every_steps = 50;
  sim::FlSimulator simulator(cfg);
  return simulator.run().final_eval_loss;
}

}  // namespace

int main() {
  print_header("Ablation: FedBuff weighting and the DP extension");

  // High-staleness regime: concurrency >> K so staleness matters.
  std::printf("\n[1] staleness down-weighting (concurrency 208, K 13):\n");
  for (const bool on : {true, false}) {
    sim::SimulationConfig cfg = async_config(208, 13);
    cfg.task.staleness_weighting = on;
    const double h = time_to_target(cfg);
    if (h < 0) {
      std::printf("  staleness weighting %-3s -> target not reached\n",
                  on ? "on" : "off");
    } else {
      std::printf("  staleness weighting %-3s -> time to target %.3f h\n",
                  on ? "on" : "off", h);
    }
  }

  std::printf("\n[2] example-count weighting (concurrency 104, K 13):\n");
  for (const bool on : {true, false}) {
    sim::SimulationConfig cfg = async_config(104, 13);
    cfg.task.example_weighting = on;
    const double h = time_to_target(cfg);
    if (h < 0) {
      std::printf("  example weighting %-3s -> target not reached\n",
                  on ? "on" : "off");
    } else {
      std::printf("  example weighting %-3s -> time to target %.3f h\n",
                  on ? "on" : "off", h);
    }
  }

  // Staleness *scheme* family (App. E.2 note: the paper's inverse-sqrt is
  // one member of the Xie et al. 2019 family).
  std::printf("\n[2b] staleness scheme (concurrency 208, K 13):\n");
  struct SchemeArm {
    fl::StalenessScheme scheme;
    fl::StalenessParams params;
    const char* label;
  };
  const SchemeArm arms[] = {
      {fl::StalenessScheme::kInverseSqrt, {}, "inverse-sqrt (paper)"},
      {fl::StalenessScheme::kConstant, {}, "constant"},
      {fl::StalenessScheme::kInversePoly, {.exponent = 1.0}, "poly a=1.0"},
      {fl::StalenessScheme::kHinge,
       {.hinge_cutoff = 4, .hinge_slope = 0.5},
       "hinge b=4"},
  };
  for (const SchemeArm& arm : arms) {
    sim::SimulationConfig cfg = async_config(208, 13);
    cfg.task.staleness_scheme = arm.scheme;
    cfg.task.staleness_params = arm.params;
    const double h = time_to_target(cfg);
    if (h < 0) {
      std::printf("  %-22s -> target not reached\n", arm.label);
    } else {
      std::printf("  %-22s -> time to target %.3f h\n", arm.label, h);
    }
  }

  std::printf("\n[3] central DP at a 3000-update budget (concurrency 104, "
              "K 13, clip 5.0):\n");
  for (const float noise : {0.0f, 0.01f, 0.05f, 0.2f}) {
    sim::SimulationConfig cfg = async_config(104, 13);
    cfg.task.dp.enabled = true;
    cfg.task.dp.clip_norm = 5.0f;
    cfg.task.dp.noise_multiplier = noise;
    const double loss = loss_after_budget(cfg, 3000);
    std::printf("  noise multiplier %.2f -> eval loss %.4f\n", noise, loss);
  }

  std::printf(
      "\nExpected: staleness weighting off destabilizes convergence at high\n"
      "concurrency/K (the FedBuff design choice this system depends on).\n"
      "Example weighting is data-dependent: on this synthetic corpus every\n"
      "client's examples are equally informative, so it buys little — its\n"
      "value in the paper comes from real keyboard data where volume tracks\n"
      "quality.  DP loss grows with the noise multiplier (privacy-utility\n"
      "trade-off); very small multipliers can even regularize.  Among the\n"
      "staleness schemes, anything that down-weights stale updates converges;\n"
      "constant weighting (no down-weighting) destabilizes — the ordering the\n"
      "FedBuff analysis predicts.\n");
  return 0;
}
