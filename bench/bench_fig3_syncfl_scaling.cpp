// Figure 3 reproduction: the scaling limit of SyncFL.  Training time to a
// target loss and communication trips as concurrency grows (with 30%
// over-selection, FedAdam on the server).
//
// Paper result (concurrency 130 -> 2600; scaled here to 13 -> 208):
//  (top)    training time drops quickly at first, then plateaus —
//           large-cohort diminishing returns;
//  (bottom) communication trips (client updates received) keep growing —
//           e.g. doubling concurrency 1300 -> 2600 cut time only 17% while
//           raising communication 73%.

#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  print_header("Figure 3: SyncFL scaling limit (30% over-selection)");
  std::printf("%-12s %-8s %-20s %-14s %-10s\n", "concurrency", "goal",
              "training time (h)", "comm trips", "reached");

  double prev_time = 0.0;
  std::uint64_t prev_trips = 0;
  const std::vector<std::size_t> goals{10, 20, 40, 80, 160};
  for (const std::size_t goal : goals) {
    sim::SimulationConfig cfg = sync_config(goal, kOverSelection);
    apply_scaling_noise(cfg);
    cfg.target_loss = kScalingTargetLoss;
    cfg.max_sim_time_s = 2.0e6;
    cfg.record_participations = false;
    sim::FlSimulator simulator(cfg);
    const sim::SimulationResult result = simulator.run();

    std::printf("%-12zu %-8zu %-20.3f %-14llu %-10s", cfg.task.concurrency,
                goal, sim_hours(result.time_to_target_s),
                static_cast<unsigned long long>(result.comm_trips),
                result.reached_target ? "yes" : "NO");
    if (prev_time > 0.0) {
      std::printf("  (time %+.0f%%, comm %+.0f%%)",
                  100.0 * (result.time_to_target_s / 3600.0 - prev_time) /
                      prev_time,
                  100.0 * (static_cast<double>(result.comm_trips) -
                           static_cast<double>(prev_trips)) /
                      static_cast<double>(prev_trips));
    }
    std::printf("\n");
    prev_time = sim_hours(result.time_to_target_s);
    prev_trips = result.comm_trips;
  }
  std::printf(
      "\nExpected shape (paper): time falls then plateaus while trips keep\n"
      "growing roughly linearly in concurrency — the motivation for "
      "AsyncFL.\n");
  return 0;
}
