// Microbenchmarks for the server aggregation path (Sec. 6.3): parallel model
// aggregation throughput vs worker count, update (de)serialization, FedAdam
// server steps, and local-training cost per client.

#include <benchmark/benchmark.h>

#include "fl/agg_strategy.hpp"
#include "fl/client_runtime.hpp"
#include "fl/model_update.hpp"
#include "fl/parallel_agg.hpp"
#include "fl/sharded_agg.hpp"
#include "ml/dataset.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

util::Bytes serialized_update(std::size_t model_size) {
  fl::ModelUpdate u;
  u.client_id = 1;
  u.num_examples = 20;
  u.delta.assign(model_size, 0.01f);
  return u.serialize();
}

void BM_UpdateSerialize(benchmark::State& state) {
  fl::ModelUpdate u;
  u.delta.assign(static_cast<std::size_t>(state.range(0)), 0.01f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.serialize());
  }
}
BENCHMARK(BM_UpdateSerialize)->Arg(1024)->Arg(65536);

void BM_UpdateDeserialize(benchmark::State& state) {
  const util::Bytes bytes =
      serialized_update(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::ModelUpdate::deserialize(bytes));
  }
}
BENCHMARK(BM_UpdateDeserialize)->Arg(1024)->Arg(65536);

/// Parallel aggregation throughput: 512 updates of a 64k-param model, with
/// 1/2/4/8 worker threads (Sec. 6.3's hashed-intermediate design).
void BM_ParallelAggregation(benchmark::State& state) {
  const std::size_t model_size = 65536;
  const auto threads = static_cast<std::size_t>(state.range(0));
  const util::Bytes update = serialized_update(model_size);
  for (auto _ : state) {
    fl::ParallelAggregator agg(model_size, threads, threads);
    for (int i = 0; i < 512; ++i) agg.enqueue(update, 1.0);
    benchmark::DoNotOptimize(agg.reduce_and_reset());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ParallelAggregation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Sharded aggregation scaling: the same 512-update workload, with client
/// update streams consistent-hashed across 1/2/4/8 single-worker shards.
/// Each shard owns its own queue + pool + intermediates, so throughput
/// scales with the shard count instead of saturating one reduce loop.
/// Runs under the adaptive (`auto`) strategy — the TaskConfig default —
/// so the --compare gate in scripts/bench.sh tracks what production sees.
void sharded_aggregation(benchmark::State& state, fl::AggStrategy strategy,
                         std::size_t shards, std::size_t model_size,
                         std::size_t num_updates) {
  const util::Bytes update = serialized_update(model_size);
  for (auto _ : state) {
    fl::ShardedAggregator::Config cfg;
    cfg.model_size = model_size;
    cfg.num_shards = shards;
    cfg.threads_per_shard = 1;
    cfg.strategy = strategy;
    fl::ShardedAggregator agg(cfg);
    for (std::uint64_t i = 0; i < num_updates; ++i) {
      agg.enqueue(/*stream_key=*/i, update, 1.0);
    }
    benchmark::DoNotOptimize(agg.reduce_and_reset());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(num_updates));
}

void BM_ShardedAggregation(benchmark::State& state) {
  sharded_aggregation(state, fl::AggStrategy::kAuto,
                      static_cast<std::size_t>(state.range(0)),
                      /*model_size=*/65536, /*num_updates=*/512);
}
BENCHMARK(BM_ShardedAggregation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Forced-strategy sweep at the 8-shard point (informational — lets a
/// --compare run show where the adaptive picker sits between the locked
/// baseline and each specialised backend).
void BM_ShardedAggregationForced(benchmark::State& state) {
  sharded_aggregation(state, static_cast<fl::AggStrategy>(state.range(0)),
                      /*shards=*/8, /*model_size=*/65536, /*num_updates=*/512);
}
BENCHMARK(BM_ShardedAggregationForced)
    ->Arg(static_cast<int>(fl::AggStrategy::kLocked))
    ->Arg(static_cast<int>(fl::AggStrategy::kMorsel))
    ->Arg(static_cast<int>(fl::AggStrategy::kStriped))
    ->Unit(benchmark::kMillisecond);

/// Adversarial update-size shapes per strategy: many small updates (the
/// striped backend's home turf, the morsel backend's worst case) and few
/// large ones (vice versa).  Arg encoding: range(0) = 0 small / 1 large,
/// range(1) = strategy.  The bench.sh --compare gate asserts `auto` stays
/// within 10% of the locked baseline on BOTH shapes (graceful degradation:
/// the picker must not choose a backend that loses to doing nothing).
void BM_AggregationSkew(benchmark::State& state) {
  const bool large = state.range(0) != 0;
  const std::size_t model_size = large ? 65536 : 256;
  const std::size_t num_updates = large ? 24 : 192;
  sharded_aggregation(state, static_cast<fl::AggStrategy>(state.range(1)),
                      /*shards=*/2, model_size, num_updates);
}
BENCHMARK(BM_AggregationSkew)
    ->ArgsProduct({{0, 1},
                   {static_cast<int>(fl::AggStrategy::kAuto),
                    static_cast<int>(fl::AggStrategy::kLocked),
                    static_cast<int>(fl::AggStrategy::kMorsel),
                    static_cast<int>(fl::AggStrategy::kStriped)}})
    ->Unit(benchmark::kMicrosecond);

void BM_FedAdamStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ml::FedAdam opt(n, {});
  std::vector<float> params(n, 0.0f), delta(n, 0.01f);
  for (auto _ : state) {
    opt.step(params, delta);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FedAdamStep)->Arg(65536)->Unit(benchmark::kMicrosecond);

/// One client participation's local-training cost (MLP vs LSTM).
template <typename Factory>
void local_training(benchmark::State& state, Factory factory) {
  ml::LmConfig mcfg;
  mcfg.vocab_size = 64;
  mcfg.embed_dim = 12;
  mcfg.hidden_dim = 24;
  mcfg.context = 2;
  util::Rng rng(1);
  auto model = factory(mcfg, rng);
  const std::vector<float> global(model->params().begin(),
                                  model->params().end());
  ml::CorpusConfig ccfg;
  ml::FederatedCorpus corpus(ccfg, 2);
  fl::ExampleStore store(corpus.client_dataset(0, 24), 1000);
  fl::TrainerConfig tcfg;
  tcfg.compute_losses = false;
  const fl::Executor executor(model->clone(), tcfg);
  util::Rng train_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.train(global, 0, 1, store, train_rng));
  }
}
void BM_LocalTrainingMlp(benchmark::State& state) {
  local_training(state, ml::make_mlp_lm);
}
void BM_LocalTrainingLstm(benchmark::State& state) {
  local_training(state, ml::make_lstm_lm);
}
BENCHMARK(BM_LocalTrainingMlp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LocalTrainingLstm)->Unit(benchmark::kMillisecond);

}  // namespace
