// Figures 12 + 13 companion: training curves for the four configurations the
// paper uses to decompose AsyncFL's advantage (all at max concurrency 130,
// scaled from 1300):
//   AsyncFL K=13    - frequent steps + straggler-resilient + unbiased
//   AsyncFL K=100   - infrequent steps (removes the frequent-update edge)
//   SyncFL  w/  OS  - adds sampling bias (goal 100, 30% over-selection)
//   SyncFL  w/o OS  - adds straggler stalls (concurrency = goal = 100)
//
// Paper result: each property removed costs training speed; comparing curves
// at a fixed time shows ~half the speedup comes from frequent steps and the
// rest from avoiding sampling bias / stragglers.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace papaya;
using namespace papaya::bench;

struct Curve {
  const char* name;
  sim::TimeSeries series;
  double end_time;
};

Curve run(const char* name, sim::SimulationConfig cfg, double horizon) {
  cfg.max_sim_time_s = horizon;
  cfg.target_loss = 0.0;  // run the full horizon
  cfg.record_participations = false;
  sim::FlSimulator simulator(cfg);
  sim::SimulationResult result = simulator.run();
  return {name, std::move(result.loss_curve), result.end_time_s};
}

}  // namespace

int main() {
  print_header("Figure 12: training curves for four FL configurations");
  // Horizon covers the pre-convergence region the paper's figure shows; past
  // it AsyncFL K=13 sits at its (slightly noisier) staleness floor while
  // K=100 keeps descending, which is the Sec. 7.3 stability observation.
  const double horizon = 4200.0;  // sim seconds

  std::vector<Curve> curves;
  {
    sim::SimulationConfig cfg = async_config(130, 13);
    curves.push_back(run("AsyncFL K=13", cfg, horizon));
  }
  {
    sim::SimulationConfig cfg = async_config(130, 100);
    cfg.eval_every_steps = 1;
    curves.push_back(run("AsyncFL K=100", cfg, horizon));
  }
  {
    sim::SimulationConfig cfg = sync_config(100, kOverSelection);
    curves.push_back(run("SyncFL w/ OS", cfg, horizon));
  }
  {
    sim::SimulationConfig cfg = sync_config(100, 0.0);
    curves.push_back(run("SyncFL w/o OS", cfg, horizon));
  }

  std::printf("%-10s", "time (s)");
  for (const Curve& c : curves) std::printf(" %-14s", c.name);
  std::printf("\n");
  const int samples = 24;
  for (int i = 1; i <= samples; ++i) {
    const double t = horizon * i / samples;
    std::printf("%-10.0f", t);
    for (const Curve& c : curves) {
      const double v = c.series.value_at(t);
      if (std::isnan(v)) {
        std::printf(" %-14s", "-");
      } else {
        std::printf(" %-14.4f", v);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected ordering at any fixed time (paper): AsyncFL K=13 lowest "
      "loss,\nthen AsyncFL K=100 (less frequent steps), then SyncFL w/ OS "
      "(adds bias),\nthen SyncFL w/o OS (stragglers stall rounds).\n");
  return 0;
}
