// Figure 9 reproduction: wall-clock time to reach a target loss, AsyncFL
// speedup over SyncFL, and communication trips, as concurrency scales.
//
// Paper result (concurrency 130 -> 2600, scaled here to 13 -> 260+):
//  - AsyncFL reaches the target 2x-5x faster, the gap widening with
//    concurrency;
//  - AsyncFL's communication-trip count stays nearly flat while SyncFL's
//    grows, for a 2x-8x efficiency gap at high concurrency.
// AsyncFL uses a fixed aggregation goal (paper: K=100; scaled: K=13);
// SyncFL uses 30% over-selection (goal = concurrency / 1.3).

// CI determinism hooks (scripts/check_determinism.sh):
//   PAPAYA_FIG9_EXPORT=path  append every loss-curve point (full precision)
//                            to `path` so runs can be byte-diffed;
//   PAPAYA_FIG9_PIPELINED=1  toggle task.pipelined_clients (observational:
//                            the exported trajectories must not change);
//   PAPAYA_FIG9_QUICK=1      first two concurrencies only (CI budget).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.hpp"

namespace {

void export_curve(std::FILE* out, const char* mode, std::size_t concurrency,
                  const papaya::sim::SimulationResult& result) {
  if (out == nullptr) return;
  for (std::size_t i = 0; i < result.loss_curve.size(); ++i) {
    std::fprintf(out, "%s,%zu,%.17g,%.17g\n", mode, concurrency,
                 result.loss_curve.times[i], result.loss_curve.values[i]);
  }
}

}  // namespace

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  const char* export_path = std::getenv("PAPAYA_FIG9_EXPORT");
  std::FILE* export_file =
      export_path != nullptr ? std::fopen(export_path, "w") : nullptr;
  if (export_path != nullptr && export_file == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for export\n", export_path);
    return 1;
  }
  const bool pipelined = std::getenv("PAPAYA_FIG9_PIPELINED") != nullptr;
  const bool quick = std::getenv("PAPAYA_FIG9_QUICK") != nullptr;

  print_header("Figure 9: time-to-target-loss and communication trips vs concurrency");
  std::printf("target loss: %.2f (scaled stand-in for the paper's target)\n\n",
              kTargetLoss);
  std::printf("%-12s %-14s %-14s %-9s %-14s %-14s %-10s\n", "concurrency",
              "sync (h)", "async (h)", "speedup", "sync trips", "async trips",
              "trip ratio");

  std::vector<std::size_t> concurrencies{26, 52, 104, 208, 416};
  if (quick) concurrencies.resize(2);
  for (const std::size_t concurrency : concurrencies) {
    // SyncFL with 30% over-selection: goal = concurrency / 1.3.
    const auto goal = static_cast<std::size_t>(
        static_cast<double>(concurrency) / (1.0 + kOverSelection) + 0.5);
    sim::SimulationConfig sync_cfg = sync_config(goal, kOverSelection);
    sync_cfg.task.concurrency = concurrency;
    sync_cfg.task.pipelined_clients = pipelined;
    sync_cfg.target_loss = kTargetLoss;
    sync_cfg.max_sim_time_s = 4.0e5;
    sync_cfg.record_participations = false;
    sim::FlSimulator sync_sim(sync_cfg);
    const sim::SimulationResult sync_result = sync_sim.run();
    export_curve(export_file, "sync", concurrency, sync_result);

    // AsyncFL aggregation goal: ~12.5% of concurrency, floored at 13
    // (Sec. 7.1: "choosing K to be 10-30% of concurrency works well in
    // practice").  Unlike the paper's Fig. 9 (K fixed at 100 up to
    // concurrency 2600), a fixed tiny K destabilizes our miniature task at
    // the top of the sweep — staleness grows with concurrency/K.
    const std::size_t async_goal = std::max<std::size_t>(13, concurrency / 8);
    sim::SimulationConfig async_cfg = async_config(concurrency, async_goal);
    async_cfg.task.pipelined_clients = pipelined;
    async_cfg.target_loss = kTargetLoss;
    async_cfg.max_sim_time_s = 4.0e5;
    async_cfg.record_participations = false;
    sim::FlSimulator async_sim(async_cfg);
    const sim::SimulationResult async_result = async_sim.run();
    export_curve(export_file, "async", concurrency, async_result);

    const double sync_h = sim_hours(sync_result.time_to_target_s);
    const double async_h = sim_hours(async_result.time_to_target_s);
    std::printf("%-12zu %-14.2f %-14.2f %-9.2f %-14llu %-14llu %-10.2f\n",
                concurrency, sync_h, async_h, sync_h / async_h,
                static_cast<unsigned long long>(sync_result.comm_trips),
                static_cast<unsigned long long>(async_result.comm_trips),
                static_cast<double>(sync_result.comm_trips) /
                    static_cast<double>(async_result.comm_trips));
    if (!sync_result.reached_target || !async_result.reached_target) {
      std::printf("  (warning: target not reached within the time cap: "
                  "sync=%d async=%d)\n",
                  sync_result.reached_target, async_result.reached_target);
    }
  }

  std::printf(
      "\nExpected shape (paper Fig. 9): speedup grows with concurrency "
      "(2x -> 5x);\nasync trips ~flat while sync trips grow (ratio 2x -> "
      "8x).\n");
  if (export_file != nullptr) std::fclose(export_file);
  return 0;
}
