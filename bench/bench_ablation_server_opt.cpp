// Ablation: server optimizer choice (Reddi et al. 2020's FedOpt family).
//
// The paper fixes SGD on the client and FedAdam on the server (Sec. 7.1).
// This ablation re-runs the same AsyncFL workload with every member of the
// family — FedSGD, FedAvgM, FedAdagrad, FedAdam, FedYogi — to show why an
// adaptive server optimizer is the production choice: adaptive members reach
// the target loss in comparable time, while plain FedSGD at the same server
// learning rate converges more slowly.

#include <cstdio>

#include "common.hpp"
#include "ml/optimizer.hpp"

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  print_header(
      "Ablation: server optimizer (AsyncFL, concurrency 130, K = 13)");
  std::printf("%-12s %-18s %-14s %-10s\n", "optimizer", "time to target (h)",
              "final loss", "reached");

  const ml::ServerOptimizerKind kinds[] = {
      ml::ServerOptimizerKind::kFedSgd, ml::ServerOptimizerKind::kFedAvgM,
      ml::ServerOptimizerKind::kFedAdagrad, ml::ServerOptimizerKind::kFedAdam,
      ml::ServerOptimizerKind::kFedYogi};

  for (const auto kind : kinds) {
    sim::SimulationConfig cfg = async_config(130, 13);
    cfg.task.name = std::string("lm-") + ml::to_string(kind);
    cfg.server_opt.kind = kind;
    // One server lr for the whole family; adaptivity (not tuning) should
    // carry the adaptive members.
    cfg.server_opt.lr = 0.05f;
    cfg.target_loss = kTargetLoss;
    cfg.max_sim_time_s = 1.0e6;
    cfg.record_participations = false;
    cfg.trainer.compute_losses = true;

    sim::FlSimulator simulator(cfg);
    const sim::SimulationResult result = simulator.run();
    std::printf("%-12s %-18.2f %-14.4f %-10s\n", ml::to_string(kind),
                sim_hours(result.time_to_target_s), result.final_eval_loss,
                result.reached_target ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape: the adaptive members (FedAdagrad/FedAdam/FedYogi) "
      "reach\nthe target at similar speed; FedSGD at the same lr lags — the "
      "reason the\npaper's production setup uses FedAdam on the server.\n");
  return 0;
}
