#pragma once
// Shared experiment configuration for the figure/table reproduction benches.
//
// Scaling relative to the paper (see DESIGN.md and EXPERIMENTS.md): the
// paper's production runs use ~100M devices and concurrency 130-2600; this
// harness scales concurrency by ~1/10 (13-532), the device pool to a few
// thousand simulated devices, and the LSTM LM to a small MLP LM, so each
// configuration runs in seconds on one machine.  All comparisons are within
// the same simulated clock, so ratios/shapes are preserved.

#include <cstdio>
#include <string>

#include "sim/fl_simulator.hpp"

namespace papaya::bench {

/// The scaled stand-in for the paper's "target loss" (Figs. 3, 9, 10, 13).
inline constexpr double kTargetLoss = 3.35;

/// Paper-style over-selection factor (Bonawitz et al. 2019).
inline constexpr double kOverSelection = 0.30;

/// Baseline simulation config shared by all experiments.
inline sim::SimulationConfig base_config(std::uint64_t seed = 7) {
  sim::SimulationConfig cfg;
  cfg.task.name = "next-word-lm";
  cfg.task.client_timeout_s = 240.0;  // the paper's 4-minute timeout
  cfg.task.max_staleness = 100;

  cfg.population.seed = seed;
  cfg.corpus.vocab_size = 64;
  cfg.model.vocab_size = 64;
  cfg.model.embed_dim = 12;
  cfg.model.hidden_dim = 24;
  cfg.model.context = 2;
  cfg.model_kind = sim::ModelKind::kMlp;

  cfg.trainer.learning_rate = 0.3f;
  cfg.trainer.batch_size = 32;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;

  cfg.eval_set_size = 150;
  cfg.seed = seed;
  return cfg;
}

/// AsyncFL (FedBuff) config: aggregation goal K independent of concurrency.
inline sim::SimulationConfig async_config(std::size_t concurrency,
                                          std::size_t aggregation_goal,
                                          std::uint64_t seed = 7) {
  sim::SimulationConfig cfg = base_config(seed);
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = concurrency;
  cfg.task.aggregation_goal = aggregation_goal;
  cfg.population.num_devices = std::max<std::size_t>(6 * concurrency, 600);
  cfg.eval_every_steps = 5;
  return cfg;
}

/// SyncFL config.  `over_selection` > 0 sets concurrency = goal * (1 + o).
inline sim::SimulationConfig sync_config(std::size_t aggregation_goal,
                                         double over_selection,
                                         std::uint64_t seed = 7) {
  sim::SimulationConfig cfg = base_config(seed);
  cfg.task.mode = fl::TrainingMode::kSync;
  cfg.task.aggregation_goal = aggregation_goal;
  cfg.task.concurrency =
      fl::TaskConfig::over_selected_cohort(aggregation_goal, over_selection);
  cfg.population.num_devices =
      std::max<std::size_t>(6 * cfg.task.concurrency, 600);
  cfg.eval_every_steps = 1;  // sync steps are rare; evaluate each one
  return cfg;
}

/// Overrides for the *scaling* experiments (Figs. 3 and 9).  The paper's
/// large-cohort effect — bigger cohorts reduce gradient variance, with
/// diminishing returns — only shows when per-client updates are noisy
/// relative to the signal.  At miniature scale that requires clients with
/// very little local data (1-6 sequences), fully non-IID topics, and larger
/// client/server steps; otherwise even tiny cohorts average away the noise
/// and SyncFL's curve is flat from the start.
inline void apply_scaling_noise(sim::SimulationConfig& cfg) {
  cfg.population.min_examples = 1;
  cfg.population.max_examples = 6;
  cfg.corpus.topics_per_client = 1;
  cfg.trainer.learning_rate = 0.6f;
  cfg.server_opt.lr = 0.12f;
}

/// Target loss used with apply_scaling_noise (the noisier task converges to
/// a different floor than the default config).
inline constexpr double kScalingTargetLoss = 3.30;

/// Convert simulated seconds to "hours" for paper-style reporting.
inline double sim_hours(double seconds) { return seconds / 3600.0; }

inline void print_header(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '-').c_str());
}

}  // namespace papaya::bench
