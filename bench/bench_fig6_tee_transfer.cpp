// Figure 6 reproduction: data transfer time across the host->TEE boundary as
// a function of the aggregation goal K, for a 20 MB model.
//
// Paper result: naive TEE aggregation transfers O(K*m) bytes (~650 ms at
// K=100, ~6500 ms at K=1000), while AsyncSecAgg transfers only a 16-byte
// seed (plus DH material) per client — O(K + m) — so its cost is nearly flat
// in K.  We meter actual protocol messages and apply the calibrated boundary
// cost model.

#include <cstdio>

#include "secagg/boundary.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"
#include "util/rng.hpp"

namespace {

using namespace papaya;

// 20 MB model = 5M float32 parameters.  The boundary byte counts we meter
// scale exactly linearly in the vector length, so we measure with a smaller
// vector and scale the *per-update masked payload* analytically to 20 MB —
// the protocol messages that actually cross the TEE boundary (seeds, DH
// completing messages) are measured at full fidelity.
constexpr std::size_t kMeasuredLength = 4096;
constexpr double kTargetModelBytes = 20.0 * 1000 * 1000;
constexpr double kScale =
    kTargetModelBytes / (kMeasuredLength * sizeof(std::uint32_t));

double async_secagg_transfer_ms(std::size_t k) {
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(1);
  const crypto::Digest binary = crypto::Sha256::hash(std::string("tsa"));
  crypto::VerifiableLog log;
  log.append(binary);

  secagg::SecAggParams params;
  params.vector_length = kMeasuredLength;
  params.threshold = k;
  const auto fp = secagg::FixedPointParams::for_budget(1.0, k);

  secagg::TrustedSecureAggregator tsa(dh, params, k, platform, binary, 7);
  const secagg::QuoteExpectations expectations{params.hash(dh), log.snapshot()};
  secagg::SecureAggregationSession session(tsa, kMeasuredLength, k);

  const std::vector<float> update(kMeasuredLength, 0.01f);
  const auto proof = log.prove_inclusion(0);
  for (std::size_t c = 0; c < k; ++c) {
    secagg::SecAggClient client(dh, fp, c);
    const auto contribution = client.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(c), proof, update);
    if (!contribution) {
      std::fprintf(stderr, "client %zu aborted unexpectedly\n", c);
      return -1.0;
    }
    session.accept(*contribution);
  }
  (void)session.finalize();

  // In AsyncSecAgg only the seeds + completing messages + the single
  // unmasking vector cross the boundary; the masked model stays host-side.
  // The unmasking vector is m group elements — scale it to the 20 MB model.
  const secagg::BoundaryMeter& meter = tsa.boundary();
  secagg::BoundaryMeter scaled;
  const auto unmask_bytes =
      static_cast<std::uint64_t>(kMeasuredLength * sizeof(std::uint32_t));
  const std::uint64_t seed_bytes = meter.total_bytes() - unmask_bytes;
  scaled.record_call(seed_bytes,
                     static_cast<std::uint64_t>(unmask_bytes * kScale));
  // Restore the per-call count (one ecall per client + one release call).
  for (std::uint64_t i = 1; i < meter.calls(); ++i) scaled.record_call(0, 0);
  return secagg::BoundaryCostModel{}.transfer_time_ms(scaled);
}

double naive_tsa_transfer_ms(std::size_t k) {
  secagg::NaiveTeeAggregator naive(kMeasuredLength, k);
  const secagg::GroupVec update(kMeasuredLength, 1u);
  for (std::size_t c = 0; c < k; ++c) naive.submit_update(update);
  (void)naive.release();

  const secagg::BoundaryMeter& meter = naive.boundary();
  secagg::BoundaryMeter scaled;
  scaled.record_call(static_cast<std::uint64_t>(
                         static_cast<double>(meter.bytes_in()) * kScale),
                     static_cast<std::uint64_t>(
                         static_cast<double>(meter.bytes_out()) * kScale));
  for (std::uint64_t i = 1; i < meter.calls(); ++i) scaled.record_call(0, 0);
  return secagg::BoundaryCostModel{}.transfer_time_ms(scaled);
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: host->TEE data transfer time vs aggregation goal (20 MB "
      "model)\n");
  std::printf("%-18s %-22s %-22s\n", "aggregation goal K", "Naive TSA (ms)",
              "AsyncSecAgg (ms)");
  for (const std::size_t k : {10UL, 50UL, 100UL, 500UL, 1000UL}) {
    const double naive_ms = naive_tsa_transfer_ms(k);
    const double async_ms = async_secagg_transfer_ms(k);
    std::printf("%-18zu %-22.1f %-22.2f\n", k, naive_ms, async_ms);
  }
  std::printf(
      "\nExpected shape (paper): naive grows linearly in K (~650 ms at "
      "K=100,\n~6500 ms at K=1000); AsyncSecAgg stays nearly flat (seed "
      "traffic is\nO(K) 16-byte seeds + one O(m) unmask vector).\n");
  return 0;
}
