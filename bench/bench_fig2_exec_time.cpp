// Figure 2 reproduction: the distribution of client execution times across
// the fleet (log-scale histogram) and the gap between the mean SyncFL round
// duration and the mean client execution time.
//
// Paper result: per-client training time spans more than two orders of
// magnitude, and with concurrency = aggregation goal = 1000 the mean round
// duration is 21x the mean client execution time (the straggler effect).

#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  print_header("Figure 2: client execution time distribution (log-scale x)");

  // A large sampled fleet (the paper samples millions; we sample 200k).
  sim::PopulationConfig pop_cfg = base_config().population;
  pop_cfg.num_devices = 200000;
  const sim::DevicePopulation population(pop_cfg);

  std::vector<double> times;
  times.reserve(population.size());
  util::LogHistogram hist(0.5, 5000.0, 24);
  for (const auto& d : population.devices()) {
    times.push_back(d.mean_exec_time_s);
    hist.add(d.mean_exec_time_s);
  }
  std::printf("%s\n", hist.ascii(48).c_str());
  std::printf("exec time percentiles (s):  p1=%.1f  p50=%.1f  p99=%.1f  "
              "(p99/p1 = %.0fx)\n\n",
              util::percentile(times, 1.0), util::percentile(times, 50.0),
              util::percentile(times, 99.0),
              util::percentile(times, 99.0) / util::percentile(times, 1.0));

  // Straggler effect: SyncFL with concurrency == aggregation goal (no
  // over-selection), scaled from the paper's 1000 to 100.
  sim::SimulationConfig cfg = sync_config(/*goal=*/100, /*over_selection=*/0.0);
  cfg.max_server_steps = 12;
  cfg.max_sim_time_s = 1.0e6;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();

  std::vector<double> exec_times;
  for (const auto& p : result.participations) {
    if (!p.dropped_out) exec_times.push_back(p.exec_time_s);
  }
  const double mean_round =
      result.end_time_s / static_cast<double>(result.server_steps);
  const double mean_exec = util::mean(exec_times);
  std::printf("SyncFL, concurrency = goal = %zu (no over-selection):\n",
              cfg.task.concurrency);
  std::printf("  mean client execution time: %8.1f s\n", mean_exec);
  std::printf("  mean round duration:        %8.1f s\n", mean_round);
  std::printf("  ratio (paper: ~21x at concurrency 1000): %.1fx\n",
              mean_round / mean_exec);
  return 0;
}
