// Figure 2 reproduction: the distribution of client execution times across
// the fleet (log-scale histogram) and the gap between the mean SyncFL round
// duration and the mean client execution time.
//
// Paper result: per-client training time spans more than two orders of
// magnitude, and with concurrency = aggregation goal = 1000 the mean round
// duration is 21x the mean client execution time (the straggler effect).

#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace papaya;
  using namespace papaya::bench;

  print_header("Figure 2: client execution time distribution (log-scale x)");

  // A large sampled fleet (the paper samples millions; we sample 200k).
  sim::PopulationConfig pop_cfg = base_config().population;
  pop_cfg.num_devices = 200000;
  const sim::DevicePopulation population(pop_cfg);

  std::vector<double> times;
  times.reserve(population.size());
  util::LogHistogram hist(0.5, 5000.0, 24);
  for (const auto& d : population.devices()) {
    times.push_back(d.mean_exec_time_s);
    hist.add(d.mean_exec_time_s);
  }
  std::printf("%s\n", hist.ascii(48).c_str());
  std::printf("exec time percentiles (s):  p1=%.1f  p50=%.1f  p99=%.1f  "
              "(p99/p1 = %.0fx)\n\n",
              util::percentile(times, 1.0), util::percentile(times, 50.0),
              util::percentile(times, 99.0),
              util::percentile(times, 99.0) / util::percentile(times, 1.0));

  // Straggler effect: SyncFL with concurrency == aggregation goal (no
  // over-selection), scaled from the paper's 1000 to 100.
  sim::SimulationConfig cfg = sync_config(/*goal=*/100, /*over_selection=*/0.0);
  cfg.max_server_steps = 12;
  cfg.max_sim_time_s = 1.0e6;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();

  std::vector<double> exec_times;
  for (const auto& p : result.participations) {
    if (!p.dropped_out) exec_times.push_back(p.exec_time_s);
  }
  const double mean_round =
      result.end_time_s / static_cast<double>(result.server_steps);
  const double mean_exec = util::mean(exec_times);
  std::printf("SyncFL, concurrency = goal = %zu (no over-selection):\n",
              cfg.task.concurrency);
  std::printf("  mean client execution time: %8.1f s\n", mean_exec);
  std::printf("  mean round duration:        %8.1f s\n", mean_round);
  std::printf("  ratio (paper: ~21x at concurrency 1000): %.1fx\n",
              mean_round / mean_exec);

  // Pipelined client runtime (Sec. 6.1 stage overlap).  Under a
  // constrained uplink, the upload is a large fraction of a participation;
  // the pipelined runtime overlaps train ∥ serialize ∥ chunked upload so
  // per-client round latency approaches max(train, serialize + first
  // chunk) + the residual upload tail instead of the stage sum.  Chunk
  // size sweeps the overlap granularity — one chunk means no overlap.
  // Training dynamics are provably identical with the knob on or off
  // (equivalence suite in tests/sim_test.cpp), so the sequential column
  // can be read straight from the same run's stage-sum charge.
  std::printf("\nPipelined client runtime (uplink 0.02 Mbps, small stores):\n");
  sim::SimulationConfig pcfg = async_config(/*concurrency=*/30, /*goal=*/6);
  pcfg.max_server_steps = 25;
  pcfg.max_sim_time_s = 1.0e6;
  pcfg.network.mean_upload_mbps = 0.02;  // upload comparable to training
  pcfg.population.min_examples = 1;
  pcfg.population.max_examples = 8;
  pcfg.task.pipelined_clients = true;
  std::printf("%-14s %-8s %-16s %-16s %-10s %s\n", "chunk bytes", "chunks",
              "sequential (s)", "pipelined (s)", "delta", "closed-loop (s)");
  for (const std::size_t chunk_bytes : {16384UL, 4096UL, 1024UL}) {
    pcfg.upload_chunk_bytes = chunk_bytes;
    sim::FlSimulator pipelined(pcfg);
    const sim::SimulationResult pres = pipelined.run();
    std::vector<double> sequential_lat, pipelined_lat;
    std::uint32_t chunks = 0;
    for (const auto& p : pres.participations) {
      if (p.round_latency_s <= 0.0) continue;  // dropout/abort
      sequential_lat.push_back(p.round_latency_s);
      pipelined_lat.push_back(p.pipelined_latency_s);
      chunks = p.upload_chunks;
    }
    const double seq_mean = util::mean(sequential_lat);
    const double pipe_mean = util::mean(pipelined_lat);

    // Closed-loop column: the same task with the pipelined completion times
    // actually driving the protocol schedule (per-entity streams forced).
    // Round latency *is* the pipelined latency there — the clock is honest.
    sim::SimulationConfig ccfg = pcfg;
    ccfg.task.closed_loop_clients = true;
    sim::FlSimulator closed(ccfg);
    const sim::SimulationResult cres = closed.run();
    std::vector<double> closed_lat;
    for (const auto& p : cres.participations) {
      if (p.round_latency_s <= 0.0) continue;
      closed_lat.push_back(p.round_latency_s);
    }

    std::printf("%-14zu %-8u %-16.1f %-16.1f %+7.1f%%   %.1f\n", chunk_bytes,
                chunks, seq_mean, pipe_mean,
                100.0 * (pipe_mean / seq_mean - 1.0), util::mean(closed_lat));
  }
  std::printf("Expected shape: finer chunks overlap more of the upload with "
              "training.\nA single chunk cannot overlap at all — its delta is "
              "just the serialize\nstage, which the sequential charge treats "
              "as free.  The closed-loop\ncolumn reports round latency when "
              "the overlapped schedule drives the\nprotocol (per-entity "
              "streams, so draws differ from the legacy columns;\ncompare "
              "shape, not bits).\n");
  return 0;
}
