#include "smpc/shamir.hpp"

#include <set>
#include <stdexcept>

namespace papaya::smpc {

namespace {

using crypto::BigUInt;

/// a - b mod p for a, b already reduced.
BigUInt submod(const BigUInt& a, const BigUInt& b, const BigUInt& p) {
  if (a >= b) return a - b;
  return a + p - b;
}

/// Modular inverse via Fermat's little theorem (p prime).
BigUInt invmod(const BigUInt& a, const BigUInt& p) {
  if (a.is_zero()) throw std::invalid_argument("shamir: inverse of zero");
  return a.powmod(p - BigUInt(2), p);
}

}  // namespace

const crypto::BigUInt& shamir_field_prime() {
  // 2^130 - 5 (the Poly1305 prime).
  static const BigUInt p =
      BigUInt::from_hex("3fffffffffffffffffffffffffffffffb");
  return p;
}

std::vector<Share> shamir_split(std::span<const std::uint8_t> secret,
                                std::size_t n, std::size_t threshold,
                                const RandomBytesFn& random_bytes) {
  std::vector<std::uint32_t> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<std::uint32_t>(i + 1);
  return shamir_split_at(secret, xs, threshold, random_bytes);
}

std::vector<Share> shamir_split_at(std::span<const std::uint8_t> secret,
                                   std::span<const std::uint32_t> xs,
                                   std::size_t threshold,
                                   const RandomBytesFn& random_bytes) {
  const BigUInt& p = shamir_field_prime();
  if (threshold == 0 || threshold > xs.size()) {
    throw std::invalid_argument("shamir_split: need 0 < threshold <= n");
  }
  std::set<std::uint32_t> seen;
  for (std::uint32_t x : xs) {
    if (x == 0 || !seen.insert(x).second) {
      throw std::invalid_argument("shamir_split: duplicate or zero x");
    }
  }
  BigUInt a0 = BigUInt::from_bytes(secret);
  if (a0 >= p) {
    throw std::invalid_argument("shamir_split: secret wider than the field");
  }

  // f(x) = a0 + a1 x + ... + a_{t-1} x^{t-1}, coefficients uniform in [0, p).
  std::vector<BigUInt> coeffs;
  coeffs.reserve(threshold);
  coeffs.push_back(std::move(a0));
  for (std::size_t i = 1; i < threshold; ++i) {
    coeffs.push_back(BigUInt::random_below(p, random_bytes));
  }

  std::vector<Share> shares;
  shares.reserve(xs.size());
  for (std::uint32_t xi : xs) {
    const BigUInt x(static_cast<std::uint64_t>(xi));
    // Horner: y = (...(a_{t-1} x + a_{t-2}) x + ...) x + a0, all mod p.
    BigUInt y = coeffs.back();
    for (std::size_t k = coeffs.size(); k-- > 1;) {
      y = y.mulmod(x, p);
      y = (y + coeffs[k - 1]) % p;
    }
    shares.push_back(Share{xi, std::move(y)});
  }
  return shares;
}

util::Bytes shamir_reconstruct(std::span<const Share> shares,
                               std::size_t threshold,
                               std::size_t secret_size) {
  const BigUInt& p = shamir_field_prime();
  if (shares.size() < threshold || threshold == 0) {
    throw std::invalid_argument("shamir_reconstruct: not enough shares");
  }

  // Use exactly `threshold` shares; interpolation degree must match split.
  std::vector<Share> pts(shares.begin(), shares.begin() + threshold);
  std::set<std::uint32_t> xs;
  for (const Share& s : pts) {
    if (s.x == 0 || !xs.insert(s.x).second) {
      throw std::invalid_argument(
          "shamir_reconstruct: duplicate or zero x-coordinate");
    }
    if (s.y >= p) {
      throw std::invalid_argument("shamir_reconstruct: share outside field");
    }
  }

  // Lagrange interpolation at x = 0:
  //   f(0) = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)  (mod p)
  BigUInt secret(0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const BigUInt xi(static_cast<std::uint64_t>(pts[i].x));
    BigUInt num(1), den(1);
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      const BigUInt xj(static_cast<std::uint64_t>(pts[j].x));
      num = num.mulmod(xj, p);
      den = den.mulmod(submod(xj, xi, p), p);
    }
    const BigUInt li = num.mulmod(invmod(den, p), p);
    secret = (secret + pts[i].y.mulmod(li, p)) % p;
  }

  util::Bytes out = secret.to_bytes(secret_size);
  // to_bytes truncates silently on overflow; detect inconsistent shares.
  if (BigUInt::from_bytes(out) != secret) {
    throw std::invalid_argument(
        "shamir_reconstruct: value does not fit the secret width "
        "(inconsistent shares?)");
  }
  return out;
}

}  // namespace papaya::smpc
