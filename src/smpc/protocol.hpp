#pragma once
// SMPC-based Secure Aggregation (Bonawitz et al. 2016) — the synchronous
// baseline PAPAYA's Sec. 5 argues is incompatible with asynchronous training.
//
// The protocol runs in four synchronous legs over one cohort:
//   Round 0  AdvertiseKeys   — every client publishes two DH public keys:
//                              one for pairwise masks, one for the
//                              client-to-client encrypted channel.
//   Round 1  ShareKeys       — every client Shamir-shares (a) the 16-byte
//                              seed its pairwise-mask DH key is derived from
//                              and (b) a fresh 16-byte self-mask seed, and
//                              sends each peer its share, encrypted under the
//                              pairwise channel key.  The server routes the
//                              ciphertexts (it cannot read them).
//   Round 2  MaskedInput     — every client submits
//                                y_i = x_i + PRG(b_i)
//                                    + sum_{j in U1, j>i} PRG(s_ij)
//                                    - sum_{j in U1, j<i} PRG(s_ij)
//                              where U1 is the set that completed ShareKeys.
//   Round 3  Unmasking       — the server announces who survived (U2) and
//                              who dropped (U1 \ U2).  Each responder reveals
//                              self-mask shares for survivors and mask-seed
//                              shares for dropouts — never both for the same
//                              peer.  With >= t responses the server
//                              reconstructs the missing masks and outputs
//                              sum_{i in U2} x_i.
//
// Everything that makes this protocol a poor fit for AsyncFL is visible in
// the types below: cohort formation (Round 0 blocks on everyone), O(n^2)
// share ciphertexts, and four synchronous legs per aggregate.  The
// bench_ablation_secagg_compare binary quantifies this against the paper's
// Asynchronous SecAgg.
//
// Threat model matches App. B: honest-but-curious server, up to n - t
// dropouts; no consistency-check round (that round hardens against an
// actively malicious server and is orthogonal here).

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "crypto/auth_enc.hpp"
#include "crypto/dh.hpp"
#include "secagg/group.hpp"
#include "smpc/shamir.hpp"
#include "util/bytes.hpp"

namespace papaya::smpc {

struct SmpcConfig {
  std::size_t vector_length = 0;  ///< l: elements of Z_{2^32} per input
  std::size_t threshold = 0;      ///< t: minimum survivors for release
  const crypto::DhParams* dh = nullptr;  ///< defaults to simulation256()

  const crypto::DhParams& dh_params() const;
};

/// Round 0: one client's public keys.
struct KeyAdvertisement {
  std::uint32_t client_id = 0;      ///< 1-based; doubles as the Shamir x
  crypto::BigUInt mask_public;      ///< s_i^PK: pairwise masks
  crypto::BigUInt channel_public;   ///< c_i^PK: share encryption
};

/// Round 1: an encrypted Shamir-share bundle addressed to one peer.
struct EncryptedShare {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  crypto::SealedBox box;  ///< {mask-seed share, self-mask share} under K_ij

  std::size_t wire_size() const { return box.ciphertext.size() + 8; }
};

/// A share of `owner`'s secret revealed to the server in Round 3.  The
/// share's x-coordinate is the *revealing* client's id.
struct RevealedShare {
  std::uint32_t owner = 0;
  Share share;
};

/// Round 3: one client's unmasking contribution.
struct UnmaskResponse {
  std::uint32_t from = 0;
  std::vector<RevealedShare> self_mask_shares;  ///< owners are survivors
  std::vector<RevealedShare> mask_seed_shares;  ///< owners are dropouts
};

/// Client-side state machine.  Construction is deterministic in `rng_seed`
/// so tests and the simulator replay exactly.
class SmpcClient {
 public:
  SmpcClient(const SmpcConfig& config, std::uint32_t id,
             std::span<const std::uint8_t> rng_seed);

  std::uint32_t id() const { return id_; }

  /// Round 0.
  KeyAdvertisement advertise_keys() const;

  /// Round 1: given the cohort's advertisements (must include this client),
  /// produce one encrypted share bundle per peer.
  /// Throws std::invalid_argument on duplicate or missing ids.
  std::vector<EncryptedShare> share_keys(
      const std::vector<KeyAdvertisement>& cohort);

  /// Round 1 delivery: shares addressed to this client, routed by the
  /// server.  Throws std::runtime_error if any ciphertext fails
  /// authentication (a tampering server must be detected, App. B).
  void receive_shares(const std::vector<EncryptedShare>& inbox);

  /// Round 2: mask this client's input.  Pairwise masks cover exactly the
  /// peers whose shares were received (= the server-announced U1).
  secagg::GroupVec masked_input(std::span<const std::uint32_t> input) const;

  /// Round 3: reveal self-mask shares for `survivors` and mask-seed shares
  /// for `dropouts`.  Enforces the protocol's core privacy rule: throws
  /// std::invalid_argument if the two sets intersect (revealing both shares
  /// of one peer would unmask that peer's individual update).
  UnmaskResponse unmask(const std::set<std::uint32_t>& survivors,
                        const std::set<std::uint32_t>& dropouts) const;

 private:
  struct PeerState {
    crypto::Digest channel_key{};   ///< K_ij for share transport
    util::Bytes pairwise_seed;      ///< PRG seed for the pairwise mask
    std::optional<Share> mask_seed_share;  ///< peer's DH-seed share we hold
    std::optional<Share> self_mask_share;  ///< peer's self-mask share we hold
  };

  SmpcConfig config_;
  std::uint32_t id_ = 0;
  mutable crypto::DhRandom rng_;

  util::Bytes mask_key_seed_;      ///< 16 bytes; derives mask_keypair_
  crypto::DhKeyPair mask_keypair_;
  crypto::DhKeyPair channel_keypair_;
  util::Bytes self_mask_seed_;     ///< b_i, 16 bytes

  std::map<std::uint32_t, PeerState> peers_;
  bool shares_received_ = false;
};

/// Traffic accounting for the scalability comparison (Sec. 5 / Fig. 6).
struct SmpcTraffic {
  std::uint64_t client_to_server_bytes = 0;
  std::uint64_t server_to_client_bytes = 0;
  std::uint64_t messages = 0;
  static constexpr int kSynchronousLegs = 4;
};

/// Server-side orchestration for one aggregation round.
class SmpcServer {
 public:
  explicit SmpcServer(const SmpcConfig& config);

  // -- Round 0 --------------------------------------------------------------
  void register_advertisement(const KeyAdvertisement& ad);
  /// The cohort broadcast (also counts broadcast traffic per recipient).
  std::vector<KeyAdvertisement> cohort_broadcast();

  // -- Round 1 --------------------------------------------------------------
  /// A client submits its n-1 encrypted shares.  Marks the client in U1.
  void submit_shares(std::vector<EncryptedShare> shares);
  /// Shares addressed to `id` from clients in U1.
  std::vector<EncryptedShare> inbox_for(std::uint32_t id);

  // -- Round 2 --------------------------------------------------------------
  /// Throws std::invalid_argument if `id` never completed ShareKeys or the
  /// vector length is wrong.
  void submit_masked_input(std::uint32_t id, secagg::GroupVec input);

  /// U2: completed MaskedInput.  Dropouts: U1 \ U2.
  std::set<std::uint32_t> survivors() const;
  std::set<std::uint32_t> dropouts() const;

  // -- Round 3 --------------------------------------------------------------
  void submit_unmask_response(const UnmaskResponse& response);

  /// Reconstruct masks and release sum_{i in U2} x_i.
  /// Throws std::runtime_error if fewer than `threshold` clients responded
  /// or fewer than `threshold` survivors exist (the protocol must never
  /// release an aggregate of fewer than t inputs, Fig. 15 step 4).
  secagg::GroupVec aggregate() const;

  const SmpcTraffic& traffic() const { return traffic_; }

 private:
  SmpcConfig config_;
  std::map<std::uint32_t, KeyAdvertisement> ads_;
  std::set<std::uint32_t> shared_;  ///< U1
  std::map<std::uint32_t, std::vector<EncryptedShare>> routed_;  ///< by `to`
  std::map<std::uint32_t, secagg::GroupVec> masked_;             ///< U2
  std::vector<UnmaskResponse> responses_;
  SmpcTraffic traffic_;
};

/// Derive the deterministic pairwise-mask PRG seed both endpoints (and the
/// server, after reconstructing a dropout's key seed) compute from the DH
/// shared element.
util::Bytes pairwise_mask_seed(const crypto::DhParams& params,
                               const crypto::BigUInt& my_private,
                               const crypto::BigUInt& peer_public);

/// Rebuild the deterministic mask keypair from its 16-byte seed (what
/// Round 1 shares protect; the server does this for dropouts).
crypto::DhKeyPair mask_keypair_from_seed(const crypto::DhParams& params,
                                         std::span<const std::uint8_t> seed);

/// Expand a self-mask or pairwise seed into `n` words of Z_{2^32} mask.
secagg::GroupVec expand_mask(std::span<const std::uint8_t> seed,
                             std::size_t n);

// -- Whole-round driver (tests, benches, examples) ---------------------------

/// Which clients drop at which point of the round.
struct DropoutSchedule {
  std::set<std::uint32_t> before_share_keys;    ///< advertised, never shared
  std::set<std::uint32_t> before_masked_input;  ///< shared, never uploaded
  std::set<std::uint32_t> before_unmasking;     ///< uploaded, never revealed
};

struct SmpcRoundResult {
  secagg::GroupVec aggregate;
  std::set<std::uint32_t> included;  ///< U2: inputs present in the aggregate
  SmpcTraffic traffic;
};

/// Run one full synchronous round over `inputs` (client i = 1-based index
/// i+1) with the given dropout schedule.  Deterministic in `seed`.
SmpcRoundResult run_smpc_round(const SmpcConfig& config,
                               const std::vector<secagg::GroupVec>& inputs,
                               const DropoutSchedule& dropouts = {},
                               std::uint64_t seed = 0);

}  // namespace papaya::smpc
