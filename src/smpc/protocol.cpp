#include "smpc/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace papaya::smpc {

namespace {

constexpr const char* kChannelLabel = "smpc-channel-key";
constexpr const char* kPairwiseLabel = "smpc-pairwise-mask";
const std::uint8_t kShareAd[] = {'s', 'm', 'p', 'c', '-', 's', 'h', 'a',
                                 'r', 'e', '-', 'v', '1'};

std::uint64_t share_sequence(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// Estimated wire size of one advertisement (id + two group elements).
std::size_t ad_wire_size(const crypto::DhParams& params) {
  return 4 + 2 * params.byte_width();
}

}  // namespace

const crypto::DhParams& SmpcConfig::dh_params() const {
  return dh != nullptr ? *dh : crypto::DhParams::simulation256();
}

util::Bytes pairwise_mask_seed(const crypto::DhParams& params,
                               const crypto::BigUInt& my_private,
                               const crypto::BigUInt& peer_public) {
  const crypto::BigUInt shared =
      crypto::dh_shared_element(params, my_private, peer_public);
  const crypto::Digest d = crypto::dh_derive_key(params, shared, kPairwiseLabel);
  return util::Bytes(d.begin(), d.end());
}

crypto::DhKeyPair mask_keypair_from_seed(const crypto::DhParams& params,
                                         std::span<const std::uint8_t> seed) {
  crypto::DhRandom random(seed);
  return crypto::dh_generate(params, random);
}

secagg::GroupVec expand_mask(std::span<const std::uint8_t> seed,
                             std::size_t n) {
  crypto::MaskPrng prng(seed);
  return prng.words(n);
}

// -- SmpcClient ---------------------------------------------------------------

SmpcClient::SmpcClient(const SmpcConfig& config, std::uint32_t id,
                       std::span<const std::uint8_t> rng_seed)
    : config_(config), id_(id), rng_(rng_seed) {
  if (id_ == 0) throw std::invalid_argument("SmpcClient: id must be nonzero");
  const crypto::DhParams& params = config_.dh_params();
  mask_key_seed_ = rng_.bytes(16);
  mask_keypair_ = mask_keypair_from_seed(params, mask_key_seed_);
  channel_keypair_ = crypto::dh_generate(params, rng_);
  self_mask_seed_ = rng_.bytes(16);
}

KeyAdvertisement SmpcClient::advertise_keys() const {
  return KeyAdvertisement{id_, mask_keypair_.public_key,
                          channel_keypair_.public_key};
}

std::vector<EncryptedShare> SmpcClient::share_keys(
    const std::vector<KeyAdvertisement>& cohort) {
  const crypto::DhParams& params = config_.dh_params();
  if (cohort.size() < config_.threshold) {
    throw std::invalid_argument("share_keys: cohort below threshold");
  }

  std::vector<std::uint32_t> xs;
  xs.reserve(cohort.size());
  bool found_self = false;
  for (const KeyAdvertisement& ad : cohort) {
    xs.push_back(ad.client_id);
    found_self |= ad.client_id == id_;
  }
  if (!found_self) {
    throw std::invalid_argument("share_keys: cohort does not include me");
  }

  // Shamir-share both 16-byte secrets at the cohort's ids (validates
  // duplicates/zeros).
  const RandomBytesFn rand = [this](std::size_t n) { return rng_.bytes(n); };
  const std::vector<Share> seed_shares =
      shamir_split_at(mask_key_seed_, xs, config_.threshold, rand);
  const std::vector<Share> self_shares =
      shamir_split_at(self_mask_seed_, xs, config_.threshold, rand);

  std::vector<EncryptedShare> out;
  out.reserve(cohort.size() - 1);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const KeyAdvertisement& peer = cohort[i];
    if (peer.client_id == id_) {
      // Keep our own shares of our own secrets; we reveal them in Round 3.
      PeerState& self = peers_[id_];
      self.mask_seed_share = seed_shares[i];
      self.self_mask_share = self_shares[i];
      continue;
    }
    PeerState& ps = peers_[peer.client_id];
    ps.channel_key = crypto::dh_derive_key(
        params,
        crypto::dh_shared_element(params, channel_keypair_.private_key,
                                  peer.channel_public),
        kChannelLabel);
    ps.pairwise_seed = pairwise_mask_seed(params, mask_keypair_.private_key,
                                          peer.mask_public);

    util::ByteWriter w;
    w.u32(peer.client_id);
    w.bytes(seed_shares[i].y.to_bytes());
    w.bytes(self_shares[i].y.to_bytes());
    EncryptedShare es;
    es.from = id_;
    es.to = peer.client_id;
    es.box = crypto::seal(ps.channel_key, share_sequence(id_, peer.client_id),
                          w.data(), kShareAd);
    out.push_back(std::move(es));
  }
  return out;
}

void SmpcClient::receive_shares(const std::vector<EncryptedShare>& inbox) {
  for (const EncryptedShare& es : inbox) {
    if (es.to != id_) {
      throw std::runtime_error("receive_shares: misrouted share");
    }
    auto it = peers_.find(es.from);
    if (it == peers_.end() || it->first == id_) {
      throw std::runtime_error("receive_shares: share from unknown peer");
    }
    PeerState& ps = it->second;
    const auto plain = crypto::open(
        ps.channel_key, share_sequence(es.from, id_), es.box, kShareAd);
    if (!plain) {
      // A failed MAC means the server (or the network) tampered with the
      // share; the protocol requires the client to abort (App. B).
      throw std::runtime_error("receive_shares: share failed authentication");
    }
    util::ByteReader r(*plain);
    const std::uint32_t x = r.u32();
    if (x != id_) {
      throw std::runtime_error("receive_shares: share bound to a different x");
    }
    ps.mask_seed_share = Share{id_, crypto::BigUInt::from_bytes(r.bytes())};
    ps.self_mask_share = Share{id_, crypto::BigUInt::from_bytes(r.bytes())};
  }
  shares_received_ = true;
}

secagg::GroupVec SmpcClient::masked_input(
    std::span<const std::uint32_t> input) const {
  if (!shares_received_) {
    throw std::logic_error("masked_input: ShareKeys round not completed");
  }
  if (input.size() != config_.vector_length) {
    throw std::invalid_argument("masked_input: wrong vector length");
  }

  secagg::GroupVec out(input.begin(), input.end());
  // Self mask b_i: removed by the server after reconstructing it from the
  // survivors' shares.
  secagg::add_in_place(out, expand_mask(self_mask_seed_, out.size()));

  // Pairwise masks with every peer whose shares we hold (the server-routed
  // U1): +m_ij for i < j, -m_ij for i > j, so they cancel pairwise in the
  // survivor sum.
  for (const auto& [peer_id, ps] : peers_) {
    if (peer_id == id_ || !ps.mask_seed_share.has_value()) continue;
    const secagg::GroupVec mask = expand_mask(ps.pairwise_seed, out.size());
    if (id_ < peer_id) {
      secagg::add_in_place(out, mask);
    } else {
      secagg::sub_in_place(out, mask);
    }
  }
  return out;
}

UnmaskResponse SmpcClient::unmask(const std::set<std::uint32_t>& survivors,
                                  const std::set<std::uint32_t>& dropouts) const {
  for (std::uint32_t id : dropouts) {
    if (survivors.count(id) != 0) {
      throw std::invalid_argument(
          "unmask: a client may not be both survivor and dropout (revealing "
          "both shares would unmask its individual update)");
    }
  }
  UnmaskResponse resp;
  resp.from = id_;
  for (std::uint32_t owner : survivors) {
    auto it = peers_.find(owner);
    if (it != peers_.end() && it->second.self_mask_share.has_value()) {
      resp.self_mask_shares.push_back(
          RevealedShare{owner, *it->second.self_mask_share});
    }
  }
  for (std::uint32_t owner : dropouts) {
    auto it = peers_.find(owner);
    if (it != peers_.end() && it->second.mask_seed_share.has_value()) {
      resp.mask_seed_shares.push_back(
          RevealedShare{owner, *it->second.mask_seed_share});
    }
  }
  return resp;
}

// -- SmpcServer ---------------------------------------------------------------

SmpcServer::SmpcServer(const SmpcConfig& config) : config_(config) {
  if (config_.vector_length == 0) {
    throw std::invalid_argument("SmpcServer: vector_length must be positive");
  }
  if (config_.threshold == 0) {
    throw std::invalid_argument("SmpcServer: threshold must be positive");
  }
}

void SmpcServer::register_advertisement(const KeyAdvertisement& ad) {
  if (ad.client_id == 0) {
    throw std::invalid_argument("register_advertisement: zero client id");
  }
  if (!ads_.emplace(ad.client_id, ad).second) {
    throw std::invalid_argument("register_advertisement: duplicate client id");
  }
  traffic_.client_to_server_bytes += ad_wire_size(config_.dh_params());
  traffic_.messages += 1;
}

std::vector<KeyAdvertisement> SmpcServer::cohort_broadcast() {
  std::vector<KeyAdvertisement> cohort;
  cohort.reserve(ads_.size());
  for (const auto& [id, ad] : ads_) cohort.push_back(ad);
  // The full cohort list goes back down to every member.
  traffic_.server_to_client_bytes +=
      cohort.size() * cohort.size() * ad_wire_size(config_.dh_params());
  traffic_.messages += cohort.size();
  return cohort;
}

void SmpcServer::submit_shares(std::vector<EncryptedShare> shares) {
  if (shares.empty()) {
    throw std::invalid_argument("submit_shares: empty share batch");
  }
  const std::uint32_t from = shares.front().from;
  if (ads_.count(from) == 0) {
    throw std::invalid_argument("submit_shares: sender never advertised");
  }
  for (EncryptedShare& es : shares) {
    if (es.from != from || es.to == from || ads_.count(es.to) == 0) {
      throw std::invalid_argument("submit_shares: malformed share batch");
    }
    traffic_.client_to_server_bytes += es.wire_size();
    routed_[es.to].push_back(std::move(es));
  }
  traffic_.messages += 1;
  shared_.insert(from);
}

std::vector<EncryptedShare> SmpcServer::inbox_for(std::uint32_t id) {
  std::vector<EncryptedShare> inbox;
  auto it = routed_.find(id);
  if (it != routed_.end()) {
    // Only deliver shares from clients that completed ShareKeys; peers not
    // in U1 contribute no pairwise mask.
    for (const EncryptedShare& es : it->second) {
      if (shared_.count(es.from) != 0) {
        traffic_.server_to_client_bytes += es.wire_size();
        inbox.push_back(es);
      }
    }
  }
  traffic_.messages += 1;
  return inbox;
}

void SmpcServer::submit_masked_input(std::uint32_t id,
                                     secagg::GroupVec input) {
  if (shared_.count(id) == 0) {
    throw std::invalid_argument(
        "submit_masked_input: client never completed ShareKeys");
  }
  if (input.size() != config_.vector_length) {
    throw std::invalid_argument("submit_masked_input: wrong vector length");
  }
  traffic_.client_to_server_bytes += 4 * input.size() + 8;
  traffic_.messages += 1;
  masked_[id] = std::move(input);
}

std::set<std::uint32_t> SmpcServer::survivors() const {
  std::set<std::uint32_t> s;
  for (const auto& [id, v] : masked_) s.insert(id);
  return s;
}

std::set<std::uint32_t> SmpcServer::dropouts() const {
  std::set<std::uint32_t> d;
  for (std::uint32_t id : shared_) {
    if (masked_.count(id) == 0) d.insert(id);
  }
  return d;
}

void SmpcServer::submit_unmask_response(const UnmaskResponse& response) {
  if (masked_.count(response.from) == 0) {
    throw std::invalid_argument(
        "submit_unmask_response: responder is not a survivor");
  }
  const std::set<std::uint32_t> alive = survivors();
  const std::set<std::uint32_t> dead = dropouts();
  for (const RevealedShare& rs : response.self_mask_shares) {
    if (alive.count(rs.owner) == 0) {
      throw std::invalid_argument(
          "submit_unmask_response: self-mask share for a non-survivor");
    }
  }
  for (const RevealedShare& rs : response.mask_seed_shares) {
    if (dead.count(rs.owner) == 0) {
      // Accepting a mask-seed share for a survivor would let the server
      // remove that survivor's pairwise masks and expose its input.
      throw std::invalid_argument(
          "submit_unmask_response: mask-seed share for a survivor");
    }
  }
  const std::size_t revealed =
      response.self_mask_shares.size() + response.mask_seed_shares.size();
  traffic_.client_to_server_bytes += 8 + revealed * (8 + 17);
  traffic_.messages += 1;
  responses_.push_back(response);
}

secagg::GroupVec SmpcServer::aggregate() const {
  const std::set<std::uint32_t> alive = survivors();
  if (alive.size() < config_.threshold) {
    throw std::runtime_error(
        "aggregate: fewer than t survivors; must not release (Fig. 15)");
  }
  if (responses_.size() < config_.threshold) {
    throw std::runtime_error("aggregate: fewer than t unmask responses");
  }

  secagg::GroupVec sum(config_.vector_length, 0);
  for (const auto& [id, v] : masked_) secagg::add_in_place(sum, v);

  // Collect revealed shares per owner.
  std::map<std::uint32_t, std::vector<Share>> self_shares;
  std::map<std::uint32_t, std::vector<Share>> seed_shares;
  for (const UnmaskResponse& r : responses_) {
    for (const RevealedShare& rs : r.self_mask_shares) {
      self_shares[rs.owner].push_back(rs.share);
    }
    for (const RevealedShare& rs : r.mask_seed_shares) {
      seed_shares[rs.owner].push_back(rs.share);
    }
  }

  // Remove every survivor's self mask b_j.
  for (std::uint32_t j : alive) {
    auto it = self_shares.find(j);
    if (it == self_shares.end() || it->second.size() < config_.threshold) {
      throw std::runtime_error(
          "aggregate: insufficient self-mask shares for a survivor");
    }
    const util::Bytes b = shamir_reconstruct(it->second, config_.threshold);
    secagg::sub_in_place(sum, expand_mask(b, sum.size()));
  }

  // Remove dropouts' pairwise masks: reconstruct the dropout's DH key seed,
  // rebuild its keypair, and recompute its mask with every survivor.
  const crypto::DhParams& params = config_.dh_params();
  for (std::uint32_t j : dropouts()) {
    auto it = seed_shares.find(j);
    if (it == seed_shares.end() || it->second.size() < config_.threshold) {
      throw std::runtime_error(
          "aggregate: insufficient mask-seed shares for a dropout");
    }
    const util::Bytes seed = shamir_reconstruct(it->second, config_.threshold);
    const crypto::DhKeyPair kp = mask_keypair_from_seed(params, seed);
    for (std::uint32_t k : alive) {
      const util::Bytes pm =
          pairwise_mask_seed(params, kp.private_key, ads_.at(k).mask_public);
      const secagg::GroupVec mask = expand_mask(pm, sum.size());
      // Survivor k applied sign(k, j) = +1 if k < j else -1; undo it.
      if (k < j) {
        secagg::sub_in_place(sum, mask);
      } else {
        secagg::add_in_place(sum, mask);
      }
    }
  }
  return sum;
}

// -- Whole-round driver -------------------------------------------------------

SmpcRoundResult run_smpc_round(const SmpcConfig& config,
                               const std::vector<secagg::GroupVec>& inputs,
                               const DropoutSchedule& dropouts,
                               std::uint64_t seed) {
  const std::size_t n = inputs.size();
  SmpcServer server(config);

  std::vector<SmpcClient> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i + 1);
    util::ByteWriter w;
    w.u64(seed);
    w.u64(id);
    clients.emplace_back(config, id, w.data());
  }

  // Round 0: everyone advertises.
  for (const SmpcClient& c : clients) {
    server.register_advertisement(c.advertise_keys());
  }
  const std::vector<KeyAdvertisement> cohort = server.cohort_broadcast();

  // Round 1: ShareKeys (minus early dropouts), then routed delivery.
  for (SmpcClient& c : clients) {
    if (dropouts.before_share_keys.count(c.id()) != 0) continue;
    server.submit_shares(c.share_keys(cohort));
  }
  for (SmpcClient& c : clients) {
    if (dropouts.before_share_keys.count(c.id()) != 0) continue;
    c.receive_shares(server.inbox_for(c.id()));
  }

  // Round 2: MaskedInput.
  for (std::size_t i = 0; i < n; ++i) {
    SmpcClient& c = clients[i];
    if (dropouts.before_share_keys.count(c.id()) != 0 ||
        dropouts.before_masked_input.count(c.id()) != 0) {
      continue;
    }
    server.submit_masked_input(c.id(), c.masked_input(inputs[i]));
  }

  // Round 3: Unmasking.
  const std::set<std::uint32_t> alive = server.survivors();
  const std::set<std::uint32_t> dead = server.dropouts();
  for (SmpcClient& c : clients) {
    if (alive.count(c.id()) == 0 ||
        dropouts.before_unmasking.count(c.id()) != 0) {
      continue;
    }
    server.submit_unmask_response(c.unmask(alive, dead));
  }

  SmpcRoundResult result;
  result.aggregate = server.aggregate();
  result.included = alive;
  result.traffic = server.traffic();
  return result;
}

}  // namespace papaya::smpc
