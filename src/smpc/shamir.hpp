#pragma once
// Shamir secret sharing over the prime field Z_{2^130 - 5}.
//
// Substrate for the SMPC-based Secure Aggregation baseline (Bonawitz et al.
// 2016), the synchronous protocol PAPAYA's Sec. 5 contrasts with Asynchronous
// SecAgg.  The shared secrets are 16-byte seeds (a client's self-mask seed
// and the seed its pairwise-mask DH key is derived from), so a field just
// above 2^128 suffices; 2^130 - 5 is a well-known prime (Poly1305).
//
// A share is the polynomial evaluated at the *holder's* client id, so a
// holder's x-coordinate is the same across every secret it holds a share of.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "crypto/bigint.hpp"
#include "util/bytes.hpp"

namespace papaya::smpc {

/// One share: y = f(x) for the owner's secret polynomial f.
struct Share {
  std::uint32_t x = 0;  ///< holder's client id (never 0; f(0) is the secret)
  crypto::BigUInt y;
};

/// The field prime 2^130 - 5.
const crypto::BigUInt& shamir_field_prime();

/// Source of fresh random bytes for polynomial coefficients.
using RandomBytesFn = std::function<util::Bytes(std::size_t)>;

/// Split `secret` (at most 16 bytes, interpreted as a big-endian integer)
/// into `n` shares such that any `threshold` of them reconstruct it and any
/// threshold-1 reveal nothing.  Shares are issued at x = 1..n.
/// Throws std::invalid_argument on threshold == 0, threshold > n, or a
/// secret wider than the field.
std::vector<Share> shamir_split(std::span<const std::uint8_t> secret,
                                std::size_t n, std::size_t threshold,
                                const RandomBytesFn& random_bytes);

/// As shamir_split, but issue shares at caller-chosen x-coordinates (the
/// SMPC protocol uses client ids, which need not be contiguous).  Throws
/// std::invalid_argument on zero or duplicate coordinates.
std::vector<Share> shamir_split_at(std::span<const std::uint8_t> secret,
                                   std::span<const std::uint32_t> xs,
                                   std::size_t threshold,
                                   const RandomBytesFn& random_bytes);

/// Reconstruct the secret from at least `threshold` distinct shares by
/// Lagrange interpolation at 0.  Returns `secret_size` big-endian bytes.
/// Throws std::invalid_argument on too few shares, duplicate or zero
/// x-coordinates, or if the reconstructed value does not fit `secret_size`
/// bytes (which signals inconsistent shares).
util::Bytes shamir_reconstruct(std::span<const Share> shares,
                               std::size_t threshold,
                               std::size_t secret_size = 16);

}  // namespace papaya::smpc
