#include "secagg/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

namespace papaya::secagg {

FixedPointParams FixedPointParams::for_budget(double per_update_magnitude,
                                              std::size_t num_updates) {
  if (per_update_magnitude <= 0.0 || num_updates == 0) {
    throw std::invalid_argument("FixedPointParams::for_budget: bad budget");
  }
  const double worst_sum =
      per_update_magnitude * static_cast<double>(num_updates);
  // 2x headroom below the wrap-around bound.
  const double scale = (static_cast<double>(1ULL << 31) - 1.0) / (2.0 * worst_sum);
  FixedPointParams params;
  params.scale = scale;
  return params;
}

std::uint32_t encode_value(double v, const FixedPointParams& params) {
  const double scaled = std::nearbyint(v * params.scale);
  if (scaled >= static_cast<double>(1ULL << 31) ||
      scaled < -static_cast<double>(1ULL << 31)) {
    throw std::range_error("fixed_point: value exceeds representable range");
  }
  // Two's-complement mapping of [-2^31, 2^31) onto Z_{2^32}.
  return static_cast<std::uint32_t>(static_cast<std::int64_t>(scaled));
}

double decode_value(std::uint32_t e, const FixedPointParams& params) {
  return static_cast<double>(static_cast<std::int32_t>(e)) / params.scale;
}

GroupVec encode(std::span<const float> values, const FixedPointParams& params) {
  GroupVec out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = encode_value(values[i], params);
  }
  return out;
}

std::vector<float> decode(std::span<const std::uint32_t> elements,
                          const FixedPointParams& params) {
  std::vector<float> out(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    out[i] = static_cast<float>(decode_value(elements[i], params));
  }
  return out;
}

}  // namespace papaya::secagg
