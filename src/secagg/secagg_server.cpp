#include "secagg/secagg_server.hpp"

#include <stdexcept>

namespace papaya::secagg {

SecureAggregationSession::SecureAggregationSession(TrustedSecureAggregator& tsa,
                                                   std::size_t vector_length,
                                                   std::size_t aggregation_goal)
    : tsa_(tsa), masked_sum_(vector_length, 0), goal_(aggregation_goal) {
  if (aggregation_goal == 0) {
    throw std::invalid_argument("SecureAggregationSession: goal must be > 0");
  }
}

TsaAccept SecureAggregationSession::accept(const ClientContribution& c) {
  if (c.masked_update.size() != masked_sum_.size()) {
    throw std::invalid_argument("SecureAggregationSession: wrong update size");
  }
  const TsaAccept verdict = tsa_.process_contribution(
      c.message_index, c.completing_message, c.sealed_seed,
      /*sequence=*/c.message_index);
  if (verdict == TsaAccept::kAccepted) {
    add_in_place(masked_sum_, c.masked_update);
    ++accepted_;
  }
  return verdict;
}

std::optional<GroupVec> SecureAggregationSession::finalize() {
  const auto mask_sum = tsa_.request_unmask();
  if (!mask_sum) return std::nullopt;
  return unmask(masked_sum_, *mask_sum);
}

std::optional<std::vector<float>> SecureAggregationSession::finalize_decoded(
    const FixedPointParams& fp) {
  const auto sum = finalize();
  if (!sum) return std::nullopt;
  return decode(*sum, fp);
}

NaiveTeeAggregator::NaiveTeeAggregator(std::size_t vector_length,
                                       std::size_t threshold)
    : sum_(vector_length, 0), threshold_(threshold) {}

void NaiveTeeAggregator::submit_update(
    std::span<const std::uint32_t> encrypted_update) {
  if (encrypted_update.size() != sum_.size()) {
    throw std::invalid_argument("NaiveTeeAggregator: wrong update size");
  }
  // The whole ciphertext crosses the boundary: that is the O(K*m) term.
  boundary_.record_call(encrypted_update.size() * sizeof(std::uint32_t), 1);
  add_in_place(sum_, encrypted_update);
  ++count_;
}

std::optional<GroupVec> NaiveTeeAggregator::release() {
  // A refusal exports nothing (0-byte status); the aggregate's bytes cross
  // the boundary exactly once, on the first successful release.
  const bool first_release = count_ >= threshold_ && !released_;
  boundary_.record_call(
      0, first_release ? sum_.size() * sizeof(std::uint32_t) : 0);
  if (count_ < threshold_) return std::nullopt;
  released_ = true;
  return sum_;
}

}  // namespace papaya::secagg
