#pragma once
// Additive one-time pad over Z_{2^32} (App. A.2, Fig. 14).
//
// Enc_k(v) = v + PRNG(k) element-wise; ciphertexts add homomorphically; an
// aggregated ciphertext is decrypted by subtracting the sum of the pads.
// The pad is expanded from a small seed (16 bytes in the paper) with a
// cryptographically secure PRNG (ChaCha20 here), which is what lets the TSA
// reconstruct an as-large-as-the-model mask from a constant-size message.

#include <array>
#include <cstdint>
#include <span>

#include "secagg/group.hpp"

namespace papaya::secagg {

/// The 16-byte seed shared between a client and the TSA.
using Seed = std::array<std::uint8_t, 16>;

/// Deterministically expand a seed into an l-element mask vector.
GroupVec expand_mask(const Seed& seed, std::size_t length);

/// Batched expansion: out[i] == expand_mask(seeds[i], length) for every i,
/// computed with the cache-blocked multi-stream ChaCha20 path (keystream
/// blocks for up to 8 seeds are generated in lockstep so the per-seed
/// quarter-round arithmetic vectorizes across streams).
std::vector<GroupVec> expand_masks(std::span<const Seed> seeds,
                                   std::size_t length);

/// Fold the sum of every seed's mask into `sum` (mod 2^32) without
/// materializing the individual masks: keystream tiles are expanded into a
/// small scratch block and folded while the corresponding `sum` block is
/// still cache-resident.  Equivalent to add_in_place(sum, expand_mask(s, l))
/// over all seeds.
void accumulate_masks(std::span<const Seed> seeds, GroupVec& sum);

/// Mask a plaintext group vector: out = v + m (mod 2^32).
GroupVec mask(std::span<const std::uint32_t> plaintext, const Seed& seed);

/// Remove an aggregated mask: out = c - mask_sum (mod 2^32).
GroupVec unmask(std::span<const std::uint32_t> aggregate,
                std::span<const std::uint32_t> mask_sum);

}  // namespace papaya::secagg
