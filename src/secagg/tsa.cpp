#include "secagg/tsa.hpp"

#include <stdexcept>

namespace papaya::secagg {

namespace {
constexpr const char* kChannelLabel = "papaya-tsa-channel-v1";
}

crypto::Digest SecAggParams::hash(const crypto::DhParams& dh) const {
  util::ByteWriter w;
  w.str("papaya-secagg-params-v1");
  w.str("Z_2^32");
  w.u64(vector_length);
  w.u64(threshold);
  w.bytes(dh.p.to_bytes());
  w.bytes(dh.g.to_bytes());
  return crypto::Sha256::hash(w.data());
}

TrustedSecureAggregator::TrustedSecureAggregator(
    const crypto::DhParams& dh, SecAggParams params,
    std::size_t num_initial_messages, const SimulatedEnclavePlatform& platform,
    const crypto::Digest& binary_measurement, std::uint64_t enclave_seed)
    : dh_(dh), params_(params), mask_sum_(params.vector_length, 0) {
  if (params_.vector_length == 0) {
    throw std::invalid_argument("TSA: vector length must be > 0");
  }
  if (params_.threshold == 0) {
    throw std::invalid_argument("TSA: threshold must be > 0");
  }
  params_hash_ = params_.hash(dh_);

  util::ByteWriter seed_writer;
  seed_writer.str("papaya-tsa-enclave-seed");
  seed_writer.u64(enclave_seed);
  const crypto::Digest seed_digest = crypto::Sha256::hash(seed_writer.data());
  crypto::DhRandom random(seed_digest);

  initial_messages_.reserve(num_initial_messages);
  private_keys_.reserve(num_initial_messages);
  index_consumed_.assign(num_initial_messages, false);
  for (std::size_t i = 0; i < num_initial_messages; ++i) {
    const crypto::DhKeyPair kp = crypto::dh_generate(dh_, random);
    TsaInitialMessage msg;
    msg.index = i;
    msg.dh_public = kp.public_key.to_bytes(dh_.byte_width());
    msg.quote = platform.sign_quote(binary_measurement, params_hash_,
                                    crypto::Sha256::hash(msg.dh_public));
    initial_messages_.push_back(std::move(msg));
    private_keys_.push_back(kp.private_key);
  }
}

TsaAccept TrustedSecureAggregator::admit_contribution(
    std::uint64_t index, std::span<const std::uint8_t> completing_message,
    const crypto::SealedBox& sealed_seed, std::uint64_t sequence, Seed& seed) {
  if (released_) return TsaAccept::kReleased;
  if (index >= private_keys_.size()) return TsaAccept::kIndexUnknown;
  if (index_consumed_[index]) return TsaAccept::kIndexConsumed;

  crypto::BigUInt client_public;
  try {
    client_public = crypto::BigUInt::from_bytes(completing_message);
  } catch (const std::exception&) {
    return TsaAccept::kBadPublicKey;
  }

  crypto::Digest key;
  try {
    const crypto::BigUInt shared =
        crypto::dh_shared_element(dh_, private_keys_[index], client_public);
    key = crypto::dh_derive_key(dh_, shared, kChannelLabel);
  } catch (const std::exception&) {
    return TsaAccept::kBadPublicKey;
  }

  const auto plaintext = crypto::open(key, sequence, sealed_seed);
  if (!plaintext || plaintext->size() != std::tuple_size_v<Seed>) {
    // Tampered or replayed ciphertext: ignore the update (Fig. 16 step 6).
    return TsaAccept::kDecryptionFailed;
  }

  std::copy(plaintext->begin(), plaintext->end(), seed.begin());

  // The index is consumed: "the trusted party will not process any further
  // completing messages to i'th initial message".
  index_consumed_[index] = true;
  ++accepted_;
  return TsaAccept::kAccepted;
}

TsaAccept TrustedSecureAggregator::process_contribution(
    std::uint64_t index, std::span<const std::uint8_t> completing_message,
    const crypto::SealedBox& sealed_seed, std::uint64_t sequence) {
  // Everything entering the enclave is metered: index + completing message +
  // sealed seed in; a one-byte status out.
  boundary_.record_call(
      sizeof(index) + completing_message.size() + sealed_seed.ciphertext.size(),
      1);

  Seed seed{};
  const TsaAccept verdict =
      admit_contribution(index, completing_message, sealed_seed, sequence, seed);
  if (verdict != TsaAccept::kAccepted) return verdict;

  // Re-generate the client's mask from the seed and fold it in.
  crypto::MaskPrng prng(seed);
  for (auto& e : mask_sum_) e += prng.next_u32();
  return TsaAccept::kAccepted;
}

std::vector<TsaAccept> TrustedSecureAggregator::process_contributions(
    std::span<const ContributionRef> batch) {
  // One boundary crossing for the whole batch: the summed inputs in, one
  // status byte per contribution out.  This is the control-path
  // amortization the batched pipeline exists for.
  std::uint64_t bytes_in = 0;
  for (const ContributionRef& c : batch) {
    bytes_in += sizeof(c.index) + c.completing_message.size() +
                c.sealed_seed->ciphertext.size();
  }
  boundary_.record_call(bytes_in, batch.size());

  std::vector<TsaAccept> verdicts;
  verdicts.reserve(batch.size());
  std::vector<Seed> seeds;
  seeds.reserve(batch.size());
  for (const ContributionRef& c : batch) {
    Seed seed{};
    const TsaAccept verdict = admit_contribution(
        c.index, c.completing_message, *c.sealed_seed, c.sequence, seed);
    if (verdict == TsaAccept::kAccepted) seeds.push_back(seed);
    verdicts.push_back(verdict);
  }

  // Bulk unmask material: all accepted seeds expand through the
  // multi-stream ChaCha20 path and fold cache-blocked into the mask sum.
  accumulate_masks(seeds, mask_sum_);
  return verdicts;
}

std::optional<GroupVec> TrustedSecureAggregator::request_unmask() {
  boundary_.record_call(0, released_ || accepted_ < params_.threshold
                               ? 1
                               : mask_sum_.size() * sizeof(std::uint32_t));
  if (released_) return std::nullopt;
  if (accepted_ < params_.threshold) return std::nullopt;
  released_ = true;
  return mask_sum_;
}

}  // namespace papaya::secagg
