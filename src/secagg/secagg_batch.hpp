#pragma once
// Batched untrusted-server side of Asynchronous SecAgg (Fig. 16 steps 5, 7,
// 8), amortizing the per-update crypto control path across a whole batch of
// contributions.
//
// SecureAggregationSession pays the full control path K times: one TSA
// boundary crossing, one DH key recovery, one sealed-seed decrypt, one
// scalar mask expansion, and one full-vector fold per accept() call.  This
// session accepts a std::span of contributions instead: the TSA verifies
// the batch in one crossing, expands all accepted masks with the
// multi-stream ChaCha20 path, and the server folds all accepted masked
// updates into the running sum with one cache-blocked reduction.
//
// Semantics are preserved exactly.  Z_{2^32} addition is associative and
// commutative, so the batched fold is bit-identical to the sequential one;
// a rejected contribution discards only itself (its verdict slot says why);
// and accepted counts, index consumption, and release behaviour match what
// K sequential accept() calls would have produced.

#include <optional>
#include <vector>

#include "secagg/fixed_point.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/tsa.hpp"

namespace papaya::secagg {

/// Batch-mode counterpart of SecureAggregationSession: same protocol role,
/// same TSA, but contributions arrive aggregation-pipeline batches at a
/// time (size chosen by the serving layer, e.g. TaskConfig batch size).
class BatchedSecureAggregationSession {
 public:
  BatchedSecureAggregationSession(TrustedSecureAggregator& tsa,
                                  std::size_t vector_length,
                                  std::size_t aggregation_goal);

  /// Step 5, batched: verdicts[i] is exactly what a sequential accept of
  /// batch[i] would have returned (duplicate indices within the batch
  /// resolve in batch order).  Accepted masked updates are folded into the
  /// running sum with one blocked reduction; rejected ones are discarded
  /// individually.  Throws if any contribution has the wrong vector length
  /// (checked up front, before anything is processed).
  std::vector<TsaAccept> accept_batch(
      std::span<const ClientContribution> batch);

  std::size_t accepted_count() const { return accepted_; }
  bool goal_reached() const { return accepted_ >= goal_; }

  /// The running masked sum (exposed so equivalence tests can compare the
  /// batched fold bit-for-bit against the sequential session's).
  const GroupVec& masked_sum() const { return masked_sum_; }

  /// Steps 7–8: identical to SecureAggregationSession::finalize().
  std::optional<GroupVec> finalize();

  /// Convenience: finalize and decode to floats.
  std::optional<std::vector<float>> finalize_decoded(const FixedPointParams& fp);

 private:
  TrustedSecureAggregator& tsa_;
  GroupVec masked_sum_;
  std::size_t goal_;
  std::size_t accepted_ = 0;
};

}  // namespace papaya::secagg
