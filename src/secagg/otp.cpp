#include "secagg/otp.hpp"

#include "crypto/chacha20.hpp"

namespace papaya::secagg {

GroupVec expand_mask(const Seed& seed, std::size_t length) {
  crypto::MaskPrng prng(seed);
  return prng.words(length);
}

GroupVec mask(std::span<const std::uint32_t> plaintext, const Seed& seed) {
  GroupVec out(plaintext.begin(), plaintext.end());
  crypto::MaskPrng prng(seed);
  for (auto& e : out) e += prng.next_u32();
  return out;
}

GroupVec unmask(std::span<const std::uint32_t> aggregate,
                std::span<const std::uint32_t> mask_sum) {
  return sub(aggregate, mask_sum);
}

}  // namespace papaya::secagg
