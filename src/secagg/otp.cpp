#include "secagg/otp.hpp"

#include <algorithm>

#include "crypto/chacha20.hpp"

namespace papaya::secagg {

GroupVec expand_mask(const Seed& seed, std::size_t length) {
  crypto::MaskPrng prng(seed);
  return prng.words(length);
}

namespace {

std::vector<crypto::MaskPrng> make_prngs(std::span<const Seed> seeds) {
  std::vector<crypto::MaskPrng> prngs;
  prngs.reserve(seeds.size());
  for (const Seed& seed : seeds) prngs.emplace_back(seed);
  return prngs;
}

std::vector<crypto::MaskPrng*> prng_ptrs(std::vector<crypto::MaskPrng>& prngs) {
  std::vector<crypto::MaskPrng*> ptrs(prngs.size());
  for (std::size_t i = 0; i < prngs.size(); ++i) ptrs[i] = &prngs[i];
  return ptrs;
}

}  // namespace

std::vector<GroupVec> expand_masks(std::span<const Seed> seeds,
                                   std::size_t length) {
  std::vector<GroupVec> out(seeds.size(), GroupVec(length));
  auto prngs = make_prngs(seeds);
  const auto ptrs = prng_ptrs(prngs);
  std::vector<std::uint32_t*> outs(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) outs[i] = out[i].data();
  crypto::MaskPrng::fill_words_multi(ptrs, outs, length);
  return out;
}

void accumulate_masks(std::span<const Seed> seeds, GroupVec& sum) {
  if (seeds.empty()) return;
  auto prngs = make_prngs(seeds);
  const auto ptrs = prng_ptrs(prngs);

  // Scratch tile: one chunk of keystream per seed, sized so the whole tile
  // plus the matching `sum` block fits comfortably in cache.  Chunks are a
  // multiple of the 16-word ChaCha20 block so every stream stays
  // block-aligned across chunks (the lockstep fast path applies to all but
  // the final partial chunk).
  constexpr std::size_t kChunkWords = 2048;  // 8 KB per stream
  std::vector<std::uint32_t> scratch(seeds.size() * kChunkWords);
  std::vector<std::uint32_t*> outs(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    outs[i] = scratch.data() + i * kChunkWords;
  }

  for (std::size_t base = 0; base < sum.size(); base += kChunkWords) {
    const std::size_t len = std::min(kChunkWords, sum.size() - base);
    crypto::MaskPrng::fill_words_multi(ptrs, outs, len);
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const std::uint32_t* row = outs[s];
      for (std::size_t i = 0; i < len; ++i) sum[base + i] += row[i];
    }
  }
}

GroupVec mask(std::span<const std::uint32_t> plaintext, const Seed& seed) {
  GroupVec out(plaintext.begin(), plaintext.end());
  crypto::MaskPrng prng(seed);
  for (auto& e : out) e += prng.next_u32();
  return out;
}

GroupVec unmask(std::span<const std::uint32_t> aggregate,
                std::span<const std::uint32_t> mask_sum) {
  return sub(aggregate, mask_sum);
}

}  // namespace papaya::secagg
