#pragma once
// The Trusted Secure Aggregator (TSA) — the trusted party of Fig. 16,
// realized in production by an Intel SGX enclave (App. C) and here by an
// in-process object behind a narrow, metered message API.
//
// Protocol responsibilities (numbers refer to Fig. 16 steps):
//  1. Pre-generate N > n DH key-exchange initial messages, each carrying an
//     attestation quote binding it to the trusted-binary measurement and the
//     public-parameter hash.
//  6. For each client: recover the shared secret from the completing
//     message, decrypt the 16-byte seed, re-generate the client's mask, and
//     fold it into a running sum.  A given initial-message index is consumed
//     by the first valid completing message; later ones are rejected.
//  7. Release the aggregated mask only once >= t clients have been
//     processed, then ignore all further messages (one-shot release).

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/auth_enc.hpp"
#include "crypto/dh.hpp"
#include "secagg/attestation.hpp"
#include "secagg/boundary.hpp"
#include "secagg/group.hpp"
#include "secagg/otp.hpp"

namespace papaya::secagg {

/// Public protocol parameters (Fig. 15): the group is fixed to Z_{2^32} by
/// construction, so the parameters are the vector length and threshold, plus
/// the DH group.  Hashed into every attestation quote.
struct SecAggParams {
  std::size_t vector_length = 0;  ///< l: number of group elements per update
  std::size_t threshold = 1;      ///< t: minimum clients before release

  crypto::Digest hash(const crypto::DhParams& dh) const;
};

/// A DH initial message published by the TSA (Fig. 16 step 1): index,
/// serialized public value, attestation quote.
struct TsaInitialMessage {
  std::uint64_t index = 0;
  util::Bytes dh_public;
  AttestationQuote quote;
};

/// Outcome of feeding one client contribution into the TSA.
enum class TsaAccept {
  kAccepted,
  kIndexUnknown,        ///< index out of range
  kIndexConsumed,       ///< a completing message already used this index
  kDecryptionFailed,    ///< tampered ciphertext / wrong key (Fig. 16 step 6)
  kReleased,            ///< TSA already released; ignores further messages
  kBadPublicKey,        ///< malformed DH completing message
};

class TrustedSecureAggregator {
 public:
  /// `enclave_seed` seeds the TSA's internal randomness (key generation);
  /// `binary_measurement` is the published hash of the trusted binary.
  TrustedSecureAggregator(const crypto::DhParams& dh, SecAggParams params,
                          std::size_t num_initial_messages,
                          const SimulatedEnclavePlatform& platform,
                          const crypto::Digest& binary_measurement,
                          std::uint64_t enclave_seed);

  /// Step 1: the pre-generated initial messages (served via the untrusted
  /// server; quotes make tampering detectable).
  const std::vector<TsaInitialMessage>& initial_messages() const {
    return initial_messages_;
  }

  /// Step 6: process one client's completing message + encrypted seed.
  /// `sequence` is the sequence number the client sealed the seed under
  /// (the protocol uses the initial-message index).
  TsaAccept process_contribution(std::uint64_t index,
                                 std::span<const std::uint8_t> completing_message,
                                 const crypto::SealedBox& sealed_seed,
                                 std::uint64_t sequence);

  /// A borrowed view of one contribution's TSA-destined material, for the
  /// batched entry point below.
  struct ContributionRef {
    std::uint64_t index = 0;
    std::span<const std::uint8_t> completing_message;
    const crypto::SealedBox* sealed_seed = nullptr;
    std::uint64_t sequence = 0;
  };

  /// Batched step 6: process a whole batch in one boundary crossing.  The
  /// control path (index bookkeeping, DH key recovery, seed decryption) runs
  /// per contribution in batch order — so duplicate indices within a batch
  /// resolve exactly as sequential calls would — and then all accepted
  /// seeds' masks are expanded with the multi-stream ChaCha20 path and
  /// folded into the running mask sum in one cache-blocked pass.
  /// verdicts[i] is bit-for-bit what process_contribution(batch[i]) would
  /// have returned, and the mask sum is identical (Z_{2^32} addition
  /// commutes); only the boundary meter differs: one call, with the batch's
  /// summed input bytes and one status byte out per contribution.
  std::vector<TsaAccept> process_contributions(
      std::span<const ContributionRef> batch);

  /// Step 7: release the aggregated mask if >= t contributions were
  /// processed; afterwards the TSA ignores everything.  Returns nullopt
  /// (and stays live) when below threshold.
  std::optional<GroupVec> request_unmask();

  std::size_t accepted_count() const { return accepted_; }
  bool released() const { return released_; }

  const BoundaryMeter& boundary() const { return boundary_; }

 private:
  /// Control path for one contribution: index bookkeeping, DH key recovery,
  /// seed decryption.  On kAccepted the index is consumed, accepted_ is
  /// incremented, and `seed` holds the decrypted mask seed — the caller
  /// folds the mask (scalar per-update, or batched multi-stream).
  TsaAccept admit_contribution(std::uint64_t index,
                               std::span<const std::uint8_t> completing_message,
                               const crypto::SealedBox& sealed_seed,
                               std::uint64_t sequence, Seed& seed);

  const crypto::DhParams& dh_;
  SecAggParams params_;
  crypto::Digest params_hash_{};

  std::vector<TsaInitialMessage> initial_messages_;
  std::vector<crypto::BigUInt> private_keys_;   // enclave-resident
  std::vector<bool> index_consumed_;

  GroupVec mask_sum_;
  std::size_t accepted_ = 0;
  bool released_ = false;

  BoundaryMeter boundary_;
};

}  // namespace papaya::secagg
