#pragma once
// Host <-> TEE boundary accounting (Sec. 5, Fig. 6).
//
// Crossing the enclave boundary is the scarce resource the Asynchronous
// SecAgg design optimizes: naive TEE aggregation moves O(K*m) bytes across
// it, AsyncSecAgg moves O(K + m).  Every simulated TEE call is metered here
// so benchmarks can report transfer volumes and estimated transfer times.

#include <cstdint>

namespace papaya::secagg {

/// Running byte/call counters for one enclave instance.
class BoundaryMeter {
 public:
  void record_call(std::uint64_t bytes_in, std::uint64_t bytes_out) {
    ++calls_;
    bytes_in_ += bytes_in;
    bytes_out_ += bytes_out;
  }

  std::uint64_t calls() const { return calls_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  std::uint64_t total_bytes() const { return bytes_in_ + bytes_out_; }

  void reset() { calls_ = bytes_in_ = bytes_out_ = 0; }

 private:
  std::uint64_t calls_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

/// Linear cost model for boundary crossings, calibrated so that moving
/// 100 x 20 MB across the boundary costs ~650 ms, matching the paper's
/// measurement in Fig. 6 ("nearly 650 milliseconds for 100 clients, each
/// with a 20MB model").
struct BoundaryCostModel {
  double per_call_us = 10.0;       ///< fixed ecall/ocall transition cost
  double per_byte_ns = 0.325;      ///< copy + (re)encryption cost per byte

  double transfer_time_ms(const BoundaryMeter& meter) const {
    return meter.calls() * per_call_us / 1000.0 +
           static_cast<double>(meter.total_bytes()) * per_byte_ns / 1e6;
  }
};

}  // namespace papaya::secagg
