#include "secagg/audit.hpp"

#include <stdexcept>

namespace papaya::secagg {

util::Bytes BinaryRelease::record_bytes() const {
  util::ByteWriter w;
  w.raw({measurement.data(), measurement.size()});
  w.str(manifest);
  return std::move(w).take();
}

crypto::Digest BinaryRelease::leaf_hash() const {
  return crypto::VerifiableLog::leaf_hash(record_bytes());
}

std::uint64_t ReleaseRegistry::publish(BinaryRelease release) {
  const std::uint64_t index = log_.append(release.record_bytes());
  releases_.push_back(std::move(release));
  return index;
}

crypto::InclusionProof ReleaseRegistry::prove_release(
    std::uint64_t index) const {
  return log_.prove_inclusion(index);
}

crypto::ConsistencyProof ReleaseRegistry::prove_since(
    std::uint64_t old_size) const {
  return log_.prove_consistency(old_size);
}

const BinaryRelease& ReleaseRegistry::current_release() const {
  if (releases_.empty()) {
    throw std::logic_error("ReleaseRegistry: no releases published");
  }
  return releases_.back();
}

Auditor::Report Auditor::audit(const ReleaseRegistry& registry) {
  Report report;
  const crypto::LogSnapshot latest = registry.latest_snapshot();

  if (last_snapshot_.has_value() && last_snapshot_->tree_size > 0) {
    // The log may only have grown from what we saw last time.
    if (latest.tree_size < last_snapshot_->tree_size) {
      return report;  // shrunk: equivocation
    }
    const auto proof = registry.prove_since(last_snapshot_->tree_size);
    if (!crypto::verify_consistency(*last_snapshot_, latest, proof)) {
      return report;  // history rewritten: equivocation
    }
  }

  report.consistent = true;
  report.snapshot = latest;
  const auto& releases = registry.releases();
  for (std::uint64_t i = releases_seen_; i < releases.size(); ++i) {
    report.new_releases.push_back(releases[i]);
  }
  releases_seen_ = releases.size();
  last_snapshot_ = latest;
  return report;
}

SnapshotPinningClient::SnapshotPinningClient(crypto::LogSnapshot pinned)
    : pinned_(pinned) {}

bool SnapshotPinningClient::advance(const crypto::LogSnapshot& newer,
                                    const crypto::ConsistencyProof& proof) {
  if (newer.tree_size < pinned_.tree_size) return false;
  if (newer.tree_size == pinned_.tree_size) {
    // Same size: only the identical root is acceptable.
    if (newer.root != pinned_.root) return false;
    return true;
  }
  if (!crypto::verify_consistency(pinned_, newer, proof)) return false;
  pinned_ = newer;
  return true;
}

bool SnapshotPinningClient::accepts_binary(
    const crypto::Digest& measurement, const BinaryRelease& served_release,
    const crypto::InclusionProof& proof) const {
  // The served record must actually describe the attested binary — else a
  // logged-but-different release could vouch for an unlogged binary.
  if (served_release.measurement != measurement) return false;
  return crypto::verify_inclusion(served_release.leaf_hash(), proof, pinned_);
}

bool verify_attested_release(const SimulatedEnclavePlatform& platform,
                             const AttestationQuote& quote,
                             const QuoteExpectations& expectations,
                             std::span<const std::uint8_t> dh_initial_message,
                             const BinaryRelease& served_release,
                             const crypto::InclusionProof& log_proof) {
  if (!platform.verify_quote(quote)) return false;
  if (!util::constant_time_equal(quote.params_hash,
                                 expectations.expected_params_hash)) {
    return false;
  }
  const crypto::Digest msg_hash = crypto::Sha256::hash(dh_initial_message);
  if (!util::constant_time_equal(quote.dh_message_hash, msg_hash)) {
    return false;
  }
  if (served_release.measurement != quote.binary_measurement) return false;
  return crypto::verify_inclusion(served_release.leaf_hash(), log_proof,
                                  expectations.log_snapshot);
}

}  // namespace papaya::secagg
