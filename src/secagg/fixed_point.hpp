#pragma once
// Fixed-point <-> floating-point conversion for secure aggregation (App. D).
//
// A real number a is scaled by a factor c and rounded to the nearest integer
// [ca], then mapped onto Z_{2^32} via two's complement.  Group-element
// addition simulates integer addition as long as no intermediate sum leaves
// [-2^31, 2^31), so callers must budget the scaling factor against the
// expected magnitude of aggregated updates; `max_aggregatable_magnitude`
// makes that budget explicit.

#include <cstdint>
#include <span>
#include <vector>

#include "secagg/group.hpp"

namespace papaya::secagg {

/// Conversion parameters shared by all protocol participants.
struct FixedPointParams {
  /// Scaling factor c: reals are represented with resolution 1/c.
  double scale = 1 << 16;

  /// Largest |sum| representable without wrap-around.
  double max_aggregatable_magnitude() const {
    return (static_cast<double>(1ULL << 31) - 1.0) / scale;
  }

  /// Choose a scale so that aggregating `num_updates` updates each bounded by
  /// `per_update_magnitude` keeps a 2x safety margin against wrap-around.
  static FixedPointParams for_budget(double per_update_magnitude,
                                     std::size_t num_updates);
};

/// Encode one real number into a group element.
std::uint32_t encode_value(double v, const FixedPointParams& params);

/// Decode one group element back into a real number (interprets the element
/// as a signed two's-complement integer).
double decode_value(std::uint32_t e, const FixedPointParams& params);

/// Encode a float vector into a group vector.
GroupVec encode(std::span<const float> values, const FixedPointParams& params);

/// Decode a group vector (typically an aggregated sum) back into floats.
std::vector<float> decode(std::span<const std::uint32_t> elements,
                          const FixedPointParams& params);

}  // namespace papaya::secagg
