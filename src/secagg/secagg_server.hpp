#pragma once
// Untrusted-server side of Asynchronous SecAgg (Fig. 16 steps 5, 7, 8) and
// the naive TEE-aggregation baseline it is compared against in Fig. 6.
//
// The server incrementally aggregates *masked* updates (it never sees a
// plaintext update), forwards each client's sealed seed to the TSA, and once
// the aggregation goal is reached asks the TSA for the unmasking vector and
// subtracts it.

#include <optional>
#include <vector>

#include "secagg/fixed_point.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/tsa.hpp"

namespace papaya::secagg {

/// One secure-aggregation session on the untrusted server, bound to a TSA
/// instance.  Incremental: contributions arrive whenever clients finish,
/// with no inter-client coordination.
class SecureAggregationSession {
 public:
  SecureAggregationSession(TrustedSecureAggregator& tsa,
                           std::size_t vector_length,
                           std::size_t aggregation_goal);

  /// Step 5: fold one masked update into the running sum and forward the
  /// client's TSA-destined material.  Returns the TSA's verdict; on any
  /// non-accepted verdict the masked update is discarded too (an update the
  /// TSA cannot unmask would poison the aggregate).
  TsaAccept accept(const ClientContribution& contribution);

  std::size_t accepted_count() const { return accepted_; }
  bool goal_reached() const { return accepted_ >= goal_; }

  /// The running masked sum (exposed so equivalence tests can compare the
  /// sequential fold bit-for-bit against the batched session's).
  const GroupVec& masked_sum() const { return masked_sum_; }

  /// Steps 7–8: request the unmasking vector and recover the plaintext sum
  /// of group elements.  Returns nullopt if the TSA refuses (threshold not
  /// met or already released).
  std::optional<GroupVec> finalize();

  /// Convenience: finalize and decode to floats.
  std::optional<std::vector<float>> finalize_decoded(const FixedPointParams& fp);

 private:
  TrustedSecureAggregator& tsa_;
  GroupVec masked_sum_;
  std::size_t goal_;
  std::size_t accepted_ = 0;
};

/// Baseline for Fig. 6: naive TEE aggregation.  Every client's *entire
/// encrypted update* crosses the boundary into the enclave, which decrypts
/// and aggregates inside — O(K*m) boundary traffic.  The enclave mechanics
/// are simulated just enough to meter the traffic honestly.
class NaiveTeeAggregator {
 public:
  NaiveTeeAggregator(std::size_t vector_length, std::size_t threshold);

  /// Push one full (encrypted) update across the boundary.
  void submit_update(std::span<const std::uint32_t> encrypted_update);

  /// Pull the aggregate back out (only when >= threshold updates arrived).
  /// Metering matches how Fig. 6 counts boundary traffic: a below-threshold
  /// refusal moves nothing (a 0-byte status call), and the aggregate's bytes
  /// are charged exactly once — repeated calls after a release re-serve the
  /// already-exported sum without re-crossing it.
  std::optional<GroupVec> release();

  const BoundaryMeter& boundary() const { return boundary_; }

 private:
  GroupVec sum_;
  std::size_t threshold_;
  std::size_t count_ = 0;
  bool released_ = false;
  BoundaryMeter boundary_;
};

}  // namespace papaya::secagg
