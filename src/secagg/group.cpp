#include "secagg/group.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::secagg {

namespace {
void check_sizes(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("GroupVec: size mismatch");
}
}  // namespace

void add_in_place(GroupVec& out, std::span<const std::uint32_t> rhs) {
  check_sizes(out.size(), rhs.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += rhs[i];
}

void add_rows_in_place(GroupVec& out,
                       std::span<const std::uint32_t* const> rows) {
  constexpr std::size_t kBlockWords = 4096;  // 16 KB: half a typical L1d
  for (std::size_t base = 0; base < out.size(); base += kBlockWords) {
    const std::size_t len = std::min(kBlockWords, out.size() - base);
    for (const std::uint32_t* row : rows) {
      for (std::size_t i = 0; i < len; ++i) out[base + i] += row[base + i];
    }
  }
}

void sub_in_place(GroupVec& out, std::span<const std::uint32_t> rhs) {
  check_sizes(out.size(), rhs.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] -= rhs[i];
}

GroupVec add(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  check_sizes(a.size(), b.size());
  GroupVec out(a.begin(), a.end());
  add_in_place(out, b);
  return out;
}

GroupVec sub(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  check_sizes(a.size(), b.size());
  GroupVec out(a.begin(), a.end());
  sub_in_place(out, b);
  return out;
}

}  // namespace papaya::secagg
