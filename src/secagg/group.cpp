#include "secagg/group.hpp"

#include <stdexcept>

namespace papaya::secagg {

namespace {
void check_sizes(std::size_t a, std::size_t b) {
  if (a != b) throw std::invalid_argument("GroupVec: size mismatch");
}
}  // namespace

void add_in_place(GroupVec& out, std::span<const std::uint32_t> rhs) {
  check_sizes(out.size(), rhs.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += rhs[i];
}

void sub_in_place(GroupVec& out, std::span<const std::uint32_t> rhs) {
  check_sizes(out.size(), rhs.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] -= rhs[i];
}

GroupVec add(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  check_sizes(a.size(), b.size());
  GroupVec out(a.begin(), a.end());
  add_in_place(out, b);
  return out;
}

GroupVec sub(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  check_sizes(a.size(), b.size());
  GroupVec out(a.begin(), a.end());
  sub_in_place(out, b);
  return out;
}

}  // namespace papaya::secagg
