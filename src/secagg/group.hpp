#pragma once
// Finite Abelian group vectors for secure aggregation.
//
// The protocol (App. A.2, Fig. 14) operates over G^l for a finite Abelian
// group G.  We use G = Z_{2^32}: element-wise addition of std::uint32_t with
// natural wrap-around.  App. D's signed-integer mapping onto Z_n coincides
// with two's-complement representation when n = 2^32, which makes encode /
// decode exact and fast.

#include <cstdint>
#include <span>
#include <vector>

namespace papaya::secagg {

/// A vector over Z_{2^32}.
using GroupVec = std::vector<std::uint32_t>;

/// out[i] += rhs[i] (mod 2^32).  Sizes must match.
void add_in_place(GroupVec& out, std::span<const std::uint32_t> rhs);

/// out[i] += sum over all rows r of rows[r][i] (mod 2^32).  Every row must
/// have out.size() elements.  Blocked: each cache-sized block of `out` is
/// folded against all K rows while it is resident, instead of K full-vector
/// strided passes.  Addition in Z_{2^32} is associative and commutative, so
/// the result is bit-identical to K sequential add_in_place calls.
void add_rows_in_place(GroupVec& out,
                       std::span<const std::uint32_t* const> rows);

/// out[i] -= rhs[i] (mod 2^32).  Sizes must match.
void sub_in_place(GroupVec& out, std::span<const std::uint32_t> rhs);

/// Element-wise a + b.
GroupVec add(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b);

/// Element-wise a - b.
GroupVec sub(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b);

}  // namespace papaya::secagg
