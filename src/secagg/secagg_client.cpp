#include "secagg/secagg_client.hpp"

namespace papaya::secagg {

namespace {
constexpr const char* kChannelLabel = "papaya-tsa-channel-v1";
}

SecAggClient::SecAggClient(const crypto::DhParams& dh,
                           FixedPointParams fixed_point,
                           std::uint64_t client_seed)
    : dh_(dh), fixed_point_(fixed_point), random_([&] {
        util::ByteWriter w;
        w.str("papaya-secagg-client-seed");
        w.u64(client_seed);
        const crypto::Digest d = crypto::Sha256::hash(w.data());
        return crypto::DhRandom(d);
      }()) {}

std::optional<ClientContribution> SecAggClient::prepare_contribution(
    const SimulatedEnclavePlatform& platform,
    const QuoteExpectations& expectations,
    const TsaInitialMessage& initial_message,
    const crypto::InclusionProof& log_proof,
    std::span<const float> model_update) {
  // Fig. 19 step 3: validate the quote; abort on failure.
  if (!verify_attested_message(platform, initial_message.quote, expectations,
                               initial_message.dh_public, log_proof)) {
    return std::nullopt;
  }

  // Complete the DH exchange (Fig. 16 step 3).
  const crypto::DhKeyPair kp = crypto::dh_generate(dh_, random_);
  crypto::BigUInt tsa_public;
  try {
    tsa_public = crypto::BigUInt::from_bytes(initial_message.dh_public);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  crypto::Digest key;
  try {
    const crypto::BigUInt shared =
        crypto::dh_shared_element(dh_, kp.private_key, tsa_public);
    key = crypto::dh_derive_key(dh_, shared, kChannelLabel);
  } catch (const std::exception&) {
    return std::nullopt;
  }

  // Pick the 16-byte seed and mask the encoded update (Fig. 16 step 4).
  const util::Bytes seed_bytes = random_.bytes(std::tuple_size_v<Seed>);
  Seed seed{};
  std::copy(seed_bytes.begin(), seed_bytes.end(), seed.begin());

  ClientContribution out;
  out.message_index = initial_message.index;
  out.masked_update = mask(encode(model_update, fixed_point_), seed);
  out.completing_message = kp.public_key.to_bytes(dh_.byte_width());
  out.sealed_seed = crypto::seal(key, /*sequence=*/initial_message.index, seed);
  return out;
}

}  // namespace papaya::secagg
