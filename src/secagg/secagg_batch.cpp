#include "secagg/secagg_batch.hpp"

#include <stdexcept>

namespace papaya::secagg {

BatchedSecureAggregationSession::BatchedSecureAggregationSession(
    TrustedSecureAggregator& tsa, std::size_t vector_length,
    std::size_t aggregation_goal)
    : tsa_(tsa), masked_sum_(vector_length, 0), goal_(aggregation_goal) {
  if (aggregation_goal == 0) {
    throw std::invalid_argument(
        "BatchedSecureAggregationSession: goal must be > 0");
  }
}

std::vector<TsaAccept> BatchedSecureAggregationSession::accept_batch(
    std::span<const ClientContribution> batch) {
  for (const ClientContribution& c : batch) {
    if (c.masked_update.size() != masked_sum_.size()) {
      throw std::invalid_argument(
          "BatchedSecureAggregationSession: wrong update size");
    }
  }
  if (batch.empty()) return {};

  // One TSA crossing for the whole batch (verification + bulk unmask
  // material on the trusted side).
  std::vector<TrustedSecureAggregator::ContributionRef> refs;
  refs.reserve(batch.size());
  for (const ClientContribution& c : batch) {
    refs.push_back({c.message_index, c.completing_message, &c.sealed_seed,
                    /*sequence=*/c.message_index});
  }
  const std::vector<TsaAccept> verdicts = tsa_.process_contributions(refs);

  // Fold every accepted masked update in one blocked reduction.  A rejected
  // contribution is simply absent from `rows` — it discards only itself.
  std::vector<const std::uint32_t*> rows;
  rows.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (verdicts[i] == TsaAccept::kAccepted) {
      rows.push_back(batch[i].masked_update.data());
    }
  }
  add_rows_in_place(masked_sum_, rows);
  accepted_ += rows.size();
  return verdicts;
}

std::optional<GroupVec> BatchedSecureAggregationSession::finalize() {
  const auto mask_sum = tsa_.request_unmask();
  if (!mask_sum) return std::nullopt;
  return unmask(masked_sum_, *mask_sum);
}

std::optional<std::vector<float>>
BatchedSecureAggregationSession::finalize_decoded(const FixedPointParams& fp) {
  const auto sum = finalize();
  if (!sum) return std::nullopt;
  return decode(*sum, fp);
}

}  // namespace papaya::secagg
