#pragma once
// Client side of Asynchronous SecAgg (Fig. 16 steps 2–4, Fig. 19 step 3).
//
// Given an initial message relayed by the untrusted server, the client
// verifies the attestation quote and the verifiable-log inclusion proof,
// completes the DH exchange, picks a random 16-byte seed, masks its
// fixed-point-encoded model update, and produces:
//   - the masked update, destined for the untrusted Aggregator, and
//   - the sealed seed + DH completing message, destined for the TSA.
// If any verification fails the client aborts (returns nullopt) and its
// private update never leaves the device.

#include <optional>

#include "crypto/dh.hpp"
#include "secagg/attestation.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/otp.hpp"
#include "secagg/tsa.hpp"

namespace papaya::secagg {

/// What the client hands back to the server after local masking.
struct ClientContribution {
  std::uint64_t message_index = 0;   ///< which TSA initial message was used
  GroupVec masked_update;            ///< -> Aggregator (untrusted)
  util::Bytes completing_message;    ///< -> TSA (via server)
  crypto::SealedBox sealed_seed;     ///< -> TSA (via server)
};

class SecAggClient {
 public:
  /// `client_seed` seeds this client's key/seed randomness so simulations
  /// replay deterministically.
  SecAggClient(const crypto::DhParams& dh, FixedPointParams fixed_point,
               std::uint64_t client_seed);

  /// Run the client's half of the protocol.  Returns nullopt — the client
  /// aborts — if the attestation quote or log proof does not verify.
  std::optional<ClientContribution> prepare_contribution(
      const SimulatedEnclavePlatform& platform,
      const QuoteExpectations& expectations,
      const TsaInitialMessage& initial_message,
      const crypto::InclusionProof& log_proof,
      std::span<const float> model_update);

 private:
  const crypto::DhParams& dh_;
  FixedPointParams fixed_point_;
  crypto::DhRandom random_;
};

}  // namespace papaya::secagg
