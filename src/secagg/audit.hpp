#pragma once
// Trusted-binary release registry, auditors, and snapshot-pinning clients
// (App. C.2, Fig. 20).
//
// The paper's update story: remote attestation against a *hardcoded* binary
// hash would force a client update for every enclave release, so instead
// every release is appended to a verifiable log.  Clients pin a log
// *snapshot* and accept any binary with an inclusion proof against it;
// auditors watch the log and verify it is append-only between snapshots, so
// "no trusted binary that interacts with clients can avoid audition without
// getting caught".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "secagg/attestation.hpp"
#include "util/bytes.hpp"

namespace papaya::secagg {

/// One release: the enclave binary's measurement plus a human-auditable
/// manifest ("the identity and manifest of the trusted binary", Fig. 20
/// step 0 — in production the manifest points at source + build recipe so
/// auditors can reproduce the measurement).
struct BinaryRelease {
  crypto::Digest measurement{};
  std::string manifest;

  /// The exact bytes appended to the verifiable log.
  util::Bytes record_bytes() const;
  /// Leaf hash of this release in the log.
  crypto::Digest leaf_hash() const;
};

/// Operator side: owns the log, publishes releases, serves snapshots and
/// proofs over the same API to clients and auditors (App. C.2: "both clients
/// and auditors use the same API", so they necessarily see the same log).
class ReleaseRegistry {
 public:
  /// Append a release.  Returns its log index.
  std::uint64_t publish(BinaryRelease release);

  std::uint64_t size() const { return log_.size(); }
  crypto::LogSnapshot latest_snapshot() const { return log_.snapshot(); }

  /// Inclusion proof for release `index` against the latest snapshot.
  crypto::InclusionProof prove_release(std::uint64_t index) const;
  /// Append-only proof from a previously served snapshot size.
  crypto::ConsistencyProof prove_since(std::uint64_t old_size) const;

  /// Full record list (Fig. 20 auditing step 2: "request for all the
  /// records in the log ... to audit").
  const std::vector<BinaryRelease>& releases() const { return releases_; }

  /// The most recent release (what the enclave fleet should be running).
  const BinaryRelease& current_release() const;

 private:
  crypto::VerifiableLog log_;
  std::vector<BinaryRelease> releases_;
};

/// A public auditor: remembers the last snapshot it saw and, on every
/// audit, (1) verifies the log grew append-only from it and (2) reads the
/// releases appended since, to take away for (out-of-band) build
/// reproduction.  A failed audit is evidence of operator equivocation.
class Auditor {
 public:
  struct Report {
    bool consistent = false;
    crypto::LogSnapshot snapshot;            ///< latest, if consistent
    std::vector<BinaryRelease> new_releases; ///< appended since last audit
  };

  Report audit(const ReleaseRegistry& registry);

  const std::optional<crypto::LogSnapshot>& last_snapshot() const {
    return last_snapshot_;
  }

 private:
  std::optional<crypto::LogSnapshot> last_snapshot_;
  std::uint64_t releases_seen_ = 0;
};

/// Client side of the update flow: ships pinned to a snapshot, accepts a
/// binary measurement only with an inclusion proof against that snapshot,
/// and moves its pin forward only across a verified consistency proof — so
/// the operator can roll new enclave binaries without a client update, but
/// can never swap history out from under the fleet.
class SnapshotPinningClient {
 public:
  explicit SnapshotPinningClient(crypto::LogSnapshot pinned);

  const crypto::LogSnapshot& pinned() const { return pinned_; }

  /// Advance the pin to `newer` if the consistency proof shows the pinned
  /// snapshot is a prefix of it.  Returns false (pin unchanged) otherwise.
  bool advance(const crypto::LogSnapshot& newer,
               const crypto::ConsistencyProof& proof);

  /// Would this client trust the binary attested as `measurement`?  The
  /// server serves the full release record alongside the proof; the client
  /// recomputes the leaf hash, checks the record's measurement matches the
  /// attested one, and verifies inclusion against the pinned snapshot.
  bool accepts_binary(const crypto::Digest& measurement,
                      const BinaryRelease& served_release,
                      const crypto::InclusionProof& proof) const;

 private:
  crypto::LogSnapshot pinned_;
};

/// Release-record-aware variant of attestation.hpp's
/// verify_attested_message: when the log carries full release records
/// (measurement + manifest, as the ReleaseRegistry appends) rather than raw
/// measurements, the inclusion leaf is the record hash, and the client must
/// additionally check that the served record describes the attested binary.
bool verify_attested_release(const SimulatedEnclavePlatform& platform,
                             const AttestationQuote& quote,
                             const QuoteExpectations& expectations,
                             std::span<const std::uint8_t> dh_initial_message,
                             const BinaryRelease& served_release,
                             const crypto::InclusionProof& log_proof);

}  // namespace papaya::secagg
