#include "secagg/attestation.hpp"

namespace papaya::secagg {

SimulatedEnclavePlatform::SimulatedEnclavePlatform(std::uint64_t platform_secret) {
  util::ByteWriter w;
  w.str("papaya-simulated-sgx-platform-key");
  w.u64(platform_secret);
  const crypto::Digest d = crypto::Sha256::hash(w.data());
  secret_.assign(d.begin(), d.end());
}

crypto::Digest SimulatedEnclavePlatform::compute_signature(
    const AttestationQuote& quote) const {
  util::ByteWriter w;
  w.raw(quote.binary_measurement);
  w.raw(quote.params_hash);
  w.raw(quote.dh_message_hash);
  return crypto::hmac_sha256(secret_, w.data());
}

AttestationQuote SimulatedEnclavePlatform::sign_quote(
    const crypto::Digest& binary_measurement, const crypto::Digest& params_hash,
    const crypto::Digest& dh_message_hash) const {
  AttestationQuote quote;
  quote.binary_measurement = binary_measurement;
  quote.params_hash = params_hash;
  quote.dh_message_hash = dh_message_hash;
  quote.signature = compute_signature(quote);
  return quote;
}

bool SimulatedEnclavePlatform::verify_quote(const AttestationQuote& quote) const {
  return util::constant_time_equal(compute_signature(quote), quote.signature);
}

bool verify_attested_message(const SimulatedEnclavePlatform& platform,
                             const AttestationQuote& quote,
                             const QuoteExpectations& expectations,
                             std::span<const std::uint8_t> dh_initial_message,
                             const crypto::InclusionProof& log_proof) {
  if (!platform.verify_quote(quote)) return false;
  if (!util::constant_time_equal(quote.params_hash,
                                 expectations.expected_params_hash)) {
    return false;
  }
  const crypto::Digest msg_hash = crypto::Sha256::hash(dh_initial_message);
  if (!util::constant_time_equal(quote.dh_message_hash, msg_hash)) return false;

  // The trusted binary must be logged: hash the measurement record and check
  // the inclusion proof against the pinned snapshot.
  const crypto::Digest leaf =
      crypto::VerifiableLog::leaf_hash(quote.binary_measurement);
  return crypto::verify_inclusion(leaf, log_proof, expectations.log_snapshot);
}

}  // namespace papaya::secagg
