#pragma once
// CSV export of simulation results — the plotting interface of the
// benchmark harness.
//
// Every figure in the paper is a plot over a time series or a participation
// trace; the bench binaries print the summary rows, and this module writes
// the underlying series to CSV so the figures themselves can be regenerated
// with any plotting tool (the role the authors' internal dashboards play).
// Writers are deliberately strict: they escape fields, emit deterministic
// formatting, and round-trip through the bundled reader (used by tests).

#include <string>
#include <vector>

#include "sim/fl_simulator.hpp"
#include "sim/metrics.hpp"

namespace papaya::sim {

/// A parsed CSV: one header row and uniform-width data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t num_columns() const { return header.size(); }
  std::size_t num_rows() const { return rows.size(); }
};

/// Serialize a table (RFC 4180-style quoting: fields containing commas,
/// quotes, or newlines are quoted, embedded quotes doubled).
/// Throws std::invalid_argument if any row width differs from the header.
std::string to_csv(const CsvTable& table);

/// Parse CSV produced by to_csv (quoting rules as above).
/// Throws std::invalid_argument on malformed input (unterminated quote,
/// ragged rows).
CsvTable parse_csv(const std::string& text);

/// "time_s,value" rows for a loss curve or utilization series.
CsvTable time_series_table(const TimeSeries& series,
                           const std::string& value_name);

/// One row per participation: the Fig. 11 / Table 1 analysis inputs.
CsvTable participation_table(const std::vector<ParticipationRecord>& records);

/// The one-stop export for a finished run: loss curve, active-client
/// series (when recorded), and the headline counters as a key/value table.
struct SimulationTraces {
  CsvTable loss_curve;
  CsvTable active_clients;
  CsvTable participations;
  CsvTable summary;
};
SimulationTraces export_traces(const SimulationResult& result);

}  // namespace papaya::sim
