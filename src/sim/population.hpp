#pragma once
// Heterogeneous device population (Sec. 2, Fig. 2; Sec. 7.4, Fig. 11).
//
// Three properties of the production fleet drive every headline result, and
// all three are first-class parameters here:
//  1. Client execution times are log-normally distributed, spanning more
//     than two orders of magnitude (Fig. 2).
//  2. Example counts are positively correlated with slowness — "the slowest
//     clients often have more training examples" (Sec. 7.4) — modelled with
//     a Gaussian copula between the hardware-slowness draw and the
//     example-count draw.
//  3. Around 10% of clients drop out mid-participation (Fig. 1 caption).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace papaya::sim {

struct DeviceProfile {
  std::uint64_t id = 0;
  /// Hardware slowness multiplier (log-normal across the fleet).
  double hardware_factor = 1.0;
  /// Number of locally stored examples (correlated with hardware_factor).
  std::size_t num_examples = 0;
  /// Mean execution time for one local-training participation, seconds.
  double mean_exec_time_s = 0.0;
  /// Probability this device drops out during a participation.
  double dropout_prob = 0.1;
  /// Capability tags used for task eligibility.
  std::vector<std::string> capabilities;
};

/// How DeviceProfiles come into being.
enum class ProfileSynthesis {
  /// One sequential RNG walks device 0..N-1 at construction — the
  /// historical behaviour, bit-compatible with every committed golden.
  kSequentialEager,
  /// Keyed draws — device i's profile is a pure function of
  /// (seed, i, StreamPurpose::kProfileSynthesis) — materialized up front.
  /// Same marginals as sequential mode, different draw values.
  kKeyedEager,
  /// Keyed draws, synthesized on demand: no per-device storage at all, so
  /// a 10M-device population costs O(1) memory.  device()/devices() are
  /// unavailable; use profile(i).
  kKeyedLazy,
};

struct PopulationConfig {
  std::size_t num_devices = 5000;
  /// Log-normal hardware-slowness parameters: median exp(mu), spread sigma.
  /// sigma = 1.1 gives roughly 2.5 orders of magnitude between the 1st and
  /// 99th percentile, matching Fig. 2's shape.
  double lognormal_mu = 1.0;      ///< median hardware factor e^1 ~ 2.7
  double lognormal_sigma = 1.1;
  /// Example-count range and its correlation with slowness.
  std::size_t min_examples = 4;
  std::size_t max_examples = 64;
  double slowness_example_correlation = 0.8;
  /// Per-example incremental training cost (seconds) and fixed overhead.
  double base_exec_time_s = 2.0;
  double per_example_time_s = 0.25;
  /// Mid-participation dropout probability ("we see up to 10% of clients
  /// drop").
  double dropout_prob = 0.10;
  /// Per-participation execution-time jitter (log-normal sigma).
  double jitter_sigma = 0.2;
  std::uint64_t seed = 42;
  ProfileSynthesis synthesis = ProfileSynthesis::kSequentialEager;
};

class DevicePopulation {
 public:
  explicit DevicePopulation(const PopulationConfig& config);

  std::size_t size() const { return config_.num_devices; }
  bool lazy() const {
    return config_.synthesis == ProfileSynthesis::kKeyedLazy;
  }

  /// Device i's profile, in every synthesis mode (synthesized on the spot
  /// when lazy).  Cheap: a DeviceProfile is a few scalars plus an empty
  /// capability vector.
  DeviceProfile profile(std::size_t i) const;

  /// Eager modes only — a lazy population has no stored profiles to
  /// reference (throws std::logic_error; use profile(i)).
  const DeviceProfile& device(std::size_t i) const;
  const std::vector<DeviceProfile>& devices() const;

  /// Sample the execution time of one participation of device `i`.  Generic
  /// over the generator so the simulator can draw from the device's own
  /// exec-time stream (sim/streams.hpp) instead of a shared sequence.
  template <class RngT>
  double sample_exec_time(std::size_t i, RngT& rng) const {
    return mean_exec_time(i) * rng.lognormal(0.0, config_.jitter_sigma);
  }

  /// Half-open quantile-to-bucket map for the example-count copula draw:
  /// bucket k (of R = hi - lo + 1) owns exactly u in [k/R, (k+1)/R), and the
  /// closed edge u == 1.0 (phi saturates in double for z >~ 8.3) belongs to
  /// the top bucket rather than indexing one past the range.  Exposed for
  /// the bucket-weight distribution test.
  static std::size_t example_count_from_quantile(double u, std::size_t lo,
                                                 std::size_t hi);

  const PopulationConfig& config() const { return config_; }

 private:
  DeviceProfile synthesize_keyed(std::size_t i) const;
  double mean_exec_time(std::size_t i) const;
  /// The shared copula math: both synthesis paths feed their two standard
  /// normals through this, so mode differences are confined to where the
  /// draws come from.
  static DeviceProfile profile_from_draws(const PopulationConfig& config,
                                          std::uint64_t id, double z_h,
                                          double z_mix);

  PopulationConfig config_;
  std::vector<DeviceProfile> devices_;  ///< empty in kKeyedLazy mode
};

}  // namespace papaya::sim
