#pragma once
// Network/latency model for client <-> server traffic.
//
// Clients download the model from a CDN and upload serialized updates in
// chunks (Sec. 6.1).  The model here is a per-device bandwidth draw plus a
// round-trip latency; it shifts absolute times without changing the
// sync-vs-async comparison, and it gives the "communication trips"
// accounting a concrete byte volume.

#include <cstdint>

#include "util/rng.hpp"

namespace papaya::sim {

struct NetworkConfig {
  double mean_download_mbps = 20.0;
  double mean_upload_mbps = 8.0;
  double bandwidth_sigma = 0.5;  ///< log-normal spread across devices
  double rtt_s = 0.1;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkConfig config) : config_(config) {}

  /// Time to download `bytes` for a device with slowness jitter from `rng`.
  double download_time_s(std::uint64_t bytes, util::Rng& rng) const {
    return transfer_time(bytes, config_.mean_download_mbps, rng);
  }

  double upload_time_s(std::uint64_t bytes, util::Rng& rng) const {
    return transfer_time(bytes, config_.mean_upload_mbps, rng);
  }

  const NetworkConfig& config() const { return config_; }

 private:
  double transfer_time(std::uint64_t bytes, double mean_mbps,
                       util::Rng& rng) const {
    const double mbps = mean_mbps * rng.lognormal(0.0, config_.bandwidth_sigma);
    const double seconds =
        static_cast<double>(bytes) * 8.0 / (mbps * 1e6) + config_.rtt_s;
    return seconds;
  }

  NetworkConfig config_;
};

}  // namespace papaya::sim
