#pragma once
// Network/latency model for client <-> server traffic.
//
// Clients download the model from a CDN and upload serialized updates in
// chunks (Sec. 6.1).  The model here is a per-device bandwidth draw plus a
// round-trip latency; it shifts absolute times without changing the
// sync-vs-async comparison, and it gives the "communication trips"
// accounting a concrete byte volume.
//
// The jitter draw is generic over the generator (util::Rng or a
// util::StreamRng handed out by sim::SimStreams), so the simulator can key
// each participation's bandwidth draw to its device instead of a shared
// sequence — see src/sim/streams.hpp.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace papaya::sim {

struct NetworkConfig {
  double mean_download_mbps = 20.0;
  double mean_upload_mbps = 8.0;
  double bandwidth_sigma = 0.5;  ///< log-normal spread across devices
  double rtt_s = 0.1;
  /// Device-side serialization throughput (Mbit/s): how fast the client
  /// runtime turns trained parameters into wire bytes (encode + flash
  /// write).  Used by the pipelined client runtime to cost the serialize
  /// stage; deliberately deterministic (no per-device jitter draw) so
  /// enabling pipelining consumes no extra randomness.
  double serialize_mbps = 160.0;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkConfig config) : config_(config) {
    // A nonpositive bandwidth would divide transfer_time through to an
    // infinite/negative duration and silently wedge the event schedule;
    // reject it at construction, where the bad config is still attributable.
    if (config_.mean_download_mbps <= 0.0 || config_.mean_upload_mbps <= 0.0 ||
        config_.serialize_mbps <= 0.0) {
      throw std::invalid_argument("NetworkModel: bandwidths must be > 0 Mbps");
    }
    if (config_.rtt_s < 0.0) {
      throw std::invalid_argument("NetworkModel: negative RTT");
    }
  }

  /// Time to download `bytes` for a device with slowness jitter from `rng`.
  template <class RngT>
  double download_time_s(std::uint64_t bytes, RngT& rng) const {
    return transfer_time(bytes, config_.mean_download_mbps, rng);
  }

  template <class RngT>
  double upload_time_s(std::uint64_t bytes, RngT& rng) const {
    return transfer_time(bytes, config_.mean_upload_mbps, rng);
  }

  /// Serialization cost of `bytes` on the device (deterministic).
  double serialize_time_s(std::uint64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / (config_.serialize_mbps * 1e6);
  }

  /// Split one drawn upload duration across the chunks of a chunked upload,
  /// proportionally to chunk bytes.  The RTT (connection setup) is charged
  /// to the first chunk; the chunk times sum back to exactly
  /// `total_upload_s`, so the pipelined and sequential runtimes move the
  /// same simulated byte volume in the same total transfer time and the
  /// split consumes no extra randomness.
  std::vector<double> split_upload_time(
      double total_upload_s, const std::vector<std::uint64_t>& chunk_bytes) const {
    std::uint64_t total_bytes = 0;
    for (const std::uint64_t b : chunk_bytes) total_bytes += b;
    const double transfer = std::max(0.0, total_upload_s - config_.rtt_s);
    std::vector<double> times(chunk_bytes.size(), 0.0);
    for (std::size_t i = 0; i < chunk_bytes.size(); ++i) {
      const double frac =
          total_bytes == 0
              ? 1.0 / static_cast<double>(chunk_bytes.size())
              : static_cast<double>(chunk_bytes[i]) /
                    static_cast<double>(total_bytes);
      times[i] = transfer * frac;
    }
    if (!times.empty()) times[0] += total_upload_s - transfer;
    return times;
  }

  const NetworkConfig& config() const { return config_; }

 private:
  template <class RngT>
  double transfer_time(std::uint64_t bytes, double mean_mbps,
                       RngT& rng) const {
    // A zero-byte transfer opens no connection: it costs nothing, and it
    // must not consume a jitter draw (draw budgets are per-participation
    // invariants in per-entity stream mode).
    if (bytes == 0) return 0.0;
    const double mbps = mean_mbps * rng.lognormal(0.0, config_.bandwidth_sigma);
    const double seconds =
        static_cast<double>(bytes) * 8.0 / (mbps * 1e6) + config_.rtt_s;
    return seconds;
  }

  NetworkConfig config_;
};

}  // namespace papaya::sim
