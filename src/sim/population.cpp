#include "sim/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/streams.hpp"

namespace papaya::sim {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

std::size_t DevicePopulation::example_count_from_quantile(double u,
                                                          std::size_t lo,
                                                          std::size_t hi) {
  const auto range = static_cast<double>(hi - lo + 1);
  auto bucket = static_cast<std::size_t>(std::floor(u * range));
  // Half-open buckets: only u == 1.0 exactly lands on `range`, and the top
  // bucket owns its closed upper edge.  (The old code clamped the final
  // example count instead, which mapped the same inputs to the same outputs
  // but left the off-by-one latent for any caller without the clamp.)
  if (bucket >= static_cast<std::size_t>(range)) {
    bucket = static_cast<std::size_t>(range) - 1;
  }
  return lo + bucket;
}

DeviceProfile DevicePopulation::profile_from_draws(
    const PopulationConfig& config, std::uint64_t id, double z_h,
    double z_mix) {
  // Gaussian copula: z_h drives hardware slowness; the example draw mixes
  // z_h (weight rho) with an independent normal so slow devices tend to
  // have more data.
  const double rho =
      std::clamp(config.slowness_example_correlation, -1.0, 1.0);
  const double z_e = rho * z_h + std::sqrt(1.0 - rho * rho) * z_mix;

  DeviceProfile d;
  d.id = id;
  d.hardware_factor =
      std::exp(config.lognormal_mu + config.lognormal_sigma * z_h);
  d.num_examples = example_count_from_quantile(phi(z_e), config.min_examples,
                                               config.max_examples);
  d.mean_exec_time_s =
      d.hardware_factor *
      (config.base_exec_time_s +
       config.per_example_time_s * static_cast<double>(d.num_examples));
  d.dropout_prob = config.dropout_prob;
  return d;
}

DeviceProfile DevicePopulation::synthesize_keyed(std::size_t i) const {
  // Keyed synthesis: the profile is a pure function of (seed, i) via the
  // kProfileSynthesis purpose — the same (root, entity, purpose) hierarchy
  // the simulator's per-entity streams use, so when population.seed matches
  // the simulation seed the profile draws slot into that key space.
  util::StreamRng rng(config_.seed, static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(
                          StreamPurpose::kProfileSynthesis));
  const double z_h = rng.normal();
  const double z_mix = rng.normal();
  return profile_from_draws(config_, static_cast<std::uint64_t>(i), z_h,
                            z_mix);
}

DevicePopulation::DevicePopulation(const PopulationConfig& config)
    : config_(config) {
  if (config.num_devices == 0) {
    throw std::invalid_argument("DevicePopulation: need at least one device");
  }
  if (config.min_examples > config.max_examples) {
    throw std::invalid_argument("DevicePopulation: bad example range");
  }
  if (config.synthesis == ProfileSynthesis::kKeyedLazy) {
    return;  // profiles are synthesized on demand, nothing to store
  }
  devices_.reserve(config.num_devices);
  if (config.synthesis == ProfileSynthesis::kKeyedEager) {
    for (std::size_t i = 0; i < config.num_devices; ++i) {
      devices_.push_back(synthesize_keyed(i));
    }
    return;
  }
  // Sequential synthesis runs once, at t = 0, in device-index order — the
  // draw order is fixed by construction, so it stays on a sequential
  // generator (the per-entity stream discipline of sim/streams.hpp is for
  // draws whose timing the event schedule controls), and the committed
  // goldens pin its output bit for bit.
  // sim-streams-exempt: see above — pre-schedule, fixed-order synthesis.
  util::Rng rng(config.seed ^ 0xd011ceULL);
  for (std::size_t i = 0; i < config.num_devices; ++i) {
    const double z_h = rng.normal();
    const double z_mix = rng.normal();
    devices_.push_back(
        profile_from_draws(config, static_cast<std::uint64_t>(i), z_h, z_mix));
  }
}

DeviceProfile DevicePopulation::profile(std::size_t i) const {
  if (lazy()) {
    if (i >= config_.num_devices) {
      throw std::out_of_range("DevicePopulation: device index out of range");
    }
    return synthesize_keyed(i);
  }
  return devices_.at(i);
}

const DeviceProfile& DevicePopulation::device(std::size_t i) const {
  if (lazy()) {
    throw std::logic_error(
        "DevicePopulation: device() needs eager materialization; "
        "use profile(i) in kKeyedLazy mode");
  }
  return devices_.at(i);
}

const std::vector<DeviceProfile>& DevicePopulation::devices() const {
  if (lazy()) {
    throw std::logic_error(
        "DevicePopulation: devices() needs eager materialization; "
        "use profile(i) in kKeyedLazy mode");
  }
  return devices_;
}

double DevicePopulation::mean_exec_time(std::size_t i) const {
  return lazy() ? synthesize_keyed(i).mean_exec_time_s
                : devices_.at(i).mean_exec_time_s;
}

}  // namespace papaya::sim
