#include "sim/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace papaya::sim {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

DevicePopulation::DevicePopulation(const PopulationConfig& config)
    : config_(config) {
  if (config.num_devices == 0) {
    throw std::invalid_argument("DevicePopulation: need at least one device");
  }
  if (config.min_examples > config.max_examples) {
    throw std::invalid_argument("DevicePopulation: bad example range");
  }
  // Profile synthesis runs once, at t = 0, in device-index order — the draw
  // order is fixed by construction, so it stays on a sequential generator
  // (the per-entity stream discipline of sim/streams.hpp is for draws whose
  // timing the event schedule controls).
  // sim-streams-exempt: see above — pre-schedule, fixed-order synthesis.
  util::Rng rng(config.seed ^ 0xd011ceULL);
  devices_.reserve(config.num_devices);
  const double rho =
      std::clamp(config.slowness_example_correlation, -1.0, 1.0);
  for (std::size_t i = 0; i < config.num_devices; ++i) {
    DeviceProfile d;
    d.id = i;

    // Gaussian copula: z_h drives hardware slowness; the example draw mixes
    // z_h (weight rho) with an independent normal so slow devices tend to
    // have more data.
    const double z_h = rng.normal();
    const double z_e = rho * z_h + std::sqrt(1.0 - rho * rho) * rng.normal();

    d.hardware_factor =
        std::exp(config.lognormal_mu + config.lognormal_sigma * z_h);
    const double u = phi(z_e);
    d.num_examples = config.min_examples +
                     static_cast<std::size_t>(std::floor(
                         u * static_cast<double>(config.max_examples -
                                                 config.min_examples + 1)));
    d.num_examples = std::min(d.num_examples, config.max_examples);

    d.mean_exec_time_s =
        d.hardware_factor *
        (config.base_exec_time_s +
         config.per_example_time_s * static_cast<double>(d.num_examples));
    d.dropout_prob = config.dropout_prob;
    devices_.push_back(std::move(d));
  }
}

}  // namespace papaya::sim
