#include "sim/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace papaya::sim {

void TimeSeries::add(double t, double v) {
  // value_at binary-searches `times`; an out-of-order append would silently
  // corrupt every later lookup.
  assert((times.empty() || t >= times.back()) &&
         "TimeSeries::add: appends must be time-monotone");
  if (capacity_ >= 2) {
    if (phase_++ % stride_ != 0) return;  // decimated away
    if (times.size() >= capacity_) {
      // Keep every second point (the first stays, so the series still
      // starts at its true start) and double the stride.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < times.size(); i += 2, ++kept) {
        times[kept] = times[i];
        values[kept] = values[i];
      }
      times.resize(kept);
      values.resize(kept);
      stride_ *= 2;
    }
  }
  times.push_back(t);
  values.push_back(v);
}

double TimeSeries::value_at(double t) const {
  if (times.empty() || t < times.front()) {
    return std::nan("");
  }
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  const auto idx = static_cast<std::size_t>(it - times.begin()) - 1;
  return values[idx];
}

void TimeSeries::set_capacity(std::size_t cap) {
  capacity_ = cap;
  stride_ = 1;
  phase_ = 0;
}

void ParticipationSummary::observe(const ParticipationRecord& rec) {
  ++records;
  exec_time_s.add(rec.exec_time_s);
  exec_p50.add(rec.exec_time_s);
  exec_p95.add(rec.exec_time_s);
  exec_p99.add(rec.exec_time_s);
  if (rec.dropped_out) {
    ++dropped;
  } else if (rec.round_latency_s > 0.0) {
    // Completed participations; aborted ones (server shed the session) have
    // no protocol-visible latency and are excluded, like dropouts.
    round_latency_s.add(rec.round_latency_s);
    latency_p50.add(rec.round_latency_s);
    latency_p95.add(rec.round_latency_s);
    latency_p99.add(rec.round_latency_s);
  }
  if (rec.update_applied) {
    ++applied;
    staleness.add(static_cast<double>(rec.staleness));
    stale_p50.add(static_cast<double>(rec.staleness));
    stale_p95.add(static_cast<double>(rec.staleness));
    stale_p99.add(static_cast<double>(rec.staleness));
  }
}

}  // namespace papaya::sim
