#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace papaya::sim {

double TimeSeries::value_at(double t) const {
  if (times.empty() || t < times.front()) {
    return std::nan("");
  }
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  const auto idx = static_cast<std::size_t>(it - times.begin()) - 1;
  return values[idx];
}

}  // namespace papaya::sim
