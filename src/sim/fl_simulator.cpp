#include "sim/fl_simulator.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include <cassert>
#include <stdexcept>

namespace papaya::sim {

namespace {

/// Ask the kernel to back a large flat array with transparent huge pages
/// (the system default is madvise-only).  A 10M-device record array is
/// 160 MB accessed at random, one device per event — with 4 KiB pages
/// that is a TLB miss per event; with 2 MiB pages the whole array fits a
/// modern STLB.  Advisory and best-effort: failure is ignored.
void advise_huge_pages(void* data, std::size_t bytes) {
#if defined(__linux__)
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(kPage - 1);
  if (hi > lo) {
    (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

std::unique_ptr<ml::LanguageModel> build_model(ModelKind kind,
                                               const ml::LmConfig& cfg,
                                               util::Rng& rng) {
  switch (kind) {
    case ModelKind::kMlp:
      return ml::make_mlp_lm(cfg, rng);
    case ModelKind::kLstm:
      return ml::make_lstm_lm(cfg, rng);
  }
  throw std::logic_error("unknown model kind");
}

/// Closed-loop scheduling reacts to sampled quantities, which is only legal
/// when draws are schedule-independent: force per-entity streams and the
/// pipelined runtime (whose stage timings are the arrival process) before
/// anything reads the config.
SimulationConfig normalize_config(SimulationConfig cfg) {
  if (cfg.task.closed_loop_clients) {
    cfg.task.pipelined_clients = true;
    cfg.rng_streams = RngStreamMode::kPerEntity;
  }
  // Resolve the event-queue backend once, here, so config_.event_queue and
  // the queue actually constructed always agree (PAPAYA_EVENT_QUEUE wins).
  cfg.event_queue = event_queue_backend_from_env(cfg.event_queue);
  return cfg;
}

}  // namespace

FlSimulator::FlSimulator(SimulationConfig config)
    : config_(normalize_config(std::move(config))),
      streams_(config_.seed, config_.rng_streams,
               /*dense_entities=*/config_.population.num_devices),
      queue_(config_.event_queue) {
  // The POD event record addresses devices with 32 bits; a population past
  // that bound would silently alias entities.
  if (config_.population.num_devices >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "FlSimulator: population exceeds the 32-bit event entity space");
  }
  queue_.set_dispatcher(&FlSimulator::dispatch_event, this);
  corpus_ = std::make_unique<ml::FederatedCorpus>(config_.corpus, config_.seed);
  population_ = std::make_unique<DevicePopulation>(config_.population);
  network_ = std::make_unique<NetworkModel>(config_.network);

  // Build the initial global model deterministically from the seed.
  // sim-streams-exempt: runs once before the event loop; draw order is fixed.
  util::Rng init_rng(config_.seed ^ 0x0de1ULL);
  auto initial_model = build_model(config_.model_kind, config_.model, init_rng);
  const std::size_t model_size = initial_model->num_params();
  config_.task.model_size = model_size;
  model_bytes_ = model_size * sizeof(float);

  model_store_ = std::make_unique<fl::ModelStore>(config_.model_store);
  executor_ = std::make_unique<fl::Executor>(initial_model->clone(),
                                             config_.trainer);
  eval_model_ = initial_model->clone();
  eval_set_ = corpus_->global_test_set(config_.eval_set_size);

  // Server components.
  coordinator_ = std::make_unique<fl::Coordinator>(config_.seed);
  // Sharding is a task property: normalize it once here so the Coordinator,
  // the owning Aggregator's pipelines, and any failover replacement all see
  // the same shard count.  The fold strategy is normalized the same way (an
  // out-of-enum value falls back to adaptive); with the simulator's
  // single-threaded pools every strategy folds each shard's queue in
  // arrival order, so trajectories stay bit-for-bit reproducible under any
  // strategy — forced or adaptive, switches included (the strategy
  // equivalence suite in tests/sim_test.cpp pins this).
  if (config_.task.aggregator_shards == 0) config_.task.aggregator_shards = 1;
  if (!fl::valid_agg_strategy(config_.task.aggregation_strategy)) {
    config_.task.aggregation_strategy = fl::AggStrategy::kAuto;
  }
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.num_aggregators);
       ++i) {
    // Single-threaded worker pools per aggregation shard: stream-to-shard
    // placement is hash-deterministic and each shard folds its queue in
    // arrival order, so simulations stay bit-for-bit reproducible for a
    // given shard count (the summation order changes across shard counts).
    // Multi-threaded pools are exercised by tests/ and bench_micro_*.
    aggregators_.push_back(std::make_unique<fl::Aggregator>(
        "agg-" + std::to_string(i), /*num_threads=*/1));
    coordinator_->register_aggregator(*aggregators_.back(), 0.0);
  }
  std::vector<float> params(initial_model->params().begin(),
                            initial_model->params().end());
  coordinator_->submit_task(config_.task, std::move(params),
                            config_.server_opt);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.num_selectors);
       ++i) {
    selectors_.push_back(
        std::make_unique<fl::Selector>("sel-" + std::to_string(i)));
    selectors_.back()->refresh(*coordinator_);
  }

  devices_.assign(population_->size(), DeviceRecord{});
  has_runtime_.assign((population_->size() + 63) / 64, 0);
  advise_huge_pages(devices_.data(), devices_.size() * sizeof(DeviceRecord));
  if (!devices_.empty()) {
    // Interleave the check-in draw counters with the rest of the per-device
    // record (stride in u32 units across DeviceRecord).  Bound before any
    // draw, so no internal counters exist to migrate.
    constexpr std::size_t kStride = sizeof(DeviceRecord) / sizeof(std::uint32_t);
    streams_.bind_dense_counters(StreamPurpose::kCheckInBackoff,
                                 &devices_.front().checkin_counter, kStride);
    streams_.bind_dense_counters(StreamPurpose::kAvailability,
                                 &devices_.front().avail_counter, kStride);
  }
  metrics_rng_ = util::StreamRng(
      config_.seed, SimStreams::kServerEntity,
      static_cast<std::uint64_t>(StreamPurpose::kMetricsSampling));
  if (config_.metrics.max_timeseries_points > 0) {
    result_.loss_curve.set_capacity(config_.metrics.max_timeseries_points);
    result_.active_clients.set_capacity(config_.metrics.max_timeseries_points);
    result_.busy_clients.set_capacity(config_.metrics.max_timeseries_points);
  }
}

FlSimulator::~FlSimulator() = default;

void FlSimulator::dispatch_event(void* ctx, EventKind kind,
                                 std::uint32_t entity, std::uint32_t payload,
                                 double now) {
  auto* self = static_cast<FlSimulator*>(ctx);
  const auto device = static_cast<std::size_t>(entity);
  const auto generation = static_cast<std::uint64_t>(payload);
  switch (static_cast<SimEvent>(kind)) {
    case SimEvent::kCheckIn:
      if (!self->stopped_) self->handle_check_in(device, now);
      break;
    case SimEvent::kDropout:
      if (!self->stopped_) self->handle_dropout(device, generation, now);
      break;
    case SimEvent::kCompletion:
      if (!self->stopped_) self->handle_completion(device, generation, now);
      break;
    case SimEvent::kCloseBusy:
      // Deliberately no stopped_ gate: busy-gauge bookkeeping ran even
      // after stop() under the closure scheduler, and the fingerprint
      // equality tests pin that behaviour.
      if (self->devices_[device].generation == generation) {
        self->close_busy(device, now);
      }
      break;
    case SimEvent::kReportTick:
      self->handle_server_report_tick(now);
      break;
    case SimEvent::kAggregatorFailure:
      // The current owner crashes: it stops heartbeating and serving.
      if (fl::Aggregator* owner =
              self->route_to_owner(SimStreams::kServerEntity);
          owner != nullptr) {
        self->failed_aggregator_ = owner->id();
      }
      break;
    default:
      throw std::logic_error("FlSimulator: unknown event kind dispatched");
  }
}

void FlSimulator::schedule_sim_event_in(double delay, SimEvent kind,
                                        std::size_t device,
                                        std::uint32_t generation) {
  queue_.schedule_event_in(delay, /*tie_key=*/0,
                           static_cast<EventKind>(kind),
                           static_cast<std::uint32_t>(device), generation);
}

std::unique_ptr<ml::LanguageModel> FlSimulator::make_model_with_params(
    std::span<const float> params) const {
  // sim-streams-exempt: mirrors the construction-time init draw exactly.
  util::Rng init_rng(config_.seed ^ 0x0de1ULL);
  auto model = build_model(config_.model_kind, config_.model, init_rng);
  if (params.size() != model->num_params()) {
    throw std::invalid_argument("make_model_with_params: size mismatch");
  }
  std::copy(params.begin(), params.end(), model->params().begin());
  return model;
}

fl::Aggregator* FlSimulator::route_to_owner(std::uint64_t entity) {
  fl::Selector& selector = *selectors_[streams_.uniform_int(
      entity, StreamPurpose::kRouting, selectors_.size())];
  auto agg_id = selector.route(config_.task.name);
  if (!agg_id) {
    // Stale-map miss: retry via another Selector after refresh (App. E.4).
    fl::Selector& retry = *selectors_[streams_.uniform_int(
        entity, StreamPurpose::kRouting, selectors_.size())];
    retry.refresh(*coordinator_);
    agg_id = retry.route(config_.task.name);
  }
  if (!agg_id) return nullptr;
  for (auto& aggregator : aggregators_) {
    if (aggregator->id() == *agg_id && aggregator->has_task(config_.task.name)) {
      return aggregator.get();
    }
  }
  return nullptr;
}

fl::ClientRuntime& FlSimulator::runtime_for(std::size_t device) {
  std::unique_ptr<fl::ClientRuntime>& slot =
      runtimes_[static_cast<std::uint64_t>(device)];
  if (!slot) {
    const DeviceProfile profile = population_->profile(device);
    fl::ExampleStore store(
        corpus_->client_dataset(profile.id, profile.num_examples),
        /*max_retained_examples=*/10000);
    slot = std::make_unique<fl::ClientRuntime>(profile.id, std::move(store));
    has_runtime_[device >> 6] |= std::uint64_t{1} << (device & 63);
  }
  return *slot;
}

fl::ClientRuntime* FlSimulator::find_runtime(std::size_t device) {
  // Bitmap first: "never joined" — the overwhelming majority at 10M
  // devices — answers from cache without probing the hash map.
  if ((has_runtime_[device >> 6] & (std::uint64_t{1} << (device & 63))) == 0) {
    return nullptr;
  }
  const auto it = runtimes_.find(static_cast<std::uint64_t>(device));
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::uint32_t FlSimulator::acquire_slot(std::size_t device) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(part_pool_.size());
    part_pool_.emplace_back();
  }
  devices_[device].part_slot = slot;
  Participation& part = part_pool_[slot];
  part.version_at_join = 0;
  part.join_time = 0.0;
  part.exec_time = 0.0;
  part.pipelined_latency_s = 0.0;
  part.upload_chunks = 0;
  part.busy_open = false;
  part.model_snapshot.clear();
  return slot;
}

void FlSimulator::release_slot(std::size_t device) {
  const std::uint32_t slot = devices_[device].part_slot;
  // The snapshot's capacity stays with the recycled slot: the pool is sized
  // by peak concurrency, so this trades O(active x model) bytes for never
  // reallocating a snapshot buffer after warm-up.
  part_pool_[slot].model_snapshot.clear();
  devices_[device].part_slot = kNoParticipation;
  free_slots_.push_back(slot);
}

void FlSimulator::note_participation(const ParticipationRecord& rec) {
  result_.summary.observe(rec);
  if (!config_.record_participations) return;
  const std::size_t cap = config_.metrics.max_participation_records;
  if (cap == 0) {
    result_.participations.push_back(rec);
    return;
  }
  // Reservoir sample, Algorithm R: after N offers every record survives
  // with probability cap/N.  The draw comes from the dedicated
  // kMetricsSampling stream, never the participation-path streams, so
  // capping cannot perturb a trajectory.
  ++reservoir_seen_;
  if (result_.participations.size() < cap) {
    result_.participations.push_back(rec);
    return;
  }
  const std::uint64_t victim = metrics_rng_.uniform_int(reservoir_seen_);
  if (victim < cap) {
    result_.participations[static_cast<std::size_t>(victim)] = rec;
  }
}

void FlSimulator::record_active(double now) {
  if (config_.record_utilization) {
    result_.active_clients.add(now, static_cast<double>(active_count_));
  }
}

void FlSimulator::record_busy(double now) {
  if (config_.record_utilization && config_.task.pipelined_clients) {
    result_.busy_clients.add(now, static_cast<double>(busy_count_));
  }
}

void FlSimulator::close_busy(std::size_t device, double now) {
  if (!participating(device)) return;
  Participation& part = participation(device);
  if (!part.busy_open) return;
  part.busy_open = false;
  assert(busy_count_ > 0);
  --busy_count_;
  record_busy(now);
}

void FlSimulator::plan_pipeline(std::size_t device, double download,
                                double upload) {
  // Plan the overlapped device-side schedule for this participation.  The
  // chunk layout is known before training ends (the delta is always
  // model_size parameters), the upload duration is the same single draw the
  // sequential charge uses (split bytes-proportionally across chunks), and
  // serialization is costed deterministically — so the plan consumes no
  // randomness beyond the sequential runtime's.
  Participation& part = participation(device);
  const std::uint64_t wire_bytes =
      fl::serialized_update_bytes(config_.task.model_size);
  const std::uint32_t chunks =
      fl::chunk_count(wire_bytes, config_.upload_chunk_bytes);

  std::vector<std::uint64_t> chunk_bytes(chunks, config_.upload_chunk_bytes);
  chunk_bytes.back() =
      wire_bytes - static_cast<std::uint64_t>(chunks - 1) *
                       config_.upload_chunk_bytes;

  fl::PipelineTimings timings;
  timings.train_s = part.exec_time;
  timings.upload_chunk_s = network_->split_upload_time(upload, chunk_bytes);
  timings.serialize_chunk_s.reserve(chunks);
  for (const std::uint64_t b : chunk_bytes) {
    timings.serialize_chunk_s.push_back(network_->serialize_time_s(b));
  }

  fl::PipelinedClientSession pipeline(std::move(timings));
  part.pipelined_latency_s = download + pipeline.finish_time();
  part.upload_chunks = chunks;

  // Device-busy accounting: the device is busy from join until its
  // pipelined schedule drains (or until the participation ends early).
  part.busy_open = true;
  ++busy_count_;
  record_busy(queue_.now());
  schedule_sim_event_in(part.pipelined_latency_s, SimEvent::kCloseBusy, device,
                        devices_[device].generation);
}

void FlSimulator::schedule_check_in(std::size_t device, double delay) {
  schedule_sim_event_in(delay, SimEvent::kCheckIn, device);
}

void FlSimulator::handle_check_in(std::size_t device, double now) {
  if (participating(device)) return;

  const double backoff = streams_.exponential(
      device, StreamPurpose::kCheckInBackoff,
      1.0 / config_.mean_checkin_interval_s);

  // Device-side eligibility (Sec. 4): idle / charging / unmetered modelled
  // as a Bernoulli availability draw per check-in, plus the participation-
  // history policy.  A device that has never joined has no history and
  // fresh default conditions, so its eligibility is a pure function of the
  // idle draw — the overwhelmingly common rejected check-in at
  // million-device scale never materializes a ClientRuntime (or its
  // per-client dataset).  Draw order is unchanged in every mode.
  const bool idle = !streams_.bernoulli(
      device, StreamPurpose::kAvailability, config_.device_unavailable_prob);
  if (fl::ClientRuntime* runtime = find_runtime(device)) {
    runtime->conditions().idle = idle;
    if (!runtime->check_in_allowed(config_.eligibility, now)) {
      schedule_check_in(device, backoff);
      return;
    }
  } else if (!idle) {
    schedule_check_in(device, backoff);
    return;
  }

  // Selection phase (Sec. 6.1): ask the Coordinator for an eligible task.
  const DeviceProfile profile = population_->profile(device);
  fl::ClientCapabilities caps{profile.capabilities};
  const auto assignment = coordinator_->assign_client(caps);
  if (!assignment) {
    schedule_check_in(device, backoff);
    return;
  }

  // Route through a random Selector; on a stale-map miss, refresh and retry
  // through another Selector (App. E.4).
  fl::Aggregator* aggregator = route_to_owner(device);
  if (aggregator == nullptr || aggregator->id() == failed_aggregator_) {
    coordinator_->assignment_concluded(assignment->task);
    schedule_check_in(device, backoff);
    return;
  }

  const fl::JoinResult join =
      aggregator->client_join(assignment->task, profile.id, now);
  coordinator_->assignment_concluded(assignment->task);
  if (!join.accepted) {
    schedule_check_in(device, backoff);
    return;
  }

  // Participation begins: snapshot the model the client downloads.
  Participation& part = part_pool_[acquire_slot(device)];
  ++devices_[device].generation;
  part.version_at_join = join.model_version;
  part.join_time = now;
  const std::vector<float>& model = aggregator->model(assignment->task);
  part.model_snapshot.assign(model.begin(), model.end());
  part.exec_time =
      streams_.with(device, StreamPurpose::kExecTime, [&](auto& rng) {
        return population_->sample_exec_time(device, rng);
      });
  ++result_.participations_started;
  ++active_count_;
  record_active(now);
  runtime_for(device).record_participation(now);

  const double download =
      streams_.with(device, StreamPurpose::kDownloadJitter, [&](auto& rng) {
        return network_->download_time_s(model_bytes_, rng);
      });
  const std::uint32_t generation = devices_[device].generation;

  if (streams_.bernoulli(device, StreamPurpose::kDropout,
                         profile.dropout_prob)) {
    // Mid-participation dropout at a uniform point in local training.
    const double when =
        download +
        streams_.uniform01(device, StreamPurpose::kDropout) * part.exec_time;
    if (config_.task.pipelined_clients) {
      // Busy until the dropout ends the participation.
      part.busy_open = true;
      ++busy_count_;
      record_busy(now);
    }
    schedule_sim_event_in(when, SimEvent::kDropout, device, generation);
    return;
  }

  const double upload =
      streams_.with(device, StreamPurpose::kUploadJitter, [&](auto& rng) {
        return network_->upload_time_s(model_bytes_, rng);
      });
  // Open loop: the report lands at the sequential stage-sum charge, and the
  // pipelined plan (if any) is purely observational.  Closed loop: the plan
  // *is* the arrival process — the report event moves to the last chunk's
  // upload completion under the overlapped schedule (the pipelined
  // finish_time computed by plan_pipeline), so goal waits and round cadence
  // see the latency a pipelined fleet would actually deliver.  The report
  // still arrives as one event; per-chunk arrival instants are observable
  // via PipelinedClientSession::upload_completion_times but not scheduled
  // as separate server events.
  double completion_delay = download + part.exec_time + upload;
  if (config_.task.pipelined_clients) {
    plan_pipeline(device, download, upload);
    if (config_.task.closed_loop_clients) {
      completion_delay = part.pipelined_latency_s;
    }
  }
  schedule_sim_event_in(completion_delay, SimEvent::kCompletion, device,
                        generation);
}

void FlSimulator::end_participation(std::size_t device, double now,
                                    bool reschedule) {
  if (!participating(device)) return;
  // A participation that ends before its pipelined schedule drains
  // (dropout, abort, timeout) frees the device now.
  close_busy(device, now);
  ++devices_[device].generation;  // cancels in-flight events for this participation
  release_slot(device);
  assert(active_count_ > 0);
  --active_count_;
  record_active(now);
  if (reschedule && !stopped_) {
    schedule_check_in(
        device, streams_.exponential(device, StreamPurpose::kCheckInBackoff,
                                     1.0 / config_.mean_checkin_interval_s));
  }
}

void FlSimulator::handle_dropout(std::size_t device, std::uint64_t generation,
                                 double now) {
  if (!participating(device) || devices_[device].generation != generation) return;
  Participation& part = participation(device);

  const DeviceProfile profile = population_->profile(device);
  if (fl::Aggregator* owner = route_to_owner(device); owner != nullptr) {
    owner->client_failed(config_.task.name, profile.id, now);
  }

  ParticipationRecord rec;
  rec.client_id = profile.id;
  rec.start_time = part.join_time;
  rec.exec_time_s = part.exec_time;
  rec.num_examples = profile.num_examples;
  rec.dropped_out = true;
  note_participation(rec);
  end_participation(device, now, /*reschedule=*/true);
}

void FlSimulator::handle_completion(std::size_t device,
                                    std::uint64_t generation, double now) {
  if (!participating(device) || devices_[device].generation != generation) return;
  Participation& part = participation(device);

  const DeviceProfile profile = population_->profile(device);
  fl::ClientRuntime& runtime = runtime_for(device);

  // Run the actual local training on the snapshot downloaded at join time.
  // The shuffle stream is the kTraining purpose: a per-participation seed
  // expanded through xoshiro (SGD consumes thousands of draws), already
  // schedule-independent in both stream modes.
  util::Rng train_rng(streams_.training_seed(
      profile.id, static_cast<std::uint64_t>(devices_[device].generation)));
  const fl::LocalTrainingResult training =
      executor_->train(part.model_snapshot, part.version_at_join, profile.id,
                       runtime.store(), train_rng);

  fl::Aggregator* owner = route_to_owner(device);
  if (owner == nullptr || owner->id() == failed_aggregator_) {
    // No live owner reachable (failover in progress): the upload is lost.
    end_participation(device, now, /*reschedule=*/true);
    return;
  }
  fl::Aggregator& aggregator = *owner;
  fl::ReportResult report;
  if (config_.task.secagg_enabled) {
    // Report stage hands back the SecAgg upload config; the client verifies
    // the attestation, masks, and uploads (Sec. 6.1 stages 3-4).
    const auto upload = aggregator.secure_upload_config(config_.task.name);
    const auto secure_report =
        upload ? fl::SecureBufferManager::prepare_report(
                     aggregator.secure_platform(config_.task.name), *upload,
                     profile.id, part.version_at_join,
                     training.update.num_examples,
                     aggregator.secure_update_weight(
                         config_.task.name, training.update.num_examples),
                     training.update.delta, config_.seed ^ profile.id)
               : std::nullopt;
    if (secure_report) {
      report = aggregator.client_report_secure(config_.task.name,
                                               *secure_report, now);
    } else {
      aggregator.client_failed(config_.task.name, profile.id, now);
      report.outcome = fl::ReportOutcome::kRejectedUnknown;
    }
  } else {
    // Chunked upload (Sec. 6.1 stage 4): the serialized update travels as
    // CRC-checked chunks and is reassembled server-side.  The pipelined
    // runtime streams each chunk the moment its bytes are serialized; the
    // sequential runtime materializes the full update first.  Both produce
    // bit-identical chunk streams (guarded by tests/pipeline_test.cpp), so
    // the knob cannot change what the server folds.
    const std::uint64_t upload_session =
        profile.id ^ static_cast<std::uint64_t>(devices_[device].generation);
    fl::ChunkAssembler assembler(upload_session);
    std::uint32_t chunks_sent = 0;
    if (config_.task.pipelined_clients) {
      fl::stream_update_chunks(
          upload_session, training.update, config_.upload_chunk_bytes,
          /*block_floats=*/1024, [&](fl::UploadChunk chunk) {
            assembler.accept(fl::UploadChunk::deserialize(chunk.serialize()));
            ++chunks_sent;
          });
    } else {
      const util::Bytes serialized = training.update.serialize();
      const auto chunks = fl::chunk_upload(upload_session, serialized,
                                           config_.upload_chunk_bytes);
      for (const auto& chunk : chunks) {
        assembler.accept(fl::UploadChunk::deserialize(chunk.serialize()));
      }
      chunks_sent = static_cast<std::uint32_t>(chunks.size());
    }
    const auto reassembled = assembler.assemble();
    if (!reassembled) {
      aggregator.client_failed(config_.task.name, profile.id, now);
      report.outcome = fl::ReportOutcome::kRejectedUnknown;
    } else {
      report = aggregator.client_report(config_.task.name, *reassembled, now);
    }
    // Ground truth from the bytes actually streamed (the plan in
    // plan_pipeline agrees today, but the wire is authoritative).
    part.upload_chunks = chunks_sent;
  }

  {
    ParticipationRecord rec;
    rec.client_id = profile.id;
    rec.start_time = part.join_time;
    rec.exec_time_s = part.exec_time;
    rec.num_examples = profile.num_examples;
    rec.update_applied = report.outcome == fl::ReportOutcome::kAccepted;
    rec.staleness =
        aggregator.model_version(config_.task.name) - part.version_at_join;
    rec.round_latency_s = now - part.join_time;
    rec.pipelined_latency_s = config_.task.pipelined_clients
                                  ? part.pipelined_latency_s
                                  : rec.round_latency_s;
    rec.upload_chunks = part.upload_chunks;
    note_participation(rec);
  }

  end_participation(device, now, /*reschedule=*/true);

  if (report.server_stepped) {
    // Publish the new server model through the write-bandwidth-limited
    // store (Sec. 7.3); stalls are metered into the result.
    const std::uint64_t version =
        aggregator.model_version(config_.task.name);
    if (version > last_published_version_) {
      (void)model_store_->publish(version, model_bytes_, now);
      last_published_version_ = version;
    }
    on_aborted_clients(report.aborted_clients, now);
    maybe_evaluate(now, /*force=*/false);

    const fl::TaskStats& stats = aggregator.stats(config_.task.name);
    if (!stopped_ && config_.max_server_steps > 0 &&
        stats.server_steps >= config_.max_server_steps) {
      stop(now);
    }
    if (!stopped_ && config_.max_applied_updates > 0 &&
        stats.updates_applied >= config_.max_applied_updates) {
      stop(now);
    }
  }
}

void FlSimulator::on_aborted_clients(const std::vector<std::uint64_t>& aborted,
                                     double now) {
  for (const std::uint64_t client_id : aborted) {
    const auto device = static_cast<std::size_t>(client_id);
    if (device >= devices_.size()) continue;
    if (!participating(device)) continue;
    const Participation& part = participation(device);
    const DeviceProfile profile = population_->profile(device);
    ParticipationRecord rec;
    rec.client_id = client_id;
    rec.start_time = part.join_time;
    rec.exec_time_s = part.exec_time;
    rec.num_examples = profile.num_examples;
    rec.update_applied = false;
    note_participation(rec);
    end_participation(device, now, /*reschedule=*/true);
  }
}

void FlSimulator::maybe_evaluate(double now, bool force) {
  fl::Aggregator* owner = route_to_owner(SimStreams::kServerEntity);
  if (owner == nullptr) return;
  fl::Aggregator& aggregator = *owner;
  const fl::TaskStats& stats = aggregator.stats(config_.task.name);
  if (!force && config_.eval_every_steps > 1 &&
      stats.server_steps % config_.eval_every_steps != 0) {
    return;
  }
  const std::vector<float>& model = aggregator.model(config_.task.name);
  std::copy(model.begin(), model.end(), eval_model_->params().begin());
  const double loss = eval_model_->loss(eval_set_, {});
  result_.loss_curve.add(now, loss);
  if (!stopped_ && config_.target_loss > 0.0 && loss <= config_.target_loss) {
    result_.reached_target = true;
    result_.time_to_target_s = now;
    stop(now);
  }
}

void FlSimulator::handle_server_report_tick(double now) {
  if (stopped_) return;
  // Injected Aggregator failure (App. E.4): the Coordinator notices the
  // missed heartbeats and moves the task; Selectors pick up the new map on
  // their next refresh below.
  if (!failed_aggregator_.empty()) {
    coordinator_->detect_failures(now, config_.aggregator_failure_timeout_s);
  }
  // Server-side timeout sweep frees slots held by clients that will never
  // report (App. E.1: "considered dead due to missed heartbeats").
  for (auto& aggregator : aggregators_) {
    if (aggregator->id() == failed_aggregator_) continue;  // crashed: silent
    if (!aggregator->has_task(config_.task.name)) {
      // Idle aggregators still heartbeat (empty report).
      coordinator_->aggregator_report(aggregator->id(),
                                      aggregator->next_report_sequence(), now,
                                      {});
      continue;
    }
    const auto expired = aggregator->expire_timeouts(config_.task.name, now);
    for (const std::uint64_t client_id : expired) {
      const auto device = static_cast<std::size_t>(client_id);
      if (device < devices_.size() && participating(device)) {
        const Participation& part = participation(device);
        const DeviceProfile profile = population_->profile(device);
        ParticipationRecord rec;
        rec.client_id = client_id;
        rec.start_time = part.join_time;
        rec.exec_time_s = part.exec_time;
        rec.num_examples = profile.num_examples;
        rec.dropped_out = true;
        note_participation(rec);
        end_participation(device, now, /*reschedule=*/true);
      }
    }

    // Periodic demand report to the Coordinator (Sec. 6.2).
    std::vector<fl::TaskReport> reports;
    for (const auto& task : aggregator->task_names()) {
      reports.push_back({task, aggregator->client_demand(task),
                         aggregator->model_version(task)});
    }
    coordinator_->aggregator_report(aggregator->id(),
                                    aggregator->next_report_sequence(), now,
                                    reports);
  }
  // Selectors refresh their assignment maps "on every report" (App. E.4).
  for (auto& selector : selectors_) selector->refresh(*coordinator_);

  schedule_sim_event_in(config_.report_interval_s, SimEvent::kReportTick, 0);
}

void FlSimulator::stop(double now) {
  stopped_ = true;
  result_.end_time_s = now;
}

SimulationResult FlSimulator::run() {
  // Stagger initial device check-ins across one check-in interval.
  for (std::size_t device = 0; device < population_->size(); ++device) {
    schedule_check_in(
        device, streams_.uniform(device, StreamPurpose::kCheckInBackoff, 0.0,
                                 config_.mean_checkin_interval_s));
  }
  schedule_sim_event_in(config_.report_interval_s, SimEvent::kReportTick, 0);
  if (config_.aggregator_failure_at_s > 0.0) {
    queue_.schedule_event_at(
        config_.aggregator_failure_at_s, /*tie_key=*/0,
        static_cast<EventKind>(SimEvent::kAggregatorFailure), 0, 0);
  }

  queue_.run_until(config_.max_sim_time_s, [this] { return stopped_; });
  if (!stopped_) stop(queue_.now());
  result_.events_processed = queue_.events_processed();

  // Final bookkeeping.  After a failover, stats reflect the current owner
  // (counters on the crashed Aggregator died with it).
  fl::Aggregator* owner = route_to_owner(SimStreams::kServerEntity);
  if (owner == nullptr) {
    for (auto& a : aggregators_) {
      if (a->has_task(config_.task.name)) owner = a.get();
    }
  }
  if (owner == nullptr) {
    throw std::logic_error("FlSimulator: task has no owner at shutdown");
  }
  fl::Aggregator& aggregator = *owner;
  result_.task_stats = aggregator.stats(config_.task.name);
  result_.server_steps = result_.task_stats.server_steps;
  result_.comm_trips = result_.task_stats.updates_received;
  result_.model_store_stats = model_store_->stats();

  const std::vector<float>& model = aggregator.model(config_.task.name);
  result_.final_model.assign(model.begin(), model.end());
  std::copy(model.begin(), model.end(), eval_model_->params().begin());
  result_.final_eval_loss = eval_model_->loss(eval_set_, {});
  if (result_.loss_curve.size() == 0) {
    result_.loss_curve.add(queue_.now(), result_.final_eval_loss);
  }
  return result_;
}

}  // namespace papaya::sim
