#pragma once
// Metrics recording for the evaluation harness.
//
// Two memory regimes coexist:
//  - Full recording (the default): every participation lands in a vector,
//    every series point is kept.  Exact, and fine up to ~10^5 devices.
//  - Streaming (million-device runs): ParticipationSummary folds each record
//    into O(1) counters, running moments, and P² percentile sketches
//    (util/stats.hpp) the moment it is produced, while the simulator's
//    MetricsPolicy caps the raw vector (reservoir sample) and each
//    TimeSeries (stride-doubling decimation).  The summary is always exact
//    regardless of any cap — only the raw samples are thinned.

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace papaya::sim {

/// A (time, value) series, e.g. loss vs sim-time or active clients vs time.
/// Appends must be time-monotone (value_at binary-searches `times`).
struct TimeSeries {
  std::vector<double> times;
  std::vector<double> values;

  void add(double t, double v);
  std::size_t size() const { return times.size(); }

  /// Last value at or before time t (or NaN if none).
  double value_at(double t) const;

  /// Opt-in point cap (>= 2).  When the series fills, every second kept
  /// point is dropped and the sampling stride doubles, so the series always
  /// spans the whole run with at most `cap` points and at most a 2x gap
  /// nonuniformity — deterministic, no RNG.  0 restores unlimited growth.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_ = 0;  ///< 0 = unlimited (legacy)
  std::size_t stride_ = 1;    ///< keep every stride-th append
  std::size_t phase_ = 0;     ///< appends seen since capacity was set
};

/// One client participation, recorded for the Sec. 7.4 fairness analysis
/// (Fig. 11 distributions, KS tests).
struct ParticipationRecord {
  std::uint64_t client_id = 0;
  double start_time = 0.0;
  double exec_time_s = 0.0;       ///< local-training duration
  std::size_t num_examples = 0;
  /// Whether the client's update ended up counted toward a server step.
  bool update_applied = false;
  /// Whether the client dropped out mid-participation.
  bool dropped_out = false;
  std::uint64_t staleness = 0;    ///< at upload (applied updates only)

  // -- Round-latency accounting (completed participations only) ------------
  /// join → upload complete under the sequential stage-sum charge
  /// (download + train + upload), i.e. the protocol-visible duration.
  double round_latency_s = 0.0;
  /// join → upload complete under the pipelined client runtime
  /// (train ∥ serialize ∥ chunked upload).  Equals round_latency_s when
  /// TaskConfig::pipelined_clients is off.
  double pipelined_latency_s = 0.0;
  /// Chunks the serialized update travelled as.
  std::uint32_t upload_chunks = 0;
};

/// Constant-memory digest of every ParticipationRecord a run produced —
/// exact counts and moments, P² sketches for the percentiles.  Fed by the
/// simulator for *all* participations, including runs where raw record
/// retention is capped or disabled, so a 10M-participation run still
/// reports its latency tail.
struct ParticipationSummary {
  std::uint64_t records = 0;    ///< every participation observed
  std::uint64_t dropped = 0;    ///< dropped out mid-participation
  std::uint64_t applied = 0;    ///< update counted toward a server step

  util::RunningStat exec_time_s;      ///< all records (planned exec time)
  util::RunningStat round_latency_s;  ///< completed participations only
  util::RunningStat staleness;        ///< applied updates only

  util::P2Quantile exec_p50{0.50}, exec_p95{0.95}, exec_p99{0.99};
  util::P2Quantile latency_p50{0.50}, latency_p95{0.95}, latency_p99{0.99};
  /// Staleness distribution of applied updates (paper Fig. 9 territory):
  /// exported at any population scale in O(1) memory — the 10M-device
  /// bench_macro_population rows report these directly.
  util::P2Quantile stale_p50{0.50}, stale_p95{0.95}, stale_p99{0.99};

  void observe(const ParticipationRecord& rec);
};

}  // namespace papaya::sim
