#pragma once
// Metrics recording for the evaluation harness.

#include <cstdint>
#include <string>
#include <vector>

namespace papaya::sim {

/// A (time, value) series, e.g. loss vs sim-time or active clients vs time.
struct TimeSeries {
  std::vector<double> times;
  std::vector<double> values;

  void add(double t, double v) {
    times.push_back(t);
    values.push_back(v);
  }
  std::size_t size() const { return times.size(); }

  /// Last value at or before time t (or NaN if none).
  double value_at(double t) const;
};

/// One client participation, recorded for the Sec. 7.4 fairness analysis
/// (Fig. 11 distributions, KS tests).
struct ParticipationRecord {
  std::uint64_t client_id = 0;
  double start_time = 0.0;
  double exec_time_s = 0.0;       ///< local-training duration
  std::size_t num_examples = 0;
  /// Whether the client's update ended up counted toward a server step.
  bool update_applied = false;
  /// Whether the client dropped out mid-participation.
  bool dropped_out = false;
  std::uint64_t staleness = 0;    ///< at upload (applied updates only)

  // -- Round-latency accounting (completed participations only) ------------
  /// join → upload complete under the sequential stage-sum charge
  /// (download + train + upload), i.e. the protocol-visible duration.
  double round_latency_s = 0.0;
  /// join → upload complete under the pipelined client runtime
  /// (train ∥ serialize ∥ chunked upload).  Equals round_latency_s when
  /// TaskConfig::pipelined_clients is off.
  double pipelined_latency_s = 0.0;
  /// Chunks the serialized update travelled as.
  std::uint32_t upload_chunks = 0;
};

}  // namespace papaya::sim
