#include "sim/trace_export.hpp"

#include <cstdio>
#include <stdexcept>

namespace papaya::sim {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    append_field(out, row[i]);
  }
  out += '\n';
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string to_csv(const CsvTable& table) {
  std::string out;
  append_row(out, table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      throw std::invalid_argument("to_csv: ragged row");
    }
    append_row(out, row);
  }
  return out;
}

CsvTable parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quote");
  if (row_has_content || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  if (rows.empty()) throw std::invalid_argument("parse_csv: empty input");

  CsvTable table;
  table.header = std::move(rows.front());
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != table.header.size()) {
      throw std::invalid_argument("parse_csv: ragged row");
    }
    table.rows.push_back(std::move(rows[r]));
  }
  return table;
}

CsvTable time_series_table(const TimeSeries& series,
                           const std::string& value_name) {
  CsvTable table;
  table.header = {"time_s", value_name};
  for (std::size_t i = 0; i < series.size(); ++i) {
    table.rows.push_back({fmt(series.times[i]), fmt(series.values[i])});
  }
  return table;
}

CsvTable participation_table(
    const std::vector<ParticipationRecord>& records) {
  CsvTable table;
  table.header = {"client_id",    "start_time_s", "exec_time_s",
                  "num_examples", "update_applied", "dropped_out",
                  "staleness"};
  for (const ParticipationRecord& r : records) {
    table.rows.push_back({fmt(static_cast<std::uint64_t>(r.client_id)),
                          fmt(r.start_time), fmt(r.exec_time_s),
                          fmt(static_cast<std::uint64_t>(r.num_examples)),
                          r.update_applied ? "1" : "0",
                          r.dropped_out ? "1" : "0", fmt(r.staleness)});
  }
  return table;
}

SimulationTraces export_traces(const SimulationResult& result) {
  SimulationTraces traces;
  traces.loss_curve = time_series_table(result.loss_curve, "eval_loss");
  traces.active_clients =
      time_series_table(result.active_clients, "active_clients");
  traces.participations = participation_table(result.participations);

  CsvTable summary;
  summary.header = {"metric", "value"};
  summary.rows.push_back({"reached_target", result.reached_target ? "1" : "0"});
  summary.rows.push_back({"time_to_target_s", fmt(result.time_to_target_s)});
  summary.rows.push_back({"end_time_s", fmt(result.end_time_s)});
  summary.rows.push_back({"server_steps", fmt(result.server_steps)});
  summary.rows.push_back({"comm_trips", fmt(result.comm_trips)});
  summary.rows.push_back(
      {"participations_started", fmt(result.participations_started)});
  summary.rows.push_back({"updates_applied",
                          fmt(result.task_stats.updates_applied)});
  summary.rows.push_back({"updates_discarded",
                          fmt(result.task_stats.updates_discarded)});
  summary.rows.push_back({"final_eval_loss", fmt(result.final_eval_loss)});
  summary.rows.push_back(
      {"model_store_stall_s", fmt(result.model_store_stats.stall_s)});
  traces.summary = std::move(summary);
  return traces;
}

}  // namespace papaya::sim
