#pragma once
// Hierarchical RNG streams for the simulator: who draws what, addressed as
// (root seed, entity, purpose, draw index).
//
// The simulator historically drew every stochastic quantity from one shared
// xoshiro in event-schedule order.  That is deterministic, but it welds the
// random draws to the schedule: any change in *when* events run (e.g. a
// closed-loop schedule reacting to client completion times) shifts every
// downstream draw and destroys trajectory comparability.  SimStreams breaks
// the weld: in per-entity mode each (entity, purpose) pair owns a
// counter-based util::StreamRng whose i-th draw is a pure function of
// (root_seed, entity, purpose, i) — draw values are independent of event
// interleaving, so the schedule may legally react to them.
//
// Migration shim: kSharedLegacy mode routes every request, whatever its
// (entity, purpose) label, to the one shared xoshiro in call order — the
// pre-stream behaviour, bit for bit (equivalence goldens in
// tests/sim_test.cpp).  It remains the default so existing seeds reproduce
// existing trajectories; closed-loop scheduling requires (and forces)
// per-entity streams.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace papaya::sim {

/// What a draw is *for*.  Every stochastic quantity on the simulator's
/// participation path names one of these; adding a draw site means adding a
/// purpose (never reusing one — reuse would alias two sites' streams).
enum class StreamPurpose : std::uint64_t {
  kCheckInBackoff = 1,  ///< initial stagger + inter-check-in exponential
  kAvailability = 2,    ///< idle/charging/unmetered Bernoulli per check-in
  kExecTime = 3,        ///< per-participation execution-time jitter
  kDownloadJitter = 4,  ///< per-participation download bandwidth draw
  kUploadJitter = 5,    ///< per-participation upload bandwidth draw
  kDropout = 6,         ///< dropout Bernoulli + mid-training dropout point
  kTraining = 7,        ///< local-SGD shuffle stream (seed derivation)
  kRouting = 8,         ///< Selector choice when routing to the task owner
  // FSM workload harness (src/fsm/): one triple per harness actor, so a
  // failure replays from (seed, actor, step) alone.
  kFsmAction = 9,    ///< per-step transition choice in fsm::run_workload
  kFsmPayload = 10,  ///< state-action draws (weights, deltas, picks)
  kFsmScenario = 11, ///< scenario injection (availability, byzantine flips)
  // Million-device scale-out (lazy materialization + streaming metrics).
  kProfileSynthesis = 12,  ///< DevicePopulation keyed profile draws
  kMetricsSampling = 13,   ///< reservoir sampling of participation records
};

enum class RngStreamMode {
  /// One shared xoshiro consumed in call order (pre-stream behaviour,
  /// bit-identical; draw values depend on the event schedule).
  kSharedLegacy,
  /// Counter-based per-(entity, purpose) streams (schedule-independent
  /// draws; required by closed-loop scheduling).
  kPerEntity,
};

class SimStreams {
 public:
  /// Entity id for server-side draws with no client attached (final-report
  /// routing, evaluation routing, failure injection).
  static constexpr std::uint64_t kServerEntity = ~0ULL;

  SimStreams(std::uint64_t root_seed, RngStreamMode mode)
      : SimStreams(root_seed, mode, /*dense_entities=*/0) {}

  /// `dense_entities` enables the dense-counter representation for entities
  /// with id < dense_entities: instead of materializing a StreamRng object
  /// per (entity, purpose) in a hash map (~100 B per pair — hundreds of MB
  /// at a million devices), with() keeps only a u32 draw counter per entity
  /// in a lazily-allocated per-purpose array (4 B per entity per touched
  /// purpose) and reconstructs the StreamRng around it on every call.  The
  /// draws are bit-identical either way: a StreamRng's i-th output is a
  /// pure function of (key, i), so (key, counter) is the whole state.
  SimStreams(std::uint64_t root_seed, RngStreamMode mode,
             std::size_t dense_entities)
      : mode_(mode),
        root_(root_seed),
        shared_(root_seed ^ 0x51713ULL),
        dense_entities_(dense_entities) {}

  RngStreamMode mode() const { return mode_; }
  bool per_entity() const { return mode_ == RngStreamMode::kPerEntity; }

  /// Run `fn` with the generator for (entity, purpose): the dedicated
  /// stream in per-entity mode, the shared legacy xoshiro otherwise.  `fn`
  /// must be callable with any RngDistributions-derived generator.
  template <class Fn>
  auto with(std::uint64_t entity, StreamPurpose purpose, Fn&& fn)
      -> decltype(fn(std::declval<util::Rng&>())) {
    if (mode_ == RngStreamMode::kPerEntity) {
      const auto purpose_idx = static_cast<std::size_t>(purpose);
      if (entity < dense_entities_ && purpose_idx < kDensePurposes) {
        std::uint32_t& counter = dense_counter(entity, purpose_idx);
        util::StreamRng rng(util::StreamRng::derive_key(
            root_, entity, static_cast<std::uint64_t>(purpose)));
        rng.seek(counter);
        auto result = fn(rng);
        counter = static_cast<std::uint32_t>(rng.draw_index());
        return result;
      }
      return fn(stream(entity, purpose));
    }
    return fn(shared_);
  }

  double uniform(std::uint64_t entity, StreamPurpose p, double lo, double hi) {
    return with(entity, p, [&](auto& g) { return g.uniform(lo, hi); });
  }
  double uniform01(std::uint64_t entity, StreamPurpose p) {
    return with(entity, p, [&](auto& g) { return g.uniform(); });
  }
  double exponential(std::uint64_t entity, StreamPurpose p, double lambda) {
    return with(entity, p, [&](auto& g) { return g.exponential(lambda); });
  }
  bool bernoulli(std::uint64_t entity, StreamPurpose p, double prob) {
    return with(entity, p, [&](auto& g) { return g.bernoulli(prob); });
  }
  std::uint64_t uniform_int(std::uint64_t entity, StreamPurpose p,
                            std::uint64_t n) {
    return with(entity, p, [&](auto& g) { return g.uniform_int(n); });
  }

  /// Seed for a client's local-training Rng (the kTraining purpose).  Local
  /// SGD consumes thousands of draws, so it expands a per-participation seed
  /// through xoshiro rather than hashing per draw; the seed itself is
  /// schedule-independent in both modes (it never touches the shared
  /// sequence — the pre-stream code already derived it this way).
  std::uint64_t training_seed(std::uint64_t client_id,
                              std::uint64_t generation) const {
    if (mode_ == RngStreamMode::kPerEntity) {
      return util::StreamRng::derive_key(
                 root_, client_id,
                 static_cast<std::uint64_t>(StreamPurpose::kTraining)) ^
             generation;
    }
    // Legacy formula, kept bit-compatible.
    return root_ ^ (client_id * 0x7f4a7c15ULL) ^ generation;
  }

  /// The dedicated stream for (entity, purpose).  Per-entity mode only;
  /// lazily materialized, so idle entities cost nothing.
  ///
  /// NOT thread-safe: materialization inserts into an unordered_map.
  /// Concurrent users (the FSM harness) must call stream() for every
  /// (entity, purpose) they will touch *before* going parallel — returned
  /// references stay stable once no further inserts happen.
  util::StreamRng& stream(std::uint64_t entity, StreamPurpose purpose) {
    const std::uint64_t key = util::StreamRng::derive_key(
        root_, entity, static_cast<std::uint64_t>(purpose));
    auto [it, inserted] = streams_.try_emplace(key, util::StreamRng(key));
    return it->second;
  }

  /// Streams materialized so far (test hook: the FSM harness asserts its
  /// pre-materialization discipline against it).
  std::size_t materialized_streams() const { return streams_.size(); }

  /// Route a dense purpose's draw counters into caller-owned storage:
  /// entity e's counter lives at base[e * stride] (stride in u32 units).
  /// The simulator binds its check-in purposes into the per-device record
  /// array so a rejected check-in — two draws against the same device —
  /// touches one cache line instead of two 40 MB-apart arrays.  Draw
  /// values are bit-identical to the internal layout: a StreamRng's i-th
  /// output depends only on (key, counter), never on where the counter is
  /// stored.  The storage must outlive this SimStreams and cover every
  /// entity below dense_entities; any counters already accumulated in the
  /// internal array are NOT migrated, so bind before the first draw.
  void bind_dense_counters(StreamPurpose purpose, std::uint32_t* base,
                           std::size_t stride) {
    const auto idx = static_cast<std::size_t>(purpose);
    if (idx < kDensePurposes) bound_[idx] = {base, stride};
  }

 private:
  /// Purposes eligible for dense counters (indexed by enum value).  Growing
  /// the enum past this only means new purposes take the map path.
  static constexpr std::size_t kDensePurposes = 16;

  std::uint32_t& dense_counter(std::uint64_t entity, std::size_t purpose_idx) {
    const Binding& bound = bound_[purpose_idx];
    if (bound.base != nullptr) return bound.base[entity * bound.stride];
    std::vector<std::uint32_t>& counters = dense_[purpose_idx];
    if (counters.empty()) counters.assign(dense_entities_, 0);
    return counters[entity];
  }

  RngStreamMode mode_;
  std::uint64_t root_;
  util::Rng shared_;
  std::unordered_map<std::uint64_t, util::StreamRng> streams_;
  std::size_t dense_entities_ = 0;
  /// Per-purpose draw counters for dense entities; a purpose's array is
  /// allocated on its first draw, so untouched purposes cost nothing.
  std::array<std::vector<std::uint32_t>, kDensePurposes> dense_;
  /// Caller-owned counter storage (bind_dense_counters); base == nullptr
  /// means the purpose uses the internal dense_ array above.
  struct Binding {
    std::uint32_t* base = nullptr;
    std::size_t stride = 1;
  };
  std::array<Binding, kDensePurposes> bound_{};
};

}  // namespace papaya::sim
