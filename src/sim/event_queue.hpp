#pragma once
// Discrete-event simulation core: a virtual clock and an event queue.
//
// All wall-clock quantities in the reproduction (round durations, time to
// target loss, server updates per hour) are measured on this clock, so the
// comparisons between SyncFL and AsyncFL are ratios within one consistent
// time base (DESIGN.md substitution table).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace papaya::sim {

using EventFn = std::function<void(double now)>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(double when, EventFn fn);
  /// Schedule `fn` after `delay` seconds.
  void schedule_in(double delay, EventFn fn);

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Pop and run the next event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties, `until` is reached, or `stop` returns
  /// true (checked between events).
  void run_until(double until, const std::function<bool()>& stop = nullptr);

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace papaya::sim
