#pragma once
// Discrete-event simulation core: a virtual clock and an event queue.
//
// All wall-clock quantities in the reproduction (round durations, time to
// target loss, server updates per hour) are measured on this clock, so the
// comparisons between SyncFL and AsyncFL are ratios within one consistent
// time base (DESIGN.md substitution table).
//
// Pop order is a documented *total* order: (time, tie_key, seq), ascending.
// `seq` is the per-queue arrival number, so same-time same-key events pop
// FIFO — the historical behaviour, unchanged for every caller of the
// two-argument schedule_at/schedule_in (tie_key 0).  Arrival order is only
// well-defined within one thread, though: when several threads schedule
// equal-time events concurrently, their seq interleaving is a race, and
// before the tie key existed the pop order was too.  Schedulers that need a
// schedule-independent order pass an explicit `tie_key` (an entity id, an
// actor index) and the pop order at that timestamp becomes a pure function
// of the keys.
//
// Thread safety: schedule_at/schedule_in and the inspectors may be called
// concurrently from any thread (internal lock, an independent root in the
// util/sync.hpp hierarchy — held only around heap bookkeeping, never while
// an event function runs).  step()/run_until() are single-driver: exactly
// one thread may pump the queue, as event functions run outside the lock.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sync.hpp"

namespace papaya::sim {

using EventFn = std::function<void(double now)>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(double when, EventFn fn);
  /// Schedule `fn` after `delay` seconds.
  void schedule_in(double delay, EventFn fn);

  /// Same, with an explicit tie key: equal-time events pop in ascending
  /// `tie_key` order regardless of which thread scheduled them first.
  void schedule_at(double when, std::uint64_t tie_key, EventFn fn);
  void schedule_in(double delay, std::uint64_t tie_key, EventFn fn);

  double now() const {
    util::LockGuard lock(mutex_);
    return now_;
  }
  bool empty() const {
    util::LockGuard lock(mutex_);
    return heap_.empty();
  }
  std::size_t pending() const {
    util::LockGuard lock(mutex_);
    return heap_.size();
  }

  /// Pop and run the next event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties, `until` is reached, or `stop` returns
  /// true (checked between events).
  void run_until(double until, const std::function<bool()>& stop = nullptr);

 private:
  struct Event {
    double time;
    std::uint64_t tie_key;  // caller-chosen order among simultaneous events
    std::uint64_t seq;      // arrival FIFO, the final tie-break
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie_key != b.tie_key) return a.tie_key > b.tie_key;
      return a.seq > b.seq;
    }
  };

  mutable util::Mutex mutex_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_
      PAPAYA_GUARDED_BY(mutex_);
  double now_ PAPAYA_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t next_seq_ PAPAYA_GUARDED_BY(mutex_) = 0;
};

}  // namespace papaya::sim
