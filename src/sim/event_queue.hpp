#pragma once
// Discrete-event simulation core: a virtual clock and an event queue.
//
// All wall-clock quantities in the reproduction (round durations, time to
// target loss, server updates per hour) are measured on this clock, so the
// comparisons between SyncFL and AsyncFL are ratios within one consistent
// time base (DESIGN.md substitution table).
//
// Pop order is a documented *total* order: (time, tie_key, seq), ascending.
// `seq` is the per-queue arrival number, so same-time same-key events pop
// FIFO — the historical behaviour, unchanged for every caller of the
// two-argument schedule_at/schedule_in (tie_key 0).  Arrival order is only
// well-defined within one thread, though: when several threads schedule
// equal-time events concurrently, their seq interleaving is a race, and
// before the tie key existed the pop order was too.  Schedulers that need a
// schedule-independent order pass an explicit `tie_key` (an entity id, an
// actor index) and the pop order at that timestamp becomes a pure function
// of the keys.
//
// The queued record is a 32-byte POD (`kEventRecordBytes`): time, tie key,
// and a packed seq+kind word, plus a 32-bit entity id and a 32-bit scalar
// payload.  Million-device runs schedule tens of millions of events; at
// that scale the event record *is* the queue's memory footprint, and a
// type-erased std::function payload (32 bytes of inline storage plus a
// heap-allocated closure for anything capturing more than one pointer)
// dominated both bytes/event and allocator time.  Two scheduling surfaces
// sit on the slim record:
//
//   - schedule_event_at/in: the hot path.  The caller registers one
//     dispatcher (set_dispatcher) per queue — a plain function pointer plus
//     context — and schedules (kind, entity, payload) triples.  Nothing is
//     allocated per event, ever (verified by tests/event_engine_test.cpp).
//   - schedule_at/in (EventFn): the historical closure API, kept for tests,
//     examples and cold paths.  The closure parks in a pooled slot table
//     (slots are recycled through a free list, so steady-state closure
//     traffic allocates only when the closure itself captures too much for
//     std::function's inline storage); the queued record stores the slot
//     index in `payload` under the reserved kind 0.
//
// Three backends implement the same pop-order contract behind one API:
//
//   kHeap      std::priority_queue.  O(log n) per op; the historical
//              default and the reference for the differential tests.
//   kCalendar  calendar queue (Brown, CACM 1988).  Amortized O(1) per op:
//              a power-of-two ring of buckets each spanning `width` seconds
//              of virtual time; push links an event into bucket
//              floor(time/width) mod N, pop scans forward from a cursor and
//              takes the minimum of the first bucket holding an event in
//              its current "year" window.  Events live in one flat
//              free-list slab (intrusive u32 chains, 4 bytes of ring state
//              per bucket) so push/pop never allocate.  The ring
//              doubles/halves (rebuilding width from the live event span)
//              when the event count crosses 2N / N/4, so bucket occupancy
//              stays O(1).
//   kWheel     hierarchical timing wheel (Varghese & Lauck, SOSP 1987).
//              4 levels x 256 slots over a fixed 2^-10 s tick; level L
//              spans 256^L ticks per slot, so the wheel covers ~2^32 ticks
//              (~48 days of virtual time) before spilling to a sorted
//              overflow list.  Pushes append into the slot of the event's
//              tick at the coarsest level that still resolves it; pops
//              cascade the minimum's coarse bucket down one level at a time
//              until the minimum sits in level 0.  No width estimation and
//              no global rebuilds — the tick is a power of two, so bucket
//              indexing is exact in floating point — at the cost of a
//              fixed granularity the calendar tunes adaptively.
//
// Because schedule_at enforces when >= now(), equal-time events always
// share a bucket on every backend, and every backend selects within a
// bucket by the full (time, tie_key, seq) comparator — the wheel keeps its
// buckets sorted, the calendar walks its unsorted chains for the exact
// minimum — so pop order is *identical* across the three backends, event
// for event (proven by differential tests and the end-to-end trajectory
// equality in tests/scale_test.cpp).
//
// The backend is chosen per queue at construction.  The PAPAYA_EVENT_QUEUE
// environment variable ("heap" / "calendar" / "wheel") overrides the
// *default*: it is consulted by the default ctor and by FlSimulator's
// config normalization, so whole test suites and benches can be rerun on
// another backend without an edit.  The explicit EventQueue(backend) ctor
// honours its argument verbatim — differential tests that pin backends
// must mean what they say even under the env knob.
//
// Thread safety: schedule_* and the inspectors may be called concurrently
// from any thread (internal lock, an independent root in the util/sync.hpp
// hierarchy — held only around queue bookkeeping, never while an event
// function or the dispatcher runs).  step()/run_until() are single-driver:
// exactly one thread may pump the queue, as event code runs outside the
// lock.  set_dispatcher must happen before the first step that pops a
// dispatched event (in practice: at simulator construction).

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "util/sync.hpp"

namespace papaya::sim {

using EventFn = std::function<void(double now)>;

/// Event kind tag carried by the POD record.  Kind 0 is reserved for the
/// pooled-closure fallback; callers of schedule_event_* use 1..255.
using EventKind = std::uint8_t;

/// Per-queue dispatcher for POD events: a plain function pointer (no
/// std::function — the dispatcher itself must not be a hidden allocation)
/// invoked outside the queue lock for every popped event with kind != 0.
using EventDispatchFn = void (*)(void* ctx, EventKind kind,
                                 std::uint32_t entity, std::uint32_t payload,
                                 double now);

enum class EventQueueBackend {
  kHeap,      ///< std::priority_queue, O(log n) — historical default
  kCalendar,  ///< calendar queue, amortized O(1) — million-device runs
  kWheel,     ///< hierarchical timing wheel, amortized O(1), fixed tick
};

/// Resolve the backend: PAPAYA_EVENT_QUEUE=heap|calendar|wheel wins when
/// set (anything else throws — a typo must not silently fall back),
/// otherwise `fallback` is returned unchanged.
EventQueueBackend event_queue_backend_from_env(EventQueueBackend fallback);

class EventQueue {
 public:
  /// Size of one queued event record.  The macro-population bench budgets
  /// queue memory as pending * kEventRecordBytes; the static_assert below
  /// keeps the record honest.
  static constexpr std::size_t kEventRecordBytes = 32;
  /// Reserved kind for the pooled-closure fallback path.
  static constexpr EventKind kClosureKind = 0;

  /// Default: heap unless PAPAYA_EVENT_QUEUE overrides.
  EventQueue();
  explicit EventQueue(EventQueueBackend backend);

  EventQueueBackend backend() const { return backend_; }

  /// Register the dispatcher for POD events.  One per queue; popping a
  /// kind != 0 event with no dispatcher registered throws std::logic_error
  /// from step() — a silent drop would corrupt the simulation.
  void set_dispatcher(EventDispatchFn fn, void* ctx);

  /// Hot path: schedule a POD event — no allocation, ever.  `kind` must
  /// not be kClosureKind (0), `when < now()` throws std::invalid_argument
  /// on every backend: a past timestamp would pop "before" the current
  /// time and silently corrupt clock monotonicity (and the calendar/wheel
  /// bucket-window math additionally relies on queued times never
  /// preceding the last pop).
  void schedule_event_at(double when, std::uint64_t tie_key, EventKind kind,
                         std::uint32_t entity, std::uint32_t payload);
  /// Same, `delay` seconds after now() (negative delay throws).
  void schedule_event_in(double delay, std::uint64_t tie_key, EventKind kind,
                         std::uint32_t entity, std::uint32_t payload);

  /// Schedule `fn` at absolute time `when` (the pooled-closure fallback;
  /// same past-time contract as schedule_event_at).
  void schedule_at(double when, EventFn fn);
  /// Schedule `fn` after `delay` seconds (negative delay throws).
  void schedule_in(double delay, EventFn fn);

  /// Same, with an explicit tie key: equal-time events pop in ascending
  /// `tie_key` order regardless of which thread scheduled them first.
  void schedule_at(double when, std::uint64_t tie_key, EventFn fn);
  void schedule_in(double delay, std::uint64_t tie_key, EventFn fn);

  double now() const {
    util::LockGuard lock(mutex_);
    return now_;
  }
  bool empty() const {
    util::LockGuard lock(mutex_);
    return size_locked() == 0;
  }
  std::size_t pending() const {
    util::LockGuard lock(mutex_);
    return size_locked();
  }
  /// Events popped (run) so far — the denominator for events/sec reporting
  /// in bench_macro_population.
  std::uint64_t events_processed() const {
    util::LockGuard lock(mutex_);
    return processed_;
  }

  /// Pop and run the next event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties, `until` is reached, or `stop` returns
  /// true (checked between events).
  void run_until(double until, const std::function<bool()>& stop = nullptr);

 private:
  // The queued record.  `seq_kind` packs the 56-bit arrival number above
  // the 8-bit kind: seqs are unique per queue, so comparing seq_kind is
  // exactly comparing seq (the kind bits can never break a tie), and 2^56
  // events is ~2000 years of popping at the 10M-device rate.  `payload`
  // holds the closure-pool slot index when kind == kClosureKind.
  struct Event {
    double time;
    std::uint64_t tie_key;   // caller-chosen order among simultaneous events
    std::uint64_t seq_kind;  // (arrival seq << 8) | kind
    std::uint32_t entity;
    std::uint32_t payload;
  };
  static_assert(sizeof(Event) == kEventRecordBytes,
                "event record must stay 32 bytes — the macro bench's memory "
                "budget and the ISSUE acceptance depend on it");
  static_assert(std::is_trivially_copyable_v<Event>,
                "event record must be POD: backends memmove it freely");

  static EventKind kind_of(const Event& e) {
    return static_cast<EventKind>(e.seq_kind & 0xff);
  }
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tie_key != b.tie_key) return a.tie_key < b.tie_key;
    return a.seq_kind < b.seq_kind;  // == comparing seq: seqs are unique
  }
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return earlier(b, a);
    }
  };
  static void insert_sorted(std::vector<Event>& bucket, Event e);

  /// Brown's calendar queue.  Not internally locked — EventQueue's mutex
  /// covers it.
  ///
  /// Storage is an intrusive free-list slab, not a vector-of-vectors: all
  /// events live in one flat Node array and each ring bucket is a 4-byte
  /// head index into an unsorted singly-linked chain.  At ten million
  /// pending events this is what makes push O(1) in *allocations*, not
  /// just comparisons — a sorted-vector bucket design spends most of the
  /// macro bench inside insert (a malloc for every first-touch bucket, a
  /// memmove per insert, and ~24 B of vector header per bucket probed in
  /// random order), while the slab recycles popped slots through a free
  /// list and keeps the whole ring's occupancy check inside a dense u32
  /// array.  Buckets are unsorted; pop walks the (O(1) expected length)
  /// chain for the minimum under the full (time, tie_key, seq) order, so
  /// the pop order is exactly the sorted-bucket order.
  class Calendar {
   public:
    Calendar();
    void push(Event e);
    Event pop_min();  ///< requires !empty()
    /// Time of the minimum event (requires !empty()).  Caches the min's
    /// location, so the pop that follows does not re-scan.
    double min_time();
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

   private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
    struct Node {
      Event e;
      std::uint32_t next;
    };

    std::uint64_t virtual_bucket(double time) const;
    void locate_min();  ///< fills min_node_/min_prev_/min_ring_
    void rebuild(std::size_t min_buckets);
    /// Walk one bucket chain for its minimum; fills min_node_/min_prev_.
    void chain_min(std::uint32_t head);

    std::vector<Node> slab_;          ///< stable event storage
    std::vector<std::uint32_t> free_; ///< recycled slab slots
    std::vector<std::uint32_t> heads_;  ///< ring: chain head per bucket
    double width_ = 1.0;        ///< seconds of virtual time per bucket
    /// Ring mask (heads_.size() - 1; the ring is always a power of two).
    /// Bucket indexing runs on every push and on every year-scan probe —
    /// `v & mask_` instead of `v % size()` keeps a hardware divide off the
    /// pop path.
    std::size_t mask_ = 0;
    /// Scan floor: <= the home bucket of every queued event (see
    /// locate_min for why pop order depends on this invariant).
    std::uint64_t cursor_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint32_t> relink_scratch_;  ///< rebuild work list
    // Min location cache (valid while min_cached_): min_time() followed by
    // pop_min() locates once.
    bool min_cached_ = false;
    std::uint32_t min_node_ = kNil;
    std::uint32_t min_prev_ = kNil;  ///< predecessor in chain (kNil: head)
    std::size_t min_ring_ = 0;       ///< ring index of the min's bucket
  };

  /// Hierarchical timing wheel.  Not internally locked — EventQueue's
  /// mutex covers it.  kLevels wheels of kSlots sorted buckets over a
  /// fixed power-of-two tick: level L's slot spans 256^L ticks, an event
  /// parks at the coarsest level that still distinguishes it from the
  /// current base tick, and pop cascades the minimum's coarse bucket down
  /// (strictly one level or more per cascade) until the minimum sits in
  /// level 0.  Every bucket is sorted by the full event order and the
  /// per-level minimum is found with the same home-index qualification
  /// trick as the calendar's year scan, so pop order is exact.
  class Wheel {
   public:
    Wheel();
    void push(Event e);
    Event pop_min();  ///< requires !empty()
    /// Time of the minimum event (requires !empty()).  Caches the located
    /// minimum, so the pop that follows is O(1).
    double min_time();
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

   private:
    static constexpr int kLevels = 4;
    static constexpr std::uint64_t kSlotBits = 8;
    static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
    /// Seconds per level-0 tick.  A power of two, so time/kTick is an
    /// exact binary scaling — bucket indexing can never round differently
    /// between push and scan.  2^-10 s ≈ 1 ms resolves distinct check-in
    /// staggers at 10M devices; 2^32 ticks ≈ 48.5 days of horizon.
    static constexpr double kTick = 0x1p-10;

    static std::uint64_t tick_of(double time) {
      return static_cast<std::uint64_t>(time * (1.0 / kTick));
    }
    std::vector<Event>& bucket_at(int level, std::uint64_t index) {
      return slots_[static_cast<std::size_t>(level) * kSlots +
                    (index & (kSlots - 1))];
    }
    void place(Event e);
    /// Global index of level `level`'s minimum bucket (requires
    /// level_size_[level] != 0).
    std::uint64_t level_min_index(int level);
    /// Cascade bucket `index` of `level` (or the overflow prefix when
    /// level == kLevels): re-place every event homed at `index` into
    /// strictly finer levels.
    void cascade(int level, std::uint64_t index);
    /// Locate the global minimum, cascading until it sits in level 0.
    /// Returns the level-0 global index; caches the result.
    std::uint64_t locate_min();

    std::vector<std::vector<Event>> slots_;  // kLevels * kSlots buckets
    std::vector<Event> overflow_;            // sorted; > 2^32 ticks out
    std::array<std::size_t, kLevels> level_size_{};
    /// Per-level lower bound on the minimum's global index — scan start.
    /// Init 0 (trivially a lower bound); pushes clamp it down, successful
    /// scans raise it to the found minimum.
    std::array<std::uint64_t, kLevels> hint_{};
    std::uint64_t base_ = 0;  ///< leveling base tick; monotone
    std::size_t size_ = 0;
    bool min_cached_ = false;
    std::uint64_t cached_min_ = 0;  ///< level-0 global index when cached
  };

  std::size_t size_locked() const PAPAYA_REQUIRES(mutex_) {
    switch (backend_) {
      case EventQueueBackend::kHeap: return heap_.size();
      case EventQueueBackend::kCalendar: return calendar_.size();
      case EventQueueBackend::kWheel: return wheel_.size();
    }
    return 0;  // unreachable
  }
  void push_locked(Event e) PAPAYA_REQUIRES(mutex_);
  Event pop_locked() PAPAYA_REQUIRES(mutex_);
  double top_time_locked() PAPAYA_REQUIRES(mutex_);  ///< requires non-empty
  /// Park `fn` in the closure pool, reusing a free slot when one exists.
  std::uint32_t acquire_closure_slot(EventFn fn) PAPAYA_REQUIRES(mutex_);

  const EventQueueBackend backend_;
  mutable util::Mutex mutex_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_
      PAPAYA_GUARDED_BY(mutex_);
  Calendar calendar_ PAPAYA_GUARDED_BY(mutex_);
  Wheel wheel_ PAPAYA_GUARDED_BY(mutex_);
  std::vector<EventFn> closure_pool_ PAPAYA_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> free_closure_slots_ PAPAYA_GUARDED_BY(mutex_);
  EventDispatchFn dispatcher_ PAPAYA_GUARDED_BY(mutex_) = nullptr;
  void* dispatcher_ctx_ PAPAYA_GUARDED_BY(mutex_) = nullptr;
  double now_ PAPAYA_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t next_seq_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t processed_ PAPAYA_GUARDED_BY(mutex_) = 0;
};

}  // namespace papaya::sim
