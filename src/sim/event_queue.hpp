#pragma once
// Discrete-event simulation core: a virtual clock and an event queue.
//
// All wall-clock quantities in the reproduction (round durations, time to
// target loss, server updates per hour) are measured on this clock, so the
// comparisons between SyncFL and AsyncFL are ratios within one consistent
// time base (DESIGN.md substitution table).
//
// Pop order is a documented *total* order: (time, tie_key, seq), ascending.
// `seq` is the per-queue arrival number, so same-time same-key events pop
// FIFO — the historical behaviour, unchanged for every caller of the
// two-argument schedule_at/schedule_in (tie_key 0).  Arrival order is only
// well-defined within one thread, though: when several threads schedule
// equal-time events concurrently, their seq interleaving is a race, and
// before the tie key existed the pop order was too.  Schedulers that need a
// schedule-independent order pass an explicit `tie_key` (an entity id, an
// actor index) and the pop order at that timestamp becomes a pure function
// of the keys.
//
// Two backends implement that contract behind the same API:
//
//   kHeap      std::priority_queue.  O(log n) per op; the historical
//              default and the reference for the differential tests.
//   kCalendar  calendar queue (Brown, CACM 1988).  Amortized O(1) per op:
//              a power-of-two ring of buckets each spanning `width` seconds
//              of virtual time; push drops an event into bucket
//              floor(time/width) mod N, pop scans forward from the current
//              bucket and accepts the first event inside the bucket's
//              current "year" window.  The ring doubles/halves (rebuilding
//              width from the live event span) when the event count crosses
//              2N / N/4, so bucket occupancy stays O(1).  Because
//              schedule_at enforces when >= now(), equal-time events always
//              share a bucket and each bucket is kept sorted by the full
//              (time, tie_key, seq) order — pop order is *identical* to the
//              heap's, event for event (proven by differential tests and
//              the end-to-end trajectory equality in tests/scale_test.cpp).
//
// The backend is chosen per queue at construction.  The PAPAYA_EVENT_QUEUE
// environment variable ("heap" / "calendar") overrides the *default*: it is
// consulted by the default ctor and by FlSimulator's config normalization,
// so whole test suites and benches can be rerun on the calendar backend
// without an edit.  The explicit EventQueue(backend) ctor honours its
// argument verbatim — differential tests that pin both backends must mean
// what they say even under the env knob.
//
// Thread safety: schedule_at/schedule_in and the inspectors may be called
// concurrently from any thread (internal lock, an independent root in the
// util/sync.hpp hierarchy — held only around queue bookkeeping, never while
// an event function runs).  step()/run_until() are single-driver: exactly
// one thread may pump the queue, as event functions run outside the lock.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sync.hpp"

namespace papaya::sim {

using EventFn = std::function<void(double now)>;

enum class EventQueueBackend {
  kHeap,      ///< std::priority_queue, O(log n) — historical default
  kCalendar,  ///< calendar queue, amortized O(1) — million-device runs
};

/// Resolve the backend: PAPAYA_EVENT_QUEUE=heap|calendar wins when set
/// (anything else throws — a typo must not silently fall back), otherwise
/// `fallback` is returned unchanged.
EventQueueBackend event_queue_backend_from_env(EventQueueBackend fallback);

class EventQueue {
 public:
  /// Default: heap unless PAPAYA_EVENT_QUEUE overrides.
  EventQueue();
  explicit EventQueue(EventQueueBackend backend);

  EventQueueBackend backend() const { return backend_; }

  /// Schedule `fn` at absolute time `when`.  `when < now()` throws
  /// std::invalid_argument on every backend: a past timestamp would pop
  /// "before" the current time and silently corrupt clock monotonicity
  /// (and the calendar backend's bucket-window math additionally relies on
  /// queued times never preceding the last pop).
  void schedule_at(double when, EventFn fn);
  /// Schedule `fn` after `delay` seconds (negative delay throws).
  void schedule_in(double delay, EventFn fn);

  /// Same, with an explicit tie key: equal-time events pop in ascending
  /// `tie_key` order regardless of which thread scheduled them first.
  void schedule_at(double when, std::uint64_t tie_key, EventFn fn);
  void schedule_in(double delay, std::uint64_t tie_key, EventFn fn);

  double now() const {
    util::LockGuard lock(mutex_);
    return now_;
  }
  bool empty() const {
    util::LockGuard lock(mutex_);
    return size_locked() == 0;
  }
  std::size_t pending() const {
    util::LockGuard lock(mutex_);
    return size_locked();
  }
  /// Events popped (run) so far — the denominator for events/sec reporting
  /// in bench_macro_population.
  std::uint64_t events_processed() const {
    util::LockGuard lock(mutex_);
    return processed_;
  }

  /// Pop and run the next event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties, `until` is reached, or `stop` returns
  /// true (checked between events).
  void run_until(double until, const std::function<bool()>& stop = nullptr);

 private:
  struct Event {
    double time;
    std::uint64_t tie_key;  // caller-chosen order among simultaneous events
    std::uint64_t seq;      // arrival FIFO, the final tie-break
    EventFn fn;
  };
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tie_key != b.tie_key) return a.tie_key < b.tie_key;
    return a.seq < b.seq;
  }
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return earlier(b, a);
    }
  };

  /// Brown's calendar queue.  Not internally locked — EventQueue's mutex
  /// covers it.  Each bucket is a vector kept ascending by the full event
  /// order, so bucket fronts are bucket minima and the year scan yields the
  /// exact global order.
  class Calendar {
   public:
    Calendar();
    void push(Event e);
    Event pop_min();  ///< requires !empty()
    /// Time of the minimum event (requires !empty()).  Advances the scan
    /// cursor to the minimum's bucket, so the pop that follows is O(1).
    double min_time();
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

   private:
    std::uint64_t virtual_bucket(double time) const;
    std::size_t locate_min();  ///< ring index of the min's bucket
    void insert_sorted(std::vector<Event>& bucket, Event e);
    void rebuild(std::size_t min_buckets);

    std::vector<std::vector<Event>> buckets_;
    double width_ = 1.0;            ///< seconds of virtual time per bucket
    std::uint64_t cursor_ = 0;      ///< virtual bucket of the last pop
    std::size_t size_ = 0;
  };

  std::size_t size_locked() const PAPAYA_REQUIRES(mutex_) {
    return backend_ == EventQueueBackend::kHeap ? heap_.size()
                                                : calendar_.size();
  }
  void push_locked(Event e) PAPAYA_REQUIRES(mutex_);
  Event pop_locked() PAPAYA_REQUIRES(mutex_);
  double top_time_locked() PAPAYA_REQUIRES(mutex_);  ///< requires non-empty

  const EventQueueBackend backend_;
  mutable util::Mutex mutex_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_
      PAPAYA_GUARDED_BY(mutex_);
  Calendar calendar_ PAPAYA_GUARDED_BY(mutex_);
  double now_ PAPAYA_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t next_seq_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t processed_ PAPAYA_GUARDED_BY(mutex_) = 0;
};

}  // namespace papaya::sim
