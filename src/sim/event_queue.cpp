#include "sim/event_queue.hpp"

#include <stdexcept>

namespace papaya::sim {

void EventQueue::schedule_at(double when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  heap_.push({when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, EventFn fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Event event = heap_.top();
  heap_.pop();
  now_ = event.time;
  event.fn(now_);
  return true;
}

void EventQueue::run_until(double until, const std::function<bool()>& stop) {
  while (!heap_.empty() && heap_.top().time <= until) {
    if (stop && stop()) return;
    step();
  }
  if (now_ < until && (!stop || !stop())) now_ = until;
}

}  // namespace papaya::sim
