#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace papaya::sim {
namespace {

// Ring sizing: never below kMinBuckets (tiny queues stay tiny), never above
// kMaxBuckets (a pathological width estimate must not allocate the world).
constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 23;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventQueueBackend event_queue_backend_from_env(EventQueueBackend fallback) {
  const char* env = std::getenv("PAPAYA_EVENT_QUEUE");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "heap") == 0) return EventQueueBackend::kHeap;
  if (std::strcmp(env, "calendar") == 0) return EventQueueBackend::kCalendar;
  if (std::strcmp(env, "wheel") == 0) return EventQueueBackend::kWheel;
  throw std::invalid_argument(
      std::string("PAPAYA_EVENT_QUEUE: unknown backend '") + env +
      "' (expected 'heap', 'calendar' or 'wheel')");
}

EventQueue::EventQueue()
    : EventQueue(event_queue_backend_from_env(EventQueueBackend::kHeap)) {}

// The explicit ctor honours the requested backend verbatim — no env
// override.  The env knob acts at the config layer (normalize_config) and
// on default construction; code that names a backend explicitly (the
// heap/calendar/wheel differential tests, the FSM churn workload) must get
// exactly that backend or the comparisons it makes become vacuous.
EventQueue::EventQueue(EventQueueBackend backend) : backend_(backend) {}

void EventQueue::insert_sorted(std::vector<Event>& bucket, Event e) {
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), e,
      [](const Event& a, const Event& b) { return earlier(a, b); });
  bucket.insert(pos, e);
}

// ---------------------------------------------------------------------------
// Calendar backend
// ---------------------------------------------------------------------------

EventQueue::Calendar::Calendar()
    : heads_(kMinBuckets, kNil), mask_(kMinBuckets - 1) {}

std::uint64_t EventQueue::Calendar::virtual_bucket(double time) const {
  // One shared expression for push, the year scan and the sparse jump so an
  // event's home bucket is computed identically everywhere (floating-point
  // division must not disagree with itself).
  return static_cast<std::uint64_t>(time / width_);
}

void EventQueue::Calendar::push(Event e) {
  const std::uint64_t v = virtual_bucket(e.time);
  // Keep the scan invariant `cursor_ <= home(e) for every queued event` on
  // the push side too: an event may legally arrive with a time below the
  // current minimum (any t >= the last pop is valid, and the cursor sits at
  // the minimum's home, not at now's).  Without the pull-back such an event
  // is stranded — the year scan never looks behind the cursor, so it would
  // pop arbitrarily late.  The wheel's hint update is this same rule.
  cursor_ = std::min(cursor_, v);
  std::uint32_t node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
  } else {
    node = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  std::uint32_t& head = heads_[v & mask_];
  slab_[node].e = e;
  slab_[node].next = head;
  head = node;
  ++size_;
  min_cached_ = false;
  if (size_ > 2 * heads_.size() && heads_.size() < kMaxBuckets) {
    rebuild(size_);
  }
}

void EventQueue::Calendar::chain_min(std::uint32_t head) {
  // Unsorted chains: the bucket minimum under the full (time, tie_key,
  // seq) order is found by a walk.  Expected chain length is O(1) — the
  // width heuristic keeps mean occupancy near 2 events per non-empty
  // bucket.
  min_node_ = head;
  min_prev_ = kNil;
  std::uint32_t prev = head;
  for (std::uint32_t cur = slab_[head].next; cur != kNil;
       prev = cur, cur = slab_[cur].next) {
    if (earlier(slab_[cur].e, slab_[min_node_].e)) {
      min_node_ = cur;
      min_prev_ = prev;
    }
  }
}

void EventQueue::Calendar::locate_min() {
  // Scan one "year" forward from the cursor.  A bucket's minimum qualifies
  // when the scanned virtual bucket is its home bucket — the same
  // time/width expression push used, so floating-point rounding at bucket
  // edges can never disagree with insertion.  The scan relies on one
  // invariant: cursor_ <= home(e) for every queued event.  It is
  // maintained at every cursor write — push() pulls the cursor back behind
  // a low arrival, the scan and the sparse jump set it to the located
  // minimum's home, and rebuild() re-anchors it at the new minimum's home
  // — so the first qualifying bucket minimum is the global minimum under
  // the full (time, tie_key, seq) order: virtual_bucket is monotone in
  // time, so an earlier-timed event would live in an earlier-or-equal
  // virtual bucket already scanned (where its bucket's minimum would
  // itself have qualified no later than it).
  if (min_cached_) return;
  const std::size_t n = heads_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = cursor_ + i;
    const std::uint32_t head = heads_[v & mask_];
    if (head == kNil) continue;
    chain_min(head);
    if (virtual_bucket(slab_[min_node_].e.time) == v) {
      cursor_ = v;
      min_ring_ = v & mask_;
      min_cached_ = true;
      return;
    }
  }
  // Sparse year: nothing within a full ring revolution.  Fall back to a
  // direct min over every chain and jump the cursor to its bucket — the
  // classic calendar-queue "empty year" escape hatch.
  std::uint32_t best = kNil;
  std::uint32_t best_prev = kNil;
  std::size_t best_ring = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (heads_[i] == kNil) continue;
    chain_min(heads_[i]);
    if (best == kNil || earlier(slab_[min_node_].e, slab_[best].e)) {
      best = min_node_;
      best_prev = min_prev_;
      best_ring = i;
    }
  }
  min_node_ = best;
  min_prev_ = best_prev;
  min_ring_ = best_ring;
  min_cached_ = true;
  cursor_ = virtual_bucket(slab_[best].e.time);
}

double EventQueue::Calendar::min_time() {
  locate_min();
  return slab_[min_node_].e.time;
}

EventQueue::Event EventQueue::Calendar::pop_min() {
  locate_min();
  const std::uint32_t node = min_node_;
  const Event e = slab_[node].e;
  if (min_prev_ == kNil) {
    heads_[min_ring_] = slab_[node].next;
  } else {
    slab_[min_prev_].next = slab_[node].next;
  }
  free_.push_back(node);
  --size_;
  min_cached_ = false;
  if (heads_.size() > kMinBuckets && size_ < heads_.size() / 4) {
    rebuild(kMinBuckets);
  }
  return e;
}

void EventQueue::Calendar::rebuild(std::size_t min_buckets) {
  // Collect the live slots (the slab also holds free slots, so walk the
  // chains), then relink them under the re-tuned width.  No event moves in
  // memory and nothing is allocated per event — a rebuild is O(live)
  // pointer writes.
  relink_scratch_.clear();
  relink_scratch_.reserve(size_);
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const std::uint32_t head : heads_) {
    for (std::uint32_t cur = head; cur != kNil; cur = slab_[cur].next) {
      const double t = slab_[cur].e.time;
      if (first || t < lo) lo = t;
      if (first || t > hi) hi = t;
      first = false;
      relink_scratch_.push_back(cur);
    }
  }
  // Bucket width ~ 2x the mean inter-event gap (Brown's heuristic): the
  // year scan then lands on a non-empty qualifying bucket within O(1)
  // probes on average.  Clamped below so (a) a degenerate span (all events
  // simultaneous) keeps a sane width and (b) time/width stays far from
  // uint64 overflow for any simulated horizon.
  double width = 1.0;
  if (relink_scratch_.size() > 1 && hi > lo) {
    width = 2.0 * (hi - lo) / static_cast<double>(relink_scratch_.size());
  }
  width_ = std::max({width, 1e-9, hi * 0x1p-40});
  const std::size_t n = std::min(
      kMaxBuckets, next_pow2(std::max(min_buckets, kMinBuckets)));
  heads_.assign(n, kNil);
  mask_ = n - 1;
#ifdef __linux__
  // Million-bucket rings are probed in random order by push and the year
  // scan; backing the head array with huge pages cuts the TLB cost.
  // Advisory — a no-op where THP is unavailable.
  if (n >= (std::size_t{1} << 20)) {
    madvise(heads_.data(), n * sizeof(heads_[0]), MADV_HUGEPAGE);
  }
#endif
  for (const std::uint32_t node : relink_scratch_) {
    std::uint32_t& head = heads_[virtual_bucket(slab_[node].e.time) & mask_];
    slab_[node].next = head;
    head = node;
  }
  min_cached_ = false;
  // Re-anchor the cursor at the current minimum's home.  This is only an
  // upper bound on where the cursor may sit: a *future* push can still
  // arrive anywhere in [last-pop, lo) — e.g. the 10M-device seeding loop
  // rebuilds mid-seed, then later devices draw check-in times below the
  // min seeded so far — and push() pulls the cursor back when it does.
  cursor_ = first ? 0 : virtual_bucket(std::max(lo, 0.0));
}

// ---------------------------------------------------------------------------
// Wheel backend
// ---------------------------------------------------------------------------

EventQueue::Wheel::Wheel() : slots_(kLevels * kSlots) {}

void EventQueue::Wheel::place(Event e) {
  const std::uint64_t v = tick_of(e.time);
  // Events may legitimately tick before base_: base_ jumps ahead of now()
  // when a coarse bucket cascades, and a later schedule_at(now + small) is
  // still valid.  They park in level 0, where the hint + qualification
  // scan finds them regardless of distance.
  const std::uint64_t d = v >= base_ ? v - base_ : 0;
  int level = 0;
  while (level < kLevels - 1 &&
         d >= (std::uint64_t{1} << (kSlotBits * (level + 1)))) {
    ++level;
  }
  if (d >= (std::uint64_t{1} << (kSlotBits * kLevels))) {
    insert_sorted(overflow_, e);
    return;
  }
  const std::uint64_t index = v >> (kSlotBits * static_cast<unsigned>(level));
  insert_sorted(bucket_at(level, index), e);
  ++level_size_[static_cast<std::size_t>(level)];
  hint_[static_cast<std::size_t>(level)] =
      std::min(hint_[static_cast<std::size_t>(level)], index);
}

void EventQueue::Wheel::push(Event e) {
  place(e);
  ++size_;
  min_cached_ = false;
}

std::uint64_t EventQueue::Wheel::level_min_index(int level) {
  const unsigned shift = kSlotBits * static_cast<unsigned>(level);
  auto& hint = hint_[static_cast<std::size_t>(level)];
  // Fast path: one slot revolution forward from the hint, accepting the
  // first front whose *home* index is the scanned index — the calendar's
  // year-scan qualification, which makes ring collisions (two indices 256
  // apart sharing a slot) harmless.  The hint is maintained as a lower
  // bound on the level's minimum index, so the first qualifying front is
  // the level minimum: bucket fronts are bucket minima (sorted buckets)
  // and home index is monotone in time.
  for (std::uint64_t j = 0; j < kSlots; ++j) {
    const std::uint64_t u = hint + j;
    const std::vector<Event>& b = bucket_at(level, u);
    if (!b.empty() && (tick_of(b.front().time) >> shift) == u) {
      hint = u;
      return u;
    }
  }
  // Sparse revolution: the minimum lives more than 256 indices past the
  // hint.  Direct min over the level's 256 fronts is still exact.
  const std::vector<Event>* best = nullptr;
  for (std::size_t s = 0; s < kSlots; ++s) {
    const std::vector<Event>& b =
        slots_[static_cast<std::size_t>(level) * kSlots + s];
    if (b.empty()) continue;
    if (best == nullptr || earlier(b.front(), best->front())) best = &b;
  }
  const std::uint64_t u = tick_of(best->front().time) >> shift;
  hint = u;
  return u;
}

void EventQueue::Wheel::cascade(int level, std::uint64_t index) {
  if (level == kLevels) {
    // Overflow prefix: everything homed at the front's 2^32-tick window
    // drops into the wheel proper.
    const std::uint64_t u = tick_of(overflow_.front().time) >>
                            (kSlotBits * static_cast<unsigned>(kLevels));
    base_ = std::max(base_, u << (kSlotBits * static_cast<unsigned>(kLevels)));
    std::size_t n = 0;
    while (n < overflow_.size() &&
           (tick_of(overflow_[n].time) >>
            (kSlotBits * static_cast<unsigned>(kLevels))) == u) {
      ++n;
    }
    for (std::size_t i = 0; i < n; ++i) place(overflow_[i]);
    overflow_.erase(overflow_.begin(),
                    overflow_.begin() + static_cast<std::ptrdiff_t>(n));
    return;
  }
  // Advancing base_ to the bucket's window start before re-placing
  // guarantees strict progress: every re-placed event has
  // tick - base_ < 256^level and therefore lands at a finer level.
  const unsigned shift = kSlotBits * static_cast<unsigned>(level);
  base_ = std::max(base_, index << shift);
  std::vector<Event>& b = bucket_at(level, index);
  // Home index is monotone in time and the bucket is sorted, so the events
  // homed at `index` form a prefix (the rest are a ring collision, 256
  // indices later).
  std::size_t n = 0;
  while (n < b.size() && (tick_of(b[n].time) >> shift) == index) ++n;
  for (std::size_t i = 0; i < n; ++i) place(b[i]);
  b.erase(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
  level_size_[static_cast<std::size_t>(level)] -= n;
}

std::uint64_t EventQueue::Wheel::locate_min() {
  if (min_cached_) return cached_min_;
  for (;;) {
    int best_level = -1;
    std::uint64_t best_index = 0;
    const Event* best = nullptr;
    for (int level = 0; level < kLevels; ++level) {
      if (level_size_[static_cast<std::size_t>(level)] == 0) continue;
      const std::uint64_t u = level_min_index(level);
      const Event& front = bucket_at(level, u).front();
      if (best == nullptr || earlier(front, *best)) {
        best = &front;
        best_level = level;
        best_index = u;
      }
    }
    if (!overflow_.empty() &&
        (best == nullptr || earlier(overflow_.front(), *best))) {
      best_level = kLevels;
    }
    if (best_level == 0) {
      min_cached_ = true;
      cached_min_ = best_index;
      return best_index;
    }
    // The minimum sits in a coarse bucket (or the overflow list): cascade
    // it one granularity step and look again.  Each iteration strictly
    // lowers the minimum's level, so this loop runs at most kLevels times.
    cascade(best_level, best_index);
  }
}

double EventQueue::Wheel::min_time() {
  return bucket_at(0, locate_min()).front().time;
}

EventQueue::Event EventQueue::Wheel::pop_min() {
  std::vector<Event>& b = bucket_at(0, locate_min());
  Event e = b.front();
  b.erase(b.begin());
  --level_size_[0];
  --size_;
  base_ = std::max(base_, tick_of(e.time));
  min_cached_ = false;
  return e;
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

void EventQueue::push_locked(Event e) {
  switch (backend_) {
    case EventQueueBackend::kHeap: heap_.push(e); break;
    case EventQueueBackend::kCalendar: calendar_.push(e); break;
    case EventQueueBackend::kWheel: wheel_.push(e); break;
  }
}

EventQueue::Event EventQueue::pop_locked() {
  switch (backend_) {
    case EventQueueBackend::kHeap: {
      Event e = heap_.top();
      heap_.pop();
      return e;
    }
    case EventQueueBackend::kCalendar: return calendar_.pop_min();
    case EventQueueBackend::kWheel: return wheel_.pop_min();
  }
  return {};  // unreachable
}

double EventQueue::top_time_locked() {
  switch (backend_) {
    case EventQueueBackend::kHeap: return heap_.top().time;
    case EventQueueBackend::kCalendar: return calendar_.min_time();
    case EventQueueBackend::kWheel: return wheel_.min_time();
  }
  return 0.0;  // unreachable
}

void EventQueue::set_dispatcher(EventDispatchFn fn, void* ctx) {
  util::LockGuard lock(mutex_);
  dispatcher_ = fn;
  dispatcher_ctx_ = ctx;
}

std::uint32_t EventQueue::acquire_closure_slot(EventFn fn) {
  if (!free_closure_slots_.empty()) {
    const std::uint32_t slot = free_closure_slots_.back();
    free_closure_slots_.pop_back();
    closure_pool_[slot] = std::move(fn);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(closure_pool_.size());
  closure_pool_.push_back(std::move(fn));
  return slot;
}

void EventQueue::schedule_event_at(double when, std::uint64_t tie_key,
                                   EventKind kind, std::uint32_t entity,
                                   std::uint32_t payload) {
  if (kind == kClosureKind) {
    throw std::invalid_argument(
        "EventQueue: kind 0 is reserved for pooled closures");
  }
  util::LockGuard lock(mutex_);
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  push_locked({when, tie_key, (next_seq_++ << 8) | kind, entity, payload});
}

void EventQueue::schedule_event_in(double delay, std::uint64_t tie_key,
                                   EventKind kind, std::uint32_t entity,
                                   std::uint32_t payload) {
  if (kind == kClosureKind) {
    throw std::invalid_argument(
        "EventQueue: kind 0 is reserved for pooled closures");
  }
  util::LockGuard lock(mutex_);
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  push_locked(
      {now_ + delay, tie_key, (next_seq_++ << 8) | kind, entity, payload});
}

void EventQueue::schedule_at(double when, EventFn fn) {
  schedule_at(when, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_in(double delay, EventFn fn) {
  schedule_in(delay, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_at(double when, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  // Validate before acquiring a pool slot so a past-time throw leaks
  // nothing.
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const std::uint32_t slot = acquire_closure_slot(std::move(fn));
  push_locked({when, tie_key, (next_seq_++ << 8) | kClosureKind, 0, slot});
}

void EventQueue::schedule_in(double delay, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const std::uint32_t slot = acquire_closure_slot(std::move(fn));
  push_locked(
      {now_ + delay, tie_key, (next_seq_++ << 8) | kClosureKind, 0, slot});
}

bool EventQueue::step() {
  Event e;
  EventFn fn;
  EventDispatchFn dispatch = nullptr;
  void* ctx = nullptr;
  {
    util::LockGuard lock(mutex_);
    if (size_locked() == 0) return false;
    e = pop_locked();
    now_ = e.time;
    ++processed_;
    if (kind_of(e) == kClosureKind) {
      // Move the closure out and recycle its slot before unlocking: the
      // closure may schedule more events, and a fresh schedule_at must be
      // free to reuse the slot immediately.
      fn = std::move(closure_pool_[e.payload]);
      closure_pool_[e.payload] = nullptr;
      free_closure_slots_.push_back(e.payload);
    } else {
      dispatch = dispatcher_;
      ctx = dispatcher_ctx_;
      if (dispatch == nullptr) {
        throw std::logic_error(
            "EventQueue: popped a POD event with no dispatcher registered");
      }
    }
  }
  // Event code runs outside the lock — it may schedule more events.
  if (dispatch != nullptr) {
    dispatch(ctx, kind_of(e), e.entity, e.payload, e.time);
  } else {
    fn(e.time);
  }
  return true;
}

void EventQueue::run_until(double until, const std::function<bool()>& stop) {
  for (;;) {
    {
      util::LockGuard lock(mutex_);
      if (size_locked() == 0 || top_time_locked() > until) break;
    }
    if (stop && stop()) return;
    step();
  }
  if (stop && stop()) return;
  util::LockGuard lock(mutex_);
  if (now_ < until) now_ = until;
}

}  // namespace papaya::sim
