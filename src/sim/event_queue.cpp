#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace papaya::sim {
namespace {

// Ring sizing: never below kMinBuckets (tiny queues stay tiny), never above
// kMaxBuckets (a pathological width estimate must not allocate the world).
constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventQueueBackend event_queue_backend_from_env(EventQueueBackend fallback) {
  const char* env = std::getenv("PAPAYA_EVENT_QUEUE");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "heap") == 0) return EventQueueBackend::kHeap;
  if (std::strcmp(env, "calendar") == 0) return EventQueueBackend::kCalendar;
  throw std::invalid_argument(
      std::string("PAPAYA_EVENT_QUEUE: unknown backend '") + env +
      "' (expected 'heap' or 'calendar')");
}

EventQueue::EventQueue()
    : EventQueue(event_queue_backend_from_env(EventQueueBackend::kHeap)) {}

// The explicit ctor honours the requested backend verbatim — no env
// override.  The env knob acts at the config layer (normalize_config) and
// on default construction; code that names a backend explicitly (the
// heap/calendar differential tests, the FSM churn workload) must get
// exactly that backend or the comparisons it makes become vacuous.
EventQueue::EventQueue(EventQueueBackend backend) : backend_(backend) {}

// ---------------------------------------------------------------------------
// Calendar backend
// ---------------------------------------------------------------------------

EventQueue::Calendar::Calendar() : buckets_(kMinBuckets) {}

std::uint64_t EventQueue::Calendar::virtual_bucket(double time) const {
  // One shared expression for push and the sparse jump so an event's home
  // bucket is computed identically everywhere (floating-point division must
  // not disagree with itself).
  return static_cast<std::uint64_t>(time / width_);
}

void EventQueue::Calendar::insert_sorted(std::vector<Event>& bucket, Event e) {
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), e,
      [](const Event& a, const Event& b) { return earlier(a, b); });
  bucket.insert(pos, std::move(e));
}

void EventQueue::Calendar::push(Event e) {
  const std::uint64_t v = virtual_bucket(e.time);
  insert_sorted(buckets_[v % buckets_.size()], std::move(e));
  ++size_;
  if (size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    rebuild(size_);
  }
}

std::size_t EventQueue::Calendar::locate_min() {
  // Scan one "year" forward from the cursor.  An event qualifies when the
  // scanned virtual bucket is its home bucket — the same time/width
  // expression push used, so floating-point rounding at bucket edges can
  // never disagree with insertion.  Because every queued time is >= the
  // last popped time (schedule_at enforces when >= now) and virtual_bucket
  // is monotone in time, the first qualifying event is the global minimum
  // under the full (time, tie_key, seq) order: bucket fronts are bucket
  // minima, and any earlier-timed event would live in an earlier-or-equal
  // virtual bucket already scanned.
  const std::size_t n = buckets_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = cursor_ + i;
    const std::vector<Event>& bucket = buckets_[v % n];
    if (!bucket.empty() && virtual_bucket(bucket.front().time) == v) {
      cursor_ = v;
      return v % n;
    }
  }
  // Sparse year: nothing within a full ring revolution.  Fall back to a
  // direct min over bucket fronts and jump the cursor to its bucket — the
  // classic calendar-queue "empty year" escape hatch.
  std::size_t best = n;  // sentinel
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets_[i].empty()) continue;
    if (best == n || earlier(buckets_[i].front(), buckets_[best].front())) {
      best = i;
    }
  }
  cursor_ = virtual_bucket(buckets_[best].front().time);
  return best;
}

double EventQueue::Calendar::min_time() {
  return buckets_[locate_min()].front().time;
}

EventQueue::Event EventQueue::Calendar::pop_min() {
  std::vector<Event>& bucket = buckets_[locate_min()];
  Event e = std::move(bucket.front());
  bucket.erase(bucket.begin());
  --size_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
    rebuild(kMinBuckets);
  }
  return e;
}

void EventQueue::Calendar::rebuild(std::size_t min_buckets) {
  std::vector<Event> all;
  all.reserve(size_);
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& e : bucket) {
      if (first || e.time < lo) lo = e.time;
      if (first || e.time > hi) hi = e.time;
      first = false;
      all.push_back(std::move(e));
    }
  }
  // Bucket width ~ 2x the mean inter-event gap (Brown's heuristic): the
  // year scan then lands on a non-empty qualifying bucket within O(1)
  // probes on average.  Clamped below so (a) a degenerate span (all events
  // simultaneous) keeps a sane width and (b) time/width stays far from
  // uint64 overflow for any simulated horizon.
  double width = 1.0;
  if (all.size() > 1 && hi > lo) {
    width = 2.0 * (hi - lo) / static_cast<double>(all.size());
  }
  width_ = std::max({width, 1e-9, hi * 0x1p-40});
  const std::size_t n = std::min(
      kMaxBuckets, next_pow2(std::max(min_buckets, kMinBuckets)));
  buckets_.assign(n, {});
  for (Event& e : all) {
    insert_sorted(buckets_[virtual_bucket(e.time) % n], std::move(e));
  }
  // Re-anchor the cursor at the priority floor: every live event has
  // time >= the last popped time, so no event can hide behind it.
  cursor_ = first ? 0 : virtual_bucket(std::max(lo, 0.0));
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

void EventQueue::push_locked(Event e) {
  if (backend_ == EventQueueBackend::kHeap) {
    heap_.push(std::move(e));
  } else {
    calendar_.push(std::move(e));
  }
}

EventQueue::Event EventQueue::pop_locked() {
  if (backend_ == EventQueueBackend::kHeap) {
    // The event runs outside the lock (it may schedule more events), so it
    // is moved out first; top() is const-ref only because mutating it would
    // break the heap order, which pop() discards anyway.
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return e;
  }
  return calendar_.pop_min();
}

double EventQueue::top_time_locked() {
  return backend_ == EventQueueBackend::kHeap ? heap_.top().time
                                              : calendar_.min_time();
}

void EventQueue::schedule_at(double when, EventFn fn) {
  schedule_at(when, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_in(double delay, EventFn fn) {
  schedule_in(delay, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_at(double when, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  push_locked({when, tie_key, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  push_locked({now_ + delay, tie_key, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  EventFn fn;
  double time;
  {
    util::LockGuard lock(mutex_);
    if (size_locked() == 0) return false;
    Event e = pop_locked();
    fn = std::move(e.fn);
    time = e.time;
    now_ = time;
    ++processed_;
  }
  fn(time);
  return true;
}

void EventQueue::run_until(double until, const std::function<bool()>& stop) {
  for (;;) {
    {
      util::LockGuard lock(mutex_);
      if (size_locked() == 0 || top_time_locked() > until) break;
    }
    if (stop && stop()) return;
    step();
  }
  if (stop && stop()) return;
  util::LockGuard lock(mutex_);
  if (now_ < until) now_ = until;
}

}  // namespace papaya::sim
