#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace papaya::sim {

void EventQueue::schedule_at(double when, EventFn fn) {
  schedule_at(when, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_in(double delay, EventFn fn) {
  schedule_in(delay, /*tie_key=*/0, std::move(fn));
}

void EventQueue::schedule_at(double when, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  heap_.push({when, tie_key, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, std::uint64_t tie_key, EventFn fn) {
  util::LockGuard lock(mutex_);
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  heap_.push({now_ + delay, tie_key, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  EventFn fn;
  double time;
  {
    util::LockGuard lock(mutex_);
    if (heap_.empty()) return false;
    // The event runs outside the lock (it may schedule more events), so it
    // is moved out first; top() is const-ref only because mutating it would
    // break the heap order, which pop() discards anyway.
    fn = std::move(const_cast<Event&>(heap_.top()).fn);
    time = heap_.top().time;
    heap_.pop();
    now_ = time;
  }
  fn(time);
  return true;
}

void EventQueue::run_until(double until, const std::function<bool()>& stop) {
  for (;;) {
    {
      util::LockGuard lock(mutex_);
      if (heap_.empty() || heap_.top().time > until) break;
    }
    if (stop && stop()) return;
    step();
  }
  if (stop && stop()) return;
  util::LockGuard lock(mutex_);
  if (now_ < until) now_ = until;
}

}  // namespace papaya::sim
