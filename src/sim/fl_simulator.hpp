#pragma once
// End-to-end federated-learning simulator.
//
// Drives the production components of src/fl (Coordinator, Selectors,
// Aggregators, client runtimes) over a discrete-event clock with a
// heterogeneous device population, exactly as a fleet of real devices would
// through the message-level API: check-in -> selection -> download -> local
// training -> report -> chunked upload, with dropouts, timeouts, staleness
// aborts, over-selection and mid-round replacement.  Local training is real
// SGD on each client's non-IID data; server steps are real FedAdam steps.
//
// This module is the substitute for the paper's ~100M-device production
// fleet (DESIGN.md): population sizes and model sizes are scaled down so the
// experiments run on one machine, which rescales absolute numbers but not
// the sync-vs-async comparison shapes.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fl/aggregator.hpp"
#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/coordinator.hpp"
#include "fl/model_store.hpp"
#include "fl/selector.hpp"
#include "fl/task.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/population.hpp"
#include "sim/streams.hpp"

namespace papaya::sim {

enum class ModelKind { kMlp, kLstm };

struct SimulationConfig {
  /// Task knobs, including `task.aggregator_shards`: scenarios that set it
  /// > 1 run the server's sharded aggregation path (client update streams
  /// consistent-hashed onto independent per-shard worker pools, Sec. 6.3)
  /// end-to-end through the same message-level API.
  fl::TaskConfig task;
  PopulationConfig population;
  ml::CorpusConfig corpus;
  ml::LmConfig model;
  ModelKind model_kind = ModelKind::kMlp;
  fl::TrainerConfig trainer;
  ml::ServerOptimizerConfig server_opt;
  NetworkConfig network;

  /// Model-distribution store (Sec. 7.3): every server step publishes the
  /// new model through this write-bandwidth-limited channel.  The default is
  /// unconstrained; constrained configs meter how often steps outpace the
  /// store (SimulationResult::model_store_stats) without perturbing the
  /// training dynamics.
  fl::ModelStore::Config model_store;

  // -- Stopping criteria (first to trigger wins) ---------------------------
  double target_loss = 0.0;              ///< 0 = disabled
  double max_sim_time_s = 2.0e6;
  std::uint64_t max_server_steps = 0;    ///< 0 = unlimited
  std::uint64_t max_applied_updates = 0; ///< 0 = unlimited (Table 1 budget)

  // -- Evaluation ----------------------------------------------------------
  std::size_t eval_set_size = 150;
  std::uint64_t eval_every_steps = 5;

  // -- Client availability / server cadence --------------------------------
  double mean_checkin_interval_s = 15.0;
  double device_unavailable_prob = 0.2;  ///< not idle/charging/unmetered
  /// Participation-history policy (Sec. 4: the client "tracks prior
  /// participation history to enable fair and unbiased client selection").
  fl::EligibilityPolicy eligibility;
  double report_interval_s = 10.0;
  /// Upload chunk size (Sec. 6.1 stage 4); uploads travel as CRC-checked
  /// chunks reassembled server-side.
  std::size_t upload_chunk_bytes = 64 * 1024;

  std::size_t num_aggregators = 1;
  std::size_t num_selectors = 2;
  std::uint64_t seed = 1;

  /// Event-queue backend (sim/event_queue.hpp): the binary heap (default),
  /// the amortized-O(1) calendar queue for million-device populations, or
  /// the hierarchical timing wheel.  Pop order is identical across all
  /// three, so this is a pure perf knob; the PAPAYA_EVENT_QUEUE env var
  /// overrides it (resolved at construction).
  EventQueueBackend event_queue = EventQueueBackend::kHeap;

  /// Streaming-metrics memory policy.  Defaults keep the historical
  /// unlimited recording; million-device runs set caps so results stay
  /// O(cap) regardless of how many participations the run produces.
  /// SimulationResult::summary is exact in every case — only the raw
  /// samples are thinned, and the sampling draws come from their own keyed
  /// stream (StreamPurpose::kMetricsSampling), so enabling a cap cannot
  /// change a trajectory.
  struct MetricsPolicy {
    /// > 0: keep a uniform reservoir sample (Algorithm R) of at most this
    /// many ParticipationRecords instead of all of them.  The sample is
    /// unordered once the cap is hit.
    std::size_t max_participation_records = 0;
    /// > 0: cap each TimeSeries via stride-doubling decimation
    /// (TimeSeries::set_capacity).
    std::size_t max_timeseries_points = 0;
  };
  MetricsPolicy metrics;

  /// How participation-path randomness is addressed (sim/streams.hpp).
  /// kSharedLegacy (default) consumes one shared xoshiro in event order —
  /// bit-identical to the pre-stream simulator from the same seed.
  /// kPerEntity keys every draw by (seed, device, purpose, draw index), so
  /// draw values are independent of the event schedule; it changes draw
  /// values (not distributions) relative to legacy mode, and it is forced
  /// on by `task.closed_loop_clients`, whose reactive schedule is only
  /// legal over schedule-independent streams.
  RngStreamMode rng_streams = RngStreamMode::kSharedLegacy;

  /// Failure injection (App. E.4): if > 0, the Aggregator owning the task
  /// stops heartbeating at this sim time; the Coordinator must detect the
  /// failure and move the task, and training must continue.
  double aggregator_failure_at_s = 0.0;
  /// Heartbeat timeout used by the Coordinator's failure detector.
  double aggregator_failure_timeout_s = 30.0;

  bool record_participations = true;
  bool record_utilization = false;
};

struct SimulationResult {
  bool reached_target = false;
  double time_to_target_s = std::numeric_limits<double>::infinity();
  double end_time_s = 0.0;
  std::uint64_t server_steps = 0;
  /// Client updates received at the server — the paper's "communication
  /// trips" metric (Fig. 3 caption).
  std::uint64_t comm_trips = 0;
  /// Participations started (model downloads), including dropouts/aborts.
  std::uint64_t participations_started = 0;
  fl::TaskStats task_stats;

  TimeSeries loss_curve;       ///< (sim time, evaluation loss)
  TimeSeries active_clients;   ///< (sim time, # active) when recorded
  /// (sim time, # devices busy in their pipelined schedule).  Recorded only
  /// when record_utilization and task.pipelined_clients are both set: a
  /// pipelined device finishes its overlapped train/serialize/upload work
  /// before its protocol slot closes, so this series sits below
  /// active_clients — the gap is the overlap saving (Fig. 7 extension).
  TimeSeries busy_clients;
  /// Raw records; the complete set by default, a uniform reservoir sample
  /// when MetricsPolicy::max_participation_records caps it, empty when
  /// record_participations is off.  `summary` covers every participation
  /// regardless.
  std::vector<ParticipationRecord> participations;
  /// Constant-memory digest of ALL participations (counts, moments, P²
  /// percentile sketches) — exact even when `participations` is capped or
  /// disabled.
  ParticipationSummary summary;
  /// Discrete events the queue pumped during run() (events/sec numerator
  /// for bench_macro_population).
  std::uint64_t events_processed = 0;

  double final_eval_loss = 0.0;
  std::vector<float> final_model;

  /// Write pressure on the model store (Sec. 7.3): stall_s > 0 means the
  /// configured aggregation goal demanded more server-model publishes than
  /// the store's write bandwidth sustains.
  fl::ModelStore::Stats model_store_stats;
};

class FlSimulator {
 public:
  explicit FlSimulator(SimulationConfig config);
  ~FlSimulator();

  FlSimulator(const FlSimulator&) = delete;
  FlSimulator& operator=(const FlSimulator&) = delete;

  SimulationResult run();

  /// The corpus (exposed so harnesses can evaluate the final model on
  /// per-client test splits, e.g. Table 1's percentile analysis).
  const ml::FederatedCorpus& corpus() const { return *corpus_; }
  const DevicePopulation& population() const { return *population_; }

  /// Build a fresh model with this simulation's architecture and parameters.
  std::unique_ptr<ml::LanguageModel> make_model_with_params(
      std::span<const float> params) const;

 private:
  // Per-device bookkeeping is SoA and pool-backed so permanent state is 8
  // bytes per device (a generation counter and a participation-slot index)
  // — a 10M-device population costs ~80 MB of bookkeeping, not a
  // DeviceState struct each.  Everything heavier lives only while a device
  // is actually participating (the pooled Participation below, sized by
  // peak concurrency) or once it has ever joined (its ClientRuntime, keyed
  // in a map).
  static constexpr std::uint32_t kNoParticipation = ~std::uint32_t{0};

  /// Event kinds for the POD scheduling path (sim/event_queue.hpp).  Every
  /// recurring simulation event is one of these — scheduled as a
  /// (kind, device, generation) triple, no closure, no allocation — and
  /// dispatch_event below is the queue's single dispatcher.  Kind 0 is the
  /// queue's reserved pooled-closure kind; the simulator itself schedules
  /// no closures on its hot path.
  enum class SimEvent : EventKind {
    kCheckIn = 1,           ///< entity = device
    kDropout = 2,           ///< entity = device, payload = generation
    kCompletion = 3,        ///< entity = device, payload = generation
    kCloseBusy = 4,         ///< entity = device, payload = generation
    kReportTick = 5,        ///< server heartbeat/timeout sweep
    kAggregatorFailure = 6, ///< injected failure (App. E.4)
  };
  /// The queue dispatcher: a plain function pointer (ctx = this) fanning
  /// out to the handle_* methods.  Runs outside the queue lock, exactly
  /// like the closures it replaced.
  static void dispatch_event(void* ctx, EventKind kind, std::uint32_t entity,
                             std::uint32_t payload, double now);
  /// Schedule one POD simulation event `delay` seconds out (tie_key 0 —
  /// the same FIFO tie-break the closure path used, so the refactor cannot
  /// reorder simultaneous events).
  void schedule_sim_event_in(double delay, SimEvent kind, std::size_t device,
                             std::uint32_t generation = 0);

  /// State of one in-flight participation, pool-allocated and recycled.
  struct Participation {
    std::vector<float> model_snapshot;  ///< params downloaded at join
    std::uint64_t version_at_join = 0;
    double join_time = 0.0;
    double exec_time = 0.0;
    /// Pipelined runtime plan for this participation (pipelined mode only):
    /// join → last chunk uploaded under the overlapped schedule.
    double pipelined_latency_s = 0.0;
    std::uint32_t upload_chunks = 0;
    bool busy_open = false;  ///< device counted in the busy series
  };

  /// Per-device bookkeeping, packed into 16 bytes so the rejected check-in
  /// — the overwhelmingly common event at 10M devices: participation test,
  /// backoff draw, availability draw — touches exactly one cache line.
  /// The two SimStreams counters are routed here via bind_dense_counters
  /// (draw values are bit-identical to the unpacked layout).
  struct DeviceRecord {
    std::uint32_t part_slot = kNoParticipation;  ///< kNoParticipation = idle
    std::uint32_t generation = 0;  ///< bumped to cancel in-flight events
    std::uint32_t checkin_counter = 0;  ///< kCheckInBackoff draw counter
    std::uint32_t avail_counter = 0;    ///< kAvailability draw counter
  };
  static_assert(sizeof(DeviceRecord) == 16, "one cache line covers 4 devices");

  bool participating(std::size_t device) const {
    return devices_[device].part_slot != kNoParticipation;
  }
  Participation& participation(std::size_t device) {
    return part_pool_[devices_[device].part_slot];
  }
  std::uint32_t acquire_slot(std::size_t device);
  void release_slot(std::size_t device);

  void schedule_check_in(std::size_t device, double delay);
  void handle_check_in(std::size_t device, double now);
  /// The Aggregator currently owning the task, routed through a Selector's
  /// cached map exactly as a client request would be (nullptr on a stale
  /// routing miss).  `entity` keys the Selector-choice draw: the device on
  /// client paths, SimStreams::kServerEntity on server-side paths.
  fl::Aggregator* route_to_owner(std::uint64_t entity);
  void handle_completion(std::size_t device, std::uint64_t generation,
                         double now);
  void handle_dropout(std::size_t device, std::uint64_t generation, double now);
  void handle_server_report_tick(double now);
  void end_participation(std::size_t device, double now, bool reschedule);
  void on_aborted_clients(const std::vector<std::uint64_t>& aborted, double now);
  void maybe_evaluate(double now, bool force);
  void record_active(double now);
  /// Pipelined-mode device-busy accounting.  Purely observational: these
  /// touch only metrics state (no RNG draws, no protocol state), so the
  /// extra events cannot perturb the simulation's training dynamics.
  void plan_pipeline(std::size_t device, double download, double upload);
  void record_busy(double now);
  void close_busy(std::size_t device, double now);
  bool should_stop() const { return stopped_; }
  void stop(double now);
  /// Fold `rec` into the exact streaming summary, then retain it per the
  /// record_participations flag and MetricsPolicy cap.
  void note_participation(const ParticipationRecord& rec);

  /// The device's ClientRuntime, materialized (with its per-client dataset)
  /// on first use.  find_runtime never materializes — the check-in path
  /// uses it so the common rejected check-in stays allocation-free at
  /// million-device scale.
  fl::ClientRuntime& runtime_for(std::size_t device);
  fl::ClientRuntime* find_runtime(std::size_t device);

  SimulationConfig config_;
  SimStreams streams_;
  EventQueue queue_;

  std::unique_ptr<ml::FederatedCorpus> corpus_;
  std::unique_ptr<DevicePopulation> population_;
  std::unique_ptr<NetworkModel> network_;
  std::unique_ptr<fl::Executor> executor_;
  std::vector<ml::Sequence> eval_set_;
  std::unique_ptr<ml::LanguageModel> eval_model_;

  std::vector<std::unique_ptr<fl::Aggregator>> aggregators_;
  std::unique_ptr<fl::Coordinator> coordinator_;
  std::vector<std::unique_ptr<fl::Selector>> selectors_;

  std::vector<DeviceRecord> devices_;  ///< packed per-device hot state
  /// One bit per device: whether runtimes_ holds a ClientRuntime.  1.25 MB
  /// at 10M devices — cache-resident, so find_runtime answers "never
  /// joined" (the overwhelming majority at scale) without a hash probe.
  std::vector<std::uint64_t> has_runtime_;
  std::vector<Participation> part_pool_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, std::unique_ptr<fl::ClientRuntime>>
      runtimes_;  ///< only devices that have ever joined

  SimulationResult result_;
  util::StreamRng metrics_rng_;  ///< reservoir draws (kMetricsSampling)
  std::uint64_t reservoir_seen_ = 0;
  std::unique_ptr<fl::ModelStore> model_store_;
  std::uint64_t last_published_version_ = 0;
  std::uint64_t model_bytes_ = 0;
  std::size_t active_count_ = 0;
  std::size_t busy_count_ = 0;  ///< pipelined-mode device-busy gauge
  bool stopped_ = false;
  std::string failed_aggregator_;  ///< injected failure, stops heartbeating
};

}  // namespace papaya::sim
