#include "util/bytes.hpp"

namespace papaya::util {

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::string to_hex(std::span<const std::uint8_t> b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t c : b) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

}  // namespace papaya::util
