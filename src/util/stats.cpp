#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace papaya::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("pearson: need equal-length samples, n >= 2");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Survival function of the Kolmogorov distribution.
double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double xa = sa[ia];
    const double xb = sb[ib];
    const double x = std::min(xa, xb);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }

  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return {d, kolmogorov_q(lambda)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

namespace {

std::string bars(const std::vector<std::uint64_t>& counts,
                 const std::vector<std::string>& labels, std::size_t width) {
  std::uint64_t peak = 1;
  for (auto c : counts) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto n =
        static_cast<std::size_t>(static_cast<double>(counts[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    os << labels[i] << " | " << std::string(n, '#') << " " << counts[i]
       << "\n";
  }
  return os.str();
}

std::string label(double v) {
  std::ostringstream os;
  os.precision(3);
  os.width(10);
  os << v;
  return os.str();
}

}  // namespace

std::string Histogram::ascii(std::size_t width) const {
  std::vector<std::string> labels;
  labels.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    labels.push_back(label(bin_center(i)));
  }
  return bars(counts_, labels, width);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : log_lo_(std::log10(lo)), log_hi_(std::log10(hi)), counts_(bins, 0) {
  if (!(lo > 0.0) || !(lo < hi) || bins == 0) {
    throw std::invalid_argument("LogHistogram: invalid range or bin count");
  }
}

void LogHistogram::add(double x) {
  const double lx = std::log10(std::max(x, 1e-300));
  const double t = (lx - log_lo_) / (log_hi_ - log_lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
}

double LogHistogram::bin_center(std::size_t i) const {
  const double w = (log_hi_ - log_lo_) / static_cast<double>(counts_.size());
  return std::pow(10.0, log_lo_ + (static_cast<double>(i) + 0.5) * w);
}

std::string LogHistogram::ascii(std::size_t width) const {
  std::vector<std::string> labels;
  labels.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    labels.push_back(label(bin_center(i)));
  }
  return bars(counts_, labels, width);
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  desired_[0] = 0.0;
  desired_[1] = 2.0 * q;
  desired_[2] = 4.0 * q;
  desired_[3] = 2.0 + 2.0 * q;
  desired_[4] = 4.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

double P2Quantile::parabolic(int i, double d) const {
  // Piecewise-parabolic (P²) height adjustment of marker i by +-1 position.
  const double np = positions_[i + 1] - positions_[i - 1];
  const double na = positions_[i + 1] - positions_[i];
  const double nb = positions_[i] - positions_[i - 1];
  return heights_[i] +
         d / np *
             ((nb + d) * (heights_[i + 1] - heights_[i]) / na +
              (na - d) * (heights_[i] - heights_[i - 1]) / nb);
}

double P2Quantile::linear(int i, int d) const {
  return heights_[i] + d * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i;
    }
    return;
  }
  // Locate the cell containing x and update the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;
  // Nudge interior markers toward their desired positions, adjusting their
  // heights parabolically (linearly when the parabola would cross a
  // neighbour).
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int sign = d >= 1.0 ? 1 : -1;
      const double candidate = parabolic(i, sign);
      heights_[i] = (heights_[i - 1] < candidate && candidate < heights_[i + 1])
                        ? candidate
                        : linear(i, sign);
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ < 5) {
    // Exact small-sample quantile over what we have (sorts a 5-element copy).
    std::vector<double> sorted(heights_, heights_ + n_);
    std::sort(sorted.begin(), sorted.end());
    return percentile(sorted, q_ * 100.0);
  }
  return heights_[2];
}

}  // namespace papaya::util
