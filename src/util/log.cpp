#include "util/log.hpp"

#include <vector>

namespace papaya::util {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  LockGuard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  SharedLockGuard lock(mutex_);
  return level_;
}

void Logger::set_sink(LogSink sink) {
  LockGuard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  // Exclusive even for the fast drop path: the level read and the sink call
  // must be one atomic decision, and sinks rely on mutual exclusion for
  // un-torn output.
  LockGuard lock(mutex_);
  if (level < level_) return;
  if (sink_) {
    sink_(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  }
}

CapturingLogSink::CapturingLogSink(LogLevel capture_level)
    : previous_level_(Logger::instance().level()) {
  Logger::instance().set_level(capture_level);
  Logger::instance().set_sink([this](LogLevel level, const std::string& msg) {
    records_.push_back(Record{level, msg});
  });
}

CapturingLogSink::~CapturingLogSink() {
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(previous_level_);
}

bool CapturingLogSink::contains(const std::string& needle) const {
  for (const Record& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace papaya::util
