#pragma once
// Capability-annotated synchronization primitives (Clang Thread Safety
// Analysis).
//
// Every lock in this repository goes through these wrappers so the lock
// discipline is a *compile-time* contract, not a test-time hope: a member
// declared PAPAYA_GUARDED_BY(mu_) cannot be read or written without holding
// mu_, a function declared PAPAYA_REQUIRES(mu_) cannot be called without it,
// and `clang++ -Wthread-safety -Werror=thread-safety` (the CI "thread-safety"
// job) turns any violation — e.g. deleting a LockGuard line in
// ParallelAggregator — into a build failure.  On compilers without the
// attribute (GCC) every macro expands to nothing and the wrappers are
// zero-cost veneers over the std primitives.
//
// Repo rule (enforced by scripts/check_invariants.sh): raw std::mutex /
// std::shared_mutex / std::condition_variable / std::lock_guard /
// std::unique_lock / std::scoped_lock may appear ONLY in this header.
//
// Lock hierarchy (a thread may only acquire downwards; documented per-module
// and in docs/ARCHITECTURE.md "Concurrency & analysis"):
//
//   level 0 (leaf, never held while taking another lock):
//     util::Logger::mutex_            src/util/log.hpp
//     LockedSlot::lock                src/fl/agg_strategy.cpp (per slot)
//     GlobalPartition::lock           src/fl/agg_strategy.cpp (per partition)
//   level 1:
//     ParallelAggregator::queue_mutex_  src/fl/parallel_agg.hpp
//       (workers hold it only around queue ops, release it before folding
//        into a level-0 strategy lock; the reduce path's quiesce handshake
//        means queue_mutex_ and a strategy lock are never held together)
//   level 2:
//     Coordinator::mutex_             src/fl/coordinator.hpp
//       (placement and failover call into Aggregator task assignment and
//        removal while holding it, which constructs or tears down
//        ParallelAggregator pools — so it sits above queue_mutex_.
//        Aggregator code never calls back into the Coordinator: acyclic.)
//   independent roots (never nested with each other or the above):
//     SecureBufferManager::mutex_     src/fl/secure_buffer.hpp
//     VirtualSessionManager::mutex_   src/fl/session.hpp
//     ModelStore::mutex_              src/fl/model_store.hpp

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros.  Clang-only; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PAPAYA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PAPAYA_THREAD_ANNOTATION
#define PAPAYA_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

#define PAPAYA_CAPABILITY(x) PAPAYA_THREAD_ANNOTATION(capability(x))
#define PAPAYA_SCOPED_CAPABILITY PAPAYA_THREAD_ANNOTATION(scoped_lockable)
#define PAPAYA_GUARDED_BY(x) PAPAYA_THREAD_ANNOTATION(guarded_by(x))
#define PAPAYA_PT_GUARDED_BY(x) PAPAYA_THREAD_ANNOTATION(pt_guarded_by(x))
#define PAPAYA_ACQUIRED_BEFORE(...) \
  PAPAYA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PAPAYA_ACQUIRED_AFTER(...) \
  PAPAYA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define PAPAYA_REQUIRES(...) \
  PAPAYA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PAPAYA_REQUIRES_SHARED(...) \
  PAPAYA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PAPAYA_ACQUIRE(...) \
  PAPAYA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PAPAYA_ACQUIRE_SHARED(...) \
  PAPAYA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PAPAYA_RELEASE(...) \
  PAPAYA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PAPAYA_RELEASE_SHARED(...) \
  PAPAYA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PAPAYA_TRY_ACQUIRE(...) \
  PAPAYA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PAPAYA_EXCLUDES(...) PAPAYA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PAPAYA_ASSERT_CAPABILITY(x) \
  PAPAYA_THREAD_ANNOTATION(assert_capability(x))
#define PAPAYA_RETURN_CAPABILITY(x) PAPAYA_THREAD_ANNOTATION(lock_returned(x))
#define PAPAYA_NO_THREAD_SAFETY_ANALYSIS \
  PAPAYA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace papaya::util {

class CondVar;
class LockGuard;
class SharedLockGuard;

/// Exclusive mutex capability.  Prefer LockGuard over manual lock()/unlock().
class PAPAYA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PAPAYA_ACQUIRE() { mutex_.lock(); }
  void unlock() PAPAYA_RELEASE() { mutex_.unlock(); }
  bool try_lock() PAPAYA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Acquire, reporting whether the lock was contended (found held on the
  /// first attempt) — the aggregation strategies feed this into
  /// AggStats::on_lock so the adaptive picker can see contention.  Pair
  /// with `LockGuard guard(mu, std::adopt_lock)`.
  bool lock_reporting_contention() PAPAYA_ACQUIRE() {
    if (mutex_.try_lock()) return false;
    mutex_.lock();
    return true;
  }

  /// Tell the analysis this capability is held (runtime no-op).  Needed in
  /// lambdas — e.g. CondVar wait predicates — which Clang TSA analyzes as
  /// separate functions that cannot see the caller's lock set.
  void assert_held() const PAPAYA_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class LockGuard;
  std::mutex mutex_;
};

/// Reader/writer capability (std::shared_mutex).
class PAPAYA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PAPAYA_ACQUIRE() { mutex_.lock(); }
  void unlock() PAPAYA_RELEASE() { mutex_.unlock(); }
  void lock_shared() PAPAYA_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() PAPAYA_RELEASE_SHARED() { mutex_.unlock_shared(); }

  void assert_held() const PAPAYA_ASSERT_CAPABILITY(this) {}

 private:
  friend class LockGuard;
  friend class SharedLockGuard;
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over Mutex or SharedMutex.  Wraps std::unique_lock so
/// CondVar can wait on it (Mutex only).
class PAPAYA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) PAPAYA_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  /// Adopt a lock already acquired (e.g. via lock_reporting_contention()).
  LockGuard(Mutex& mutex, std::adopt_lock_t) PAPAYA_REQUIRES(mutex)
      : lock_(mutex.mutex_, std::adopt_lock) {}
  explicit LockGuard(SharedMutex& mutex) PAPAYA_ACQUIRE(mutex)
      : shared_target_(&mutex.mutex_) {
    shared_target_->lock();
  }
  ~LockGuard() PAPAYA_RELEASE() {
    if (shared_target_ != nullptr) shared_target_->unlock();
  }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;         ///< engaged for Mutex
  std::shared_mutex* shared_target_ = nullptr;  ///< engaged for SharedMutex
};

/// RAII shared (reader) lock over SharedMutex.
class PAPAYA_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mutex) PAPAYA_ACQUIRE_SHARED(mutex)
      : lock_(mutex.mutex_) {}
  ~SharedLockGuard() PAPAYA_RELEASE() {}

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Condition variable bound to util::Mutex.  wait() takes both the Mutex (so
/// the analysis can check the caller holds it) and the LockGuard holding it
/// (so the underlying std::condition_variable can unlock/relock it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mutex, LockGuard& guard) PAPAYA_REQUIRES(mutex) {
    (void)mutex;
    cv_.wait(guard.lock_);
  }

  /// Predicate wait.  Clang TSA analyzes the predicate lambda as its own
  /// function, blind to the held lock — open it with `mutex.assert_held()`
  /// before touching guarded state.
  template <typename Predicate>
  void wait(Mutex& mutex, LockGuard& guard, Predicate predicate)
      PAPAYA_REQUIRES(mutex) {
    (void)mutex;
    cv_.wait(guard.lock_, std::move(predicate));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace papaya::util
