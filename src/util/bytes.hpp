#pragma once
// Byte-buffer serialization used by the FL wire protocol and SecAgg.
//
// Little-endian, length-prefixed, append-only writer + bounds-checked reader.
// Deliberately tiny: the protocol only needs integers, doubles, raw byte
// strings, and float vectors (serialized model updates).

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

// The wire-format layer (and everything above it) requires C++20: std::span
// is used pervasively in public signatures.  Failing here gives a one-line
// diagnostic instead of the std::span template spew a C++17 build produces.
// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is passed, so its
// real language level is read from _MSVC_LANG.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "papaya requires C++20 (std::span); build with /std:c++20");
#else
static_assert(__cplusplus >= 202002L,
              "papaya requires C++20 (std::span); "
              "configure with -DCMAKE_CXX_STANDARD=20 or -std=c++20");
#endif

namespace papaya::util {

using Bytes = std::vector<std::uint8_t>;

/// Append-only little-endian writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }

  /// Length-prefixed byte string.
  void bytes(std::span<const std::uint8_t> b) {
    u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw bytes, no length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void str(const std::string& s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Length-prefixed float vector.
  void floats(std::span<const float> v) {
    u64(v.size());
    for (float x : v) f32(x);
  }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked little-endian reader.  Throws std::out_of_range on
/// truncated input (malformed messages must not crash the server).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Bytes bytes() {
    const std::uint64_t n = u64();
    const auto b = take(n);
    return Bytes(b.begin(), b.end());
  }

  std::string str() {
    const Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  std::vector<float> floats() {
    const std::uint64_t n = u64();
    // Bounds-check the whole payload up front (division form, so a hostile
    // count cannot overflow — or allocate gigabytes before the first
    // element's read would have thrown).
    if (n > remaining() / 4) {
      throw std::out_of_range("ByteReader: truncated message");
    }
    std::vector<float> v(n);
    if constexpr (std::endian::native == std::endian::little) {
      // The wire format is LE IEEE-754, so on LE hosts the payload is
      // already the in-memory representation: one memcpy instead of
      // assembling every f32 from four byte loads (this is the hottest
      // loop in server-side aggregation).
      if (n > 0) {
        std::memcpy(v.data(), data_.data() + pos_, n * 4);
        pos_ += n * 4;
      }
    } else {
      for (auto& x : v) x = f32();
    }
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> take(std::uint64_t n) {
    if (n > remaining()) {
      throw std::out_of_range("ByteReader: truncated message");
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Constant-time byte-equality (for MAC comparison).
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

/// Hex encoding, for logs and attestation digests.
std::string to_hex(std::span<const std::uint8_t> b);

}  // namespace papaya::util
