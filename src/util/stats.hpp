#pragma once
// Descriptive statistics and hypothesis tests used by the evaluation.
//
// The paper's fairness analysis (Sec. 7.4) relies on a two-sample
// Kolmogorov–Smirnov test to compare the distribution of participating
// clients under different selection regimes; that test lives here, together
// with percentiles, histograms, and Pearson correlation.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace papaya::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 if fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of paired samples.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Result of a two-sample Kolmogorov–Smirnov test.
struct KsResult {
  double d_statistic = 0.0;  ///< max |F1(x) - F2(x)|
  double p_value = 1.0;      ///< asymptotic two-sided p-value
};

/// Two-sample KS test (Chakravarti, Laha & Roy 1967, as cited by the paper).
/// The asymptotic p-value uses the Kolmogorov distribution
/// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin.  `normalized()` returns densities that sum to 1.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  std::vector<double> normalized() const;

  /// Render a fixed-width ASCII bar chart (for bench output).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram (for the Fig. 2 execution-time plot, whose x-axis is
/// logarithmic).
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_center(std::size_t i) const;
  std::string ascii(std::size_t width = 50) const;

 private:
  double log_lo_, log_hi_;
  std::vector<std::uint64_t> counts_;
};

/// Streaming mean/min/max/count accumulator.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming single-quantile estimator: the P² algorithm (Jain & Chlamtac,
/// CACM 1985).  Five markers track the running q-quantile in O(1) memory
/// and O(1) time per observation — no sample buffer — which is what lets a
/// 10M-participation simulation report latency percentiles without storing
/// ten million records (sim/metrics.hpp).  Exact for the first five
/// observations; a piecewise-parabolic estimate afterwards.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; NaN before the first observation.
  double value() const;
  std::size_t count() const { return n_; }
  double quantile() const { return q_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, int d) const;

  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};    ///< marker heights q_i
  double positions_[5] = {0, 1, 2, 3, 4};  ///< actual positions n_i
  double desired_[5] = {0, 0, 0, 0, 0};    ///< desired positions n'_i
  double increments_[5] = {0, 0, 0, 0, 0}; ///< dn'_i per observation
};

}  // namespace papaya::util
