#include "util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace papaya::util
