#pragma once
// Deterministic pseudo-random number generation for simulation.
//
// Two generator families, one distribution layer:
//  - Rng: SplitMix64-seeded xoshiro256** — fast sequential generation for
//    draws whose order is fixed by construction (corpus synthesis, model
//    init, local training).
//  - StreamRng: a counter-based SplitMix64 stream addressed by a
//    hierarchically derived key (root seed -> entity -> purpose).  The i-th
//    draw of a stream is a pure function of (key, i), so draws are
//    independent of *when* the simulator asks for them — the property the
//    closed-loop scheduler needs (sim/streams.hpp).
//
// Every experiment is reproducible from a single 64-bit seed.
// (Cryptographic randomness lives in src/crypto/chacha20.hpp, not here.)

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace papaya::util {

/// One SplitMix64 step as a stateless 64-bit mixer: gamma increment plus
/// finalizer.  The single definition behind SplitMix64 streams, session
/// tokens, the aggregation shard ring's placement hash, and StreamRng's
/// hierarchical key derivation.
inline std::uint64_t splitmix64_hash(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64: used to expand a single seed into xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    const std::uint64_t z = splitmix64_hash(state_);
    state_ += 0x9e3779b97f4a7c15ULL;
    return z;
  }

 private:
  std::uint64_t state_;
};

/// Distribution layer shared by every generator type (CRTP: `Derived` must
/// expose `std::uint64_t next()`).  One definition means Rng and StreamRng
/// produce identical values from identical raw 64-bit draws — the stream
/// refactor changes *where* bits come from, never the distribution math.
template <class Derived>
class RngDistributions {
 public:
  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(self().next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = self().next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = self().next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic, which matters more here than squeezing both values).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal: exp(N(mu, sigma)).  Used for client execution times, which
  /// the paper observes span >2 orders of magnitude (Fig. 2).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with rate lambda.
  double exponential(double lambda) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

/// xoshiro256**: fast, high-quality general-purpose PRNG
/// (Blackman & Vigna, 2018).  Satisfies UniformRandomBitGenerator.
class Rng : public RngDistributions<Rng> {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent child generator (for per-entity streams).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Counter-based SplitMix64 stream addressed by a hierarchical key
///
///   key = H(H(H(root_seed) ^ entity_id) ^ purpose)     (H = splitmix64_hash)
///   draw i = H(key + gamma * i)
///
/// i.e. the stream *is* SplitMix64 started at `key`, but with the counter
/// held explicitly so the i-th draw is a pure function of
/// (root_seed, entity_id, purpose, i).  Two consequences the simulator
/// leans on (sim/streams.hpp):
///  - draws never depend on the interleaving of other entities' draws, so
///    an event schedule may legally *react* to sampled quantities
///    (closed-loop mode) without perturbing any other stream;
///  - a stream can be reconstructed anywhere from its key and draw index
///    (seek()), which makes trajectories auditable draw by draw.
class StreamRng : public RngDistributions<StreamRng> {
 public:
  using result_type = std::uint64_t;

  StreamRng() = default;
  /// Stream over a pre-derived key (advanced use; prefer the 3-arg form).
  explicit StreamRng(std::uint64_t key) : key_(key) {}
  StreamRng(std::uint64_t root_seed, std::uint64_t entity_id,
            std::uint64_t purpose)
      : key_(derive_key(root_seed, entity_id, purpose)) {}

  /// The hierarchical key derivation: root -> entity -> purpose.  Each level
  /// is one splitmix64_hash application, so sibling streams (same root,
  /// different entity or purpose) are decorrelated by the full 64-bit mixer.
  static std::uint64_t derive_key(std::uint64_t root_seed,
                                  std::uint64_t entity_id,
                                  std::uint64_t purpose) {
    return splitmix64_hash(
        splitmix64_hash(splitmix64_hash(root_seed) ^ entity_id) ^ purpose);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    return splitmix64_hash(key_ + 0x9e3779b97f4a7c15ULL * draw_index_++);
  }

  std::uint64_t key() const { return key_; }
  /// Number of raw 64-bit draws consumed so far (== the next draw's index).
  std::uint64_t draw_index() const { return draw_index_; }
  /// Random access: position the stream so the next raw draw is draw `i`.
  void seek(std::uint64_t i) { draw_index_ = i; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t draw_index_ = 0;
};

/// Zipf(s) sampler over {0, ..., n-1} by inverse-CDF table.  Used for the
/// synthetic vocabulary distribution of the federated text corpus.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Sample one rank; rank 0 is the most frequent element.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace papaya::util
