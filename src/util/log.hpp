#pragma once
// Minimal leveled logging with injectable sinks.
//
// Server components log placement decisions, failovers, and protocol aborts;
// tests install a capturing sink to assert on them, and the default sink
// writes to stderr.  Deliberately tiny: no formatting library, no global
// configuration file — a level threshold and a sink callback.

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace papaya::util {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

const char* to_string(LogLevel level);

/// A log sink receives fully formatted records.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Process-wide logger.  Thread-safe: the sink is invoked under an exclusive
/// lock, so sinks need no internal synchronization and records are never
/// torn or interleaved.  Capability: `mutex_` guards the level and the sink;
/// it is a leaf lock (no other lock is ever acquired under it).
class Logger {
 public:
  static Logger& instance();

  /// Records below this level are dropped (default kWarning, so library
  /// code is silent in tests and benches unless something is wrong).
  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the sink (pass nullptr to restore the stderr default).
  void set_sink(LogSink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger() = default;

  mutable SharedMutex mutex_;
  LogLevel level_ PAPAYA_GUARDED_BY(mutex_) = LogLevel::kWarning;
  LogSink sink_ PAPAYA_GUARDED_BY(mutex_);
};

/// Stream-style one-shot record: `LogMessage(LogLevel::kInfo) << "x=" << x;`
/// submits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// RAII sink capture for tests: installs a recording sink (and optionally a
/// lower threshold) on construction, restores the previous behaviour on
/// destruction.
class CapturingLogSink {
 public:
  explicit CapturingLogSink(LogLevel capture_level = LogLevel::kDebug);
  ~CapturingLogSink();

  CapturingLogSink(const CapturingLogSink&) = delete;
  CapturingLogSink& operator=(const CapturingLogSink&) = delete;

  struct Record {
    LogLevel level;
    std::string message;
  };
  const std::vector<Record>& records() const { return records_; }
  bool contains(const std::string& needle) const;

 private:
  std::vector<Record> records_;
  LogLevel previous_level_;
};

}  // namespace papaya::util

#define PAPAYA_LOG(level) ::papaya::util::LogMessage(level)
