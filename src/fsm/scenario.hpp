#pragma once
// Scenario injection for the FSM workload harness (fsm/workload.hpp).
//
// A Scenario perturbs a running workload without the workload knowing: it
// gates actor availability (diurnal waves), cuts nodes off (partitions),
// deschedules victim actors (straggler storms), and flips actors byzantine
// (malformed-contribution floods).  Scenarios are layered *onto* workloads —
// any scenario composes with any workload, and ComposedScenario stacks
// several at once.
//
// Determinism contract (the harness's byte-identical-replay guarantee leans
// on it): for a fixed configuration, the number of draws a scenario consumes
// from the per-actor scenario stream must be a pure function of (actor,
// step, current state) — never of wall-clock time, thread interleaving, or
// shared mutable state.  available() is called exactly once per (actor,
// step); byzantine() only from state actions, whose sequence is itself
// deterministic.  perturb() must not draw at all: it may only waste time
// (yield/spin), so removing it never shifts a stream.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace papaya::fsm {

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string name() const = 0;

  /// Is `actor` willing to act at `step`?  Unavailable steps are logged as
  /// idle ("-") and consume no action draw.
  virtual bool available(std::uint64_t actor, std::uint64_t step,
                         util::StreamRng& rng) const {
    (void)actor;
    (void)step;
    (void)rng;
    return true;
  }

  /// Is `node` (a workload-defined index: aggregator, shard, ...) cut off
  /// from the cluster at `step`?  Pure — no draws.
  virtual bool partitioned(std::size_t node, std::uint64_t step) const {
    (void)node;
    (void)step;
    return false;
  }

  /// Should `actor` behave byzantine (submit malformed contributions) at
  /// `step`?
  virtual bool byzantine(std::uint64_t actor, std::uint64_t step,
                         util::StreamRng& rng) const {
    (void)actor;
    (void)step;
    (void)rng;
    return false;
  }

  /// Scheduling perturbation before the step runs (yields, busy-waits).
  /// Must not touch any harness stream.
  virtual void perturb(std::uint64_t actor, std::uint64_t step) const {
    (void)actor;
    (void)step;
  }
};

/// No injection: every actor available, honest, connected.
class NullScenario final : public Scenario {
 public:
  std::string name() const override { return "none"; }
};

/// Sinusoidal availability wave: the paper's diurnal device population,
/// compressed to `period_steps`.  Consumes exactly one draw per
/// availability check.
class DiurnalWaveScenario final : public Scenario {
 public:
  struct Config {
    std::uint64_t period_steps = 64;
    double min_availability = 0.2;
    double max_availability = 1.0;
  };

  explicit DiurnalWaveScenario(Config config) : config_(config) {}

  std::string name() const override { return "diurnal_wave"; }
  bool available(std::uint64_t actor, std::uint64_t step,
                 util::StreamRng& rng) const override;

 private:
  Config config_;
};

/// Network partition: `nodes` are unreachable for steps in [begin, end).
/// Which side of the partition a node call sits on is the workload's
/// interpretation (e.g. "skip heartbeats for partitioned aggregators").
class PartitionScenario final : public Scenario {
 public:
  struct Config {
    std::uint64_t begin_step = 0;
    std::uint64_t end_step = 0;
    std::vector<std::size_t> nodes;
  };

  explicit PartitionScenario(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "partition"; }
  bool partitioned(std::size_t node, std::uint64_t step) const override;

 private:
  Config config_;
};

/// Straggler storm: every `every_kth_actor`-th actor repeatedly yields the
/// CPU inside [begin, end), stretching its steps across everyone else's and
/// shaking out interleavings a fair scheduler would rarely produce.
class StragglerStormScenario final : public Scenario {
 public:
  struct Config {
    std::uint64_t begin_step = 0;
    std::uint64_t end_step = 0;
    std::uint64_t every_kth_actor = 2;
    unsigned yields = 16;
  };

  explicit StragglerStormScenario(Config config) : config_(config) {}

  std::string name() const override { return "straggler_storm"; }
  void perturb(std::uint64_t actor, std::uint64_t step) const override;

 private:
  Config config_;
};

/// Sustained byzantine flood: inside [begin, end) each byzantine() check
/// flips malformed with `probability`.  Draws only inside the window, so the
/// draw count stays a pure function of the step.
class ByzantineFloodScenario final : public Scenario {
 public:
  struct Config {
    std::uint64_t begin_step = 0;
    std::uint64_t end_step = ~0ULL;
    double probability = 0.5;
  };

  explicit ByzantineFloodScenario(Config config) : config_(config) {}

  std::string name() const override { return "byzantine_flood"; }
  bool byzantine(std::uint64_t actor, std::uint64_t step,
                 util::StreamRng& rng) const override;

 private:
  Config config_;
};

/// Stack several scenarios: available iff *all* say available (every layer
/// still consumes its draws — no short-circuiting, or replay would shift),
/// partitioned/byzantine iff *any* says so, perturb runs all.
class ComposedScenario final : public Scenario {
 public:
  explicit ComposedScenario(std::vector<const Scenario*> layers)
      : layers_(std::move(layers)) {}

  std::string name() const override;
  bool available(std::uint64_t actor, std::uint64_t step,
                 util::StreamRng& rng) const override;
  bool partitioned(std::size_t node, std::uint64_t step) const override;
  bool byzantine(std::uint64_t actor, std::uint64_t step,
                 util::StreamRng& rng) const override;
  void perturb(std::uint64_t actor, std::uint64_t step) const override;

 private:
  std::vector<const Scenario*> layers_;
};

}  // namespace papaya::fsm
