#include "fsm/workloads.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "fl/model_update.hpp"
#include "fsm/scenario.hpp"

namespace papaya::fsm {

namespace {

/// Shared transition menu: every state can follow every state; the weights
/// shape the mix (MongoDB's $config transition tables do the same, per
/// state — here one menu per workload keeps the tables readable).
std::vector<std::pair<std::string, double>> menu(
    std::initializer_list<std::pair<const char*, double>> entries) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, weight] : entries) out.emplace_back(name, weight);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionChurnWorkload
// ---------------------------------------------------------------------------

namespace {
constexpr double kSessionTick = 0.5;
constexpr std::size_t kMaxTokensPerActor = 24;
constexpr double kSessionTtl = 50.0;
constexpr double kSessionRetention = 50.0;
}  // namespace

SessionChurnWorkload::SessionChurnWorkload(std::size_t actors)
    : manager_(fl::VirtualSessionManager::Options{kSessionTtl, 2},
               /*seed=*/0x5e5510ULL),
      slots_(actors) {}

double SessionChurnWorkload::tick() {
  return kSessionTick *
         static_cast<double>(clock_.fetch_add(1, std::memory_order_relaxed));
}

void SessionChurnWorkload::drop(std::size_t actor, std::size_t index) {
  auto& tokens = slots_[actor].tokens;
  tokens[index] = tokens.back();
  tokens.pop_back();
}

std::vector<StateDef> SessionChurnWorkload::states() {
  const auto transitions = menu({{"open", 3.0},
                                 {"touch", 3.0},
                                 {"advance", 2.5},
                                 {"chunk", 2.0},
                                 {"complete", 1.0},
                                 {"abort_one", 1.0},
                                 {"expire", 0.5},
                                 {"prune", 0.5}});
  std::vector<StateDef> states;

  states.push_back({"open",
                    [this](StepContext& ctx) {
                      auto& slot = slots_[ctx.actor];
                      const std::uint64_t client =
                          (ctx.actor << 32) | slot.opened;
                      const std::uint64_t token = manager_.open(client, tick());
                      ++slot.opened;
                      opened_total_.fetch_add(1, std::memory_order_relaxed);
                      bool fresh;
                      {
                        util::LockGuard lock(token_mutex_);
                        fresh = seen_tokens_.insert(token).second;
                      }
                      ctx.check(fresh, "open() returned a token that an "
                                       "earlier open() already handed out");
                      slot.tokens.push_back(token);
                      if (slot.tokens.size() > kMaxTokensPerActor) {
                        manager_.complete(slot.tokens.front(), tick());
                        slot.tokens.erase(slot.tokens.begin());
                      }
                    },
                    transitions});

  states.push_back({"touch",
                    [this](StepContext& ctx) {
                      auto& slot = slots_[ctx.actor];
                      if (slot.tokens.empty()) return;
                      const std::size_t i = static_cast<std::size_t>(
                          ctx.rng().uniform_int(slot.tokens.size()));
                      const auto outcome =
                          manager_.touch(slot.tokens[i], tick());
                      if (outcome != fl::SessionOutcome::kOk) {
                        drop(ctx.actor, i);
                      }
                    },
                    transitions});

  states.push_back(
      {"advance",
       [this](StepContext& ctx) {
         auto& slot = slots_[ctx.actor];
         if (slot.tokens.empty()) return;
         const std::size_t i = static_cast<std::size_t>(
             ctx.rng().uniform_int(slot.tokens.size()));
         const std::uint64_t token = slot.tokens[i];
         const int target = 1 + static_cast<int>(ctx.rng().uniform_int(5));
         const auto stage = static_cast<fl::SessionStage>(target);
         const auto outcome = manager_.advance(token, stage, tick());
         if (outcome == fl::SessionOutcome::kOk) {
           // Forward-only means monotone: once advance succeeded, no later
           // observation may sit before the target (a concurrent expire may
           // have pushed it *past*, to kAborted; a concurrent prune may have
           // dropped the then-terminal record entirely).
           const auto info = manager_.lookup(token);
           ctx.check(!info.has_value() ||
                         static_cast<int>(info->stage) >= target,
                     "advance() returned kOk but the session moved backwards");
           if (stage == fl::SessionStage::kCompleted) drop(ctx.actor, i);
         } else if (outcome != fl::SessionOutcome::kOutOfOrder) {
           drop(ctx.actor, i);
         }
       },
       transitions});

  states.push_back({"chunk",
                    [this](StepContext& ctx) {
                      auto& slot = slots_[ctx.actor];
                      if (slot.tokens.empty()) return;
                      const std::size_t i = static_cast<std::size_t>(
                          ctx.rng().uniform_int(slot.tokens.size()));
                      const auto outcome =
                          manager_.record_chunk(slot.tokens[i], tick());
                      if (outcome != fl::SessionOutcome::kOk) {
                        drop(ctx.actor, i);
                      }
                    },
                    transitions});

  states.push_back({"complete",
                    [this](StepContext& ctx) {
                      auto& slot = slots_[ctx.actor];
                      if (slot.tokens.empty()) return;
                      const std::size_t i = static_cast<std::size_t>(
                          ctx.rng().uniform_int(slot.tokens.size()));
                      manager_.complete(slot.tokens[i], tick());
                      drop(ctx.actor, i);
                    },
                    transitions});

  states.push_back({"abort_one",
                    [this](StepContext& ctx) {
                      auto& slot = slots_[ctx.actor];
                      if (slot.tokens.empty()) return;
                      const std::size_t i = static_cast<std::size_t>(
                          ctx.rng().uniform_int(slot.tokens.size()));
                      manager_.abort(slot.tokens[i], tick());
                      drop(ctx.actor, i);
                    },
                    transitions});

  states.push_back({"expire",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      manager_.expire(tick());
                    },
                    transitions});

  states.push_back({"prune",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      manager_.prune_terminal(tick(), kSessionRetention);
                    },
                    transitions});

  return states;
}

void SessionChurnWorkload::check_quiesce(std::uint64_t step,
                                         InvariantCollector& invariants) {
  const std::uint64_t opened = opened_total_.load(std::memory_order_relaxed);
  std::size_t unique_tokens;
  {
    util::LockGuard lock(token_mutex_);
    unique_tokens = seen_tokens_.size();
  }
  if (unique_tokens != opened) {
    invariants.fail(name(), 0, step,
                    "token uniqueness broke: " + std::to_string(opened) +
                        " opens produced " + std::to_string(unique_tokens) +
                        " distinct tokens");
  }
  if (manager_.active_sessions() > manager_.total_sessions()) {
    invariants.fail(name(), 0, step, "active sessions exceed table size");
  }
  if (manager_.total_sessions() > opened) {
    invariants.fail(name(), 0, step,
                    "session table holds more sessions than were opened");
  }
}

// ---------------------------------------------------------------------------
// CoordinatorFailoverWorkload
// ---------------------------------------------------------------------------

namespace {
constexpr double kCoordTick = 0.5;
}  // namespace

CoordinatorFailoverWorkload::CoordinatorFailoverWorkload(std::size_t actors)
    : CoordinatorFailoverWorkload(actors, Config()) {}

CoordinatorFailoverWorkload::CoordinatorFailoverWorkload(std::size_t actors,
                                                         Config config)
    : config_(config), coordinator_(/*seed=*/0xc0feULL), slots_(actors) {
  for (std::size_t a = 0; a < config_.aggregators; ++a) {
    aggregators_.push_back(std::make_unique<fl::Aggregator>(
        "agg" + std::to_string(a), /*num_threads=*/1));
    coordinator_.register_aggregator(*aggregators_.back(), 0.0);
  }
}

double CoordinatorFailoverWorkload::tick() {
  return kCoordTick *
         static_cast<double>(clock_.fetch_add(1, std::memory_order_relaxed));
}

fl::TaskConfig CoordinatorFailoverWorkload::make_task(
    const std::string& task, std::size_t shards) const {
  fl::TaskConfig config;
  config.name = task;
  config.mode = fl::TrainingMode::kAsync;
  config.concurrency = 8;
  config.aggregation_goal = 4;
  config.model_size = config_.model_size;
  config.aggregator_shards = shards;
  return config;
}

void CoordinatorFailoverWorkload::set_floor(const std::string& task,
                                            std::uint64_t floor) {
  util::LockGuard lock(floors_mutex_);
  version_floors_[task] = floor;
}

void CoordinatorFailoverWorkload::erase_floor(const std::string& task) {
  util::LockGuard lock(floors_mutex_);
  version_floors_.erase(task);
}

std::vector<StateDef> CoordinatorFailoverWorkload::states() {
  const auto transitions = menu({{"submit", 2.0},
                                 {"heartbeat", 3.0},
                                 {"detect", 1.5},
                                 {"assign", 2.0},
                                 {"reshard", 1.5},
                                 {"adopt", 1.0},
                                 {"recover", 0.5},
                                 {"remove", 1.0}});
  std::vector<StateDef> states;

  states.push_back(
      {"submit",
       [this](StepContext& ctx) {
         auto& slot = slots_[ctx.actor];
         if (slot.owned.size() >= config_.max_tasks_per_actor) return;
         const std::string task = "w" + std::to_string(ctx.actor) + "_t" +
                                  std::to_string(slot.next_id++);
         const std::size_t shards =
             1 + static_cast<std::size_t>(ctx.rng().uniform_int(2));
         try {
           coordinator_.submit_task(
               make_task(task, shards),
               std::vector<float>(config_.model_size, 0.0f), {}, 0);
         } catch (const std::runtime_error&) {
           return;  // total outage: submit legitimately refuses
         }
         slot.owned.push_back(task);
         set_floor(task, 0);
       },
       transitions});

  states.push_back(
      {"heartbeat",
       [this](StepContext& ctx) {
         const double now = tick();
         for (std::size_t a = 0; a < aggregators_.size(); ++a) {
           if (ctx.partitioned(a)) continue;  // unreachable: no heartbeat
           coordinator_.aggregator_report(
               aggregators_[a]->id(),
               heartbeat_seq_.fetch_add(1, std::memory_order_relaxed) + 1, now,
               {});
         }
       },
       transitions});

  states.push_back({"detect",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      coordinator_.detect_failures(tick(),
                                                   config_.heartbeat_timeout);
                    },
                    transitions});

  states.push_back(
      {"assign",
       [this](StepContext& ctx) {
         const auto assignment = coordinator_.assign_client({});
         if (!assignment) return;
         ctx.check(!assignment->aggregator_id.empty(),
                   "assignment points a client at the empty aggregator");
         coordinator_.assignment_concluded(assignment->task);
       },
       transitions});

  states.push_back(
      {"reshard",
       [this](StepContext& ctx) {
         auto& slot = slots_[ctx.actor];
         if (slot.owned.empty()) return;
         const std::size_t i = static_cast<std::size_t>(
             ctx.rng().uniform_int(slot.owned.size()));
         const std::string task = slot.owned[i];
         const auto inspection = coordinator_.inspect();
         const auto it = inspection.tasks.find(task);
         // Skip while unowned (orphaned mid-outage): the live version is
         // only known once the task is placed again.
         if (it == inspection.tasks.end() ||
             it->second.aggregator_id.empty()) {
           return;
         }
         const std::uint64_t next_version = it->second.model_version + 1;
         const std::size_t shards =
             1 + static_cast<std::size_t>(ctx.rng().uniform_int(3));
         coordinator_.remove_task(task);
         try {
           coordinator_.submit_task(
               make_task(task, shards),
               std::vector<float>(config_.model_size, 0.0f), {}, next_version);
         } catch (const std::runtime_error&) {
           // Removed but nowhere to re-place: forget the task.
           slot.owned.erase(slot.owned.begin() +
                            static_cast<std::ptrdiff_t>(i));
           erase_floor(task);
           return;
         }
         set_floor(task, next_version);
       },
       transitions});

  states.push_back(
      {"adopt",
       [this](StepContext& ctx) {
         auto& slot = slots_[ctx.actor];
         if (slot.adopted.size() >= config_.max_adopted_per_actor) {
           coordinator_.remove_task(slot.adopted.front());
           slot.adopted.erase(slot.adopted.begin());
         }
         const std::string task = "w" + std::to_string(ctx.actor) + "_a" +
                                  std::to_string(slot.next_id++);
         coordinator_.adopt_task(make_task(task, 1), {});
         slot.adopted.push_back(task);
       },
       transitions});

  states.push_back({"recover",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      coordinator_.recover_from_aggregator_state(tick());
                    },
                    transitions});

  states.push_back(
      {"remove",
       [this](StepContext& ctx) {
         auto& slot = slots_[ctx.actor];
         if (!slot.owned.empty()) {
           const std::size_t i = static_cast<std::size_t>(
               ctx.rng().uniform_int(slot.owned.size()));
           coordinator_.remove_task(slot.owned[i]);
           erase_floor(slot.owned[i]);
           slot.owned.erase(slot.owned.begin() +
                            static_cast<std::ptrdiff_t>(i));
         } else if (!slot.adopted.empty()) {
           coordinator_.remove_task(slot.adopted.front());
           slot.adopted.erase(slot.adopted.begin());
         }
       },
       transitions});

  return states;
}

void CoordinatorFailoverWorkload::check_quiesce(
    std::uint64_t step, InvariantCollector& invariants) {
  const auto inspection = coordinator_.inspect();

  for (const auto& [task, agg] : inspection.task_to_aggregator) {
    if (!inspection.registered_aggregators.count(agg)) {
      invariants.fail(name(), 0, step,
                      "routing entry for '" + task +
                          "' targets unregistered aggregator '" + agg + "'");
    } else if (!inspection.live_aggregators.count(agg)) {
      invariants.fail(name(), 0, step,
                      "routing entry for '" + task +
                          "' targets dead aggregator '" + agg + "'");
    }
    const auto it = inspection.tasks.find(task);
    if (it == inspection.tasks.end()) {
      invariants.fail(name(), 0, step,
                      "routing entry for unknown task '" + task + "'");
    } else if (it->second.aggregator_id != agg) {
      invariants.fail(name(), 0, step,
                      "routing map and task table disagree on '" + task + "'");
    }
  }

  for (const auto& [task, view] : inspection.tasks) {
    if (view.aggregator_id.empty() &&
        inspection.task_to_aggregator.count(task)) {
      invariants.fail(name(), 0, step,
                      "unowned task '" + task + "' is still routable");
    }
    if (view.pending_assignments < 0) {
      invariants.fail(name(), 0, step,
                      "negative pending assignments on '" + task + "'");
    }
  }

  if (inspection.map_version < last_map_version_) {
    invariants.fail(name(), 0, step, "assignment-map version went backwards");
  }
  last_map_version_ = inspection.map_version;

  util::LockGuard lock(floors_mutex_);
  for (const auto& [task, floor] : version_floors_) {
    const auto it = inspection.tasks.find(task);
    if (it == inspection.tasks.end()) continue;
    if (it->second.model_version < floor) {
      invariants.fail(
          name(), 0, step,
          "checkpoint-version monotonicity broke on '" + task + "': version " +
              std::to_string(it->second.model_version) + " below floor " +
              std::to_string(floor) + " (checkpoint lost in failover?)");
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedAggWorkload
// ---------------------------------------------------------------------------

namespace {

fl::ShardedAggregator::Config sharded_config(
    const ShardedAggWorkload::Config& config) {
  fl::ShardedAggregator::Config out;
  out.model_size = config.model_size;
  out.num_shards = config.shards;
  out.threads_per_shard = config.threads_per_shard;
  out.drain_batch = config.drain_batch;
  out.strategy = fl::AggStrategy::kAuto;
  return out;
}

}  // namespace

ShardedAggWorkload::ShardedAggWorkload(std::size_t actors)
    : ShardedAggWorkload(actors, Config()) {}

ShardedAggWorkload::ShardedAggWorkload(std::size_t actors, Config config)
    : agg_(sharded_config(config)), model_size_(config.model_size) {
  (void)actors;  // all actor bookkeeping is atomic totals
}

void ShardedAggWorkload::enqueue_one(StepContext& ctx) {
  // A handful of streams per actor so consistent hashing spreads them over
  // shards but per-stream FIFO still gets exercised.
  const std::uint64_t stream_key =
      ctx.actor * 97 + ctx.rng().uniform_int(64);
  const double weight = 1.0 + static_cast<double>(ctx.rng().uniform_int(3));
  fl::ModelUpdate update;
  update.client_id = stream_key;
  update.initial_version = 0;
  update.num_examples = static_cast<std::size_t>(weight);
  update.delta.resize(model_size_);
  for (auto& v : update.delta) {
    v = static_cast<float>(ctx.rng().uniform(-1.0, 1.0));
  }
  agg_.enqueue(stream_key, update.serialize(), weight);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Weights are small integers, so double sums are exact and conservation
  // can be asserted with == instead of a float tolerance.
  enqueued_weight_units_.fetch_add(static_cast<std::uint64_t>(weight),
                                   std::memory_order_relaxed);
}

void ShardedAggWorkload::credit_reduce(
    const fl::ParallelAggregator::Reduced& reduced) {
  reduced_.fetch_add(reduced.count, std::memory_order_relaxed);
  reduced_weight_units_.fetch_add(
      static_cast<std::uint64_t>(std::llround(reduced.weight_sum)),
      std::memory_order_relaxed);
}

std::vector<StateDef> ShardedAggWorkload::states() {
  const auto transitions = menu({{"enqueue", 4.0},
                                 {"burst", 1.5},
                                 {"switch_strategy", 1.0},
                                 {"reduce", 1.0},
                                 {"drain", 0.5}});
  std::vector<StateDef> states;

  states.push_back(
      {"enqueue", [this](StepContext& ctx) { enqueue_one(ctx); }, transitions});

  states.push_back({"burst",
                    [this](StepContext& ctx) {
                      for (int i = 0; i < 8; ++i) enqueue_one(ctx);
                    },
                    transitions});

  states.push_back(
      {"switch_strategy",
       [this](StepContext& ctx) {
         static constexpr fl::AggStrategy kChoices[] = {
             fl::AggStrategy::kLocked, fl::AggStrategy::kMorsel,
             fl::AggStrategy::kStriped, fl::AggStrategy::kAuto};
         agg_.force_strategy(kChoices[ctx.rng().uniform_int(4)]);
       },
       transitions});

  states.push_back(
      {"reduce",
       [this](StepContext& ctx) {
         const auto reduced = agg_.reduce_and_reset();
         ctx.check(reduced.count > 0 || reduced.weight_sum == 0.0,
                   "empty reduce carries nonzero weight");
         for (const float v : reduced.mean_delta) {
           if (!std::isfinite(v)) {
             ctx.check(false, "non-finite value in reduced mean");
             break;
           }
         }
         credit_reduce(reduced);
       },
       transitions});

  states.push_back({"drain",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      agg_.drain();
                    },
                    transitions});

  return states;
}

void ShardedAggWorkload::check_quiesce(std::uint64_t step,
                                       InvariantCollector& invariants) {
  agg_.drain();
  credit_reduce(agg_.reduce_and_reset());

  const std::uint64_t enqueued = enqueued_.load(std::memory_order_relaxed);
  const std::uint64_t reduced = reduced_.load(std::memory_order_relaxed);
  if (enqueued != reduced) {
    invariants.fail(name(), 0, step,
                    "update conservation broke: " + std::to_string(enqueued) +
                        " enqueued vs " + std::to_string(reduced) +
                        " reduced across shards and strategy switches");
  }
  if (enqueued_weight_units_.load(std::memory_order_relaxed) !=
      reduced_weight_units_.load(std::memory_order_relaxed)) {
    invariants.fail(name(), 0, step, "weight conservation broke");
  }

  const auto stats = agg_.stats_snapshot();
  if (stats.enqueued != enqueued) {
    invariants.fail(name(), 0, step, "stats enqueued count drifted");
  }
  if (stats.dropped != 0) {
    invariants.fail(name(), 0, step,
                    std::to_string(stats.dropped) +
                        " well-formed updates dropped as malformed");
  }
  std::uint64_t per_shard_enqueued = 0;
  for (std::size_t s = 0; s < agg_.num_shards(); ++s) {
    const auto shard = agg_.shard_stats(s);
    if (shard.folded + shard.dropped != shard.enqueued) {
      invariants.fail(name(), 0, step,
                      "shard " + std::to_string(s) +
                          " leaked queued updates (folded " +
                          std::to_string(shard.folded) + " of " +
                          std::to_string(shard.enqueued) + ")");
    }
    per_shard_enqueued += shard.enqueued;
  }
  if (per_shard_enqueued != stats.enqueued) {
    invariants.fail(name(), 0, step,
                    "per-shard counters disagree with the cross-shard sum");
  }
}

// ---------------------------------------------------------------------------
// SecAggFloodWorkload
// ---------------------------------------------------------------------------

SecAggFloodWorkload::SecAggFloodWorkload(std::size_t actors)
    : SecAggFloodWorkload(actors, Config()) {}

SecAggFloodWorkload::SecAggFloodWorkload(std::size_t actors, Config config)
    : manager_(config.model_size, config.goal, config.seed, config.batch_size,
               fl::AggStrategy::kAuto),
      model_size_(config.model_size),
      goal_(config.goal) {
  (void)actors;
}

std::vector<StateDef> SecAggFloodWorkload::states() {
  const auto transitions = menu({{"contribute", 5.0},
                                 {"finalize", 1.5},
                                 {"claim", 1.0},
                                 {"probe", 1.0}});
  std::vector<StateDef> states;

  states.push_back(
      {"contribute",
       [this](StepContext& ctx) {
         // Drawn unconditionally, before any early return, so the scenario
         // stream's draw count stays a pure function of (actor, step).
         const bool byzantine = ctx.byzantine();
         const auto config = manager_.next_upload_config();
         if (!config) return;  // epoch exhausted until the next release
         std::vector<float> delta(model_size_, 0.25f);
         auto report = fl::SecureBufferManager::prepare_report(
             manager_.platform(), *config,
             /*client_id=*/(ctx.actor << 20) + ctx.step,
             /*initial_version=*/0, /*num_examples=*/4, /*weight=*/1.0, delta,
             /*client_seed=*/ctx.rng().next());
         ctx.check(report.has_value(),
                   "prepare_report refused a fresh upload config");
         if (!report) return;
         if (byzantine) {
           // Malformed contribution: corrupt the sealed seed so the TSA's
           // authenticated decryption must refuse it.
           auto& ciphertext = report->contribution.sealed_seed.ciphertext;
           if (!ciphertext.empty()) {
             ciphertext[ctx.rng().uniform_int(ciphertext.size())] ^= 1;
           }
           malformed_.fetch_add(1, std::memory_order_relaxed);
         } else {
           valid_.fetch_add(1, std::memory_order_relaxed);
         }
         manager_.submit(*report, /*weight=*/1.0);
         submitted_.fetch_add(1, std::memory_order_relaxed);
       },
       transitions});

  states.push_back({"finalize",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      if (!manager_.goal_reached()) return;
                      if (manager_.finalize_mean().has_value()) {
                        finalized_.fetch_add(1, std::memory_order_relaxed);
                      }
                    },
                    transitions});

  states.push_back({"claim",
                    [this](StepContext& ctx) {
                      (void)ctx;
                      manager_.take_rejected();
                    },
                    transitions});

  states.push_back(
      {"probe",
       [this](StepContext& ctx) {
         const auto acct = manager_.accounting();
         ctx.check(acct.submitted == acct.accepted + acct.rejected +
                                         acct.wrong_epoch + acct.pending,
                   "SecAgg accounting leak: submitted != accepted + rejected "
                   "+ wrong_epoch + pending");
         ctx.check(acct.pending == acct.pending_weight_slots,
                   "buffered contribution/weight slots out of step");
       },
       transitions});

  return states;
}

void SecAggFloodWorkload::check_quiesce(std::uint64_t step,
                                        InvariantCollector& invariants) {
  const auto acct = manager_.accounting();
  if (acct.submitted !=
      acct.accepted + acct.rejected + acct.wrong_epoch + acct.pending) {
    invariants.fail(name(), 0, step,
                    "SecAgg accounting leak at quiesce: submitted " +
                        std::to_string(acct.submitted) + " != " +
                        std::to_string(acct.accepted) + " accepted + " +
                        std::to_string(acct.rejected) + " rejected + " +
                        std::to_string(acct.wrong_epoch) + " wrong-epoch + " +
                        std::to_string(acct.pending) + " pending");
  }
  if (acct.pending != acct.pending_weight_slots) {
    invariants.fail(name(), 0, step, "buffered-slot leak at quiesce");
  }
  if (acct.submitted != submitted_.load(std::memory_order_relaxed)) {
    invariants.fail(name(), 0, step, "manager lost track of submissions");
  }
  if (acct.accepted > valid_.load(std::memory_order_relaxed)) {
    invariants.fail(
        name(), 0, step,
        "accepted count exceeds valid submissions: a malformed contribution "
        "was accepted (accepted-set drift)");
  }
  if (acct.pending > goal_) {
    invariants.fail(name(), 0, step,
                    "pending buffer exceeded the aggregation goal");
  }
}

// ---------------------------------------------------------------------------
// EventQueueChurnWorkload
// ---------------------------------------------------------------------------

EventQueueChurnWorkload::EventQueueChurnWorkload(
    std::size_t actors, sim::EventQueueBackend backend)
    : queue_(backend) {
  (void)actors;  // all bookkeeping is atomic totals
}

void EventQueueChurnWorkload::schedule_one(StepContext& ctx, double delay) {
  // Delays live on a 0.25 s grid and now() is frozen while actors run (pops
  // happen only at quiesce), so equal-time collisions across actors are
  // common — exactly the case the (time, tie_key) order must survive.  The
  // tie key is the actor id: the documented schedule-race-independent
  // ordering among simultaneous events.
  const std::uint64_t key = ctx.actor;
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  queue_.schedule_at(
      queue_.now() + delay, key, [this, key](double t) {
        popped_.fetch_add(1, std::memory_order_relaxed);
        // Runs only on the quiesce thread's drain, single file.
        if (t < last_pop_time_ ||
            (t == last_pop_time_ && key < last_pop_key_)) {
          order_violations_.fetch_add(1, std::memory_order_relaxed);
        }
        last_pop_time_ = t;
        last_pop_key_ = key;
      });
}

std::vector<StateDef> EventQueueChurnWorkload::states() {
  const auto transitions = menu({{"near", 4.0},
                                 {"far", 1.5},
                                 {"burst", 1.5},
                                 {"inspect", 1.0}});
  std::vector<StateDef> states;

  states.push_back({"near",
                    [this](StepContext& ctx) {
                      const double delay =
                          0.25 * static_cast<double>(
                                     1 + ctx.rng().uniform_int(16));
                      schedule_one(ctx, delay);
                    },
                    transitions});

  // Far-future events force the calendar backend through its sparse-year
  // jump and resize paths, and the wheel backend through its coarse levels
  // and cascades.
  states.push_back({"far",
                    [this](StepContext& ctx) {
                      const double delay =
                          64.0 + 0.25 * static_cast<double>(
                                            ctx.rng().uniform_int(512));
                      schedule_one(ctx, delay);
                    },
                    transitions});

  states.push_back({"burst",
                    [this](StepContext& ctx) {
                      const double delay =
                          0.25 * static_cast<double>(
                                     1 + ctx.rng().uniform_int(8));
                      for (int i = 0; i < 8; ++i) schedule_one(ctx, delay);
                    },
                    transitions});

  states.push_back(
      {"inspect",
       [this](StepContext& ctx) {
         // scheduled_ is incremented before the enqueue, so pending can
         // never exceed it even mid-race; pops only happen at quiesce.
         ctx.check(queue_.pending() <=
                       scheduled_.load(std::memory_order_relaxed),
                   "pending() exceeds the number of schedule calls");
         ctx.check(queue_.now() >= 0.0, "clock ran backwards below zero");
       },
       transitions});

  return states;
}

void EventQueueChurnWorkload::check_quiesce(std::uint64_t step,
                                            InvariantCollector& invariants) {
  // Past-timestamp enforcement holds on every backend (the clock only moves
  // at pops, so after the first drain now() is strictly positive).
  if (queue_.now() > 0.5) {
    bool threw = false;
    try {
      queue_.schedule_at(queue_.now() - 0.5, [](double) {});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    if (!threw) {
      invariants.fail(name(), 0, step,
                      "schedule_at accepted a past timestamp");
    }
  }

  while (queue_.step()) {
  }

  if (order_violations_.load(std::memory_order_relaxed) != 0) {
    invariants.fail(name(), 0, step,
                    "drain popped events out of (time, tie_key) order");
  }
  const std::uint64_t scheduled = scheduled_.load(std::memory_order_relaxed);
  const std::uint64_t popped = popped_.load(std::memory_order_relaxed);
  if (scheduled != popped) {
    invariants.fail(name(), 0, step,
                    "event conservation broke at quiesce: scheduled " +
                        std::to_string(scheduled) + " != popped " +
                        std::to_string(popped));
  }
  if (!queue_.empty() || queue_.pending() != 0) {
    invariants.fail(name(), 0, step, "queue not empty after a full drain");
  }
}

}  // namespace papaya::fsm
