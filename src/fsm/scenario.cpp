#include "fsm/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace papaya::fsm {

bool DiurnalWaveScenario::available(std::uint64_t actor, std::uint64_t step,
                                    util::StreamRng& rng) const {
  (void)actor;
  const std::uint64_t period = std::max<std::uint64_t>(1, config_.period_steps);
  const double phase =
      static_cast<double>(step % period) / static_cast<double>(period);
  const double wave = 0.5 * (1.0 + std::sin(2.0 * M_PI * phase));
  const double prob =
      config_.min_availability +
      (config_.max_availability - config_.min_availability) * wave;
  return rng.bernoulli(prob);
}

bool PartitionScenario::partitioned(std::size_t node,
                                    std::uint64_t step) const {
  if (step < config_.begin_step || step >= config_.end_step) return false;
  return std::find(config_.nodes.begin(), config_.nodes.end(), node) !=
         config_.nodes.end();
}

void StragglerStormScenario::perturb(std::uint64_t actor,
                                     std::uint64_t step) const {
  if (step < config_.begin_step || step >= config_.end_step) return;
  const std::uint64_t k = std::max<std::uint64_t>(1, config_.every_kth_actor);
  if (actor % k != 0) return;
  for (unsigned i = 0; i < config_.yields; ++i) std::this_thread::yield();
}

bool ByzantineFloodScenario::byzantine(std::uint64_t actor, std::uint64_t step,
                                       util::StreamRng& rng) const {
  (void)actor;
  if (step < config_.begin_step || step >= config_.end_step) return false;
  return rng.bernoulli(config_.probability);
}

std::string ComposedScenario::name() const {
  std::string out;
  for (const Scenario* layer : layers_) {
    if (!out.empty()) out += "+";
    out += layer->name();
  }
  return out.empty() ? "none" : out;
}

bool ComposedScenario::available(std::uint64_t actor, std::uint64_t step,
                                 util::StreamRng& rng) const {
  bool ok = true;
  for (const Scenario* layer : layers_) {
    // No short-circuit: every layer consumes its draws on every check so the
    // scenario stream stays aligned across runs.
    const bool layer_ok = layer->available(actor, step, rng);
    ok = ok && layer_ok;
  }
  return ok;
}

bool ComposedScenario::partitioned(std::size_t node, std::uint64_t step) const {
  for (const Scenario* layer : layers_) {
    if (layer->partitioned(node, step)) return true;
  }
  return false;
}

bool ComposedScenario::byzantine(std::uint64_t actor, std::uint64_t step,
                                 util::StreamRng& rng) const {
  bool any = false;
  for (const Scenario* layer : layers_) {
    const bool layer_byzantine = layer->byzantine(actor, step, rng);
    any = any || layer_byzantine;
  }
  return any;
}

void ComposedScenario::perturb(std::uint64_t actor, std::uint64_t step) const {
  for (const Scenario* layer : layers_) layer->perturb(actor, step);
}

}  // namespace papaya::fsm
