#pragma once
// Seed-replay plumbing for the FSM harness: every failure prints
// `--seed=S --steps=K --workload=W` (HarnessResult::repro_line), and this
// header is the receiving end — the test binary accepts those flags (or the
// PAPAYA_FSM_* environment, for ctest runs where argv is not reachable) and
// applies them over each test's defaults, so a CI failure replays locally
// first try:
//
//   ./fsm_workload_test --seed=42 --steps=160 --workload=session_churn
//   PAPAYA_FSM_SEED=42 PAPAYA_FSM_STEPS=160 ctest -R fsm_workload
//
// PAPAYA_FSM_LONG=1 (or --long) is the CI soak knob: it multiplies every
// test's default step count by 10 unless an explicit --steps pins it.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fsm/workload.hpp"

namespace papaya::fsm {

struct ReproOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> steps;
  std::optional<std::string> workload;
  bool long_run = false;
};

/// Environment lookup, injectable so parsing is unit-testable.
using EnvLookup = std::function<const char*(const char*)>;

/// Parse `--seed= --steps= --workload= --long` flags plus the PAPAYA_FSM_*
/// environment.  Flags win over environment.  Unrecognized arguments are
/// ignored (gtest owns the rest of argv).
ReproOverrides parse_overrides(int argc, const char* const* argv,
                               const EnvLookup& env);

/// Process-wide overrides, installed once by the test main().
ReproOverrides& overrides();

/// Apply the installed overrides to one test's defaults.
HarnessOptions apply_overrides(HarnessOptions defaults);

/// Workload filtering: true when no --workload/PAPAYA_FSM_WORKLOAD override
/// is set, or it names `name` (non-matching tests skip themselves).
bool workload_selected(const std::string& name);

}  // namespace papaya::fsm
