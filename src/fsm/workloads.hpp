#pragma once
// Concrete FSM workloads over the coordinator/aggregator/SecAgg surface.
//
// Each workload owns one shared system-under-test plus per-actor slots; N
// harness actors drive it concurrently (fsm/workload.hpp).  The invariants
// each one carries are the ones the repo's hand-written hammers check at a
// single point — here they are checked continuously, under randomized
// interleavings and injected scenarios:
//
//   SessionChurnWorkload       token uniqueness, forward-only stages
//                              (pairs with diurnal availability waves)
//   CoordinatorFailoverWorkload routing-table consistency and
//                              checkpoint-version monotonicity under
//                              failover/adopt/reshard (pairs with partitions)
//   ShardedAggWorkload         update conservation across shards and
//                              mid-stream strategy switches (pairs with
//                              straggler storms)
//   SecAggFloodWorkload        accept/reject accounting under malformed
//                              floods (pairs with byzantine scenarios)
//   EventQueueChurnWorkload    (time, tie_key, seq) total order and
//                              schedule/pop conservation on sim::EventQueue,
//                              per backend (heap and calendar)

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "fl/coordinator.hpp"
#include "fl/secure_buffer.hpp"
#include "fl/session.hpp"
#include "fl/sharded_agg.hpp"
#include "fsm/workload.hpp"
#include "sim/event_queue.hpp"
#include "util/sync.hpp"

namespace papaya::fsm {

/// Open/touch/advance/upload/complete/abort/expire/prune churn against one
/// shared VirtualSessionManager.  Invariants: every open() returns a
/// globally fresh token; a successful advance never observes the session
/// before its target stage; the table never holds more sessions than were
/// opened.
class SessionChurnWorkload final : public Workload {
 public:
  explicit SessionChurnWorkload(std::size_t actors);

  std::string name() const override { return "session_churn"; }
  std::string initial_state() const override { return "open"; }
  std::vector<StateDef> states() override;
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override;

 private:
  double tick();
  void drop(std::size_t actor, std::size_t index);

  struct ActorSlot {
    std::vector<std::uint64_t> tokens;  ///< live sessions this actor drives
    std::uint64_t opened = 0;
  };

  fl::VirtualSessionManager manager_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> opened_total_{0};
  mutable util::Mutex token_mutex_;
  std::unordered_set<std::uint64_t> seen_tokens_ PAPAYA_GUARDED_BY(token_mutex_);
  std::vector<ActorSlot> slots_;
};

/// Submit/heartbeat/detect/assign/reshard/adopt/recover/remove churn against
/// one Coordinator with a small aggregator fleet.  Every mutation goes
/// through Coordinator APIs (the Aggregator objects are never touched
/// directly — they are not internally locked).  Invariants, via
/// Coordinator::inspect(): routing entries target live registered
/// aggregators and agree with the task table; unowned tasks are unroutable;
/// the map version is monotone; a task's model version never drops below
/// the floor its last (re)submission established — failover and
/// total-outage orphaning must preserve checkpoints.
class CoordinatorFailoverWorkload final : public Workload {
 public:
  struct Config {
    std::size_t aggregators = 3;
    std::size_t max_tasks_per_actor = 4;
    std::size_t max_adopted_per_actor = 3;
    double heartbeat_timeout = 30.0;
    std::size_t model_size = 8;
  };

  explicit CoordinatorFailoverWorkload(std::size_t actors);
  CoordinatorFailoverWorkload(std::size_t actors, Config config);

  std::string name() const override { return "coordinator_failover"; }
  std::string initial_state() const override { return "submit"; }
  std::vector<StateDef> states() override;
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override;

 private:
  double tick();
  fl::TaskConfig make_task(const std::string& task, std::size_t shards) const;
  void set_floor(const std::string& task, std::uint64_t floor);
  void erase_floor(const std::string& task);

  struct ActorSlot {
    std::vector<std::string> owned;
    std::vector<std::string> adopted;
    std::uint64_t next_id = 0;
  };

  Config config_;
  std::vector<std::unique_ptr<fl::Aggregator>> aggregators_;
  fl::Coordinator coordinator_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> heartbeat_seq_{0};
  std::uint64_t last_map_version_ = 0;  ///< quiesce-only (threads joined)
  mutable util::Mutex floors_mutex_;
  /// Version floor per task: the initial_version of its last (re)submit.
  std::map<std::string, std::uint64_t> version_floors_
      PAPAYA_GUARDED_BY(floors_mutex_);
  std::vector<ActorSlot> slots_;
};

/// Enqueue/burst/switch-strategy/reduce/drain churn against one
/// ShardedAggregator.  Invariants: exact update-count and integer-weight
/// conservation across shards, concurrent reduces, and mid-stream strategy
/// switches; per-shard enqueued == folded with nothing dropped after a
/// quiesce drain.
class ShardedAggWorkload final : public Workload {
 public:
  struct Config {
    std::size_t model_size = 16;
    std::size_t shards = 3;
    std::size_t threads_per_shard = 2;
    std::size_t drain_batch = 4;
  };

  explicit ShardedAggWorkload(std::size_t actors);
  ShardedAggWorkload(std::size_t actors, Config config);

  std::string name() const override { return "sharded_agg"; }
  std::string initial_state() const override { return "enqueue"; }
  std::vector<StateDef> states() override;
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override;

 private:
  void enqueue_one(StepContext& ctx);
  void credit_reduce(const fl::ParallelAggregator::Reduced& reduced);

  fl::ShardedAggregator agg_;
  std::size_t model_size_;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> enqueued_weight_units_{0};
  std::atomic<std::uint64_t> reduced_{0};
  std::atomic<std::uint64_t> reduced_weight_units_{0};
};

/// Contribute/finalize/claim/probe churn against one batched
/// SecureBufferManager, with the scenario flipping contributions malformed
/// (tampered sealed seeds).  Invariants, via accounting(): every submission
/// is accepted, rejected, wrong-epoch, or pending (no drift); pending slots
/// always pair with weight slots (no leak); malformed contributions are
/// never accepted.
class SecAggFloodWorkload final : public Workload {
 public:
  struct Config {
    std::size_t model_size = 8;
    std::size_t goal = 6;
    std::size_t batch_size = 3;
    std::uint64_t seed = 0x5ecf100dULL;
  };

  explicit SecAggFloodWorkload(std::size_t actors);
  SecAggFloodWorkload(std::size_t actors, Config config);

  std::string name() const override { return "secagg_flood"; }
  std::string initial_state() const override { return "contribute"; }
  std::vector<StateDef> states() override;
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override;

  std::uint64_t valid_submitted() const { return valid_.load(); }
  std::uint64_t malformed_submitted() const { return malformed_.load(); }

 private:
  fl::SecureBufferManager manager_;
  std::size_t model_size_;
  std::size_t goal_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> valid_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> finalized_{0};
};

/// Concurrent scheduling churn against one sim::EventQueue, parameterized
/// by backend so the calendar queue faces the same interleavings as the
/// reference heap (and the TSan leg sees both).  Actors hammer the
/// thread-safe scheduling surface — near/far/equal-time bursts with
/// per-actor tie keys — while pops happen only at quiesce (step() is
/// single-driver by contract).  Invariants: a quiesce drain pops in the
/// documented ascending (time, tie_key) order, schedule_at rejects past
/// timestamps, and scheduled == popped with the queue empty after a drain.
class EventQueueChurnWorkload final : public Workload {
 public:
  EventQueueChurnWorkload(std::size_t actors, sim::EventQueueBackend backend);

  std::string name() const override { return "event_queue_churn"; }
  std::string initial_state() const override { return "near"; }
  std::vector<StateDef> states() override;
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override;

 private:
  void schedule_one(StepContext& ctx, double delay);

  sim::EventQueue queue_;
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> order_violations_{0};
  /// Drain cursor — touched only by event functions, which run solely on
  /// the quiesce thread (actors never pump the queue).
  double last_pop_time_ = -1.0;
  std::uint64_t last_pop_key_ = 0;
};

}  // namespace papaya::fsm
