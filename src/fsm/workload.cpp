#include "fsm/workload.hpp"

#include <exception>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "fsm/scenario.hpp"
#include "sim/streams.hpp"

namespace papaya::fsm {

void InvariantCollector::fail(std::string workload, std::uint64_t actor,
                              std::uint64_t step, std::string message) {
  util::LockGuard lock(mutex_);
  failures_.push_back(
      {std::move(workload), actor, step, std::move(message)});
  any_.store(true, std::memory_order_release);
}

std::vector<InvariantFailure> InvariantCollector::failures() const {
  util::LockGuard lock(mutex_);
  return failures_;
}

bool StepContext::partitioned(std::size_t node) const {
  return scenario != nullptr && scenario->partitioned(node, step);
}

bool StepContext::byzantine() {
  return scenario != nullptr &&
         scenario->byzantine(actor, step, *scenario_rng);
}

void StepContext::check(bool ok, const std::string& message) {
  if (ok) return;
  invariants->fail(workload, actor, step, message);
}

std::string HarnessResult::repro_line() const {
  std::ostringstream out;
  out << "repro: ./fsm_workload_test --seed=" << options.seed
      << " --steps=" << options.steps << " --workload=" << workload;
  return out.str();
}

std::string HarnessResult::summary() const {
  std::ostringstream out;
  if (ok()) {
    out << workload << ": ok (" << steps_run << " steps/actor)";
    return out.str();
  }
  const std::size_t shown = failures.size() < 8 ? failures.size() : 8;
  for (std::size_t i = 0; i < shown; ++i) {
    const InvariantFailure& f = failures[i];
    out << "invariant failed [" << f.workload << " actor=" << f.actor
        << " step=" << f.step << "]: " << f.message << "\n";
  }
  if (failures.size() > shown) {
    out << "... " << (failures.size() - shown) << " more\n";
  }
  out << repro_line() << "\n";
  out << "   (env form: PAPAYA_FSM_SEED=" << options.seed
      << " PAPAYA_FSM_STEPS=" << options.steps << " PAPAYA_FSM_WORKLOAD="
      << workload << " ctest -R fsm_workload)";
  return out.str();
}

namespace {

/// A state resolved against the table: transitions as (cumulative weight,
/// target index) so one uniform draw picks a successor.
struct CompiledState {
  const StateDef* def = nullptr;
  std::vector<std::pair<double, std::size_t>> cumulative;
  double total_weight = 0.0;
};

constexpr std::uint32_t kIdle = ~0U;

}  // namespace

HarnessResult run_workload(Workload& workload, const HarnessOptions& options) {
  const NullScenario null_scenario;
  const Scenario* scenario =
      options.scenario != nullptr ? options.scenario : &null_scenario;
  const std::string workload_name = workload.name();

  // Compile and validate the state table up front: a malformed table is a
  // programmer error, not a run outcome.
  std::vector<StateDef> defs = workload.states();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (!index.emplace(defs[i].name, i).second) {
      throw std::invalid_argument("fsm: duplicate state '" + defs[i].name +
                                  "' in workload " + workload_name);
    }
  }
  std::vector<CompiledState> states(defs.size());
  for (std::size_t i = 0; i < defs.size(); ++i) {
    CompiledState& cs = states[i];
    cs.def = &defs[i];
    for (const auto& [target, weight] : defs[i].transitions) {
      const auto it = index.find(target);
      if (it == index.end()) {
        throw std::invalid_argument("fsm: state '" + defs[i].name +
                                    "' transitions to unknown state '" +
                                    target + "'");
      }
      if (weight <= 0.0) {
        throw std::invalid_argument("fsm: non-positive transition weight in '" +
                                    defs[i].name + "'");
      }
      cs.total_weight += weight;
      cs.cumulative.emplace_back(cs.total_weight, it->second);
    }
    if (cs.cumulative.empty()) {
      throw std::invalid_argument("fsm: state '" + defs[i].name +
                                  "' has no transitions");
    }
  }
  const auto initial_it = index.find(workload.initial_state());
  if (initial_it == index.end()) {
    throw std::invalid_argument("fsm: unknown initial state '" +
                                workload.initial_state() + "'");
  }

  const std::size_t actors = options.actors == 0 ? 1 : options.actors;
  const std::size_t threads =
      options.threads == 0 ? actors : std::min(options.threads, actors);
  const std::uint64_t quiesce_every =
      options.quiesce_every == 0 ? options.steps : options.quiesce_every;

  // Per-actor streams through the sim stream hierarchy.  SimStreams::stream
  // lazily inserts into an unordered_map and is NOT thread-safe, so every
  // stream is materialized here, single-threaded, before any actor thread
  // starts; the references stay stable because no further inserts happen.
  sim::SimStreams streams(options.seed, sim::RngStreamMode::kPerEntity);
  struct ActorState {
    std::size_t state = 0;
    util::StreamRng* action = nullptr;
    util::StreamRng* payload = nullptr;
    util::StreamRng* scenario_rng = nullptr;
    std::vector<std::uint32_t> log;
  };
  std::vector<ActorState> actor_states(actors);
  for (std::size_t a = 0; a < actors; ++a) {
    ActorState& as = actor_states[a];
    as.state = initial_it->second;
    as.action = &streams.stream(a, sim::StreamPurpose::kFsmAction);
    as.payload = &streams.stream(a, sim::StreamPurpose::kFsmPayload);
    as.scenario_rng = &streams.stream(a, sim::StreamPurpose::kFsmScenario);
    as.log.reserve(options.steps);
  }

  InvariantCollector collector;
  std::atomic<bool> abort{false};

  const auto run_one_step = [&](std::size_t actor, std::uint64_t step) {
    ActorState& as = actor_states[actor];
    scenario->perturb(actor, step);
    if (!scenario->available(actor, step, *as.scenario_rng)) {
      as.log.push_back(kIdle);
      return;
    }
    // The transition choice comes from the dedicated action stream — one
    // uniform draw, a pure function of (seed, actor, step trajectory) — so
    // the step log cannot depend on interleaving.
    const CompiledState& cur = states[as.state];
    const double u = as.action->uniform() * cur.total_weight;
    std::size_t next = cur.cumulative.back().second;
    for (const auto& [cum, target] : cur.cumulative) {
      if (u < cum) {
        next = target;
        break;
      }
    }
    as.state = next;
    StepContext ctx;
    ctx.actor = actor;
    ctx.step = step;
    ctx.payload_rng = as.payload;
    ctx.scenario_rng = as.scenario_rng;
    ctx.scenario = scenario;
    ctx.invariants = &collector;
    ctx.workload = workload_name;
    try {
      states[next].def->action(ctx);
      workload.check_step(ctx);
    } catch (const std::exception& e) {
      ctx.check(false, "unhandled exception in state '" +
                           states[next].def->name + "': " + e.what());
    }
    as.log.push_back(static_cast<std::uint32_t>(next));
    if (collector.any_failure()) abort.store(true, std::memory_order_relaxed);
  };

  std::uint64_t completed = 0;
  while (completed < options.steps && !abort.load(std::memory_order_relaxed)) {
    const std::uint64_t segment_end =
        std::min(options.steps, completed + quiesce_every);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::uint64_t step = completed; step < segment_end; ++step) {
          if (abort.load(std::memory_order_relaxed)) return;
          for (std::size_t actor = t; actor < actors; actor += threads) {
            run_one_step(actor, step);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    if (!abort.load(std::memory_order_relaxed)) {
      completed = segment_end;
      workload.check_quiesce(completed, collector);
      if (collector.any_failure()) abort.store(true, std::memory_order_relaxed);
    }
  }

  HarnessResult result;
  result.workload = workload_name;
  result.options = options;
  result.steps_run = completed;
  result.failures = collector.failures();

  std::ostringstream log;
  log << "fsm-log workload=" << workload_name << " seed=" << options.seed
      << " actors=" << actors << " steps=" << options.steps
      << " quiesce=" << quiesce_every << " scenario=" << scenario->name()
      << "\n";
  for (std::size_t a = 0; a < actors; ++a) {
    log << "actor " << a << ":";
    for (const std::uint32_t entry : actor_states[a].log) {
      log << " " << (entry == kIdle ? "-" : states[entry].def->name);
    }
    log << "\n";
  }
  result.step_log = log.str();

  if (!result.ok()) {
    // Satellite requirement: any invariant failure prints a one-line repro
    // command, so a CI log replays locally first try.
    std::cerr << result.summary() << std::endl;
  }
  return result;
}

}  // namespace papaya::fsm
