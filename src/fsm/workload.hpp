#pragma once
// Randomized FSM workload harness (MongoDB's fsm_workloads pattern in C++).
//
// Every concurrency bug this repo has shipped fixes for (PR 2's
// reduce-vs-enqueue and slot-collision races, PR 7's session-token race) was
// found by a hand-written hammer — one interleaving someone thought to
// write.  This harness generates the interleavings instead: a Workload is a
// small state machine (named states, weighted transitions, an action per
// state) over the coordinator/aggregator/SecAgg surface; run_workload()
// drives N actor instances of it concurrently on M threads under a seeded
// scheduler, checking invariants after every step and at quiesce barriers.
//
// Determinism contract: every draw flows through util::StreamRng streams
// keyed (seed, actor, purpose) via sim::SimStreams — the transition chosen
// at (actor, step) is a pure function of the seed, never of thread
// interleaving.  The step log (one line of state names per actor) is
// therefore byte-identical across runs of the same seed, and any failure
// replays from the printed `--seed=S --steps=K --workload=W` repro line
// (fsm/repro.hpp).  Shared-state *outcomes* (which session expired first,
// which flush a contribution landed in) still vary across runs — that is
// the point — but invariants must hold on every schedule.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/sync.hpp"

namespace papaya::fsm {

class Scenario;

/// One invariant violation, pinned to (workload, actor, step) so the log
/// shows *where* in the trajectory the machine broke.
struct InvariantFailure {
  std::string workload;
  std::uint64_t actor = 0;
  std::uint64_t step = 0;
  std::string message;
};

/// Thread-safe sink for invariant violations; independent root lock (held
/// only around the vector, never while calling into fl:: code).
class InvariantCollector {
 public:
  void fail(std::string workload, std::uint64_t actor, std::uint64_t step,
            std::string message);

  bool any_failure() const { return any_.load(std::memory_order_acquire); }
  std::vector<InvariantFailure> failures() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<InvariantFailure> failures_ PAPAYA_GUARDED_BY(mutex_);
  std::atomic<bool> any_{false};
};

/// What a state action sees: who/when, the payload stream for its own
/// draws, and the scenario hooks.
struct StepContext {
  std::uint64_t actor = 0;
  std::uint64_t step = 0;
  util::StreamRng* payload_rng = nullptr;
  util::StreamRng* scenario_rng = nullptr;
  const Scenario* scenario = nullptr;
  InvariantCollector* invariants = nullptr;
  std::string workload;

  /// Payload draws (values, sizes, picks).  Variable draw *counts* here are
  /// fine — the transition choice lives on a separate stream.
  util::StreamRng& rng() { return *payload_rng; }

  /// Scenario hooks (see fsm/scenario.hpp for the determinism contract).
  bool partitioned(std::size_t node) const;
  bool byzantine();

  /// Record an invariant violation unless `ok`.
  void check(bool ok, const std::string& message);
};

/// One named state: an action plus weighted transitions to successor
/// states.  Weights are relative (they need not normalize).
struct StateDef {
  std::string name;
  std::function<void(StepContext&)> action;
  std::vector<std::pair<std::string, double>> transitions;
};

/// A workload owns the system under test (sessions, coordinator, shards,
/// SecAgg manager) shared by all its actors.  Actions run concurrently, so
/// per-actor bookkeeping belongs in per-actor slots and anything shared
/// must be internally synchronized.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::vector<StateDef> states() = 0;
  virtual std::string initial_state() const = 0;

  /// Cheap per-step invariant hook, called right after the state action.
  virtual void check_step(StepContext& ctx) { (void)ctx; }

  /// Quiesce-point invariant hook: every actor thread is joined, so the
  /// workload may take global locks, drain pipelines, and assert exact
  /// conservation.  `step` is the number of steps each actor has completed.
  virtual void check_quiesce(std::uint64_t step,
                             InvariantCollector& invariants) {
    (void)step;
    (void)invariants;
  }
};

struct HarnessOptions {
  std::uint64_t seed = 1;
  std::size_t actors = 4;
  std::size_t threads = 0;      ///< 0: one thread per actor
  std::uint64_t steps = 200;    ///< per actor
  std::uint64_t quiesce_every = 64;
  const Scenario* scenario = nullptr;  ///< nullptr: NullScenario
};

struct HarnessResult {
  std::string workload;
  HarnessOptions options;
  std::uint64_t steps_run = 0;  ///< per actor (may stop early on failure)
  std::vector<InvariantFailure> failures;
  /// Header + one line of chosen state names per actor; byte-identical
  /// across runs of the same seed (the acceptance-criteria artifact).
  std::string step_log;

  bool ok() const { return failures.empty(); }
  /// The one-line replay command for this run.
  std::string repro_line() const;
  /// Failures + repro line, for EXPECT_TRUE(result.ok()) << result.summary().
  std::string summary() const;
};

/// Drive `workload` under `options`.  On invariant failure the run stops at
/// the next step/quiesce boundary and the repro line is printed to stderr.
HarnessResult run_workload(Workload& workload, const HarnessOptions& options);

}  // namespace papaya::fsm
