#include "fsm/repro.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace papaya::fsm {

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// The value of `--<key>=` if `arg` matches, else nullopt.
std::optional<std::string_view> flag_value(std::string_view arg,
                                           std::string_view key) {
  if (arg.size() < key.size() + 3) return std::nullopt;
  if (arg.substr(0, 2) != "--") return std::nullopt;
  if (arg.substr(2, key.size()) != key) return std::nullopt;
  if (arg[2 + key.size()] != '=') return std::nullopt;
  return arg.substr(3 + key.size());
}

bool truthy(const char* value) {
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

ReproOverrides parse_overrides(int argc, const char* const* argv,
                               const EnvLookup& env) {
  ReproOverrides out;
  if (env) {
    if (const char* v = env("PAPAYA_FSM_SEED")) out.seed = parse_u64(v);
    if (const char* v = env("PAPAYA_FSM_STEPS")) out.steps = parse_u64(v);
    if (const char* v = env("PAPAYA_FSM_WORKLOAD"); v != nullptr && *v != '\0') {
      out.workload = std::string(v);
    }
    out.long_run = truthy(env("PAPAYA_FSM_LONG"));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (const auto v = flag_value(arg, "seed")) out.seed = parse_u64(*v);
    if (const auto v = flag_value(arg, "steps")) out.steps = parse_u64(*v);
    if (const auto v = flag_value(arg, "workload")) {
      out.workload = std::string(*v);
    }
    if (arg == "--long") out.long_run = true;
  }
  return out;
}

ReproOverrides& overrides() {
  static ReproOverrides installed;
  return installed;
}

HarnessOptions apply_overrides(HarnessOptions defaults) {
  const ReproOverrides& o = overrides();
  if (o.seed) defaults.seed = *o.seed;
  if (o.steps) {
    defaults.steps = *o.steps;
  } else if (o.long_run) {
    defaults.steps *= 10;
  }
  return defaults;
}

bool workload_selected(const std::string& name) {
  const ReproOverrides& o = overrides();
  return !o.workload.has_value() || *o.workload == name;
}

}  // namespace papaya::fsm
