#pragma once
// FedBuff + Asynchronous SecAgg: the secure buffered-aggregation path.
//
// When a task enables SecAgg, the Aggregator never sees plaintext updates.
// Each aggregation buffer (one aggregation goal's worth of updates) gets a
// fresh TSA masking epoch: the TSA is one-shot (Fig. 16 step 7), so after a
// release the manager rotates to a new TSA instance and a new epoch.
//
// Weighting under SecAgg: the server cannot rescale an individual masked
// update, so example-count weighting is applied *client-side* — the client
// multiplies its delta by sqrt(num_examples) before masking and reports the
// example count in the clear; the server divides the unmasked sum by the
// sum of sqrt(n_i).  Staleness down-weighting is not possible under this
// construction (the staleness is only known at upload, after masking); the
// buffered-asynchronous secure-aggregation literature (So et al. 2021a)
// addresses staleness-aware weighting and is out of scope here.  Staleness
// *bounds* (abort/discard) still apply, since version metadata is public.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fl/agg_strategy.hpp"
#include "util/sync.hpp"
#include "secagg/secagg_batch.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"

namespace papaya::fl {

/// Everything a client needs to prepare a secure contribution for the
/// current masking epoch.  The initial message is an owned copy, not a
/// pointer into the TSA: a client may still hold its upload config when a
/// concurrent finalize rotates the epoch (and frees the old TSA), and the
/// stale config must then fail cleanly at the epoch check — not dangle.
struct SecureUploadConfig {
  std::uint64_t epoch = 0;
  secagg::TsaInitialMessage initial_message;
  crypto::InclusionProof log_proof;
  secagg::QuoteExpectations expectations;
  secagg::FixedPointParams fixed_point;
};

/// A client's secure report: masked contribution plus public metadata.
struct SecureReport {
  std::uint64_t epoch = 0;
  std::uint64_t client_id = 0;
  std::uint64_t initial_version = 0;
  std::size_t num_examples = 0;
  secagg::ClientContribution contribution;
};

enum class SecureSubmitOutcome {
  kAccepted,
  kBuffered,       ///< batched mode: admitted, TSA verdict lands at flush
  kWrongEpoch,     ///< prepared against an already-released masking epoch
  kExhausted,      ///< no initial messages left in this epoch
  kTsaRejected,    ///< TSA refused (tampered/replayed/bad key)
};

/// Manages masking epochs for one task on the server side.
class SecureBufferManager {
 public:
  /// `goal` is the aggregation goal; each epoch pre-generates enough initial
  /// messages for the goal plus in-flight overshoot.  `batch_size` > 1
  /// switches the TSA hand-off to the batched pipeline: reports are buffered
  /// and flushed `batch_size` at a time (or as soon as the flush could reach
  /// the goal) through BatchedSecureAggregationSession — one TSA boundary
  /// crossing, multi-stream mask expansion, and one blocked fold per batch.
  /// The accepted set and the unmasked aggregate are bit-identical to
  /// per-update mode; only when verdicts surface changes (kBuffered now,
  /// rejections via take_rejected() after the flush).
  ///
  /// `strategy` (the task's aggregation strategy) tunes how aggressively
  /// batched drains defer the TSA boundary crossing — legal precisely
  /// because batched ≡ per-update is proven bit-identical, so the flush
  /// point is pure amortization policy: kLocked flushes per submit (the
  /// conservative baseline), kMorsel defers maximally (up to the goal, one
  /// crossing per buffer), kAuto/kStriped flush at the configured
  /// `batch_size`.  Ignored when batch_size <= 1 (sequential session).
  SecureBufferManager(std::size_t model_size, std::size_t goal,
                      std::uint64_t seed, std::size_t batch_size = 1,
                      AggStrategy strategy = AggStrategy::kAuto);

  /// Server -> client: upload configuration for the current epoch.  Each
  /// call consumes one initial message (they are single-use).  Returns
  /// nullopt when the epoch has no messages left (caller should retry next
  /// epoch).
  std::optional<SecureUploadConfig> next_upload_config();

  /// Client -> server: submit a secure report.  In batched mode an admitted
  /// report returns kBuffered; its TSA verdict is decided at the next flush
  /// (pending-full, or the flush could reach the goal).
  SecureSubmitOutcome submit(const SecureReport& report, double weight);

  /// Reports rejected by the TSA during batched flushes since the last call
  /// (the deferred analogue of a synchronous kTsaRejected).  Resets on read.
  std::size_t take_rejected();

  std::size_t accepted_count() const {
    util::LockGuard lock(mutex_);
    return accepted_;
  }
  std::size_t pending_count() const {
    util::LockGuard lock(mutex_);
    return pending_.size();
  }
  bool goal_reached() const {
    util::LockGuard lock(mutex_);
    return accepted_ >= goal_;
  }
  std::uint64_t epoch() const {
    util::LockGuard lock(mutex_);
    return epoch_;
  }
  std::size_t batch_size() const { return batch_size_; }

  /// Pending contributions that trigger a batched flush (strategy-tuned;
  /// see the constructor).  Exposed so tests can pin the policy table.
  std::size_t flush_threshold() const;

  /// Cumulative accounting across every epoch this manager has run, taken
  /// in one lock hold (test hook: the FSM harness and the SecAgg flood
  /// suite assert conservation on it).  Invariants it is built to carry:
  ///   submitted == accepted + rejected + wrong_epoch + pending   (always)
  ///   pending   == pending_weight_slots                          (always)
  /// so a sustained malformed flood can neither drift the accepted set nor
  /// leak buffered slots.
  struct Accounting {
    std::uint64_t submitted = 0;    ///< every submit() call
    std::uint64_t accepted = 0;     ///< TSA-accepted (sequential + flushes)
    std::uint64_t rejected = 0;     ///< TSA-rejected (sequential + flushes)
    std::uint64_t wrong_epoch = 0;  ///< bounced at the epoch check
    std::uint64_t pending = 0;      ///< buffered, verdict not yet decided
    std::uint64_t pending_weight_slots = 0;  ///< must equal `pending`
    std::uint64_t configs_handed = 0;   ///< next_upload_config() successes
    std::uint64_t epochs_released = 0;  ///< successful finalize_mean() calls
    std::uint64_t epoch = 0;
    std::uint64_t accepted_this_epoch = 0;
    double weight_sum_this_epoch = 0.0;
  };
  Accounting accounting() const;

  /// Unmask, decode, divide by the accumulated weight sum, rotate to a new
  /// epoch.  Returns nullopt if the TSA refuses (below goal).
  std::optional<std::vector<float>> finalize_mean();

  /// Client-side helper: scale by `weight`, verify the attestation against
  /// `platform` (standing in for the hardware vendor's public collateral),
  /// then mask + seal.  Returns nullopt if verification fails — the
  /// client's plaintext update never leaves.
  static std::optional<SecureReport> prepare_report(
      const secagg::SimulatedEnclavePlatform& platform,
      const SecureUploadConfig& config, std::uint64_t client_id,
      std::uint64_t initial_version, std::size_t num_examples, double weight,
      std::span<const float> delta, std::uint64_t client_seed);

  /// The platform and measurement this manager attests against (exposed so
  /// tests can build independent verifiers).
  const secagg::SimulatedEnclavePlatform& platform() const {
    return platform_;
  }

 private:
  void rotate_epoch() PAPAYA_REQUIRES(mutex_);
  /// Batched mode: push every pending contribution through the TSA in one
  /// batch, crediting accepted weights and recording rejections.
  void flush_pending() PAPAYA_REQUIRES(mutex_);

  // Immutable after construction (no guard needed): configuration, the
  // attestation platform, and the verifiable log (appended only in the
  // constructor; proofs/snapshots are pure reads).
  std::size_t model_size_;
  std::size_t goal_;
  std::uint64_t seed_;
  std::size_t batch_size_;
  AggStrategy strategy_ = AggStrategy::kAuto;

  secagg::SimulatedEnclavePlatform platform_;
  crypto::Digest binary_measurement_{};
  crypto::VerifiableLog log_;
  std::uint64_t binary_leaf_ = 0;
  secagg::FixedPointParams fixed_point_;

  /// Epoch state.  mutex_ is an independent root lock (never nested with
  /// any other lock in the repo; see util/sync.hpp): submit paths, epoch
  /// rotation, and the accessors all serialize on it, so a submit can never
  /// race a finalize_mean into crediting a rotated-away session.
  mutable util::Mutex mutex_;
  std::uint64_t epoch_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<secagg::TrustedSecureAggregator> tsa_
      PAPAYA_GUARDED_BY(mutex_);
  /// Exactly one of the two sessions is live per epoch: sequential when
  /// batch_size_ <= 1, batched otherwise.
  std::unique_ptr<secagg::SecureAggregationSession> session_
      PAPAYA_GUARDED_BY(mutex_);
  std::unique_ptr<secagg::BatchedSecureAggregationSession> batched_session_
      PAPAYA_GUARDED_BY(mutex_);
  /// Batched mode: admitted contributions awaiting a flush (contiguous, so
  /// a flush hands the whole pending run to accept_batch as one span), with
  /// their weights alongside.
  std::vector<secagg::ClientContribution> pending_ PAPAYA_GUARDED_BY(mutex_);
  std::vector<double> pending_weights_ PAPAYA_GUARDED_BY(mutex_);
  std::size_t rejected_unclaimed_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::size_t next_message_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::size_t accepted_ PAPAYA_GUARDED_BY(mutex_) = 0;
  double weight_sum_ PAPAYA_GUARDED_BY(mutex_) = 0.0;
  /// Cumulative accounting (never reset by epoch rotation; see Accounting).
  /// rejected_total_ is separate from rejected_unclaimed_, which resets on
  /// take_rejected() and counts only deferred batched verdicts.
  std::uint64_t submitted_total_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t accepted_total_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_total_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t wrong_epoch_total_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t configs_handed_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::uint64_t epochs_released_ PAPAYA_GUARDED_BY(mutex_) = 0;
};

}  // namespace papaya::fl
