#pragma once
// FL task configuration (Secs. 6, 7.1, App. E).
//
// A *task* is one federated training job: a model, a training mode, and the
// knobs the paper exposes.  PAPAYA supports switching between SyncFL and
// AsyncFL "via a configuration change" (App. E.3) — here that is literally
// the `mode` field; everything else in the server honours it.

#include <cstdint>
#include <string>

#include "fl/agg_strategy.hpp"
#include "fl/model_update.hpp"

namespace papaya::fl {

enum class TrainingMode {
  kSync,   ///< rounds + (optional) over-selection, cohort semantics
  kAsync,  ///< FedBuff: buffered asynchronous aggregation
};

struct TaskConfig {
  std::string name;
  TrainingMode mode = TrainingMode::kAsync;

  /// Maximum number of concurrently participating devices (App. E.1).  For
  /// SyncFL this is the (over-selected) cohort size.
  std::size_t concurrency = 100;

  /// Aggregation goal K: client updates buffered before a server step.  For
  /// SyncFL with over-selection this is less than `concurrency`; the paper
  /// uses concurrency = 1.3 * goal (30% over-selection).
  std::size_t aggregation_goal = 10;

  /// Client-side training timeout (the paper sets 4 minutes).
  double client_timeout_s = 240.0;

  /// AsyncFL: clients whose staleness would exceed this are aborted after
  /// each server model update (App. E.1, E.2).
  std::uint64_t max_staleness = 100;

  /// Number of model parameters; with `concurrency` this drives the
  /// Coordinator's workload estimate for task placement (Sec. 6.3).
  std::size_t model_size = 0;

  /// Aggregation shards for this task (Sec. 6.3 scaled out): client update
  /// streams are consistent-hashed onto this many independent
  /// ParallelAggregator pipelines, each with its own queue, worker pool and
  /// intermediates, with a cross-shard reduce at each server step.  1 (or 0,
  /// normalized to 1) keeps the single-pipeline behaviour.
  std::size_t aggregator_shards = 1;

  /// Fold backend for the task's aggregation pipelines (agg_strategy.hpp).
  /// `kAuto` (the default) lets each shard's AggStats-driven picker
  /// re-decide per drained buffer: locked at startup, striped once the
  /// window shows small updates, morsel-driven for large ones.  The forced
  /// modes pin one backend (benches and the conservation hammers use them).
  /// Like `aggregator_shards`, this changes only lock/copy traffic, never
  /// which folds happen: every backend performs the identical per-element
  /// fold, and single-worker pools are bit-identical across all of them.
  AggStrategy aggregation_strategy = AggStrategy::kAuto;

  /// Server-side aggregation batch size.  Under SecAgg, contributions are
  /// buffered and handed to the TSA in batches of this size
  /// (BatchedSecureAggregationSession: one boundary crossing, multi-stream
  /// mask expansion, one blocked fold per batch); on the plaintext path each
  /// aggregation-shard worker drains up to this many queued updates per
  /// wakeup.  1 (or 0, normalized to 1) keeps per-update processing.  The
  /// aggregate is bit-identical either way — Z_{2^32} (and float fold order
  /// per worker) is unchanged; only the amortization changes.
  std::size_t aggregation_batch_size = 1;

  /// Pipelined client runtime (Sec. 6.1): overlap local training,
  /// incremental update serialization, and chunked upload on each device,
  /// so per-client round latency becomes ~max(train, serialize + first
  /// chunk) + the residual upload tail instead of the stage sum.  The
  /// pipelined latency model is observational by design (like ModelStore
  /// metering): it changes per-client latency and device-busy accounting
  /// but provably cannot perturb training dynamics — with the same seed, a
  /// simulation produces bit-identical model trajectories with this knob
  /// on or off (equivalence suite in tests/sim_test.cpp).  Default off =
  /// bit-identical behaviour AND metrics to the sequential runtime.
  bool pipelined_clients = false;

  /// Closed-loop client scheduling: the pipelined runtime's completion
  /// time becomes the *actual* upload-arrival event — the report lands when
  /// the last chunk's upload finishes under the overlapped schedule
  /// (PipelinedClientSession::finish_time), instead of at the open-loop
  /// sequential charge (download + train + upload).  With the knob on,
  /// aggregation-goal waits, SecAgg buffer flushes, and round cadence
  /// respond to real client latency — updates arrive *earlier* when the
  /// pipeline overlaps stages, so the simulated clock is honest about what
  /// the protocol would actually observe.  Changes *when* updates
  /// arrive, never *what* a client draws: requires per-entity RNG streams
  /// (the simulator forces RngStreamMode::kPerEntity and
  /// `pipelined_clients`), under which every device's draw sequence is
  /// schedule-independent.  Default off = the observational open-loop model
  /// (bit-identical trajectories to the pre-stream simulator from the same
  /// seed).
  bool closed_loop_clients = false;

  /// Whether updates travel through Asynchronous SecAgg.
  bool secagg_enabled = false;

  /// FedBuff weighting ablations (Sec. 3.1 / App. E.2): the paper weights
  /// each update by example count and by 1/sqrt(1 + staleness).  These
  /// default on; benches switch them off to quantify each choice.
  bool example_weighting = true;
  bool staleness_weighting = true;

  /// Which staleness down-weighting family applies when
  /// `staleness_weighting` is on (App. E.2 default: inverse-sqrt).
  StalenessScheme staleness_scheme = StalenessScheme::kInverseSqrt;
  StalenessParams staleness_params;

  /// Central differential privacy (the paper's stated future-work
  /// extension): per-update L2 clipping plus Gaussian noise on the
  /// aggregated mean delta.  noise stddev = noise_multiplier * clip_norm /
  /// aggregation_goal (the Gaussian mechanism on a mean of clipped
  /// updates).
  struct DifferentialPrivacy {
    bool enabled = false;
    float clip_norm = 1.0f;
    float noise_multiplier = 0.0f;
  };
  DifferentialPrivacy dp;

  /// Device capability tag a client must match to be eligible (Sec. 6.2
  /// "task eligibility"); empty = any client.
  std::string required_capability;

  /// Coordinator workload estimate (Sec. 6.3: "estimates this workload using
  /// the task concurrency and model size").  Deliberately independent of
  /// `aggregator_shards`: all of a task's shards run in-process on the one
  /// owning Aggregator, so sharding shortens the wall-clock of each reduce
  /// but does not shrink the host's total fold work — dividing by the shard
  /// count here would under-report load on exactly the busiest host.
  double estimated_workload() const {
    return static_cast<double>(concurrency) * static_cast<double>(model_size);
  }

  /// Helper: SyncFL cohort sizing with over-selection factor `o` around an
  /// aggregation goal (concurrency = goal * (1 + o), rounded).
  static std::size_t over_selected_cohort(std::size_t goal, double o) {
    return static_cast<std::size_t>(static_cast<double>(goal) * (1.0 + o) + 0.5);
  }
};

}  // namespace papaya::fl
