#pragma once
// The Coordinator server component (Secs. 4, 6.1–6.3, App. E.4).
//
// There is exactly one Coordinator.  It (1) places tasks onto Aggregators by
// estimated workload and moves them on failure, (2) pools client demand from
// Aggregator reports into a consolidated view and assigns clients to eligible
// tasks at random, explicitly accounting for assigned-but-unconfirmed
// clients, and (3) detects Aggregator failures via missed heartbeats,
// reassigning their tasks and bumping the assignment-map version that
// Selectors cache.
//
// Aggregators are registered as non-owning references: in production these
// are RPC channels; in this repository the simulator owns the Aggregator
// objects and the Coordinator talks to them directly.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fl/aggregator.hpp"
#include "fl/task.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace papaya::fl {

/// The task -> aggregator routing table distributed to Selectors.
struct AssignmentMap {
  std::uint64_t version = 0;
  std::map<std::string, std::string> task_to_aggregator;
};

/// One task's entry in an Aggregator's periodic report.
struct TaskReport {
  std::string task;
  std::int64_t demand = 0;
  std::uint64_t model_version = 0;
};

/// What a client is told after selection.
struct ClientAssignment {
  std::string task;
  std::string aggregator_id;
};

/// A client's capabilities, matched against TaskConfig::required_capability.
struct ClientCapabilities {
  std::vector<std::string> capabilities;

  bool matches(const std::string& required) const {
    if (required.empty()) return true;
    for (const auto& c : capabilities) {
      if (c == required) return true;
    }
    return false;
  }
};

class Coordinator {
 public:
  explicit Coordinator(std::uint64_t seed = 0);

  // -- Aggregator fleet ----------------------------------------------------

  void register_aggregator(Aggregator& aggregator, double now);

  /// Periodic Aggregator report (heartbeat + per-task demand).  Reports with
  /// a sequence number older than the last seen are ignored (App. E.4:
  /// stale-assignment detection via sequence numbers).
  void aggregator_report(const std::string& aggregator_id,
                         std::uint64_t sequence, double now,
                         const std::vector<TaskReport>& reports);

  /// Detect aggregators whose last heartbeat is older than `timeout` and
  /// reassign their tasks (Sec. 6.3, App. E.4).  Returns the ids of the
  /// aggregators declared failed.  Total outage (no live replacement) does
  /// not throw: the task is *orphaned* — its checkpoint is held, it leaves
  /// the routing map, and the next aggregator registration or resurrecting
  /// heartbeat re-places it at the exact checkpointed version.
  std::vector<std::string> detect_failures(double now, double timeout);

  // -- Task lifecycle ------------------------------------------------------

  /// Place a new task on the least-loaded live Aggregator.  A nonzero
  /// `initial_version` restores a checkpointed task (leader failover).
  void submit_task(const TaskConfig& config, std::vector<float> initial_model,
                   ml::ServerOptimizerConfig server_opt,
                   std::uint64_t initial_version = 0);
  void remove_task(const std::string& task);

  /// Register task metadata *without* placing it on an Aggregator: a newly
  /// elected leader adopts the durable task store this way, then
  /// recover_from_aggregator_state() discovers which Aggregator actually
  /// runs each task (App. E.4).  Demand starts at zero until reports
  /// arrive, and the task is *ineligible for client assignment* until an
  /// owner is known — either via recovery or via the first report from the
  /// Aggregator actually running it — so an assignment can never point at
  /// the empty-string aggregator.
  void adopt_task(const TaskConfig& config,
                  ml::ServerOptimizerConfig server_opt);

  /// Point-in-time copy of the routing table.  By value: the Coordinator is
  /// internally locked, and a reference into it would race placement and
  /// failover updates (Selectors cache their own copy anyway).
  AssignmentMap assignment_map() const {
    util::LockGuard lock(mutex_);
    return map_;
  }

  /// Aggregation shard count the Coordinator tracks for a task (normalized
  /// TaskConfig::aggregator_shards; 0 for unknown tasks).  Placement,
  /// failover and recovery all preserve it.
  std::size_t task_shards(const std::string& task) const;

  /// Fold strategy the Coordinator tracks for a task (validated at
  /// submit_task, clamped to kAuto at adopt_task; kAuto for unknown tasks).
  AggStrategy task_strategy(const std::string& task) const;

  // -- Client assignment (Sec. 6.2) ----------------------------------------

  /// Assign an available client to a random eligible task (capability match
  /// + positive remaining demand).  Counts the assignment as pending until
  /// confirmed or abandoned.
  std::optional<ClientAssignment> assign_client(const ClientCapabilities& caps);

  /// The client's join attempt concluded (accepted or rejected); release the
  /// pending slot.
  void assignment_concluded(const std::string& task);

  /// Consolidated demand view (reported demand minus pending assignments).
  std::int64_t pooled_demand(const std::string& task) const;

  // -- Failure recovery (App. E.4) -----------------------------------------

  /// Simulate Coordinator failure + leader re-election: wipe soft state and
  /// rebuild the assignment map from Aggregator task lists, as the recovery
  /// period does in production.
  void recover_from_aggregator_state(double now);

  // -- Invariant inspection (test hook) ------------------------------------

  /// Point-in-time snapshot of Coordinator internals, taken under one lock
  /// hold, for the FSM workload harness's invariant layer (routing-table
  /// consistency, checkpoint-version monotonicity).  Reads each owning
  /// Aggregator's model version under mutex_ — legal exactly when every
  /// Aggregator mutation goes through Coordinator APIs (the harness
  /// discipline; Aggregator itself is not internally locked).
  struct Inspection {
    struct TaskView {
      std::string aggregator_id;  ///< empty: unowned (adopted or orphaned)
      bool orphaned = false;      ///< holding a checkpoint, awaiting placement
      std::int64_t reported_demand = 0;
      std::int64_t pending_assignments = 0;
      /// Owner's live version, or the orphan checkpoint's version; 0 for
      /// adopted tasks whose owner is still unknown.
      std::uint64_t model_version = 0;
    };
    std::uint64_t map_version = 0;
    std::map<std::string, std::string> task_to_aggregator;
    std::set<std::string> registered_aggregators;
    std::set<std::string> live_aggregators;
    std::map<std::string, TaskView> tasks;
  };
  Inspection inspect() const;

 private:
  struct AggregatorEntry {
    Aggregator* aggregator = nullptr;  // non-owning
    double last_heartbeat = 0.0;
    std::uint64_t last_sequence = 0;
    bool alive = true;
  };

  struct TaskEntry {
    TaskConfig config;
    ml::ServerOptimizerConfig server_opt;
    std::string aggregator_id;
    std::int64_t reported_demand = 0;
    std::int64_t pending_assignments = 0;
    /// Set while the task has no live owner after a total-outage failover:
    /// the checkpoint pulled off the failed Aggregator, preserved so the
    /// next placement resumes from the exact pre-failure version.
    std::optional<Aggregator::TaskCheckpoint> orphan_checkpoint;
  };

  /// Least-loaded live aggregator by estimated workload.
  Aggregator* pick_aggregator() PAPAYA_REQUIRES(mutex_);

  /// Re-place orphaned tasks onto live aggregators (called when an
  /// aggregator registers or a dead one's heartbeat resumes).  Returns the
  /// number placed; bumps the map version when any were.
  std::size_t place_orphans() PAPAYA_REQUIRES(mutex_);

  /// Guards all Coordinator soft state.  Hierarchy (util/sync.hpp): held
  /// *above* the aggregation locks — placement and failover call into
  /// Aggregator task assignment/removal, which constructs or tears down
  /// ParallelAggregator pools and their queue_mutex_.  Aggregator code never
  /// calls back into the Coordinator, so the order is acyclic.
  mutable util::Mutex mutex_;
  util::Rng rng_ PAPAYA_GUARDED_BY(mutex_);
  std::map<std::string, AggregatorEntry> aggregators_ PAPAYA_GUARDED_BY(mutex_);
  std::map<std::string, TaskEntry> tasks_ PAPAYA_GUARDED_BY(mutex_);
  AssignmentMap map_ PAPAYA_GUARDED_BY(mutex_);
};

}  // namespace papaya::fl
