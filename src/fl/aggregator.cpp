#include "fl/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace papaya::fl {

Aggregator::Aggregator(std::string id, std::size_t num_threads)
    : id_(std::move(id)), num_threads_(num_threads == 0 ? 1 : num_threads) {}

Aggregator::TaskState& Aggregator::state(const std::string& task) {
  const auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    throw std::out_of_range("Aggregator " + id_ + ": unknown task " + task);
  }
  return it->second;
}

const Aggregator::TaskState& Aggregator::state(const std::string& task) const {
  const auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    throw std::out_of_range("Aggregator " + id_ + ": unknown task " + task);
  }
  return it->second;
}

void Aggregator::assign_task(const TaskConfig& config,
                             std::vector<float> initial_model,
                             ml::ServerOptimizerConfig server_opt,
                             std::uint64_t initial_version) {
  if (config.aggregation_goal == 0) {
    throw std::invalid_argument("Aggregator: aggregation goal must be > 0");
  }
  if (initial_model.size() != config.model_size) {
    throw std::invalid_argument("Aggregator: model size mismatch");
  }
  if (config.mode == TrainingMode::kSync &&
      config.aggregation_goal > config.concurrency) {
    throw std::invalid_argument(
        "Aggregator: SyncFL aggregation goal cannot exceed concurrency");
  }
  // Registration-boundary validation: a strategy value outside the enum
  // (deserialized or cast garbage) is rejected, and a zero shard count is
  // normalized here even when registration bypassed Coordinator placement —
  // 0 must never reach the ring modulo.
  if (!valid_agg_strategy(config.aggregation_strategy)) {
    throw std::invalid_argument(
        "Aggregator: unknown aggregation strategy for task " + config.name);
  }
  TaskState ts;
  ts.config = config;
  if (ts.config.aggregator_shards == 0) ts.config.aggregator_shards = 1;
  ts.model = std::move(initial_model);
  ts.version = initial_version;
  ts.server_opt = std::make_unique<ml::ServerOptimizer>(config.model_size, server_opt);
  // Sharded pipeline (Sec. 6.3): `aggregator_shards` independent worker
  // pools, each with one intermediate per worker to keep contention low,
  // all folding via the task's configured strategy.
  ShardedAggregator::Config pipeline_cfg;
  pipeline_cfg.model_size = config.model_size;
  pipeline_cfg.num_shards = ts.config.aggregator_shards;
  pipeline_cfg.threads_per_shard = num_threads_;
  pipeline_cfg.intermediates_per_shard = num_threads_;
  pipeline_cfg.clip_norm = config.dp.enabled ? config.dp.clip_norm : 0.0f;
  pipeline_cfg.drain_batch = config.aggregation_batch_size;
  pipeline_cfg.strategy = config.aggregation_strategy;
  ts.pipeline = std::make_unique<ShardedAggregator>(pipeline_cfg);
  ts.dp_rng.reseed(std::hash<std::string>{}(config.name) ^ 0xd9ULL);
  if (config.secagg_enabled) {
    ts.secure = std::make_unique<SecureBufferManager>(
        config.model_size, config.aggregation_goal,
        std::hash<std::string>{}(config.name) ^ 0x5ecULL,
        config.aggregation_batch_size, config.aggregation_strategy);
  }
  tasks_.insert_or_assign(config.name, std::move(ts));
}

Aggregator::TaskCheckpoint Aggregator::remove_task(const std::string& task) {
  auto& ts = state(task);
  TaskCheckpoint checkpoint{std::move(ts.model), ts.version};
  tasks_.erase(task);
  return checkpoint;
}

bool Aggregator::has_task(const std::string& task) const {
  return tasks_.contains(task);
}

std::vector<std::string> Aggregator::task_names() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [name, _] : tasks_) out.push_back(name);
  return out;
}

JoinResult Aggregator::client_join(const std::string& task,
                                   std::uint64_t client_id, double now) {
  auto& ts = state(task);
  if (client_demand(task) <= 0) return {};  // no demand: reject (Sec. 6.1)
  if (ts.active.contains(client_id)) return {};
  ts.active[client_id] = {ts.version, now + ts.config.client_timeout_s};
  return {true, ts.version};
}

const std::vector<float>& Aggregator::model(const std::string& task) const {
  return state(task).model;
}

std::uint64_t Aggregator::model_version(const std::string& task) const {
  return state(task).version;
}

void Aggregator::server_step(TaskState& ts) {
  // Cross-shard reduce: every shard drains + folds, sums combine globally.
  ParallelAggregator::Reduced reduced = ts.pipeline->reduce_and_reset();
  if (reduced.count == 0) return;
  apply_step(ts, std::move(reduced.mean_delta), reduced.count);
}

void Aggregator::apply_step(TaskState& ts, std::vector<float> mean_delta,
                            std::size_t count) {
  if (ts.config.dp.enabled && ts.config.dp.noise_multiplier > 0.0f) {
    // Gaussian mechanism on a mean of clipped updates: each update's
    // contribution to the mean is bounded by clip_norm / K, so noise stddev
    // = noise_multiplier * clip_norm / K delivers the configured
    // noise-to-sensitivity ratio.
    const double sigma = static_cast<double>(ts.config.dp.noise_multiplier) *
                         ts.config.dp.clip_norm /
                         static_cast<double>(ts.config.aggregation_goal);
    for (auto& v : mean_delta) {
      v += static_cast<float>(ts.dp_rng.normal(0.0, sigma));
    }
  }
  ts.server_opt->step(ts.model, mean_delta);
  ++ts.version;
  ++ts.stats.server_steps;
  ts.stats.updates_applied += count;
  ts.buffered = 0;
}

std::vector<std::uint64_t> Aggregator::abort_after_step(TaskState& ts) {
  std::vector<std::uint64_t> aborted;
  if (ts.config.mode == TrainingMode::kSync) {
    // Round closed: everyone still training was over-selected; abort them
    // (App. E.3 "users that are still training are aborted").
    for (const auto& [id, _] : ts.active) aborted.push_back(id);
    ts.active.clear();
    ts.completed_this_round = 0;
  } else {
    // AsyncFL: abort clients whose staleness already exceeds the bound
    // (App. E.2: "after every server model update, the aggregator aborts
    // clients whose staleness is larger than maximum staleness").
    for (const auto& [id, client] : ts.active) {
      if (ts.version - client.initial_version > ts.config.max_staleness) {
        aborted.push_back(id);
      }
    }
    for (const std::uint64_t id : aborted) ts.active.erase(id);
  }
  ts.stats.clients_aborted += aborted.size();
  return aborted;
}

ReportResult Aggregator::client_report(const std::string& task,
                                       const util::Bytes& serialized_update,
                                       double now) {
  auto& ts = state(task);
  ++ts.stats.updates_received;

  ModelUpdate header = ModelUpdate::deserialize(serialized_update);
  const auto it = ts.active.find(header.client_id);
  if (it == ts.active.end()) {
    // Not active: previously aborted (over-selection / staleness) or never
    // joined.  SyncFL over-selected stragglers land here after round close.
    ++ts.stats.updates_discarded;
    return {ReportOutcome::kRejectedUnknown, false, {}};
  }
  if (now > it->second.deadline) {
    ts.active.erase(it);
    ++ts.stats.updates_discarded;
    ++ts.stats.clients_failed;
    return {ReportOutcome::kRejectedTimeout, false, {}};
  }

  const std::uint64_t staleness = ts.version - header.initial_version;

  if (ts.config.mode == TrainingMode::kAsync &&
      staleness > ts.config.max_staleness) {
    ts.active.erase(it);
    ++ts.stats.updates_discarded;
    ++ts.stats.clients_aborted;
    return {ReportOutcome::kDiscardedStale, false, {}};
  }

  ts.active.erase(it);
  if (ts.config.mode == TrainingMode::kSync) ++ts.completed_this_round;

  double weight = 1.0;
  if (ts.config.example_weighting) {
    weight *= std::sqrt(static_cast<double>(header.num_examples));
  }
  if (ts.config.staleness_weighting &&
      ts.config.mode == TrainingMode::kAsync) {
    weight *= staleness_weight(ts.config.staleness_scheme, staleness,
                               ts.config.staleness_params);
  }
  // The client id keys the stream: all of a client's updates land on the
  // same aggregation shard (consistent-hash placement, Sec. 6.3).
  ts.pipeline->enqueue(header.client_id, serialized_update, weight);
  ++ts.buffered;

  ReportResult result{ReportOutcome::kAccepted, false, {}};
  if (ts.buffered >= ts.config.aggregation_goal) {
    server_step(ts);
    result.server_stepped = true;
    result.aborted_clients = abort_after_step(ts);
  }
  return result;
}

std::optional<SecureUploadConfig> Aggregator::secure_upload_config(
    const std::string& task) {
  auto& ts = state(task);
  if (!ts.secure) return std::nullopt;
  return ts.secure->next_upload_config();
}

const secagg::SimulatedEnclavePlatform& Aggregator::secure_platform(
    const std::string& task) const {
  const auto& ts = state(task);
  if (!ts.secure) {
    throw std::logic_error("Aggregator: SecAgg not enabled for task " + task);
  }
  return ts.secure->platform();
}

double Aggregator::secure_update_weight(const std::string& task,
                                        std::size_t num_examples) const {
  const auto& ts = state(task);
  return ts.config.example_weighting
             ? std::sqrt(static_cast<double>(num_examples))
             : 1.0;
}

ReportResult Aggregator::client_report_secure(const std::string& task,
                                              const SecureReport& report,
                                              double now) {
  auto& ts = state(task);
  if (!ts.secure) {
    throw std::logic_error("Aggregator: SecAgg not enabled for task " + task);
  }
  ++ts.stats.updates_received;

  const auto it = ts.active.find(report.client_id);
  if (it == ts.active.end()) {
    ++ts.stats.updates_discarded;
    return {ReportOutcome::kRejectedUnknown, false, {}};
  }
  if (now > it->second.deadline) {
    ts.active.erase(it);
    ++ts.stats.updates_discarded;
    ++ts.stats.clients_failed;
    return {ReportOutcome::kRejectedTimeout, false, {}};
  }

  // Staleness bounds still apply: the version metadata is public even
  // though the update is masked (App. E.2).
  const std::uint64_t staleness = ts.version - report.initial_version;
  if (ts.config.mode == TrainingMode::kAsync &&
      staleness > ts.config.max_staleness) {
    ts.active.erase(it);
    ++ts.stats.updates_discarded;
    ++ts.stats.clients_aborted;
    return {ReportOutcome::kDiscardedStale, false, {}};
  }

  const double weight = secure_update_weight(task, report.num_examples);
  const SecureSubmitOutcome outcome = ts.secure->submit(report, weight);
  if (outcome != SecureSubmitOutcome::kAccepted &&
      outcome != SecureSubmitOutcome::kBuffered) {
    // Tampered/replayed/epoch-expired contributions are dropped; the client
    // slot is freed so a replacement can be selected.
    ts.active.erase(it);
    ++ts.stats.updates_discarded;
    return {ReportOutcome::kRejectedUnknown, false, {}};
  }
  ts.active.erase(it);
  if (ts.config.mode == TrainingMode::kSync) ++ts.completed_this_round;
  ++ts.buffered;

  // Batched mode: this submit may have flushed buffered reports, whose TSA
  // rejections only surface now.  Un-count them the way a synchronous
  // kTsaRejected never counted: as discarded, not buffered, and not
  // completing a SyncFL slot — so the round's demand frees up and a
  // replacement client can be selected, exactly as in per-update mode.
  if (const std::size_t rejected = ts.secure->take_rejected(); rejected > 0) {
    ts.stats.updates_discarded += rejected;
    ts.buffered -= std::min(ts.buffered, rejected);
    if (ts.config.mode == TrainingMode::kSync) {
      ts.completed_this_round -= std::min(ts.completed_this_round, rejected);
    }
  }

  ReportResult result{ReportOutcome::kAccepted, false, {}};
  if (ts.secure->goal_reached()) {
    auto mean = ts.secure->finalize_mean();
    if (mean) {
      apply_step(ts, std::move(*mean), ts.config.aggregation_goal);
      result.server_stepped = true;
      result.aborted_clients = abort_after_step(ts);
    }
  }
  return result;
}

void Aggregator::client_failed(const std::string& task, std::uint64_t client_id,
                               double /*now*/) {
  auto& ts = state(task);
  if (ts.active.erase(client_id) > 0) ++ts.stats.clients_failed;
}

std::vector<std::uint64_t> Aggregator::expire_timeouts(const std::string& task,
                                                       double now) {
  auto& ts = state(task);
  std::vector<std::uint64_t> expired;
  for (const auto& [id, client] : ts.active) {
    if (now > client.deadline) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    ts.active.erase(id);
    ++ts.stats.clients_failed;
  }
  return expired;
}

std::int64_t Aggregator::client_demand(const std::string& task) const {
  const auto& ts = state(task);
  const auto active = static_cast<std::int64_t>(ts.active.size());
  const auto concurrency = static_cast<std::int64_t>(ts.config.concurrency);
  if (ts.config.mode == TrainingMode::kAsync) {
    // App. E.3: demand = concurrency - active clients.
    return concurrency - active;
  }
  // SyncFL: demand = cohort - completed - active, within the current round.
  // `concurrency` already includes the over-selection factor.
  const auto completed = static_cast<std::int64_t>(ts.completed_this_round);
  return concurrency - completed - active;
}

std::size_t Aggregator::active_clients(const std::string& task) const {
  return state(task).active.size();
}

const TaskStats& Aggregator::stats(const std::string& task) const {
  return state(task).stats;
}

std::size_t Aggregator::task_shards(const std::string& task) const {
  return state(task).pipeline->num_shards();
}

AggStrategy Aggregator::task_strategy(const std::string& task) const {
  return state(task).config.aggregation_strategy;
}

double Aggregator::estimated_workload() const {
  double total = 0.0;
  for (const auto& [_, ts] : tasks_) total += ts.config.estimated_workload();
  return total;
}

}  // namespace papaya::fl
