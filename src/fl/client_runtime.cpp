#include "fl/client_runtime.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace papaya::fl {

ExampleStore::ExampleStore(ml::ClientDataset dataset,
                           std::size_t max_retained_examples)
    : dataset_(std::move(dataset)) {
  policy_.max_examples = max_retained_examples;
  // Retention policy: keep at most `max_retained_examples` training
  // sequences (newest-first semantics don't matter for synthetic data).
  if (dataset_.train.size() > max_retained_examples) {
    dataset_.train.resize(max_retained_examples);
  }
  train_meta_.assign(dataset_.train.size(), {0.0, 0});
}

ExampleStore::ExampleStore(RetentionPolicy policy) : policy_(policy) {}

void ExampleStore::add_example(ml::Sequence example, double now) {
  dataset_.train.push_back(std::move(example));
  train_meta_.emplace_back(now, 0);
  purge(now);
}

void ExampleStore::record_training_use(double now) {
  for (auto& [ingested, uses] : train_meta_) ++uses;
  purge(now);
}

std::size_t ExampleStore::purge(double now) {
  const std::size_t before = dataset_.train.size();

  // Age and use caps.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < dataset_.train.size(); ++i) {
    const auto& [ingested, uses] = train_meta_[i];
    const bool expired = now - ingested > policy_.max_age_s;
    const bool exhausted = uses >= policy_.max_uses;
    if (expired || exhausted) continue;
    if (kept != i) {
      dataset_.train[kept] = std::move(dataset_.train[i]);
      train_meta_[kept] = train_meta_[i];
    }
    ++kept;
  }
  dataset_.train.resize(kept);
  train_meta_.resize(kept);

  // Count cap: evict oldest-ingested first (stable: entries are in
  // ingestion order).
  if (dataset_.train.size() > policy_.max_examples) {
    const std::size_t excess = dataset_.train.size() - policy_.max_examples;
    dataset_.train.erase(dataset_.train.begin(),
                         dataset_.train.begin() + excess);
    train_meta_.erase(train_meta_.begin(), train_meta_.begin() + excess);
  }
  return before - dataset_.train.size();
}

Executor::Executor(std::unique_ptr<ml::LanguageModel> working_model,
                   TrainerConfig config)
    : model_(std::move(working_model)), config_(config) {
  if (!model_) throw std::invalid_argument("Executor: null model");
  if (config_.batch_size == 0) {
    throw std::invalid_argument("Executor: batch size must be > 0");
  }
}

LocalTrainingResult Executor::train(std::span<const float> global_params,
                                    std::uint64_t version,
                                    std::uint64_t client_id,
                                    const ExampleStore& store,
                                    util::Rng& rng) const {
  if (global_params.size() != model_->num_params()) {
    throw std::invalid_argument("Executor: global model size mismatch");
  }
  std::copy(global_params.begin(), global_params.end(),
            model_->params().begin());

  const auto& train_set = store.dataset().train;
  LocalTrainingResult result;
  result.update.client_id = client_id;
  result.update.initial_version = version;
  result.update.num_examples = train_set.size();

  if (train_set.empty()) {
    result.update.delta.assign(model_->num_params(), 0.0f);
    return result;
  }

  if (config_.compute_losses) {
    result.initial_loss = model_->loss(train_set, {});
  }

  const ml::Sgd sgd(config_.learning_rate, config_.gradient_clip);
  std::vector<float> grad(model_->num_params());
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<ml::Sequence> batch;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher–Yates shuffle with the caller's deterministic rng.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      batch.clear();
      for (std::size_t i = start; i < end; ++i) {
        batch.push_back(train_set[order[i]]);
      }
      model_->loss(batch, grad);
      sgd.step(model_->params(), grad);
    }
  }

  if (config_.compute_losses) {
    result.final_loss = model_->loss(train_set, {});
  }

  // Model update = trained - initial (Sec. 3.1).
  result.update.delta.resize(model_->num_params());
  const std::span<const float> trained = model_->params();
  for (std::size_t i = 0; i < trained.size(); ++i) {
    result.update.delta[i] = trained[i] - global_params[i];
  }
  return result;
}

PipelinedClientSession::PipelinedClientSession(PipelineTimings timings)
    : timings_(std::move(timings)) {
  const std::size_t n = timings_.upload_chunk_s.size();
  if (n == 0 || timings_.serialize_chunk_s.size() != n) {
    throw std::invalid_argument(
        "PipelinedClientSession: need one serialize and one upload time per "
        "chunk (at least one chunk)");
  }
  if (timings_.train_s < 0.0) {
    throw std::invalid_argument("PipelinedClientSession: negative train time");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (timings_.serialize_chunk_s[i] < 0.0 || timings_.upload_chunk_s[i] < 0.0) {
      throw std::invalid_argument(
          "PipelinedClientSession: negative stage time");
    }
  }
  serialize_done_.assign(n, 0.0);
}

bool PipelinedClientSession::done() const {
  return train_done_ && uploaded_ == num_chunks();
}

double PipelinedClientSession::ready_at(std::size_t chunk) const {
  if (timings_.readiness == PipelineTimings::Readiness::kPostTraining) {
    return timings_.train_s;
  }
  // Progressive finalization: chunk i's source range is final once
  // (i+1)/n of training has elapsed; the last chunk waits for the end.
  return timings_.train_s * static_cast<double>(chunk + 1) /
         static_cast<double>(num_chunks());
}

double PipelinedClientSession::next_serialize_at() const {
  if (serialized_ == num_chunks()) {
    return std::numeric_limits<double>::infinity();
  }
  const double prev_done = serialized_ == 0 ? 0.0 : serialize_done_[serialized_ - 1];
  return std::max(ready_at(serialized_), prev_done) +
         timings_.serialize_chunk_s[serialized_];
}

double PipelinedClientSession::next_upload_at() const {
  if (uploaded_ == num_chunks() || uploaded_ >= serialized_) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(serialize_done_[uploaded_], last_upload_done_) +
         timings_.upload_chunk_s[uploaded_];
}

PipelinedClientSession::Event PipelinedClientSession::peek() const {
  if (done()) {
    throw std::logic_error("PipelinedClientSession: already done");
  }
  Event event;
  event.at = std::numeric_limits<double>::infinity();
  // Tie-break at equal times in protocol order: training completes before
  // the chunk it unblocks serializes, which completes before it uploads.
  if (!train_done_) {
    event = {Event::Kind::kTrainingComplete, 0, timings_.train_s};
  }
  if (const double at = next_serialize_at(); at < event.at) {
    event = {Event::Kind::kChunkSerialized,
             static_cast<std::uint32_t>(serialized_), at};
  }
  if (const double at = next_upload_at(); at < event.at) {
    event = {Event::Kind::kChunkUploaded,
             static_cast<std::uint32_t>(uploaded_), at};
  }
  return event;
}

PipelinedClientSession::Event PipelinedClientSession::advance() {
  const Event event = peek();
  switch (event.kind) {
    case Event::Kind::kTrainingComplete:
      train_done_ = true;
      break;
    case Event::Kind::kChunkSerialized:
      serialize_done_[serialized_] = event.at;
      ++serialized_;
      break;
    case Event::Kind::kChunkUploaded:
      last_upload_done_ = event.at;
      ++uploaded_;
      break;
  }
  now_ = event.at;
  return event;
}

double PipelinedClientSession::finish_time() {
  while (!done()) advance();
  return now_;
}

std::vector<double> PipelinedClientSession::upload_completion_times() const {
  PipelinedClientSession replay(timings_);
  std::vector<double> times;
  times.reserve(replay.num_chunks());
  while (!replay.done()) {
    const Event event = replay.advance();
    if (event.kind == Event::Kind::kChunkUploaded) times.push_back(event.at);
  }
  return times;
}

PipelinedClientSession::Stage PipelinedClientSession::stage() const {
  if (!train_done_) return Stage::kTraining;
  if (serialized_ < num_chunks()) return Stage::kSerializing;
  if (uploaded_ < num_chunks()) return Stage::kUploading;
  return Stage::kDone;
}

double PipelinedClientSession::sequential_latency(
    const PipelineTimings& timings) {
  double total = timings.train_s;
  for (const double s : timings.serialize_chunk_s) total += s;
  for (const double u : timings.upload_chunk_s) total += u;
  return total;
}

ClientRuntime::ClientRuntime(std::uint64_t client_id, ExampleStore store)
    : client_id_(client_id), store_(std::move(store)) {}

}  // namespace papaya::fl
