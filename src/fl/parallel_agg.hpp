#pragma once
// Parallel model aggregation (Sec. 6.3).
//
// "Once a client completes training, it uploads the trained serialized model
//  update to the server.  This update is then pushed into an in-memory queue
//  on the Aggregator.  A different thread drains the queue by de-serializing
//  the updates into trainable parameters and aggregating them.  To speed up
//  this aggregation, we parallelize the aggregation process across available
//  cores.  To reduce lock contention, the ID of the thread performing
//  intermediate aggregation is hashed to choose one of the intermediate
//  aggregates."
//
// This module implements exactly that: a mutex-protected queue of serialized
// updates, a pool of worker threads each folding deserialized deltas into one
// of `num_intermediates` partial sums selected by hashing the worker's thread
// id, and a final reduction over the intermediates.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::fl {

/// One weighted partial sum.
struct Intermediate {
  std::vector<float> weighted_delta;  ///< sum of w_i * delta_i
  double weight_sum = 0.0;
  std::size_t count = 0;
};

class ParallelAggregator {
 public:
  /// `clip_norm` > 0 rescales each deserialized delta to at most that L2
  /// norm before aggregation (per-update clipping for differential
  /// privacy).
  ParallelAggregator(std::size_t model_size, std::size_t num_threads,
                     std::size_t num_intermediates, float clip_norm = 0.0f);
  ~ParallelAggregator();

  ParallelAggregator(const ParallelAggregator&) = delete;
  ParallelAggregator& operator=(const ParallelAggregator&) = delete;

  /// Push one serialized update with its precomputed weight into the queue.
  void enqueue(util::Bytes serialized_update, double weight);

  /// Block until the queue is drained and all in-flight work has been folded
  /// into the intermediates.
  void drain();

  /// Drain, then reduce all intermediates into (weighted mean delta,
  /// total weight, count), and reset for the next buffer.
  struct Reduced {
    std::vector<float> mean_delta;
    double weight_sum = 0.0;
    std::size_t count = 0;
  };
  Reduced reduce_and_reset();

  std::size_t queued_or_inflight() const;

 private:
  void worker_loop(std::size_t worker_index);

  const std::size_t model_size_;
  const float clip_norm_;
  std::vector<Intermediate> intermediates_;
  std::vector<std::mutex> intermediate_locks_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::pair<util::Bytes, double>> queue_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace papaya::fl
