#pragma once
// Parallel model aggregation (Sec. 6.3).
//
// "Once a client completes training, it uploads the trained serialized model
//  update to the server.  This update is then pushed into an in-memory queue
//  on the Aggregator.  A different thread drains the queue by de-serializing
//  the updates into trainable parameters and aggregating them.  To speed up
//  this aggregation, we parallelize the aggregation process across available
//  cores.  To reduce lock contention, the ID of the thread performing
//  intermediate aggregation is hashed to choose one of the intermediate
//  aggregates."
//
// This module keeps the paper's queue + worker-pool shape, but the fold
// itself is pluggable (fl::AggregationStrategy, src/fl/agg_strategy.hpp):
// the locked per-intermediate baseline above, a morsel-driven thread-local
// pre-aggregation, or a striped atomic fold.  One deliberate deviation from
// the paper's wording survives in the locked baseline: instead of hashing
// the worker's *thread id* onto an intermediate (which gives no collision
// guarantee — std::hash<std::thread::id> routinely mapped whole pools onto a
// single slot, serializing every fold behind one mutex), each worker takes
// `worker_index % num_intermediates`.  That realizes the same
// lock-contention trick with a deterministic, guaranteed-even spread.
//
// When constructed with AggStrategy::kAuto, each worker re-reads the
// AggStats window before folding a drained run and may switch the active
// strategy (decide_strategy's table).  Switches are exact: all three
// strategy accumulators stay alive, an update is folded into exactly one of
// them, and reduce_and_reset() merges every touched strategy in a fixed
// order — so mid-stream switches conserve sums bit-for-bit.
//
// reduce_and_reset() is safe against concurrent enqueue(): the reduce
// quiesces the pool (drains, then pauses workers under the queue lock) so an
// update enqueued mid-reduce lands in the *next* buffer instead of being
// folded into an accumulator that was already summed-and-reset.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "fl/agg_strategy.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace papaya::fl {

class ParallelAggregator {
 public:
  /// `clip_norm` > 0 rescales each deserialized delta to at most that L2
  /// norm before aggregation (per-update clipping for differential
  /// privacy).  `drain_batch` is the number of queued updates a worker pops
  /// per wakeup (>= 1): one queue-lock acquisition and one fold-lock
  /// acquisition amortize over the whole run, and each popped run is folded
  /// in FIFO order, so the folds are the same as per-update draining would
  /// perform.  `strategy` picks the fold backend; the default keeps the
  /// locked baseline so direct constructions behave exactly as before this
  /// layer existed (TaskConfig-driven call sites pass kAuto).
  ParallelAggregator(std::size_t model_size, std::size_t num_threads,
                     std::size_t num_intermediates, float clip_norm = 0.0f,
                     std::size_t drain_batch = 1,
                     AggStrategy strategy = AggStrategy::kLocked,
                     const AggTuning& tuning = {});
  ~ParallelAggregator();

  ParallelAggregator(const ParallelAggregator&) = delete;
  ParallelAggregator& operator=(const ParallelAggregator&) = delete;

  /// Push one serialized update with its precomputed weight into the queue.
  void enqueue(util::Bytes serialized_update, double weight);

  /// Block until the queue is drained and all in-flight work has been folded
  /// into the active strategy's accumulators.
  void drain();

  /// Drain, then reduce every touched strategy into (weighted mean delta,
  /// total weight, count), and reset for the next buffer.
  using Reduced = AggReduced;
  Reduced reduce_and_reset();

  /// Like reduce_and_reset(), but `mean_delta` holds the raw weighted sum
  /// (sum of w_i * delta_i) — not divided by `weight_sum`.  Cross-shard
  /// reduction (ShardedAggregator) combines shards with this so the final
  /// mean is computed exactly once over the global weight.
  Reduced reduce_and_reset_sums();

  std::size_t queued_or_inflight() const;

  /// Change the fold backend mid-stream.  kAuto re-enables the adaptive
  /// picker; a concrete strategy pins it.  Safe under concurrent enqueue and
  /// fold: updates already folded under the old strategy are merged from its
  /// accumulator at the next reduce.
  void force_strategy(AggStrategy strategy);

  /// The strategy the pool was configured with (kAuto or a forced mode).
  AggStrategy configured_strategy() const {
    return configured_.load(std::memory_order_relaxed);
  }
  /// The concrete fold backend new runs are folded with right now (never
  /// kAuto).
  AggStrategy active_strategy() const;

  /// Hot-path counters (cumulative since construction).
  AggStatsSnapshot stats_snapshot() const { return stats_.snapshot(); }

  /// The intermediate a locked-baseline pool worker folds into.
  /// Index-based (not thread-id-hashed) so the spread over intermediates is
  /// guaranteed even; exposed for tests documenting that guarantee.
  static constexpr std::size_t intermediate_slot(std::size_t worker_index,
                                                 std::size_t num_intermediates) {
    return num_intermediates == 0 ? 0 : worker_index % num_intermediates;
  }

 private:
  void worker_loop(std::size_t worker_index);
  static std::size_t strategy_index(AggStrategy s);

  const std::size_t model_size_;
  const AggTuning tuning_;
  std::size_t drain_batch_ = 1;
  AggStats stats_;
  /// The three fold backends, all alive for the pool's lifetime (morsel and
  /// striped allocate lazily) so a mid-stream switch never moves state:
  /// index 0 = locked, 1 = morsel, 2 = striped — also the fixed merge order
  /// at reduce time.
  std::array<std::unique_ptr<AggregationStrategy>, kNumFoldStrategies>
      strategies_;
  std::atomic<AggStrategy> configured_;
  std::atomic<std::size_t> active_;

  /// Lock hierarchy: queue_mutex_ is level 1 — workers release it before
  /// folding into a strategy's level-0 partition lock, and the reduce path's
  /// quiesce handshake guarantees the two levels are never held together
  /// (see util/sync.hpp for the full hierarchy).
  mutable util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  util::CondVar drained_cv_;
  std::deque<QueuedUpdate> queue_ PAPAYA_GUARDED_BY(queue_mutex_);
  std::size_t inflight_ PAPAYA_GUARDED_BY(queue_mutex_) = 0;
  bool stopping_ PAPAYA_GUARDED_BY(queue_mutex_) = false;
  /// True while reduce_and_reset() reads/resets the accumulators; workers
  /// leave the queue untouched so mid-reduce enqueues survive into the next
  /// buffer.
  bool paused_ PAPAYA_GUARDED_BY(queue_mutex_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace papaya::fl
