#pragma once
// Parallel model aggregation (Sec. 6.3).
//
// "Once a client completes training, it uploads the trained serialized model
//  update to the server.  This update is then pushed into an in-memory queue
//  on the Aggregator.  A different thread drains the queue by de-serializing
//  the updates into trainable parameters and aggregating them.  To speed up
//  this aggregation, we parallelize the aggregation process across available
//  cores.  To reduce lock contention, the ID of the thread performing
//  intermediate aggregation is hashed to choose one of the intermediate
//  aggregates."
//
// This module implements exactly that: a mutex-protected queue of serialized
// updates, a pool of worker threads each folding deserialized deltas into one
// of `num_intermediates` partial sums, and a final reduction over the
// intermediates.  One deliberate deviation from the paper's wording: instead
// of hashing the worker's *thread id* onto an intermediate (which gives no
// collision guarantee — std::hash<std::thread::id> routinely mapped whole
// pools onto a single slot, serializing every fold behind one mutex), each
// worker takes `worker_index % num_intermediates`.  That realizes the same
// lock-contention trick with a deterministic, guaranteed-even spread.
//
// reduce_and_reset() is safe against concurrent enqueue(): the reduce
// quiesces the pool (drains, then pauses workers under the queue lock) so an
// update enqueued mid-reduce lands in the *next* buffer instead of being
// folded into an intermediate that was already summed-and-reset.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::fl {

/// One weighted partial sum.
struct Intermediate {
  std::vector<float> weighted_delta;  ///< sum of w_i * delta_i
  double weight_sum = 0.0;
  std::size_t count = 0;
};

class ParallelAggregator {
 public:
  /// `clip_norm` > 0 rescales each deserialized delta to at most that L2
  /// norm before aggregation (per-update clipping for differential
  /// privacy).  `drain_batch` is the number of queued updates a worker pops
  /// per wakeup (>= 1): one queue-lock acquisition and one
  /// intermediate-lock acquisition amortize over the whole run, and each
  /// popped run is folded in FIFO order into the worker's own slot, so the
  /// folds are the same as per-update draining would perform.
  ParallelAggregator(std::size_t model_size, std::size_t num_threads,
                     std::size_t num_intermediates, float clip_norm = 0.0f,
                     std::size_t drain_batch = 1);
  ~ParallelAggregator();

  ParallelAggregator(const ParallelAggregator&) = delete;
  ParallelAggregator& operator=(const ParallelAggregator&) = delete;

  /// Push one serialized update with its precomputed weight into the queue.
  void enqueue(util::Bytes serialized_update, double weight);

  /// Block until the queue is drained and all in-flight work has been folded
  /// into the intermediates.
  void drain();

  /// Drain, then reduce all intermediates into (weighted mean delta,
  /// total weight, count), and reset for the next buffer.
  struct Reduced {
    std::vector<float> mean_delta;
    double weight_sum = 0.0;
    std::size_t count = 0;
  };
  Reduced reduce_and_reset();

  /// Like reduce_and_reset(), but `mean_delta` holds the raw weighted sum
  /// (sum of w_i * delta_i) — not divided by `weight_sum`.  Cross-shard
  /// reduction (ShardedAggregator) combines shards with this so the final
  /// mean is computed exactly once over the global weight.
  Reduced reduce_and_reset_sums();

  std::size_t queued_or_inflight() const;

  /// The intermediate a pool worker folds into.  Index-based (not
  /// thread-id-hashed) so the spread over intermediates is guaranteed even;
  /// exposed for tests documenting that guarantee.
  static constexpr std::size_t intermediate_slot(std::size_t worker_index,
                                                 std::size_t num_intermediates) {
    return num_intermediates == 0 ? 0 : worker_index % num_intermediates;
  }

 private:
  void worker_loop(std::size_t worker_index);

  const std::size_t model_size_;
  const float clip_norm_;
  const std::size_t drain_batch_;
  std::vector<Intermediate> intermediates_;
  std::vector<std::mutex> intermediate_locks_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::pair<util::Bytes, double>> queue_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  /// True while reduce_and_reset() reads/resets the intermediates; workers
  /// leave the queue untouched so mid-reduce enqueues survive into the next
  /// buffer (guarded by queue_mutex_).
  bool paused_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace papaya::fl
