#include "fl/election.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace papaya::fl {

CoordinatorGroup::CoordinatorGroup(std::vector<std::string> replica_ids)
    : CoordinatorGroup(std::move(replica_ids), Options{}) {}

CoordinatorGroup::CoordinatorGroup(std::vector<std::string> replica_ids,
                                   Options options)
    : options_(options) {
  if (replica_ids.empty()) {
    throw std::invalid_argument("CoordinatorGroup: need at least one replica");
  }
  for (auto& id : replica_ids) replicas_[std::move(id)] = Replica{};
  // Bootstrap: the lowest-id replica leads from t = 0 with nothing to
  // recover, so assignments start enabled.
  install_leader(replicas_.begin()->first, 0.0, /*bootstrap=*/true);
}

const std::string& CoordinatorGroup::leader_id() const {
  if (!leader_) {
    throw std::runtime_error("CoordinatorGroup: no leader elected");
  }
  return *leader_;
}

bool CoordinatorGroup::in_recovery(double now) const {
  return leader_.has_value() && now < recovery_until_;
}

bool CoordinatorGroup::accepting_assignments(double now) const {
  return leader_.has_value() && now >= recovery_until_;
}

void CoordinatorGroup::fail_leader(double now) {
  if (!leader_) return;
  fail_replica(*leader_, now);
}

void CoordinatorGroup::fail_replica(const std::string& id, double now) {
  const auto it = replicas_.find(id);
  if (it == replicas_.end()) return;
  it->second.alive = false;
  if (leader_ && *leader_ == id) {
    // The leader's soft state dies with it (App. E.4: only durable state —
    // the fleet registry and task store — survives).
    PAPAYA_LOG(util::LogLevel::kWarning)
        << "coordinator leader " << id << " failed; assignments paused";
    leader_.reset();
    coordinator_.reset();
    leaderless_since_ = now;
  }
}

void CoordinatorGroup::revive_replica(const std::string& id) {
  const auto it = replicas_.find(id);
  if (it != replicas_.end()) it->second.alive = true;
}

bool CoordinatorGroup::replica_alive(const std::string& id) const {
  const auto it = replicas_.find(id);
  return it != replicas_.end() && it->second.alive;
}

bool CoordinatorGroup::tick(double now) {
  if (leader_) return false;
  if (now - leaderless_since_ < options_.election_timeout_s) return false;
  for (const auto& [id, replica] : replicas_) {
    if (replica.alive) {
      install_leader(id, now, /*bootstrap=*/false);
      return true;
    }
  }
  return false;  // nobody alive; stay leaderless
}

void CoordinatorGroup::install_leader(const std::string& id, double now,
                                      bool bootstrap) {
  leader_ = id;
  ++term_;
  PAPAYA_LOG(util::LogLevel::kInfo)
      << "coordinator leader elected: " << id << " (term " << term_
      << (bootstrap ? ", bootstrap)" : ", recovering)");
  coordinator_ = std::make_unique<Coordinator>(options_.seed ^ term_);
  for (auto& [agg_id, agg] : fleet_) {
    coordinator_->register_aggregator(*agg, now);
  }
  for (const auto& [name, stored] : task_store_) {
    coordinator_->adopt_task(stored.config, stored.server_opt);
  }
  coordinator_->recover_from_aggregator_state(now);
  // The bootstrap leader has nothing to rebuild; an elected successor holds
  // assignments for the App. E.4 recovery period while reports stream in.
  recovery_until_ = bootstrap ? now : now + options_.recovery_period_s;
}

void CoordinatorGroup::register_aggregator(Aggregator& aggregator,
                                           double now) {
  fleet_[aggregator.id()] = &aggregator;
  if (coordinator_) coordinator_->register_aggregator(aggregator, now);
}

void CoordinatorGroup::submit_task(const TaskConfig& config,
                                   std::vector<float> initial_model,
                                   ml::ServerOptimizerConfig server_opt,
                                   double now) {
  if (!accepting_assignments(now)) {
    throw std::runtime_error(
        "CoordinatorGroup: no active leader (leaderless or in recovery)");
  }
  coordinator_->submit_task(config, std::move(initial_model), server_opt);
  task_store_[config.name] = StoredTask{config, server_opt};
}

void CoordinatorGroup::aggregator_report(const std::string& aggregator_id,
                                         std::uint64_t sequence, double now,
                                         const std::vector<TaskReport>& reports) {
  // Consumed even in recovery — reports rebuild the demand view.  Dropped
  // while leaderless (aggregators retry on their next report interval).
  if (coordinator_) {
    coordinator_->aggregator_report(aggregator_id, sequence, now, reports);
  }
}

std::optional<ClientAssignment> CoordinatorGroup::assign_client(
    const ClientCapabilities& caps, double now) {
  if (!accepting_assignments(now)) return std::nullopt;
  return coordinator_->assign_client(caps);
}

void CoordinatorGroup::assignment_concluded(const std::string& task) {
  if (coordinator_) coordinator_->assignment_concluded(task);
}

std::vector<std::string> CoordinatorGroup::detect_failures(double now,
                                                           double timeout) {
  if (!coordinator_) return {};
  return coordinator_->detect_failures(now, timeout);
}

std::optional<AssignmentMap> CoordinatorGroup::assignment_map() const {
  if (!coordinator_) return std::nullopt;
  return coordinator_->assignment_map();
}

const Coordinator& CoordinatorGroup::leader() const {
  if (!coordinator_) {
    throw std::runtime_error("CoordinatorGroup: no leader elected");
  }
  return *coordinator_;
}

}  // namespace papaya::fl
