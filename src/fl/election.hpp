#pragma once
// Replicated Coordinator with leader election and recovery period (App. E.4).
//
// The paper: "Upon coordinator failure participating clients are not
// affected, only for the duration of the recovery no new clients are
// assigned.  Selectors and aggregators wait until a new leader coordinator
// is elected meanwhile continuing to operate based on last known
// assignments.  After the leader election coordinator enters the recovery
// period (typically 30s) to rebuild the current assignment map from
// aggregator reports and then resumes assignments."
//
// This module models exactly that: a group of Coordinator replicas of which
// one is leader.  Durable state (the aggregator fleet and the task store)
// survives leader failures; the leader's soft state (demand view, pending
// assignments, assignment map) dies with it and is rebuilt by the next
// leader during the recovery period.  Election is deterministic — after the
// election timeout, the lowest-id live replica wins and the term increments
// — standing in for the production consensus service without changing any
// observable behaviour the paper describes.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fl/aggregator.hpp"
#include "fl/coordinator.hpp"
#include "fl/task.hpp"

namespace papaya::fl {

class CoordinatorGroup {
 public:
  struct Options {
    /// How long followers wait for leader heartbeats before electing.
    double election_timeout_s = 5.0;
    /// App. E.4's "typically 30s" rebuild window after an election.
    double recovery_period_s = 30.0;
    std::uint64_t seed = 0;
  };

  /// The first (lowest-id) replica becomes leader immediately; the initial
  /// bootstrap has nothing to recover, so assignments start enabled.
  explicit CoordinatorGroup(std::vector<std::string> replica_ids);
  CoordinatorGroup(std::vector<std::string> replica_ids, Options options);

  // -- Leadership ------------------------------------------------------------

  bool has_leader() const { return leader_.has_value(); }
  const std::string& leader_id() const;
  std::uint64_t term() const { return term_; }

  /// True while a new leader is still rebuilding soft state.
  bool in_recovery(double now) const;
  /// True when client assignment is enabled: a leader exists and its
  /// recovery period has elapsed.
  bool accepting_assignments(double now) const;

  // -- Failure injection -------------------------------------------------------

  /// Kill the current leader (no-op if there is none).  Followers start the
  /// election clock; call tick() to make time pass.
  void fail_leader(double now);
  void fail_replica(const std::string& id, double now);
  /// A revived replica rejoins as a follower; it never reclaims leadership
  /// (the term fences it out).
  void revive_replica(const std::string& id);
  bool replica_alive(const std::string& id) const;

  /// Drive the election state machine: if the group has been leaderless for
  /// at least the election timeout and a live replica exists, elect the
  /// lowest-id live replica, increment the term, and start the recovery
  /// period.  Returns true if a new leader was just elected.
  bool tick(double now);

  // -- Durable state (survives leader failure) --------------------------------

  void register_aggregator(Aggregator& aggregator, double now);

  /// Submit a task through the current leader.  Throws std::runtime_error
  /// if there is no leader or the leader is still in recovery (production
  /// queues these; the caller retries).
  void submit_task(const TaskConfig& config, std::vector<float> initial_model,
                   ml::ServerOptimizerConfig server_opt, double now);

  // -- Leader-routed operations ------------------------------------------------

  /// Aggregator reports are consumed even during recovery — they are what
  /// the new leader rebuilds its demand view from.  Dropped if leaderless.
  void aggregator_report(const std::string& aggregator_id,
                         std::uint64_t sequence, double now,
                         const std::vector<TaskReport>& reports);

  /// nullopt while assignments are paused (leaderless or in recovery) —
  /// App. E.4's "no new clients are assigned".
  std::optional<ClientAssignment> assign_client(const ClientCapabilities& caps,
                                                double now);
  void assignment_concluded(const std::string& task);

  std::vector<std::string> detect_failures(double now, double timeout);

  /// Point-in-time copy of the leader's assignment map; Selectors keep
  /// serving their last cached copy while leaderless.  By value because the
  /// Coordinator is internally locked (see Coordinator::assignment_map).
  /// Returns nullopt if there is no leader.
  std::optional<AssignmentMap> assignment_map() const;

  /// The leader's live Coordinator (for Selector::refresh and tests).
  /// Throws std::runtime_error if there is no leader.
  const Coordinator& leader() const;

 private:
  struct Replica {
    bool alive = true;
  };

  /// Durable task store entry (in production: a replicated DB).
  struct StoredTask {
    TaskConfig config;
    ml::ServerOptimizerConfig server_opt;
  };

  /// Build a fresh Coordinator for a newly elected leader: re-register the
  /// fleet, adopt the task store, rebuild the map from aggregator state.
  void install_leader(const std::string& id, double now, bool bootstrap);

  Options options_;
  std::map<std::string, Replica> replicas_;
  std::optional<std::string> leader_;
  std::uint64_t term_ = 0;
  double leaderless_since_ = 0.0;
  double recovery_until_ = 0.0;

  std::unique_ptr<Coordinator> coordinator_;  ///< leader soft state
  std::map<std::string, Aggregator*> fleet_;  ///< durable fleet registry
  std::map<std::string, StoredTask> task_store_;  ///< durable task store
};

}  // namespace papaya::fl
