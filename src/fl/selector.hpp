#pragma once
// The Selector server component (Secs. 4, 6.2, App. E.4).
//
// Selectors are the only components clients talk to.  Each caches the
// Coordinator's assignment map and routes client requests to the Aggregator
// owning the task.  A Selector can be *stale* (its cached map version lags
// the Coordinator's): clients that hit a routing miss retry through another
// Selector, and the stale Selector refreshes its map on its next report to
// the Coordinator.

#include <cstdint>
#include <optional>
#include <string>

#include "fl/coordinator.hpp"

namespace papaya::fl {

class Selector {
 public:
  explicit Selector(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// Pull the latest assignment map from the Coordinator (done on every
  /// report in production).
  void refresh(const Coordinator& coordinator) {
    map_ = coordinator.assignment_map();
  }

  /// Route a client request for `task` to its Aggregator.  Returns nullopt
  /// on a routing miss (unknown task in this Selector's cached map) — the
  /// client should retry via a different Selector.
  std::optional<std::string> route(const std::string& task) const {
    const auto it = map_.task_to_aggregator.find(task);
    if (it == map_.task_to_aggregator.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t map_version() const { return map_.version; }

  /// True when this Selector's map lags the Coordinator's.
  bool is_stale(const Coordinator& coordinator) const {
    return map_.version < coordinator.assignment_map().version;
  }

  /// Fail injection for tests: wipe the cached map (a crashed/restarted
  /// Selector before its first refresh).
  void crash() { map_ = {}; }

 private:
  std::string id_;
  AssignmentMap map_;
};

}  // namespace papaya::fl
