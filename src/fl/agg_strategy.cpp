#include "fl/agg_strategy.hpp"

#include <algorithm>
#include <mutex>  // std::once_flag for the striped lazy init (not a lock type)
#include <stdexcept>
#include <utility>

#include "fl/model_update.hpp"
#include "ml/math.hpp"
#include "util/sync.hpp"

namespace papaya::fl {

const char* to_string(AggStrategy strategy) {
  switch (strategy) {
    case AggStrategy::kAuto:
      return "auto";
    case AggStrategy::kLocked:
      return "locked";
    case AggStrategy::kMorsel:
      return "morsel";
    case AggStrategy::kStriped:
      return "striped";
  }
  return "unknown";
}

std::optional<AggStrategy> parse_agg_strategy(std::string_view name) {
  if (name == "auto") return AggStrategy::kAuto;
  if (name == "locked") return AggStrategy::kLocked;
  if (name == "morsel") return AggStrategy::kMorsel;
  if (name == "striped") return AggStrategy::kStriped;
  return std::nullopt;
}

// -- UpdateView --------------------------------------------------------------

std::optional<UpdateView> UpdateView::parse(const util::Bytes& bytes,
                                            std::size_t expect) {
  // client_id u64 | initial_version u64 | num_examples u64 | count u64.
  constexpr std::size_t kHeader = 32;
  if (bytes.size() < kHeader) return std::nullopt;
  std::uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<std::uint64_t>(bytes[24 + i]) << (8 * i);
  }
  if (count != expect) return std::nullopt;
  // Division form so a hostile count cannot overflow the byte math.
  if (count > (bytes.size() - kHeader) / 4) return std::nullopt;
  UpdateView view;
  view.payload = bytes.data() + kHeader;
  view.count = static_cast<std::size_t>(count);
  return view;
}

void UpdateView::copy_to(std::span<float> out) const {
  if constexpr (std::endian::native == std::endian::little) {
    if (count > 0) std::memcpy(out.data(), payload, count * 4);
  } else {
    for (std::size_t i = 0; i < count; ++i) out[i] = at(i);
  }
}

namespace {

std::size_t normalized(std::size_t n) { return n == 0 ? 1 : n; }

/// The weighted fold every strategy performs, so results are bit-identical
/// wherever the fold order is: acc[i] += float(weight) * x[i].
void fold_span(std::span<float> acc, std::span<const float> x, double weight) {
  const float w = static_cast<float>(weight);
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += w * x[i];
}

// -- Locked (PR-2 baseline) --------------------------------------------------

/// One mutex-guarded intermediate aggregate.  The lock is a level-0 leaf in
/// the repo hierarchy (util/sync.hpp): never held while acquiring anything
/// else.  Pairing lock and data in one struct lets the thread-safety
/// analysis check every access: `slot.inter` is unreachable without holding
/// `slot.lock`.
struct LockedSlot {
  mutable util::Mutex lock;
  Intermediate inter PAPAYA_GUARDED_BY(lock);
};

class LockedStrategy final : public AggregationStrategy {
 public:
  explicit LockedStrategy(const StrategyContext& context)
      : context_(context), slots_(normalized(context.num_partitions)) {
    for (auto& slot : slots_) {
      util::LockGuard guard(slot.lock);
      slot.inter.weighted_delta.assign(context_.model_size, 0.0f);
    }
  }

  AggStrategy kind() const override { return AggStrategy::kLocked; }

  void fold_run(std::size_t worker,
                std::span<const QueuedUpdate> run) override {
    LockedSlot& slot = slots_[worker % slots_.size()];
    // Deserialize and clip outside any lock; a malformed update must not
    // poison the aggregate, so it simply drops out of the run.
    std::vector<std::pair<ModelUpdate, double>> folds;
    folds.reserve(run.size());
    for (const QueuedUpdate& queued : run) {
      ModelUpdate update = ModelUpdate::deserialize(queued.bytes);
      if (update.delta.size() != context_.model_size) {
        if (context_.stats) context_.stats->on_dropped(1);
        continue;
      }
      if (context_.clip_norm > 0.0f) {
        ml::clip_norm(update.delta, context_.clip_norm);
      }
      folds.emplace_back(std::move(update), queued.weight);
    }
    if (folds.empty()) return;
    const bool contended = slot.lock.lock_reporting_contention();
    if (context_.stats) context_.stats->on_lock(contended);
    util::LockGuard guard(slot.lock, std::adopt_lock);
    for (const auto& [update, weight] : folds) {
      fold_span(slot.inter.weighted_delta, update.delta, weight);
      slot.inter.weight_sum += weight;
      ++slot.inter.count;
    }
    if (context_.stats) context_.stats->on_folded(folds.size());
  }

  void merge_and_reset(AggReduced& out) override {
    // All slots, in slot order, untouched ones included — exactly the
    // pre-strategy reduce, so a locked-only buffer is bit-identical to it.
    for (auto& slot : slots_) {
      util::LockGuard guard(slot.lock);
      Intermediate& inter = slot.inter;
      for (std::size_t i = 0; i < context_.model_size; ++i) {
        out.mean_delta[i] += inter.weighted_delta[i];
      }
      out.weight_sum += inter.weight_sum;
      out.count += inter.count;
      inter.weighted_delta.assign(context_.model_size, 0.0f);
      inter.weight_sum = 0.0;
      inter.count = 0;
    }
  }

  bool touched() const override {
    // Called with the pool quiesced, but take each leaf lock anyway: it is
    // uncontended there, costs nothing on the reduce path, and keeps the
    // compile-time discipline exception-free.
    for (const auto& slot : slots_) {
      util::LockGuard guard(slot.lock);
      if (slot.inter.count != 0 || slot.inter.weight_sum != 0.0) return true;
    }
    return false;
  }

 private:
  const StrategyContext context_;
  std::vector<LockedSlot> slots_;
};

// -- Morsel (thread-local pre-aggregation) -----------------------------------

/// One lock-protected global partition (the morsel spill/overflow target).
/// Level-0 leaf lock, like LockedSlot.
struct GlobalPartition {
  mutable util::Mutex lock;
  Intermediate inter PAPAYA_GUARDED_BY(lock);
};

class MorselStrategy final : public AggregationStrategy {
 public:
  explicit MorselStrategy(const StrategyContext& context)
      : context_(context),
        locals_(normalized(context.num_workers)),
        scratch_(locals_.size()),
        folds_since_spill_(locals_.size(), 0),
        globals_(normalized(context.num_partitions)) {
    // Thread-local accumulators are admitted against the byte budget; the
    // rest of the pool overflows into the locked global partitions (the
    // Leis-style pressure valve for our group-count-1 aggregate).
    const std::size_t per_local = context_.model_size * sizeof(float);
    max_locals_ =
        per_local == 0
            ? locals_.size()
            : std::min(locals_.size(),
                       context_.tuning.morsel_local_budget_bytes / per_local);
  }

  AggStrategy kind() const override { return AggStrategy::kMorsel; }

  void fold_run(std::size_t worker,
                std::span<const QueuedUpdate> run) override {
    const std::size_t w = worker % locals_.size();
    std::size_t folded = 0;
    for (const QueuedUpdate& queued : run) {
      const auto view = UpdateView::parse(queued.bytes, context_.model_size);
      if (!view) {
        if (context_.stats) context_.stats->on_dropped(1);
        continue;
      }
      if (w < max_locals_) {
        fold_local(w, *view, queued.weight);
      } else {
        fold_global(w, *view, queued.weight);
      }
      ++folded;
    }
    if (folded > 0 && context_.stats) context_.stats->on_folded(folded);
  }

  void merge_and_reset(AggReduced& out) override {
    // Global partitions first (partition order), then worker locals (worker
    // order): a fixed merge order, independent of which path each update
    // took.  Untouched accumulators are skipped so they cannot perturb the
    // sign of exact-zero sums contributed by another strategy.
    for (auto& global : globals_) {
      util::LockGuard guard(global.lock);
      merge_one(global.inter, out);
    }
    for (auto& local : locals_) merge_one(local, out);
  }

  bool touched() const override {
    for (const auto& g : globals_) {
      util::LockGuard guard(g.lock);
      if (g.inter.count != 0 || g.inter.weight_sum != 0.0) return true;
    }
    // Locals are worker-private by construction (one per worker index); the
    // quiesce handshake orders these reads after every fold.
    for (const auto& l : locals_) {
      if (l.count != 0 || l.weight_sum != 0.0) return true;
    }
    return false;
  }

 private:
  void merge_one(Intermediate& inter, AggReduced& out) {
    if (inter.count == 0 && inter.weight_sum == 0.0) return;
    for (std::size_t i = 0; i < context_.model_size; ++i) {
      out.mean_delta[i] += inter.weighted_delta[i];
    }
    out.weight_sum += inter.weight_sum;
    out.count += inter.count;
    inter.weighted_delta.assign(context_.model_size, 0.0f);
    inter.weight_sum = 0.0;
    inter.count = 0;
  }

  /// Zero-copy fold straight from the wire bytes (the morsel fast path); the
  /// clipped variant must materialize the delta first because the clip is a
  /// whole-vector rescale.  `w` only picks the caller's scratch buffer.
  void fold_into(std::size_t w, Intermediate& inter, const UpdateView& view,
                 double weight) {
    if (inter.weighted_delta.empty()) {
      inter.weighted_delta.assign(context_.model_size, 0.0f);
    }
    if (context_.clip_norm > 0.0f) {
      std::vector<float>& scratch = scratch_[w];
      scratch.resize(context_.model_size);
      view.copy_to(scratch);
      ml::clip_norm(scratch, context_.clip_norm);
      fold_span(inter.weighted_delta, scratch, weight);
    } else {
      const float w = static_cast<float>(weight);
      float* acc = inter.weighted_delta.data();
      for (std::size_t i = 0; i < view.count; ++i) acc[i] += w * view.at(i);
    }
    inter.weight_sum += weight;
    ++inter.count;
  }

  void fold_local(std::size_t w, const UpdateView& view, double weight) {
    fold_into(w, locals_[w], view, weight);
    if (context_.tuning.morsel_spill_every > 0 &&
        ++folds_since_spill_[w] >= context_.tuning.morsel_spill_every) {
      folds_since_spill_[w] = 0;
      spill_local(w);
    }
  }

  /// Flush a worker's local into its global partition under that partition's
  /// lock.  Exact: moves an already-formed partial sum, performs no extra
  /// per-update arithmetic.
  void spill_local(std::size_t w) {
    Intermediate& local = locals_[w];
    if (local.count == 0 && local.weight_sum == 0.0) return;
    GlobalPartition& partition = globals_[w % globals_.size()];
    const bool contended = partition.lock.lock_reporting_contention();
    if (context_.stats) context_.stats->on_lock(contended);
    util::LockGuard guard(partition.lock, std::adopt_lock);
    Intermediate& global = partition.inter;
    if (global.weighted_delta.empty()) {
      global.weighted_delta.assign(context_.model_size, 0.0f);
    }
    for (std::size_t i = 0; i < context_.model_size; ++i) {
      global.weighted_delta[i] += local.weighted_delta[i];
    }
    global.weight_sum += local.weight_sum;
    global.count += local.count;
    local.weighted_delta.assign(context_.model_size, 0.0f);
    local.weight_sum = 0.0;
    local.count = 0;
    if (context_.stats) context_.stats->on_spill();
  }

  /// Overflow path for workers beyond the local-buffer budget: fold into
  /// the shared partition under its lock, like the locked baseline.
  void fold_global(std::size_t w, const UpdateView& view, double weight) {
    GlobalPartition& partition = globals_[w % globals_.size()];
    const bool contended = partition.lock.lock_reporting_contention();
    if (context_.stats) context_.stats->on_lock(contended);
    util::LockGuard guard(partition.lock, std::adopt_lock);
    fold_into(w, partition.inter, view, weight);
  }

  const StrategyContext context_;
  std::vector<Intermediate> locals_;          ///< one per worker, lock-free
  std::vector<std::vector<float>> scratch_;   ///< per-worker clip buffers
  std::vector<std::size_t> folds_since_spill_;
  std::size_t max_locals_ = 0;
  std::vector<GlobalPartition> globals_;  ///< spill/overflow partitions
};

// -- Striped (atomic fold for small updates) ---------------------------------

class StripedStrategy final : public AggregationStrategy {
 public:
  explicit StripedStrategy(const StrategyContext& context)
      : context_(context), scratch_(normalized(context.num_workers)) {}

  AggStrategy kind() const override { return AggStrategy::kStriped; }

  void fold_run(std::size_t worker,
                std::span<const QueuedUpdate> run) override {
    if (run.empty()) return;
    ensure_accumulator();
    std::size_t folded = 0;
    for (const QueuedUpdate& queued : run) {
      const auto view = UpdateView::parse(queued.bytes, context_.model_size);
      if (!view) {
        if (context_.stats) context_.stats->on_dropped(1);
        continue;
      }
      fold_one(worker, *view, queued.weight);
      ++folded;
    }
    if (folded > 0 && context_.stats) context_.stats->on_folded(folded);
  }

  void merge_and_reset(AggReduced& out) override {
    if (acc_) {
      for (std::size_t i = 0; i < context_.model_size; ++i) {
        out.mean_delta[i] += acc_[i].load(std::memory_order_relaxed);
        acc_[i].store(0.0f, std::memory_order_relaxed);
      }
    }
    out.weight_sum += weight_sum_.load(std::memory_order_relaxed);
    out.count += count_.load(std::memory_order_relaxed);
    weight_sum_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

  bool touched() const override {
    return count_.load(std::memory_order_relaxed) != 0 ||
           weight_sum_.load(std::memory_order_relaxed) != 0.0;
  }

 private:
  /// Elements a worker's starting offset advances per worker index: one
  /// 64-byte cache line of floats, so concurrent folds do not march down
  /// the accumulator in lockstep on the same lines.
  static constexpr std::size_t kStripeFloats = 16;

  void ensure_accumulator() {
    std::call_once(init_, [this] {
      acc_ = std::make_unique<std::atomic<float>[]>(context_.model_size);
      for (std::size_t i = 0; i < context_.model_size; ++i) {
        acc_[i].store(0.0f, std::memory_order_relaxed);
      }
    });
  }

  void atomic_add(std::atomic<float>& slot, float v) {
    // fetch_add on atomic<float> is a CAS loop on most targets — acceptable
    // because the picker only routes small updates here, where it is still
    // cheaper than a per-update mutex round-trip.
    slot.fetch_add(v, std::memory_order_relaxed);
  }

  void fold_one(std::size_t worker, const UpdateView& view, double weight) {
    const float w = static_cast<float>(weight);
    // Worker 0 starts at element 0, so a single-worker pool folds in the
    // same element order as the locked baseline (bit-identity).
    const std::size_t start =
        context_.model_size == 0
            ? 0
            : (worker * kStripeFloats) % context_.model_size;
    if (context_.clip_norm > 0.0f) {
      std::vector<float>& scratch = scratch_[worker % scratch_.size()];
      scratch.resize(context_.model_size);
      view.copy_to(scratch);
      ml::clip_norm(scratch, context_.clip_norm);
      for (std::size_t k = start; k < view.count; ++k) {
        atomic_add(acc_[k], w * scratch[k]);
      }
      for (std::size_t k = 0; k < start; ++k) {
        atomic_add(acc_[k], w * scratch[k]);
      }
    } else {
      for (std::size_t k = start; k < view.count; ++k) {
        atomic_add(acc_[k], w * view.at(k));
      }
      for (std::size_t k = 0; k < start; ++k) {
        atomic_add(acc_[k], w * view.at(k));
      }
    }
    // No atomic<double>::fetch_add pre-C++20-TS on all targets; CAS-add.
    double seen = weight_sum_.load(std::memory_order_relaxed);
    while (!weight_sum_.compare_exchange_weak(seen, seen + weight,
                                              std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  const StrategyContext context_;
  std::once_flag init_;
  std::unique_ptr<std::atomic<float>[]> acc_;  ///< lazily allocated
  std::vector<std::vector<float>> scratch_;    ///< per-worker clip buffers
  std::atomic<double> weight_sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace

std::unique_ptr<AggregationStrategy> make_fold_strategy(
    AggStrategy kind, const StrategyContext& context) {
  switch (kind) {
    case AggStrategy::kLocked:
      return std::make_unique<LockedStrategy>(context);
    case AggStrategy::kMorsel:
      return std::make_unique<MorselStrategy>(context);
    case AggStrategy::kStriped:
      return std::make_unique<StripedStrategy>(context);
    case AggStrategy::kAuto:
      break;
  }
  throw std::invalid_argument(
      "make_fold_strategy: not a concrete fold strategy");
}

AggStrategy decide_strategy(const AggStatsSnapshot& window,
                            AggStrategy current, const AggTuning& tuning,
                            std::size_t num_workers) {
  if (window.enqueued == 0) return current;  // no signal yet: keep folding
  if (num_workers <= 1) {
    // No contention to avoid: the striped backend's per-element atomics are
    // pure overhead, and morsel's lock-free thread-local fold beats the
    // locked baseline on every update shape.
    return AggStrategy::kMorsel;
  }
  constexpr double kWireHeaderBytes = 32.0;  // UpdateView header
  const double avg = window.avg_update_bytes();
  const double payload = avg > kWireHeaderBytes ? avg - kWireHeaderBytes : avg;
  if (payload <= static_cast<double>(tuning.small_update_payload_bytes)) {
    return AggStrategy::kStriped;
  }
  return AggStrategy::kMorsel;
}

}  // namespace papaya::fl
