#include "fl/secure_buffer.hpp"

#include <stdexcept>

namespace papaya::fl {

namespace {

/// Initial messages per epoch: the goal plus headroom for contributions
/// that arrive after the goal is hit (they are rejected but must not starve
/// the next epoch's handshakes mid-buffer).
std::size_t messages_per_epoch(std::size_t goal) { return 2 * goal + 4; }

}  // namespace

SecureBufferManager::SecureBufferManager(std::size_t model_size,
                                         std::size_t goal, std::uint64_t seed,
                                         std::size_t batch_size,
                                         AggStrategy strategy)
    : model_size_(model_size),
      goal_(goal),
      seed_(seed),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      strategy_(valid_agg_strategy(strategy) ? strategy : AggStrategy::kAuto),
      platform_(seed ^ 0x5ec9ULL),
      binary_measurement_(
          crypto::Sha256::hash(std::string("papaya-tsa-trusted-binary-v1"))) {
  if (goal == 0) throw std::invalid_argument("SecureBufferManager: goal 0");
  binary_leaf_ = log_.append(binary_measurement_);
  // Per-component budget: sqrt(max examples) * per-component delta bound,
  // aggregated over one buffer.  8.0 is generous for clipped LM deltas.
  fixed_point_ = secagg::FixedPointParams::for_budget(8.0, goal);
  util::LockGuard lock(mutex_);
  rotate_epoch();
}

void SecureBufferManager::rotate_epoch() {
  ++epoch_;
  tsa_ = std::make_unique<secagg::TrustedSecureAggregator>(
      crypto::DhParams::simulation256(),
      secagg::SecAggParams{model_size_, goal_}, messages_per_epoch(goal_),
      platform_, binary_measurement_, seed_ ^ (epoch_ * 0x9e37ULL));
  if (batch_size_ > 1) {
    batched_session_ = std::make_unique<secagg::BatchedSecureAggregationSession>(
        *tsa_, model_size_, goal_);
    session_.reset();
  } else {
    session_ = std::make_unique<secagg::SecureAggregationSession>(
        *tsa_, model_size_, goal_);
    batched_session_.reset();
  }
  pending_.clear();
  pending_weights_.clear();
  next_message_ = 0;
  accepted_ = 0;
  weight_sum_ = 0.0;
}

std::optional<SecureUploadConfig> SecureBufferManager::next_upload_config() {
  util::LockGuard lock(mutex_);
  if (next_message_ >= tsa_->initial_messages().size()) return std::nullopt;
  SecureUploadConfig config;
  config.epoch = epoch_;
  config.initial_message = tsa_->initial_messages()[next_message_++];
  ++configs_handed_;
  config.log_proof = log_.prove_inclusion(binary_leaf_);
  config.expectations.expected_params_hash =
      secagg::SecAggParams{model_size_, goal_}.hash(
          crypto::DhParams::simulation256());
  config.expectations.log_snapshot = log_.snapshot();
  config.fixed_point = fixed_point_;
  return config;
}

std::optional<SecureReport> SecureBufferManager::prepare_report(
    const secagg::SimulatedEnclavePlatform& platform,
    const SecureUploadConfig& config, std::uint64_t client_id,
    std::uint64_t initial_version, std::size_t num_examples, double weight,
    std::span<const float> delta, std::uint64_t client_seed) {
  // Client-side example weighting: scale before masking.
  std::vector<float> scaled(delta.begin(), delta.end());
  for (auto& v : scaled) v = static_cast<float>(v * weight);

  secagg::SecAggClient client(crypto::DhParams::simulation256(),
                              config.fixed_point, client_seed);
  auto contribution = client.prepare_contribution(
      platform, config.expectations, config.initial_message, config.log_proof,
      scaled);
  if (!contribution) return std::nullopt;

  SecureReport report;
  report.epoch = config.epoch;
  report.client_id = client_id;
  report.initial_version = initial_version;
  report.num_examples = num_examples;
  report.contribution = std::move(*contribution);
  return report;
}

SecureSubmitOutcome SecureBufferManager::submit(const SecureReport& report,
                                                double weight) {
  util::LockGuard lock(mutex_);
  ++submitted_total_;
  if (report.epoch != epoch_) {
    ++wrong_epoch_total_;
    return SecureSubmitOutcome::kWrongEpoch;
  }
  if (batch_size_ <= 1) {
    const secagg::TsaAccept verdict = session_->accept(report.contribution);
    if (verdict != secagg::TsaAccept::kAccepted) {
      ++rejected_total_;
      return SecureSubmitOutcome::kTsaRejected;
    }
    ++accepted_;
    ++accepted_total_;
    weight_sum_ += weight;
    return SecureSubmitOutcome::kAccepted;
  }
  // Batched mode: buffer, and flush when the strategy's threshold is
  // reached or when the flush could complete the aggregation goal.  The
  // goal condition makes forward progress independent of the threshold: the
  // epoch finalizes after the same accepted contribution as per-update mode
  // would, and the aggregate is bit-identical at any flush point.
  pending_.push_back(report.contribution);
  pending_weights_.push_back(weight);
  if (pending_.size() >= flush_threshold() ||
      accepted_ + pending_.size() >= goal_) {
    flush_pending();
  }
  return SecureSubmitOutcome::kBuffered;
}

std::size_t SecureBufferManager::flush_threshold() const {
  if (batch_size_ <= 1) return 1;  // sequential session: per-update verdicts
  switch (strategy_) {
    case AggStrategy::kLocked:
      return 1;  // conservative baseline: surface TSA verdicts per submit
    case AggStrategy::kMorsel:
      return goal_;  // maximal deferral: one boundary crossing per buffer
    case AggStrategy::kAuto:
    case AggStrategy::kStriped:
      break;
  }
  return batch_size_;  // the configured batch, as before the strategy layer
}

void SecureBufferManager::flush_pending() {
  if (pending_.empty()) return;
  const std::vector<secagg::TsaAccept> verdicts =
      batched_session_->accept_batch(pending_);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i] == secagg::TsaAccept::kAccepted) {
      ++accepted_;
      ++accepted_total_;
      weight_sum_ += pending_weights_[i];
    } else {
      ++rejected_unclaimed_;
      ++rejected_total_;
    }
  }
  pending_.clear();
  pending_weights_.clear();
}

std::size_t SecureBufferManager::take_rejected() {
  util::LockGuard lock(mutex_);
  const std::size_t out = rejected_unclaimed_;
  rejected_unclaimed_ = 0;
  return out;
}

std::optional<std::vector<float>> SecureBufferManager::finalize_mean() {
  util::LockGuard lock(mutex_);
  if (batch_size_ > 1) flush_pending();
  const auto decoded = batch_size_ > 1
                           ? batched_session_->finalize_decoded(fixed_point_)
                           : session_->finalize_decoded(fixed_point_);
  if (!decoded) return std::nullopt;
  std::vector<float> mean = *decoded;
  if (weight_sum_ > 0.0) {
    const auto inv = static_cast<float>(1.0 / weight_sum_);
    for (auto& v : mean) v *= inv;
  }
  ++epochs_released_;
  rotate_epoch();
  return mean;
}

SecureBufferManager::Accounting SecureBufferManager::accounting() const {
  util::LockGuard lock(mutex_);
  Accounting out;
  out.submitted = submitted_total_;
  out.accepted = accepted_total_;
  out.rejected = rejected_total_;
  out.wrong_epoch = wrong_epoch_total_;
  out.pending = pending_.size();
  out.pending_weight_slots = pending_weights_.size();
  out.configs_handed = configs_handed_;
  out.epochs_released = epochs_released_;
  out.epoch = epoch_;
  out.accepted_this_epoch = accepted_;
  out.weight_sum_this_epoch = weight_sum_;
  return out;
}

}  // namespace papaya::fl
