#include "fl/sharded_agg.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::fl {

ShardedAggregator::ShardedAggregator(const Config& config)
    : model_size_(config.model_size),
      ring_(config.num_shards, config.vnodes_per_shard) {
  if (config.model_size == 0) {
    throw std::invalid_argument("ShardedAggregator: model_size must be > 0");
  }
  const std::size_t threads =
      config.threads_per_shard == 0 ? 1 : config.threads_per_shard;
  const std::size_t intermediates = config.intermediates_per_shard == 0
                                        ? threads
                                        : config.intermediates_per_shard;
  if (!valid_agg_strategy(config.strategy)) {
    throw std::invalid_argument("ShardedAggregator: unknown strategy");
  }
  shards_.reserve(ring_.num_shards());
  for (std::size_t s = 0; s < ring_.num_shards(); ++s) {
    shards_.push_back(std::make_unique<ParallelAggregator>(
        model_size_, threads, intermediates, config.clip_norm,
        config.drain_batch, config.strategy, config.tuning));
  }
}

void ShardedAggregator::force_strategy(AggStrategy strategy) {
  for (auto& shard : shards_) shard->force_strategy(strategy);
}

AggStatsSnapshot ShardedAggregator::stats_snapshot() const {
  AggStatsSnapshot total;
  for (const auto& shard : shards_) {
    const AggStatsSnapshot s = shard->stats_snapshot();
    total.enqueued += s.enqueued;
    total.enqueued_bytes += s.enqueued_bytes;
    total.folded += s.folded;
    total.dropped += s.dropped;
    total.lock_acquires += s.lock_acquires;
    total.lock_waits += s.lock_waits;
    total.spills += s.spills;
    total.max_queue_depth = std::max(total.max_queue_depth, s.max_queue_depth);
    total.reduces += s.reduces;
  }
  return total;
}

void ShardedAggregator::enqueue(std::uint64_t stream_key,
                                util::Bytes serialized_update, double weight) {
  shards_[ring_.shard_for(stream_key)]->enqueue(std::move(serialized_update),
                                                weight);
}

void ShardedAggregator::drain() {
  for (auto& shard : shards_) shard->drain();
}

ParallelAggregator::Reduced ShardedAggregator::reduce_and_reset() {
  ParallelAggregator::Reduced out;
  out.mean_delta.assign(model_size_, 0.0f);
  for (auto& shard : shards_) {
    // Raw weighted sums, so the mean is formed exactly once below — summing
    // already-normalized shard means would weight shards, not updates.
    ParallelAggregator::Reduced part = shard->reduce_and_reset_sums();
    for (std::size_t i = 0; i < model_size_; ++i) {
      out.mean_delta[i] += part.mean_delta[i];
    }
    out.weight_sum += part.weight_sum;
    out.count += part.count;
  }
  if (out.weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / out.weight_sum);
    for (auto& v : out.mean_delta) v *= inv;
  }
  return out;
}

std::size_t ShardedAggregator::queued_or_inflight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->queued_or_inflight();
  return total;
}

}  // namespace papaya::fl
