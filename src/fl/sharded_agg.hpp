#pragma once
// Sharded server-side aggregation (Sec. 6.3, scaled out).
//
// A single ParallelAggregator scales until its one queue mutex and one
// reduce loop saturate.  ShardedAggregator scales past that by consistent-
// hashing client update *streams* (keyed by client id) onto N independent
// ParallelAggregator shards — each with its own queue, worker pool, and
// intermediate aggregates — exactly the hardware-proportional layout
// Sec. 6.3 sketches for hashed intermediates, lifted one level up so whole
// worker pools, not just intermediate slots, multiply.
//
// Placement goes through a ConsistentHashRing so (1) a stream's updates
// always land on the same shard (per-stream FIFO order is preserved), and
// (2) resharding moves only ~1/(N+1) of the streams.  reduce_and_reset()
// performs the cross-shard reduce: each shard contributes its raw weighted
// sum, and the weighted mean is computed once over the global weight, so the
// result is the same set of folds a single aggregator would have performed.

#include <cstdint>
#include <memory>
#include <vector>

#include "fl/parallel_agg.hpp"
#include "fl/shard_ring.hpp"
#include "util/bytes.hpp"

namespace papaya::fl {

// Lock hierarchy (util/sync.hpp): the ShardedAggregator holds no lock of its
// own — shards are fixed at construction and routing is a pure consistent
// hash — so every synchronization need delegates to the per-shard
// ParallelAggregator (queue_mutex_, level 1) and its strategy leaf locks.
class ShardedAggregator {
 public:
  struct Config {
    std::size_t model_size = 0;
    /// Independent ParallelAggregator shards (0 normalized to 1).
    std::size_t num_shards = 1;
    /// Worker threads per shard (the Sec. 6.3 pool).
    std::size_t threads_per_shard = 1;
    /// Intermediate partial sums per shard; 0 means one per worker.
    std::size_t intermediates_per_shard = 0;
    /// Ring virtual nodes per shard (placement evenness knob).
    std::size_t vnodes_per_shard = 64;
    /// Per-update L2 clip applied by every shard (0 disables).
    float clip_norm = 0.0f;
    /// Queued updates a shard worker pops per wakeup (0 normalized to 1):
    /// TaskConfig::aggregation_batch_size, amortizing queue and
    /// intermediate lock traffic without changing the folds.
    std::size_t drain_batch = 1;
    /// Fold backend every shard's pool uses (TaskConfig::
    /// aggregation_strategy).  kLocked by default so direct constructions
    /// keep the pre-strategy behaviour; kAuto enables the per-shard
    /// adaptive picker.
    AggStrategy strategy = AggStrategy::kLocked;
    /// Strategy-layer tuning (shared by all shards).
    AggTuning tuning;
  };

  explicit ShardedAggregator(const Config& config);

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Route one serialized update to the shard owning `stream_key`'s arc of
  /// the ring.  Updates from the same stream always hit the same shard.
  void enqueue(std::uint64_t stream_key, util::Bytes serialized_update,
               double weight);

  /// Block until every shard's queue is drained and folded.
  void drain();

  /// Cross-shard reduce: drain + reduce every shard, combine the raw
  /// weighted sums, then normalize once by the global weight.  Safe against
  /// concurrent enqueue() (each shard's reduce quiesces its own pool; a
  /// racing update lands in that shard's next buffer).
  ParallelAggregator::Reduced reduce_and_reset();

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_for(std::uint64_t stream_key) const {
    return ring_.shard_for(stream_key);
  }
  const ConsistentHashRing& ring() const { return ring_; }

  /// Updates not yet folded, summed over shards (point-in-time snapshot).
  std::size_t queued_or_inflight() const;

  /// Switch every shard's fold backend mid-stream (kAuto re-enables the
  /// adaptive picker).  Exact: already-folded updates merge from the old
  /// backend's accumulators at the next reduce.
  void force_strategy(AggStrategy strategy);

  /// The concrete backend one shard's pool is folding with right now.
  AggStrategy shard_active_strategy(std::size_t shard) const {
    return shards_[shard]->active_strategy();
  }

  /// Hot-path counters summed over shards (max_queue_depth is the max).
  AggStatsSnapshot stats_snapshot() const;

  /// One shard's counters (test hook: the FSM harness asserts per-shard
  /// update conservation — enqueued == folded, dropped == 0 — after a
  /// quiesce drain, not just the cross-shard sum).
  AggStatsSnapshot shard_stats(std::size_t shard) const {
    return shards_[shard]->stats_snapshot();
  }

 private:
  std::size_t model_size_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<ParallelAggregator>> shards_;
};

}  // namespace papaya::fl
