#include "fl/parallel_agg.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::fl {

std::size_t ParallelAggregator::strategy_index(AggStrategy s) {
  switch (s) {
    case AggStrategy::kLocked:
      return 0;
    case AggStrategy::kMorsel:
      return 1;
    case AggStrategy::kStriped:
      return 2;
    case AggStrategy::kAuto:
      break;
  }
  // kAuto resolves to the locked baseline until the first stats window.
  return 0;
}

ParallelAggregator::ParallelAggregator(std::size_t model_size,
                                       std::size_t num_threads,
                                       std::size_t num_intermediates,
                                       float clip_norm,
                                       std::size_t drain_batch,
                                       AggStrategy strategy,
                                       const AggTuning& tuning)
    : model_size_(model_size),
      tuning_(tuning),
      configured_(strategy),
      active_(strategy_index(strategy)) {
  if (model_size == 0) {
    throw std::invalid_argument("ParallelAggregator: model_size must be > 0");
  }
  if (!valid_agg_strategy(strategy)) {
    throw std::invalid_argument("ParallelAggregator: unknown strategy");
  }
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  StrategyContext context;
  context.model_size = model_size_;
  context.num_workers = n;
  context.num_partitions = num_intermediates == 0 ? 1 : num_intermediates;
  context.clip_norm = clip_norm;
  context.tuning = tuning_;
  context.stats = &stats_;
  // All three backends live for the pool's lifetime so mid-stream switches
  // never migrate accumulator state; the locked baseline pre-allocates its
  // intermediates (as the pre-strategy pool did), the others are lazy.
  strategies_[0] = make_fold_strategy(AggStrategy::kLocked, context);
  strategies_[1] = make_fold_strategy(AggStrategy::kMorsel, context);
  strategies_[2] = make_fold_strategy(AggStrategy::kStriped, context);
  drain_batch_ = drain_batch == 0 ? 1 : drain_batch;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelAggregator::~ParallelAggregator() {
  {
    util::LockGuard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ParallelAggregator::enqueue(util::Bytes serialized_update, double weight) {
  const std::size_t bytes = serialized_update.size();
  {
    util::LockGuard lock(queue_mutex_);
    queue_.push_back(QueuedUpdate{std::move(serialized_update), weight});
    // Recorded under the queue lock so a worker that observes the queued
    // update also observes its stats: the adaptive picker then always sees
    // a non-empty window before the first fold, making kAuto's strategy
    // choice deterministic for single-worker pools (no update ever folds
    // under the startup backend by racing the counter).
    stats_.on_enqueue(bytes, queue_.size());
  }
  queue_cv_.notify_one();
}

void ParallelAggregator::force_strategy(AggStrategy strategy) {
  if (!valid_agg_strategy(strategy)) {
    throw std::invalid_argument("ParallelAggregator: unknown strategy");
  }
  configured_.store(strategy, std::memory_order_relaxed);
  if (strategy != AggStrategy::kAuto) {
    active_.store(strategy_index(strategy), std::memory_order_relaxed);
  }
}

AggStrategy ParallelAggregator::active_strategy() const {
  return strategies_[active_.load(std::memory_order_relaxed)]->kind();
}

void ParallelAggregator::worker_loop(std::size_t worker_index) {
  std::vector<QueuedUpdate> run;
  run.reserve(drain_batch_);
  for (;;) {
    // Drain up to drain_batch_ queued updates in one queue-lock acquisition
    // (TaskConfig::aggregation_batch_size).  The run is folded in FIFO order
    // by one worker, so batching changes only lock traffic, not which folds
    // happen or their per-accumulator order.
    run.clear();
    {
      util::LockGuard lock(queue_mutex_);
      queue_cv_.wait(queue_mutex_, lock, [this] {
        queue_mutex_.assert_held();  // TSA: predicate runs under the wait lock
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping
      const std::size_t take = std::min(drain_batch_, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        run.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      inflight_ += take;
    }

    // Adaptive re-decision per drained run (Snippet-2 discipline): a cheap
    // relaxed read of the stats window; forced modes skip the picker.  The
    // worker folds this whole run under whichever backend it loads here —
    // a concurrent switch affects later runs, and the reduce merges every
    // touched backend, so no update is lost across a switch.
    if (configured_.load(std::memory_order_relaxed) == AggStrategy::kAuto) {
      const std::size_t current = active_.load(std::memory_order_relaxed);
      const AggStrategy next = decide_strategy(
          stats_.windowed(), strategies_[current]->kind(), tuning_,
          workers_.size());
      if (strategy_index(next) != current) {
        active_.store(strategy_index(next), std::memory_order_relaxed);
      }
    }
    strategies_[active_.load(std::memory_order_relaxed)]->fold_run(
        worker_index, run);

    {
      util::LockGuard lock(queue_mutex_);
      inflight_ -= run.size();
    }
    drained_cv_.notify_all();
  }
}

void ParallelAggregator::drain() {
  util::LockGuard lock(queue_mutex_);
  drained_cv_.wait(queue_mutex_, lock, [this] {
    queue_mutex_.assert_held();
    return queue_.empty() && inflight_ == 0;
  });
}

ParallelAggregator::Reduced ParallelAggregator::reduce_and_reset_sums() {
  // Quiesce the pool before touching the accumulators.  The drained
  // predicate and the pause flag are evaluated/set under one queue_mutex_
  // critical section: everything enqueued before this call is folded, and
  // workers cannot pick up anything enqueued after, so a racing enqueue
  // lands intact in the *next* buffer instead of being folded into an
  // accumulator that this reduce already summed-and-reset.  The same
  // handshake is the happens-before edge that makes the strategies' plain
  // thread-local state safe to merge here.
  {
    util::LockGuard lock(queue_mutex_);
    drained_cv_.wait(queue_mutex_, lock, [this] {
      queue_mutex_.assert_held();
      return queue_.empty() && inflight_ == 0;
    });
    paused_ = true;
  }
  Reduced out;
  out.mean_delta.assign(model_size_, 0.0f);
  // Fixed merge order (locked, morsel, striped), untouched backends
  // skipped: a buffer folded under one strategy reduces bit-identically to
  // a pool that only ever had that strategy, and a mid-stream switch merges
  // each update from exactly the accumulator it was folded into.
  for (auto& strategy : strategies_) {
    if (strategy->touched()) strategy->merge_and_reset(out);
  }
  stats_.on_reduce();
  stats_.advance_window();
  {
    util::LockGuard lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();  // wake workers for anything enqueued mid-reduce
  return out;
}

ParallelAggregator::Reduced ParallelAggregator::reduce_and_reset() {
  Reduced out = reduce_and_reset_sums();
  if (out.weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / out.weight_sum);
    for (auto& v : out.mean_delta) v *= inv;
  }
  return out;
}

std::size_t ParallelAggregator::queued_or_inflight() const {
  util::LockGuard lock(queue_mutex_);
  return queue_.size() + inflight_;
}

}  // namespace papaya::fl
