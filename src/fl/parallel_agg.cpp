#include "fl/parallel_agg.hpp"

#include <algorithm>
#include <stdexcept>

#include "fl/model_update.hpp"
#include "ml/math.hpp"

namespace papaya::fl {

ParallelAggregator::ParallelAggregator(std::size_t model_size,
                                       std::size_t num_threads,
                                       std::size_t num_intermediates,
                                       float clip_norm,
                                       std::size_t drain_batch)
    : model_size_(model_size),
      clip_norm_(clip_norm),
      drain_batch_(drain_batch == 0 ? 1 : drain_batch),
      intermediates_(num_intermediates == 0 ? 1 : num_intermediates),
      intermediate_locks_(intermediates_.size()) {
  if (model_size == 0) {
    throw std::invalid_argument("ParallelAggregator: model_size must be > 0");
  }
  for (auto& inter : intermediates_) {
    inter.weighted_delta.assign(model_size_, 0.0f);
  }
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelAggregator::~ParallelAggregator() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ParallelAggregator::enqueue(util::Bytes serialized_update, double weight) {
  {
    std::lock_guard lock(queue_mutex_);
    queue_.emplace_back(std::move(serialized_update), weight);
  }
  queue_cv_.notify_one();
}

void ParallelAggregator::worker_loop(std::size_t worker_index) {
  // Each worker owns a fixed intermediate aggregate (Sec. 6.3's
  // lock-contention trick).  The paper hashes the aggregating thread's id;
  // hashing std::thread::id made workers collide onto one slot in practice,
  // so the pool indexes workers instead — same idea, deterministic spread.
  const std::size_t slot =
      intermediate_slot(worker_index, intermediates_.size());

  std::vector<std::pair<util::Bytes, double>> run;
  run.reserve(drain_batch_);
  for (;;) {
    // Drain up to drain_batch_ queued updates in one queue-lock acquisition
    // (TaskConfig::aggregation_batch_size).  The run is folded in FIFO order
    // into this worker's own slot, so batching changes only lock traffic,
    // not which folds happen or their per-slot order.
    run.clear();
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping
      const std::size_t take = std::min(drain_batch_, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        run.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      inflight_ += take;
    }

    // Deserialize and clip outside any lock; a malformed update must not
    // poison the aggregate, so it simply drops out of the run.
    std::vector<std::pair<ModelUpdate, double>> folds;
    folds.reserve(run.size());
    for (auto& [bytes, weight] : run) {
      ModelUpdate update = ModelUpdate::deserialize(bytes);
      if (update.delta.size() != model_size_) continue;
      if (clip_norm_ > 0.0f) ml::clip_norm(update.delta, clip_norm_);
      folds.emplace_back(std::move(update), weight);
    }
    if (!folds.empty()) {
      std::lock_guard inter_lock(intermediate_locks_[slot]);
      Intermediate& inter = intermediates_[slot];
      for (const auto& [update, weight] : folds) {
        const float w = static_cast<float>(weight);
        for (std::size_t i = 0; i < model_size_; ++i) {
          inter.weighted_delta[i] += w * update.delta[i];
        }
        inter.weight_sum += weight;
        ++inter.count;
      }
    }
    {
      std::lock_guard lock(queue_mutex_);
      inflight_ -= run.size();
    }
    drained_cv_.notify_all();
  }
}

void ParallelAggregator::drain() {
  std::unique_lock lock(queue_mutex_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

ParallelAggregator::Reduced ParallelAggregator::reduce_and_reset_sums() {
  // Quiesce the pool before touching the intermediates.  The drained
  // predicate and the pause flag are evaluated/set under one queue_mutex_
  // critical section: everything enqueued before this call is folded, and
  // workers cannot pick up anything enqueued after, so a racing enqueue
  // lands intact in the *next* buffer instead of being folded into an
  // intermediate that this reduce already summed-and-reset (the old code
  // silently lost such updates).
  {
    std::unique_lock lock(queue_mutex_);
    drained_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
    paused_ = true;
  }
  Reduced out;
  out.mean_delta.assign(model_size_, 0.0f);
  for (std::size_t s = 0; s < intermediates_.size(); ++s) {
    std::lock_guard lock(intermediate_locks_[s]);
    Intermediate& inter = intermediates_[s];
    for (std::size_t i = 0; i < model_size_; ++i) {
      out.mean_delta[i] += inter.weighted_delta[i];
    }
    out.weight_sum += inter.weight_sum;
    out.count += inter.count;
    inter.weighted_delta.assign(model_size_, 0.0f);
    inter.weight_sum = 0.0;
    inter.count = 0;
  }
  {
    std::lock_guard lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();  // wake workers for anything enqueued mid-reduce
  return out;
}

ParallelAggregator::Reduced ParallelAggregator::reduce_and_reset() {
  Reduced out = reduce_and_reset_sums();
  if (out.weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / out.weight_sum);
    for (auto& v : out.mean_delta) v *= inv;
  }
  return out;
}

std::size_t ParallelAggregator::queued_or_inflight() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size() + inflight_;
}

}  // namespace papaya::fl
