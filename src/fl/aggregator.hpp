#pragma once
// The Aggregator server component (Secs. 4, 6.3, App. E).
//
// Persistent and stateful: tasks are assigned to it by the Coordinator and
// stay for the life of the task (apart from failures).  For each task it
//  - serves the current model to joining clients,
//  - buffers client updates (through the sharded parallel aggregation
//    pipeline of Sec. 6.3: TaskConfig::aggregator_shards consistent-hashed
//    worker pools per task) until the aggregation goal is reached,
//  - performs the server optimizer step (FedAdam) and bumps the version,
//  - enforces max concurrency, client timeouts, staleness aborts (App. E.1,
//    E.2), and the SyncFL round/over-selection semantics (App. E.3),
//  - tracks client demand and reports it for the Coordinator's consolidated
//    view (Sec. 6.2).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fl/model_update.hpp"
#include "fl/sharded_agg.hpp"
#include "fl/secure_buffer.hpp"
#include "fl/task.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"

namespace papaya::fl {

/// Why a client's participation ended, from the Aggregator's perspective.
enum class ReportOutcome {
  kAccepted,              ///< update buffered (counts toward the goal)
  kDiscardedOverSelection,///< SyncFL: round already closed; update discarded
  kDiscardedStale,        ///< AsyncFL: staleness above the configured max
  kRejectedUnknown,       ///< client not in the active set (aborted/expired)
  kRejectedTimeout,       ///< report arrived after the client's deadline
};

struct JoinResult {
  bool accepted = false;
  std::uint64_t model_version = 0;
};

struct ReportResult {
  ReportOutcome outcome = ReportOutcome::kRejectedUnknown;
  /// True when this report completed an aggregation goal and the server
  /// model was updated.
  bool server_stepped = false;
  /// Clients aborted as a consequence (SyncFL: over-selected still-running
  /// clients at round close; AsyncFL: clients whose staleness bound is now
  /// violated, App. E.2).
  std::vector<std::uint64_t> aborted_clients;
};

/// Aggregate counters for the evaluation section's metrics.
struct TaskStats {
  std::uint64_t updates_received = 0;   ///< "communication trips" (Fig. 3/9)
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_discarded = 0;  ///< over-selection + staleness drops
  std::uint64_t server_steps = 0;
  std::uint64_t clients_aborted = 0;
  std::uint64_t clients_failed = 0;
};

class Aggregator {
 public:
  /// `num_threads` sizes each aggregation shard's worker pool (Sec. 6.3);
  /// the shard count itself is per-task (TaskConfig::aggregator_shards).
  Aggregator(std::string id, std::size_t num_threads = 2);

  const std::string& id() const { return id_; }

  // -- Task lifecycle (Coordinator-driven) ---------------------------------

  void assign_task(const TaskConfig& config, std::vector<float> initial_model,
                   ml::ServerOptimizerConfig server_opt,
                   std::uint64_t initial_version = 0);

  /// Model + version checkpoint, moved when a task is reassigned after an
  /// Aggregator failure (App. E.4).  Optimizer moments are soft state and
  /// are rebuilt on the new Aggregator.
  struct TaskCheckpoint {
    std::vector<float> model;
    std::uint64_t version = 0;
  };
  /// Remove a task and return its checkpoint (for reassignment).
  TaskCheckpoint remove_task(const std::string& task);
  bool has_task(const std::string& task) const;
  std::vector<std::string> task_names() const;

  // -- Client participation protocol (Sec. 6.1) ----------------------------

  /// A selected client checks in; accepted iff the task has positive demand.
  JoinResult client_join(const std::string& task, std::uint64_t client_id,
                         double now);

  /// Download stage: current model parameters.
  const std::vector<float>& model(const std::string& task) const;
  std::uint64_t model_version(const std::string& task) const;

  /// Upload stage: a client reports its (serialized) update.
  ReportResult client_report(const std::string& task,
                             const util::Bytes& serialized_update, double now);

  // -- Secure upload path (Sec. 5; used when TaskConfig::secagg_enabled) ---

  /// Report stage under SecAgg: the server hands the client the upload +
  /// SecAgg configuration for the current masking epoch (Sec. 6.1 stage 3).
  std::optional<SecureUploadConfig> secure_upload_config(
      const std::string& task);

  /// The attestation verifier (vendor collateral) clients check quotes
  /// against.
  const secagg::SimulatedEnclavePlatform& secure_platform(
      const std::string& task) const;

  /// Upload stage under SecAgg: a masked contribution plus public metadata.
  /// Same admission semantics as client_report; the Aggregator never sees
  /// the plaintext update.
  ReportResult client_report_secure(const std::string& task,
                                    const SecureReport& report, double now);

  /// The weight the secure path applies for a client (clients pre-scale
  /// before masking, so it must be computable client-side: example
  /// weighting only).
  double secure_update_weight(const std::string& task,
                              std::size_t num_examples) const;

  /// The client dropped out (device lost eligibility, network, crash).
  void client_failed(const std::string& task, std::uint64_t client_id,
                     double now);

  /// Abort clients whose deadline has passed (server-side timeout sweep).
  std::vector<std::uint64_t> expire_timeouts(const std::string& task,
                                             double now);

  // -- Demand + reporting (Sec. 6.2) ---------------------------------------

  /// Client demand for the task (App. E.3): async demand is
  /// concurrency - active; sync demand is cohort - completed - active,
  /// within the current round.
  std::int64_t client_demand(const std::string& task) const;

  std::size_t active_clients(const std::string& task) const;
  const TaskStats& stats(const std::string& task) const;

  /// Aggregation shards actually instantiated for the task (normalized
  /// TaskConfig::aggregator_shards; tests assert this survives failover).
  std::size_t task_shards(const std::string& task) const;

  /// Fold strategy the task was registered with (validated
  /// TaskConfig::aggregation_strategy; kAuto means per-shard adaptive).
  AggStrategy task_strategy(const std::string& task) const;

  /// Estimated total workload across assigned tasks (for Coordinator
  /// placement decisions).
  double estimated_workload() const;

  /// Monotone sequence number for Coordinator reports (stale-assignment
  /// detection, App. E.4).
  std::uint64_t next_report_sequence() { return ++report_sequence_; }

 private:
  struct ActiveClient {
    std::uint64_t initial_version = 0;
    double deadline = 0.0;
  };

  struct TaskState {
    TaskConfig config;
    std::vector<float> model;
    std::uint64_t version = 0;
    std::unique_ptr<ml::ServerOptimizer> server_opt;
    std::unique_ptr<ShardedAggregator> pipeline;

    std::map<std::uint64_t, ActiveClient> active;
    std::size_t buffered = 0;             ///< updates counted toward the goal
    std::size_t completed_this_round = 0; ///< SyncFL only
    TaskStats stats;
    util::Rng dp_rng{0};                  ///< Gaussian-mechanism noise source
    std::unique_ptr<SecureBufferManager> secure;  ///< when secagg_enabled
  };

  TaskState& state(const std::string& task);
  const TaskState& state(const std::string& task) const;

  /// Perform the server optimizer step from the drained buffer.
  void server_step(TaskState& ts);
  /// Shared tail of both server-step paths: DP noise, optimizer, version.
  void apply_step(TaskState& ts, std::vector<float> mean_delta,
                  std::size_t count);

  /// Post-step abort pass; returns aborted client ids.
  std::vector<std::uint64_t> abort_after_step(TaskState& ts);

  std::string id_;
  std::size_t num_threads_;
  std::map<std::string, TaskState> tasks_;
  std::uint64_t report_sequence_ = 0;
};

}  // namespace papaya::fl
