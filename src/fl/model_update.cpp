#include "fl/model_update.hpp"

#include <cmath>

namespace papaya::fl {

util::Bytes ModelUpdate::serialize() const {
  util::ByteWriter w;
  w.u64(client_id);
  w.u64(initial_version);
  w.u64(num_examples);
  w.floats(delta);
  return std::move(w).take();
}

ModelUpdate ModelUpdate::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  ModelUpdate out;
  out.client_id = r.u64();
  out.initial_version = r.u64();
  out.num_examples = r.u64();
  out.delta = r.floats();
  return out;
}

const char* to_string(StalenessScheme scheme) {
  switch (scheme) {
    case StalenessScheme::kInverseSqrt:
      return "inverse-sqrt";
    case StalenessScheme::kConstant:
      return "constant";
    case StalenessScheme::kInversePoly:
      return "inverse-poly";
    case StalenessScheme::kHinge:
      return "hinge";
  }
  return "?";
}

double staleness_weight(StalenessScheme scheme, std::uint64_t staleness,
                        const StalenessParams& params) {
  const double s = static_cast<double>(staleness);
  switch (scheme) {
    case StalenessScheme::kInverseSqrt:
      return 1.0 / std::sqrt(1.0 + s);
    case StalenessScheme::kConstant:
      return 1.0;
    case StalenessScheme::kInversePoly:
      return std::pow(1.0 + s, -params.exponent);
    case StalenessScheme::kHinge:
      if (staleness <= params.hinge_cutoff) return 1.0;
      return 1.0 / (1.0 + params.hinge_slope *
                              (s - static_cast<double>(params.hinge_cutoff)));
  }
  return 1.0;
}

double staleness_weight(std::uint64_t staleness) {
  return staleness_weight(StalenessScheme::kInverseSqrt, staleness);
}

double update_weight(std::size_t num_examples, std::uint64_t staleness) {
  return std::sqrt(static_cast<double>(num_examples)) *
         staleness_weight(staleness);
}

}  // namespace papaya::fl
