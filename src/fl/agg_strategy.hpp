#pragma once
// Pluggable aggregation strategies for the server-side weighted-sum fold
// (Sec. 6.3, scaled past its fixed topology).
//
// PR 2 froze the hot fold's shape per task: vnode ring -> per-shard queue ->
// per-shard ParallelAggregator pool, each worker folding into a mutex-guarded
// intermediate.  That layout is right for one operating point and wrong for
// others: small updates pay a lock acquisition per fold that costs more than
// the fold itself, and large updates pay a full deserialize-copy before the
// first multiply.  This module rips the fold out of the pool and makes it a
// strategy, after Leis et al.'s morsel-driven aggregation (SIGMOD '14) and
// the adaptive GROUP-BY engines that re-pick their plan from runtime stats:
//
//  - kLocked: the PR-2 baseline, unchanged — deserialize, clip, fold into
//    intermediate `worker % partitions` under that partition's mutex.
//  - kMorsel: thread-local pre-aggregation.  Each worker folds its drained
//    runs ("morsels") into a private accumulator with no lock at all,
//    reading the float payload straight out of the serialized bytes (the
//    wire format is little-endian IEEE-754, so on LE hosts the fold is
//    zero-copy — no ModelUpdate materialization).  Locals spill into
//    mutex-guarded global partitions on memory pressure (the degenerate
//    group-count-1 analogue of Leis's hash-table overflow) or every
//    `morsel_spill_every` folds when configured; everything merges at
//    reduce time.
//  - kStriped: contention-avoiding fold for small updates.  One shared
//    accumulator of relaxed std::atomic<float>, folded element-wise with no
//    mutex; each worker starts at its own cache-line stripe so pools don't
//    march in lockstep on the same line.
//
// A lightweight AggStats block (relaxed atomic counters: update size,
// arrival, queue depth, lock contention, spills) feeds decide_strategy(),
// the adaptive picker used when a task runs `aggregation_strategy = auto`.
// The picker re-decides per drained buffer; switches are exact because the
// pool keeps every strategy's accumulator alive and the reduce merges them
// all — an update folded under strategy A before a switch is merged from
// A's accumulator, never lost or double-counted.
//
// Exactness contract: with a single-worker pool every strategy performs the
// same float operations in the same FIFO order and the reduce normalizes the
// single accumulator identically, so results are bit-identical across
// strategies (tests/agg_strategy_test.cpp pins this).  Multi-worker pools
// are order-nondeterministic under every strategy (as in the PR-2 baseline);
// conservation suites use exact-in-float values there.

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::fl {

/// Which fold backend a task's aggregation pipelines use
/// (TaskConfig::aggregation_strategy).  kAuto lets the AggStats-driven
/// picker re-decide per drained buffer; the rest force one backend.
enum class AggStrategy : std::uint8_t {
  kAuto = 0,
  kLocked = 1,   ///< PR-2 baseline: per-partition mutex-guarded intermediates
  kMorsel = 2,   ///< thread-local pre-aggregation, spill to global partitions
  kStriped = 3,  ///< shared atomic<float> fold, cache-line-striped starts
};

/// Number of forced (non-auto) fold backends.
inline constexpr std::size_t kNumFoldStrategies = 3;

const char* to_string(AggStrategy strategy);
std::optional<AggStrategy> parse_agg_strategy(std::string_view name);
constexpr bool valid_agg_strategy(AggStrategy s) {
  return s <= AggStrategy::kStriped;
}

/// One weighted partial sum (the Sec. 6.3 "intermediate aggregate").
struct Intermediate {
  std::vector<float> weighted_delta;  ///< sum of w_i * delta_i
  double weight_sum = 0.0;
  std::size_t count = 0;
};

/// A reduced aggregation buffer.  `mean_delta` holds the weighted mean after
/// ParallelAggregator::reduce_and_reset(), or the raw weighted sum after
/// reduce_and_reset_sums() (cross-shard combining).
struct AggReduced {
  std::vector<float> mean_delta;
  double weight_sum = 0.0;
  std::size_t count = 0;
};

/// One queued serialized update with its precomputed weight.
struct QueuedUpdate {
  util::Bytes bytes;
  double weight = 0.0;
};

/// Point-in-time copy of the AggStats counters (or a window delta).
struct AggStatsSnapshot {
  std::uint64_t enqueued = 0;        ///< updates pushed into the queue
  std::uint64_t enqueued_bytes = 0;  ///< serialized bytes pushed
  std::uint64_t folded = 0;          ///< updates folded into an accumulator
  std::uint64_t dropped = 0;         ///< malformed updates discarded
  std::uint64_t lock_acquires = 0;   ///< partition-lock acquisitions
  std::uint64_t lock_waits = 0;      ///< acquisitions that found the lock held
  std::uint64_t spills = 0;          ///< morsel local -> global partition flushes
  std::uint64_t max_queue_depth = 0; ///< high-water queue length
  std::uint64_t reduces = 0;         ///< reduce_and_reset calls

  /// Mean serialized update size in the window (0 when nothing arrived).
  double avg_update_bytes() const {
    return enqueued == 0 ? 0.0
                         : static_cast<double>(enqueued_bytes) /
                               static_cast<double>(enqueued);
  }
  /// Fraction of partition-lock acquisitions that hit a held lock.
  double contention() const {
    return lock_acquires == 0 ? 0.0
                              : static_cast<double>(lock_waits) /
                                    static_cast<double>(lock_acquires);
  }
};

/// Cheap relaxed-atomic counter block on the aggregation hot path.  Writers
/// (enqueue, workers, strategies) touch only relaxed atomics; readers take
/// snapshots.  `windowed()` returns the delta since the last
/// `advance_window()` — the adaptive picker re-decides per drained buffer
/// from that window.
class AggStats {
 public:
  void on_enqueue(std::size_t bytes, std::size_t queue_depth) {
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    enqueued_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    std::uint64_t depth = queue_depth;
    std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  void on_folded(std::size_t n) {
    folded_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_dropped(std::size_t n) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_lock(bool contended) {
    lock_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (contended) lock_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_spill() { spills_.fetch_add(1, std::memory_order_relaxed); }
  void on_reduce() { reduces_.fetch_add(1, std::memory_order_relaxed); }

  AggStatsSnapshot snapshot() const {
    AggStatsSnapshot s;
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.enqueued_bytes = enqueued_bytes_.load(std::memory_order_relaxed);
    s.folded = folded_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.lock_acquires = lock_acquires_.load(std::memory_order_relaxed);
    s.lock_waits = lock_waits_.load(std::memory_order_relaxed);
    s.spills = spills_.load(std::memory_order_relaxed);
    s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
    s.reduces = reduces_.load(std::memory_order_relaxed);
    return s;
  }

  /// Counters accumulated since the last advance_window() (max_queue_depth
  /// stays cumulative — it is a high-water mark, not a rate).
  AggStatsSnapshot windowed() const {
    AggStatsSnapshot s = snapshot();
    s.enqueued -= window_enqueued_.load(std::memory_order_relaxed);
    s.enqueued_bytes -= window_enqueued_bytes_.load(std::memory_order_relaxed);
    s.folded -= window_folded_.load(std::memory_order_relaxed);
    s.lock_acquires -= window_lock_acquires_.load(std::memory_order_relaxed);
    s.lock_waits -= window_lock_waits_.load(std::memory_order_relaxed);
    return s;
  }

  /// Start a new decision window (called at each reduce).
  void advance_window() {
    window_enqueued_.store(enqueued_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    window_enqueued_bytes_.store(
        enqueued_bytes_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    window_folded_.store(folded_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    window_lock_acquires_.store(
        lock_acquires_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    window_lock_waits_.store(lock_waits_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> enqueued_bytes_{0};
  std::atomic<std::uint64_t> folded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> lock_acquires_{0};
  std::atomic<std::uint64_t> lock_waits_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> reduces_{0};
  std::atomic<std::uint64_t> window_enqueued_{0};
  std::atomic<std::uint64_t> window_enqueued_bytes_{0};
  std::atomic<std::uint64_t> window_folded_{0};
  std::atomic<std::uint64_t> window_lock_acquires_{0};
  std::atomic<std::uint64_t> window_lock_waits_{0};
};

/// Strategy-layer tuning knobs (defaults match production behaviour; tests
/// shrink them to force the rare paths).
struct AggTuning {
  /// Morsel locals flush into their global partition every this many folds;
  /// 0 = spill only on memory pressure, merge locals at reduce time.
  std::size_t morsel_spill_every = 0;
  /// Total bytes the morsel strategy may spend on thread-local accumulators;
  /// workers beyond the budget fold into the global partitions under locks
  /// (the Leis overflow analogue for our group-count-1 aggregate).
  std::size_t morsel_local_budget_bytes = 8ull << 20;
  /// Serialized payloads at or below this are "small": the picker prefers
  /// the striped atomic fold, whose per-element atomics beat a per-update
  /// lock acquisition only when the update is cheap to fold.
  std::size_t small_update_payload_bytes = 16ull << 10;
};

/// Everything a strategy needs from its owning pool.
struct StrategyContext {
  std::size_t model_size = 0;
  std::size_t num_workers = 1;
  std::size_t num_partitions = 1;  ///< intermediates / global partitions
  float clip_norm = 0.0f;
  AggTuning tuning;
  AggStats* stats = nullptr;  ///< never null in practice (owned by the pool)
};

/// A bounds-checked view over one serialized ModelUpdate's float payload,
/// used by the zero-copy strategies.  The wire format (ModelUpdate::
/// serialize) is: client_id u64 | initial_version u64 | num_examples u64 |
/// count u64 | count * f32, all little-endian.
struct UpdateView {
  const std::uint8_t* payload = nullptr;  ///< count * 4 bytes of LE f32 bits
  std::size_t count = 0;

  /// Parses `bytes`; returns nullopt unless the update is well-formed AND
  /// carries exactly `expect` parameters (malformed updates are dropped, as
  /// in ModelUpdate-based folding).
  static std::optional<UpdateView> parse(const util::Bytes& bytes,
                                         std::size_t expect);

  float at(std::size_t i) const {
    float v;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, payload + 4 * i, 4);
    } else {
      const std::uint8_t* p = payload + 4 * i;
      const std::uint32_t bits =
          static_cast<std::uint32_t>(p[0]) |
          (static_cast<std::uint32_t>(p[1]) << 8) |
          (static_cast<std::uint32_t>(p[2]) << 16) |
          (static_cast<std::uint32_t>(p[3]) << 24);
      std::memcpy(&v, &bits, 4);
    }
    return v;
  }

  /// Decode the whole payload into `out` (out.size() == count).
  void copy_to(std::span<float> out) const;
};

/// One interchangeable fold backend.  fold_run() is called by pool workers
/// with the runs they drain; merge_and_reset() is called with the pool
/// quiesced (no worker mid-fold — the pool's queue-mutex handshake provides
/// the happens-before edge that makes locals and relaxed accumulators safe
/// to read).
class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;
  virtual AggStrategy kind() const = 0;

  /// Fold a drained run in FIFO order.  Malformed updates are dropped and
  /// counted in the pool's AggStats.
  virtual void fold_run(std::size_t worker,
                        std::span<const QueuedUpdate> run) = 0;

  /// Add this strategy's raw weighted sums into `out` (sized model_size,
  /// already initialized) and reset all accumulators.  Requires a quiesced
  /// pool.
  virtual void merge_and_reset(AggReduced& out) = 0;

  /// Whether anything has been folded since the last merge (cheap; used to
  /// skip merging untouched backends so single-strategy runs stay
  /// bit-identical to the pre-strategy fold).
  virtual bool touched() const = 0;
};

std::unique_ptr<AggregationStrategy> make_fold_strategy(
    AggStrategy kind, const StrategyContext& context);

/// The adaptive picker: re-decides the fold backend from a stats window.
/// Decision table (documented in ARCHITECTURE.md):
///
///   | window signal                                     | choice   |
///   |---------------------------------------------------|----------|
///   | no traffic observed yet                           | current  |
///   | single-worker pool (any traffic)                  | kMorsel  |
///   | avg update <= tuning.small_update_payload_bytes   | kStriped |
///   | otherwise (large updates)                         | kMorsel  |
///
/// Small updates folded by several workers are dominated by per-fold lock
/// traffic, which the striped atomic fold removes; large updates are
/// dominated by deserialize+fold bandwidth, which morsel locals fold
/// zero-copy without any lock.  A single-worker pool has no contention to
/// avoid, so per-element atomics are pure overhead there — morsel's
/// lock-free local fold wins every shape.  The locked baseline is the
/// startup state (before the first window has data) and the
/// explicit-forced mode.
AggStrategy decide_strategy(const AggStatsSnapshot& window,
                            AggStrategy current, const AggTuning& tuning,
                            std::size_t num_workers);

}  // namespace papaya::fl
