#pragma once
// Chunked model upload (Sec. 6.1, participation stage 4: "the client uploads
// the model in chunks").
//
// Uploads are split into fixed-size chunks, each carrying (session id,
// chunk index, total count, payload, CRC).  The server side reassembles
// out-of-order chunks and rejects corrupt or inconsistent ones, so a
// transient failure wastes one chunk retransmission rather than the whole
// upload — part of what makes the client protocol resilient to transient
// failures without persistent connections.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::fl {

struct UploadChunk {
  std::uint64_t session_id = 0;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  util::Bytes payload;
  std::uint32_t crc = 0;

  util::Bytes serialize() const;
  static UploadChunk deserialize(const util::Bytes& bytes);
};

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Split a serialized update into chunks of at most `chunk_size` bytes.
std::vector<UploadChunk> chunk_upload(std::uint64_t session_id,
                                      const util::Bytes& serialized_update,
                                      std::size_t chunk_size);

/// Server-side reassembly of one upload session.  Chunks may arrive out of
/// order and may be duplicated; corrupt or inconsistent chunks are rejected.
class ChunkAssembler {
 public:
  enum class Accept {
    kAccepted,
    kDuplicate,
    kCorrupt,        ///< CRC mismatch
    kInconsistent,   ///< wrong session / total mismatch / index out of range
    kComplete,       ///< accepted and the upload is now complete
  };

  explicit ChunkAssembler(std::uint64_t session_id) : session_id_(session_id) {}

  Accept accept(const UploadChunk& chunk);

  bool complete() const { return total_ > 0 && received_ == total_; }

  /// The reassembled payload; nullopt until complete.
  std::optional<util::Bytes> assemble() const;

 private:
  std::uint64_t session_id_;
  std::uint32_t total_ = 0;
  std::size_t received_ = 0;
  std::map<std::uint32_t, util::Bytes> chunks_;
};

}  // namespace papaya::fl
