#pragma once
// Chunked model upload (Sec. 6.1, participation stage 4: "the client uploads
// the model in chunks").
//
// Uploads are split into fixed-size chunks, each carrying (session id,
// chunk index, total count, payload, CRC).  The server side reassembles
// out-of-order chunks and rejects corrupt or inconsistent ones, so a
// transient failure wastes one chunk retransmission rather than the whole
// upload — part of what makes the client protocol resilient to transient
// failures without persistent connections.
//
// Two producer paths exist:
//   - chunk_upload(): materialize the whole serialized update, then split —
//     the sequential client runtime.
//   - ChunkSerializer / stream_update_chunks(): emit each chunk the moment
//     its bytes have been serialized, so the upload of chunk i overlaps the
//     serialization of chunk i+1 (the pipelined client runtime, Sec. 6.1's
//     stage-overlapped participation).  Both paths produce bit-identical
//     chunk streams.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fl/model_update.hpp"
#include "util/bytes.hpp"

namespace papaya::fl {

struct UploadChunk {
  std::uint64_t session_id = 0;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  util::Bytes payload;
  std::uint32_t crc = 0;

  util::Bytes serialize() const;
  static UploadChunk deserialize(const util::Bytes& bytes);
};

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// The CRC a well-formed chunk carries: CRC-32 over the chunk's framing
/// (session id, index, total) and its payload.  Covering the framing means
/// a bit-flip anywhere in the chunk — including the index field — fails
/// the check, so reassembly either produces bit-identical bytes or rejects
/// cleanly; a payload-only CRC would let a corrupted index silently land a
/// valid payload in the wrong slot.
std::uint32_t chunk_crc(const UploadChunk& chunk);

/// Split a serialized update into chunks of at most `chunk_size` bytes.
std::vector<UploadChunk> chunk_upload(std::uint64_t session_id,
                                      const util::Bytes& serialized_update,
                                      std::size_t chunk_size);

/// Number of chunks chunk_upload / ChunkSerializer produce for a payload of
/// `payload_bytes` at the given chunk size (an empty payload still travels
/// as one empty chunk so the server learns the session exists).
std::uint32_t chunk_count(std::uint64_t payload_bytes, std::size_t chunk_size);

/// Exact wire size of ModelUpdate::serialize() for an update with
/// `delta_size` parameters: three u64 header fields, the u64 delta length
/// prefix, then 4 bytes per float.  The pipelined client uses this to plan
/// its chunk schedule before the delta bytes exist.
std::uint64_t serialized_update_bytes(std::size_t delta_size);

/// Streaming chunk producer: the client appends serialized bytes in wire
/// order as they become available, and every chunk whose byte range is
/// complete is emitted immediately — no full-update buffer is ever
/// materialized.  The chunk stream (indices, totals, payload bytes, CRCs) is
/// bit-identical to chunk_upload() over the concatenated bytes.
///
/// The total payload size must be declared up front (the UploadChunk wire
/// format carries the chunk count in every chunk); for model updates it is
/// known before training finishes via serialized_update_bytes().
class ChunkSerializer {
 public:
  ChunkSerializer(std::uint64_t session_id, std::uint64_t total_payload_bytes,
                  std::size_t chunk_size);

  /// Append the next `bytes` of the serialized payload, in order.  Throws
  /// std::invalid_argument if this would exceed the declared total.
  void append(std::span<const std::uint8_t> bytes);

  /// All declared bytes appended (every chunk has been emitted).
  bool finished() const { return appended_ == total_bytes_; }

  std::uint32_t total_chunks() const { return total_chunks_; }
  std::uint32_t chunks_emitted() const { return emitted_; }
  std::uint64_t bytes_appended() const { return appended_; }

  /// Chunks whose bytes are complete, in index order.
  bool has_ready() const { return !ready_.empty(); }
  UploadChunk pop_ready();

 private:
  void emit(util::Bytes payload);

  std::uint64_t session_id_;
  std::uint64_t total_bytes_;
  std::size_t chunk_size_;
  std::uint32_t total_chunks_;
  std::uint64_t appended_ = 0;
  std::uint32_t emitted_ = 0;
  util::Bytes pending_;             ///< bytes of the chunk in progress
  std::deque<UploadChunk> ready_;
};

/// Serialize `update` incrementally (header first, then the delta in blocks
/// of `block_floats` parameters) through a ChunkSerializer, invoking `sink`
/// for each chunk as soon as its bytes are complete.  The byte stream is
/// identical to ModelUpdate::serialize(), so the receiving ChunkAssembler
/// reassembles exactly the bytes the sequential path would have uploaded.
/// Returns the total payload bytes streamed.
std::uint64_t stream_update_chunks(
    std::uint64_t session_id, const ModelUpdate& update, std::size_t chunk_size,
    std::size_t block_floats, const std::function<void(UploadChunk)>& sink);

/// Server-side reassembly of one upload session.  Chunks may arrive out of
/// order and may be duplicated; corrupt or inconsistent chunks are rejected.
class ChunkAssembler {
 public:
  enum class Accept {
    kAccepted,
    kDuplicate,
    kCorrupt,        ///< CRC mismatch
    kInconsistent,   ///< wrong session / total mismatch / index out of range
    kComplete,       ///< accepted and the upload is now complete
  };

  explicit ChunkAssembler(std::uint64_t session_id) : session_id_(session_id) {}

  Accept accept(const UploadChunk& chunk);

  bool complete() const { return total_ > 0 && received_ == total_; }

  /// The reassembled payload; nullopt until complete.
  std::optional<util::Bytes> assemble() const;

 private:
  std::uint64_t session_id_;
  std::uint32_t total_ = 0;
  std::size_t received_ = 0;
  std::map<std::uint32_t, util::Bytes> chunks_;
};

}  // namespace papaya::fl
