#include "fl/shard_ring.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace papaya::fl {

ConsistentHashRing::ConsistentHashRing(std::size_t num_shards,
                                       std::size_t vnodes_per_shard)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  const std::size_t vnodes = vnodes_per_shard == 0 ? 1 : vnodes_per_shard;
  ring_.reserve(num_shards_ * vnodes);
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // A vnode's ring point depends only on its own (shard, vnode) pair, so
      // adding shard N+1 inserts new points without moving existing ones —
      // that is what bounds placement churn to ~1/(N+1).  The extra salted
      // hash round domain-separates points from stream-key hashes: without
      // it, small integer stream keys (client ids 0..vnodes-1) hash exactly
      // onto shard 0's vnode points and all pin to shard 0.
      const std::uint64_t point = util::splitmix64_hash(
          util::splitmix64_hash((static_cast<std::uint64_t>(shard) << 24) | v) ^
          0x5ead0f1e1d0a11cULL);
      ring_.emplace_back(point, static_cast<std::uint32_t>(shard));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ConsistentHashRing::shard_for(std::uint64_t stream_key) const {
  if (num_shards_ == 1) return 0;
  const std::uint64_t h = util::splitmix64_hash(stream_key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& entry, std::uint64_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

}  // namespace papaya::fl
