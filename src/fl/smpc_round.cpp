#include "fl/smpc_round.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace papaya::fl {

namespace {

smpc::SmpcConfig to_smpc_config(const SmpcSyncRound::Config& config) {
  smpc::SmpcConfig c;
  c.vector_length = config.model_size;
  c.threshold = config.threshold;
  return c;
}

}  // namespace

SmpcSyncRound::SmpcSyncRound(Config config)
    : config_(config), server_(to_smpc_config(config)) {
  if (config_.model_size == 0 || config_.cohort_size == 0) {
    throw std::invalid_argument("SmpcSyncRound: zero model or cohort size");
  }
  if (config_.threshold == 0 || config_.threshold > config_.cohort_size) {
    throw std::invalid_argument("SmpcSyncRound: bad threshold");
  }

  // Cohort formation (the synchronous-SecAgg requirement): every member's
  // keys and shares are exchanged before any update can flow.
  clients_.reserve(config_.cohort_size);
  for (std::size_t i = 0; i < config_.cohort_size; ++i) {
    util::ByteWriter w;
    w.u64(config_.seed);
    w.u64(static_cast<std::uint64_t>(i + 1));
    clients_.emplace_back(to_smpc_config(config_),
                          static_cast<std::uint32_t>(i + 1), w.data());
    server_.register_advertisement(clients_.back().advertise_keys());
  }
  const auto cohort = server_.cohort_broadcast();
  for (auto& client : clients_) {
    server_.submit_shares(client.share_keys(cohort));
  }
  for (auto& client : clients_) {
    client.receive_shares(server_.inbox_for(client.id()));
  }
}

void SmpcSyncRound::submit(std::size_t member, std::span<const float> delta,
                           double weight) {
  if (finalized_) {
    throw std::logic_error("SmpcSyncRound: round already finalized");
  }
  if (member >= clients_.size()) {
    throw std::invalid_argument("SmpcSyncRound: unknown cohort member");
  }
  if (delta.size() != config_.model_size) {
    throw std::invalid_argument("SmpcSyncRound: wrong delta size");
  }
  if (weight <= 0.0) {
    throw std::invalid_argument("SmpcSyncRound: weight must be positive");
  }
  if (weights_.count(member) != 0) {
    throw std::invalid_argument("SmpcSyncRound: duplicate submission");
  }

  // Client-side weighting: scale before encoding (the server cannot rescale
  // a masked update), then mask and upload.
  std::vector<float> scaled(delta.begin(), delta.end());
  for (float& v : scaled) v = static_cast<float>(v * weight);
  const secagg::GroupVec encoded =
      secagg::encode(scaled, config_.fixed_point);
  server_.submit_masked_input(clients_[member].id(),
                              clients_[member].masked_input(encoded));
  weights_[member] = weight;
}

SmpcSyncRound::RoundResult SmpcSyncRound::finalize() {
  if (finalized_) {
    throw std::logic_error("SmpcSyncRound: round already finalized");
  }
  finalized_ = true;

  const std::set<std::uint32_t> survivors = server_.survivors();
  const std::set<std::uint32_t> dropouts = server_.dropouts();
  for (auto& client : clients_) {
    if (survivors.count(client.id()) == 0) continue;
    server_.submit_unmask_response(client.unmask(survivors, dropouts));
  }

  const secagg::GroupVec aggregate = server_.aggregate();  // throws below t

  RoundResult result;
  result.contributions = survivors.size();
  for (const auto& [member, weight] : weights_) result.weight_sum += weight;
  result.mean_delta = secagg::decode(aggregate, config_.fixed_point);
  if (result.weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / result.weight_sum);
    for (float& v : result.mean_delta) v *= inv;
  }
  result.traffic = server_.traffic();
  return result;
}

}  // namespace papaya::fl
