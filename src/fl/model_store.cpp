#include "fl/model_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::fl {

ModelStore::ModelStore(Config config) : config_(config) {
  if (config_.write_bandwidth_bytes_per_s <= 0.0) {
    throw std::invalid_argument("ModelStore: bandwidth must be positive");
  }
  if (config_.base_latency_s < 0.0) {
    throw std::invalid_argument("ModelStore: negative base latency");
  }
}

double ModelStore::publish(std::uint64_t version, std::size_t model_bytes,
                           double now) {
  util::LockGuard lock(mutex_);
  if (version <= last_version_) {
    throw std::invalid_argument("ModelStore: versions must increase");
  }
  last_version_ = version;

  const double start = std::max(now, busy_until_);
  stats_.stall_s += start - now;
  const double write_time =
      config_.base_latency_s +
      static_cast<double>(model_bytes) / config_.write_bandwidth_bytes_per_s;
  busy_until_ = start + write_time;

  ++stats_.writes;
  stats_.bytes_written += model_bytes;
  history_.push_back(Completed{version, busy_until_});
  return busy_until_;
}

std::uint64_t ModelStore::visible_version(double now) const {
  util::LockGuard lock(mutex_);
  std::uint64_t visible = 0;
  for (const Completed& c : history_) {
    if (c.visible_at <= now) visible = c.version;
  }
  return visible;
}

double ModelStore::min_publish_interval_s(std::size_t model_bytes) const {
  return config_.base_latency_s +
         static_cast<double>(model_bytes) / config_.write_bandwidth_bytes_per_s;
}

}  // namespace papaya::fl
