#include "fl/chunking.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace papaya::fl {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

namespace {

/// Raw CRC accumulation (pre/post-inversion handled by the callers).
std::uint32_t crc32_accumulate(std::uint32_t crc,
                               std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_accumulate(0xffffffffu, data) ^ 0xffffffffu;
}

std::uint32_t chunk_crc(const UploadChunk& chunk) {
  util::ByteWriter header;
  header.u64(chunk.session_id);
  header.u32(chunk.index);
  header.u32(chunk.total);
  std::uint32_t crc = crc32_accumulate(0xffffffffu, header.data());
  crc = crc32_accumulate(crc, chunk.payload);
  return crc ^ 0xffffffffu;
}

util::Bytes UploadChunk::serialize() const {
  util::ByteWriter w;
  w.u64(session_id);
  w.u32(index);
  w.u32(total);
  w.bytes(payload);
  w.u32(crc);
  return std::move(w).take();
}

UploadChunk UploadChunk::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  UploadChunk chunk;
  chunk.session_id = r.u64();
  chunk.index = r.u32();
  chunk.total = r.u32();
  chunk.payload = r.bytes();
  chunk.crc = r.u32();
  return chunk;
}

std::vector<UploadChunk> chunk_upload(std::uint64_t session_id,
                                      const util::Bytes& serialized_update,
                                      std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("chunk_upload: chunk size must be > 0");
  }
  const std::size_t total =
      serialized_update.empty()
          ? 1
          : (serialized_update.size() + chunk_size - 1) / chunk_size;
  std::vector<UploadChunk> chunks;
  chunks.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    UploadChunk chunk;
    chunk.session_id = session_id;
    chunk.index = static_cast<std::uint32_t>(i);
    chunk.total = static_cast<std::uint32_t>(total);
    const std::size_t begin = i * chunk_size;
    const std::size_t end =
        std::min(begin + chunk_size, serialized_update.size());
    chunk.payload.assign(serialized_update.begin() + static_cast<std::ptrdiff_t>(begin),
                         serialized_update.begin() + static_cast<std::ptrdiff_t>(end));
    chunk.crc = chunk_crc(chunk);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

std::uint32_t chunk_count(std::uint64_t payload_bytes, std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("chunk_count: chunk size must be > 0");
  }
  if (payload_bytes == 0) return 1;
  return static_cast<std::uint32_t>((payload_bytes + chunk_size - 1) /
                                    chunk_size);
}

std::uint64_t serialized_update_bytes(std::size_t delta_size) {
  // client_id + initial_version + num_examples + delta length prefix, then
  // one f32 per parameter (ModelUpdate::serialize's wire format).
  return 4 * sizeof(std::uint64_t) +
         static_cast<std::uint64_t>(delta_size) * sizeof(std::uint32_t);
}

ChunkSerializer::ChunkSerializer(std::uint64_t session_id,
                                 std::uint64_t total_payload_bytes,
                                 std::size_t chunk_size)
    : session_id_(session_id),
      total_bytes_(total_payload_bytes),
      chunk_size_(chunk_size),
      total_chunks_(chunk_count(total_payload_bytes, chunk_size)) {
  // An empty payload still travels as one empty chunk (chunk_upload parity).
  if (total_bytes_ == 0) emit({});
}

void ChunkSerializer::emit(util::Bytes payload) {
  UploadChunk chunk;
  chunk.session_id = session_id_;
  chunk.index = emitted_;
  chunk.total = total_chunks_;
  chunk.payload = std::move(payload);
  chunk.crc = chunk_crc(chunk);
  ready_.push_back(std::move(chunk));
  ++emitted_;
}

void ChunkSerializer::append(std::span<const std::uint8_t> bytes) {
  if (appended_ + bytes.size() > total_bytes_) {
    throw std::invalid_argument(
        "ChunkSerializer: appended past the declared payload size");
  }
  appended_ += bytes.size();
  while (!bytes.empty()) {
    const std::size_t want = chunk_size_ - pending_.size();
    const std::size_t take = std::min(want, bytes.size());
    pending_.insert(pending_.end(), bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(take));
    bytes = bytes.subspan(take);
    if (pending_.size() == chunk_size_) {
      emit(std::exchange(pending_, {}));
    }
  }
  // The final chunk may be short: emit it as soon as the last byte lands.
  if (appended_ == total_bytes_ && !pending_.empty()) {
    emit(std::exchange(pending_, {}));
  }
}

UploadChunk ChunkSerializer::pop_ready() {
  if (ready_.empty()) {
    throw std::logic_error("ChunkSerializer: no chunk ready");
  }
  UploadChunk chunk = std::move(ready_.front());
  ready_.pop_front();
  return chunk;
}

std::uint64_t stream_update_chunks(
    std::uint64_t session_id, const ModelUpdate& update, std::size_t chunk_size,
    std::size_t block_floats, const std::function<void(UploadChunk)>& sink) {
  if (block_floats == 0) {
    throw std::invalid_argument("stream_update_chunks: block must be > 0");
  }
  const std::uint64_t total = serialized_update_bytes(update.delta.size());
  ChunkSerializer serializer(session_id, total, chunk_size);
  const auto drain = [&] {
    while (serializer.has_ready()) sink(serializer.pop_ready());
  };

  // Header: identical to the first four u64 writes of
  // ModelUpdate::serialize() (the floats() length prefix included).
  util::ByteWriter header;
  header.u64(update.client_id);
  header.u64(update.initial_version);
  header.u64(update.num_examples);
  header.u64(update.delta.size());
  serializer.append(header.data());
  drain();

  // Delta: serialized block_floats parameters at a time, each block handed
  // to the serializer as soon as its bytes exist.
  for (std::size_t start = 0; start < update.delta.size();
       start += block_floats) {
    const std::size_t end =
        std::min(start + block_floats, update.delta.size());
    util::ByteWriter block;
    for (std::size_t i = start; i < end; ++i) block.f32(update.delta[i]);
    serializer.append(block.data());
    drain();
  }
  drain();
  return total;
}

ChunkAssembler::Accept ChunkAssembler::accept(const UploadChunk& chunk) {
  if (chunk.session_id != session_id_) return Accept::kInconsistent;
  if (chunk.total == 0 || chunk.index >= chunk.total) {
    return Accept::kInconsistent;
  }
  // Verify the CRC before adopting the chunk's claimed total: the CRC
  // covers the framing, so only an authentic chunk may establish (or be
  // checked against) the session's chunk count.  Adopting first would let
  // one corrupt chunk poison the session and reject every good chunk.
  if (chunk_crc(chunk) != chunk.crc) return Accept::kCorrupt;
  if (total_ == 0) {
    total_ = chunk.total;
  } else if (chunk.total != total_) {
    return Accept::kInconsistent;
  }
  if (chunks_.contains(chunk.index)) return Accept::kDuplicate;
  chunks_[chunk.index] = chunk.payload;
  ++received_;
  return complete() ? Accept::kComplete : Accept::kAccepted;
}

std::optional<util::Bytes> ChunkAssembler::assemble() const {
  if (!complete()) return std::nullopt;
  util::Bytes out;
  for (const auto& [index, payload] : chunks_) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

}  // namespace papaya::fl
