#include "fl/chunking.hpp"

#include <array>
#include <stdexcept>

namespace papaya::fl {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

util::Bytes UploadChunk::serialize() const {
  util::ByteWriter w;
  w.u64(session_id);
  w.u32(index);
  w.u32(total);
  w.bytes(payload);
  w.u32(crc);
  return std::move(w).take();
}

UploadChunk UploadChunk::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  UploadChunk chunk;
  chunk.session_id = r.u64();
  chunk.index = r.u32();
  chunk.total = r.u32();
  chunk.payload = r.bytes();
  chunk.crc = r.u32();
  return chunk;
}

std::vector<UploadChunk> chunk_upload(std::uint64_t session_id,
                                      const util::Bytes& serialized_update,
                                      std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("chunk_upload: chunk size must be > 0");
  }
  const std::size_t total =
      serialized_update.empty()
          ? 1
          : (serialized_update.size() + chunk_size - 1) / chunk_size;
  std::vector<UploadChunk> chunks;
  chunks.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    UploadChunk chunk;
    chunk.session_id = session_id;
    chunk.index = static_cast<std::uint32_t>(i);
    chunk.total = static_cast<std::uint32_t>(total);
    const std::size_t begin = i * chunk_size;
    const std::size_t end =
        std::min(begin + chunk_size, serialized_update.size());
    chunk.payload.assign(serialized_update.begin() + static_cast<std::ptrdiff_t>(begin),
                         serialized_update.begin() + static_cast<std::ptrdiff_t>(end));
    chunk.crc = crc32(chunk.payload);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

ChunkAssembler::Accept ChunkAssembler::accept(const UploadChunk& chunk) {
  if (chunk.session_id != session_id_) return Accept::kInconsistent;
  if (chunk.total == 0 || chunk.index >= chunk.total) {
    return Accept::kInconsistent;
  }
  if (total_ == 0) {
    total_ = chunk.total;
  } else if (chunk.total != total_) {
    return Accept::kInconsistent;
  }
  if (crc32(chunk.payload) != chunk.crc) return Accept::kCorrupt;
  if (chunks_.contains(chunk.index)) return Accept::kDuplicate;
  chunks_[chunk.index] = chunk.payload;
  ++received_;
  return complete() ? Accept::kComplete : Accept::kAccepted;
}

std::optional<util::Bytes> ChunkAssembler::assemble() const {
  if (!complete()) return std::nullopt;
  util::Bytes out;
  for (const auto& [index, payload] : chunks_) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

}  // namespace papaya::fl
