#pragma once
// The client runtime (Secs. 4, 6.1, App. E.5).
//
// On-device pieces: the Example Store (local training data behind a
// use/retention policy), the Executor (model-agnostic local training), and
// the eligibility logic — a device participates only when idle, charging,
// and on an unmetered network, and participation history is tracked "to
// enable fair and unbiased client selection".

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fl/model_update.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"

namespace papaya::fl {

/// Instantaneous device conditions checked against the participation policy.
struct DeviceConditions {
  bool idle = true;
  bool charging = true;
  bool unmetered_network = true;
};

/// Training-eligibility policy (Sec. 7.1, following Hard et al. 2019).
struct EligibilityPolicy {
  /// Minimum time between two participations of the same device.
  double min_participation_interval_s = 0.0;

  bool eligible(const DeviceConditions& conditions,
                std::optional<double> last_participation, double now) const {
    if (!conditions.idle || !conditions.charging ||
        !conditions.unmetered_network) {
      return false;
    }
    return !last_participation ||
           now - *last_participation >= min_participation_interval_s;
  }
};

/// Data use and retention policy enforced by the Example Store (App. E.5:
/// the store "collects training data in persistent storage and enforces the
/// data use and retention policy").
struct RetentionPolicy {
  /// Count cap; the oldest examples are evicted first.
  std::size_t max_examples = std::numeric_limits<std::size_t>::max();
  /// Age cap: examples older than this are purged on the next sweep.
  double max_age_s = std::numeric_limits<double>::infinity();
  /// Use cap: an example may contribute to at most this many training
  /// sessions before it is retired (the "data use" half of the policy).
  std::uint64_t max_uses = std::numeric_limits<std::uint64_t>::max();
};

/// The Example Store (App. E.5): local sequences behind a use/retention
/// policy.  Training examples carry an ingestion timestamp and a use count;
/// purge() enforces the policy and is invoked automatically on ingestion
/// and when a training session is recorded.
class ExampleStore {
 public:
  ExampleStore() = default;
  /// Bulk-load a dataset (ingestion time 0) with a simple count cap.
  ExampleStore(ml::ClientDataset dataset, std::size_t max_retained_examples);
  /// Empty store with a full policy; feed it via add_example().
  explicit ExampleStore(RetentionPolicy policy);

  const ml::ClientDataset& dataset() const { return dataset_; }
  std::size_t num_train_examples() const { return dataset_.train.size(); }
  const RetentionPolicy& policy() const { return policy_; }

  /// Ingest one training example collected at time `now`.
  void add_example(ml::Sequence example, double now);

  /// Record that a training session at time `now` consumed the current
  /// training split; examples whose use budget is exhausted are retired.
  void record_training_use(double now);

  /// Enforce the retention policy at time `now` (age, use and count caps).
  /// Returns the number of examples purged.
  std::size_t purge(double now);

 private:
  ml::ClientDataset dataset_;
  RetentionPolicy policy_;
  /// Parallel to dataset_.train: (ingestion time, uses so far).
  std::vector<std::pair<double, std::uint64_t>> train_meta_;
};

/// Local-training hyperparameters (Sec. 7.1: SGD, one epoch, B = 32).
struct TrainerConfig {
  float learning_rate = 0.3f;
  std::size_t batch_size = 32;
  std::size_t epochs = 1;
  float gradient_clip = 5.0f;
  /// Whether to measure train loss before/after (extra forward passes);
  /// simulations switch this off for speed.
  bool compute_losses = true;
};

struct LocalTrainingResult {
  ModelUpdate update;
  double initial_loss = 0.0;
  double final_loss = 0.0;
};

/// The Executor (App. E.5): swaps global parameters into a working model,
/// runs local SGD, emits the weight delta.  One Executor can serve many
/// simulated clients; it is model-architecture-agnostic through the
/// LanguageModel interface (standing in for PyTorch Mobile's interpreter).
class Executor {
 public:
  Executor(std::unique_ptr<ml::LanguageModel> working_model,
           TrainerConfig config);

  /// Run local training from `global_params` (model version `version`) over
  /// the store's training split.
  LocalTrainingResult train(std::span<const float> global_params,
                            std::uint64_t version, std::uint64_t client_id,
                            const ExampleStore& store, util::Rng& rng) const;

  std::size_t model_size() const { return model_->num_params(); }

 private:
  std::unique_ptr<ml::LanguageModel> model_;
  TrainerConfig config_;
};

/// Stage timings for one pipelined client participation (Sec. 6.1).  The
/// sequential runtime charges train + serialize + upload; the pipelined
/// runtime overlaps them, so round latency is dominated by the slowest
/// stage plus the residual tail of the stages after it.
struct PipelineTimings {
  /// Local-training duration.
  double train_s = 0.0;
  /// Per-chunk serialization cost, in chunk order.
  std::vector<double> serialize_chunk_s;
  /// Per-chunk upload cost, in chunk order (same length).
  std::vector<double> upload_chunk_s;

  /// When chunk i's source bytes become final relative to training:
  ///  - kProgressive: the executor finalizes the update tensor range by
  ///    range as training advances, so chunk i may serialize once
  ///    (i+1)/n of training has elapsed (the last chunk always waits for
  ///    training to finish — its bytes depend on the final weights).
  ///  - kPostTraining: nothing serializes before training completes; only
  ///    serialization and upload overlap.
  enum class Readiness { kProgressive, kPostTraining };
  Readiness readiness = Readiness::kProgressive;
};

/// The pipelined participation state machine: train ∥ serialize ∥ chunked
/// upload.  Chunk i uploads as soon as (a) its bytes are serialized and
/// (b) the uplink has finished chunk i-1; chunk i serializes as soon as
/// (a) its source data is ready and (b) the serializer has finished chunk
/// i-1.  Driven event by event so a discrete-event simulator (or a test)
/// can observe every stage transition; all times are relative to
/// participation start (t = 0).
///
/// With train time T, serialize times σ_i and upload times u_i this yields
/// the recurrences
///   s_i = max(ready_i, s_{i-1}) + σ_i      (serialize completion)
///   f_i = max(s_i,     f_{i-1}) + u_i      (upload completion)
/// so total latency ≈ max(T, σ_0 + u_0 tail) + residual upload — the
/// slowest stage dominates instead of the stage sum (ISSUE: Fig. 2 / 7).
class PipelinedClientSession {
 public:
  enum class Stage { kTraining, kSerializing, kUploading, kDone };

  struct Event {
    enum class Kind { kTrainingComplete, kChunkSerialized, kChunkUploaded };
    Kind kind = Kind::kTrainingComplete;
    std::uint32_t chunk = 0;  ///< chunk index (serialize/upload events)
    double at = 0.0;          ///< completion time, seconds from start
  };

  explicit PipelinedClientSession(PipelineTimings timings);

  std::size_t num_chunks() const { return timings_.upload_chunk_s.size(); }
  bool done() const;
  /// Time of the last processed event (0 before any event).
  double now() const { return now_; }

  /// The next stage-completion event, without processing it.
  Event peek() const;
  /// Process and return the next event.  Event times are non-decreasing.
  Event advance();
  /// Run the machine to completion; returns the total participation
  /// latency (the last chunk's upload completion).
  double finish_time();

  /// Per-chunk upload-arrival times under the overlapped schedule, in chunk
  /// order (replays a copy; this session's event cursor is untouched).  The
  /// last entry equals finish_time(), which is the instant the closed-loop
  /// simulator schedules the report's arrival; the per-chunk entries are
  /// the observable arrival schedule for analysis/tests (the simulator does
  /// not yet schedule chunk-level server events).
  std::vector<double> upload_completion_times() const;

  bool training_complete() const { return train_done_; }
  std::size_t chunks_serialized() const { return serialized_; }
  std::size_t chunks_uploaded() const { return uploaded_; }
  /// Coarse protocol stage (Sec. 6.1) for session bookkeeping: the
  /// earliest stage still incomplete.  Later stages may already be active
  /// underneath it — that is the point of the pipeline.
  Stage stage() const;

  /// What the same timings cost without any overlap (the sequential
  /// runtime's charge: train + Σ serialize + Σ upload).
  static double sequential_latency(const PipelineTimings& timings);

 private:
  double ready_at(std::size_t chunk) const;
  /// Completion time of the next serialize / upload candidate (infinity
  /// when that pipeline lane has no admissible work).
  double next_serialize_at() const;
  double next_upload_at() const;

  PipelineTimings timings_;
  double now_ = 0.0;
  bool train_done_ = false;
  std::size_t serialized_ = 0;
  std::size_t uploaded_ = 0;
  /// Completion times of processed serialize events (upload lane reads
  /// them; sized num_chunks, filled in order).
  std::vector<double> serialize_done_;
  double last_upload_done_ = 0.0;
};

/// Per-device runtime state: conditions, history, capabilities.
class ClientRuntime {
 public:
  ClientRuntime(std::uint64_t client_id, ExampleStore store);

  std::uint64_t client_id() const { return client_id_; }
  const ExampleStore& store() const { return store_; }

  DeviceConditions& conditions() { return conditions_; }
  const DeviceConditions& conditions() const { return conditions_; }

  bool check_in_allowed(const EligibilityPolicy& policy, double now) const {
    return policy.eligible(conditions_, last_participation_, now);
  }
  void record_participation(double now) { last_participation_ = now; }
  std::optional<double> last_participation() const {
    return last_participation_;
  }

 private:
  std::uint64_t client_id_;
  ExampleStore store_;
  DeviceConditions conditions_;
  std::optional<double> last_participation_;
};

}  // namespace papaya::fl
