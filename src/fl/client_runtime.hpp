#pragma once
// The client runtime (Secs. 4, 6.1, App. E.5).
//
// On-device pieces: the Example Store (local training data behind a
// use/retention policy), the Executor (model-agnostic local training), and
// the eligibility logic — a device participates only when idle, charging,
// and on an unmetered network, and participation history is tracked "to
// enable fair and unbiased client selection".

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fl/model_update.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"

namespace papaya::fl {

/// Instantaneous device conditions checked against the participation policy.
struct DeviceConditions {
  bool idle = true;
  bool charging = true;
  bool unmetered_network = true;
};

/// Training-eligibility policy (Sec. 7.1, following Hard et al. 2019).
struct EligibilityPolicy {
  /// Minimum time between two participations of the same device.
  double min_participation_interval_s = 0.0;

  bool eligible(const DeviceConditions& conditions,
                std::optional<double> last_participation, double now) const {
    if (!conditions.idle || !conditions.charging ||
        !conditions.unmetered_network) {
      return false;
    }
    return !last_participation ||
           now - *last_participation >= min_participation_interval_s;
  }
};

/// Data use and retention policy enforced by the Example Store (App. E.5:
/// the store "collects training data in persistent storage and enforces the
/// data use and retention policy").
struct RetentionPolicy {
  /// Count cap; the oldest examples are evicted first.
  std::size_t max_examples = std::numeric_limits<std::size_t>::max();
  /// Age cap: examples older than this are purged on the next sweep.
  double max_age_s = std::numeric_limits<double>::infinity();
  /// Use cap: an example may contribute to at most this many training
  /// sessions before it is retired (the "data use" half of the policy).
  std::uint64_t max_uses = std::numeric_limits<std::uint64_t>::max();
};

/// The Example Store (App. E.5): local sequences behind a use/retention
/// policy.  Training examples carry an ingestion timestamp and a use count;
/// purge() enforces the policy and is invoked automatically on ingestion
/// and when a training session is recorded.
class ExampleStore {
 public:
  ExampleStore() = default;
  /// Bulk-load a dataset (ingestion time 0) with a simple count cap.
  ExampleStore(ml::ClientDataset dataset, std::size_t max_retained_examples);
  /// Empty store with a full policy; feed it via add_example().
  explicit ExampleStore(RetentionPolicy policy);

  const ml::ClientDataset& dataset() const { return dataset_; }
  std::size_t num_train_examples() const { return dataset_.train.size(); }
  const RetentionPolicy& policy() const { return policy_; }

  /// Ingest one training example collected at time `now`.
  void add_example(ml::Sequence example, double now);

  /// Record that a training session at time `now` consumed the current
  /// training split; examples whose use budget is exhausted are retired.
  void record_training_use(double now);

  /// Enforce the retention policy at time `now` (age, use and count caps).
  /// Returns the number of examples purged.
  std::size_t purge(double now);

 private:
  ml::ClientDataset dataset_;
  RetentionPolicy policy_;
  /// Parallel to dataset_.train: (ingestion time, uses so far).
  std::vector<std::pair<double, std::uint64_t>> train_meta_;
};

/// Local-training hyperparameters (Sec. 7.1: SGD, one epoch, B = 32).
struct TrainerConfig {
  float learning_rate = 0.3f;
  std::size_t batch_size = 32;
  std::size_t epochs = 1;
  float gradient_clip = 5.0f;
  /// Whether to measure train loss before/after (extra forward passes);
  /// simulations switch this off for speed.
  bool compute_losses = true;
};

struct LocalTrainingResult {
  ModelUpdate update;
  double initial_loss = 0.0;
  double final_loss = 0.0;
};

/// The Executor (App. E.5): swaps global parameters into a working model,
/// runs local SGD, emits the weight delta.  One Executor can serve many
/// simulated clients; it is model-architecture-agnostic through the
/// LanguageModel interface (standing in for PyTorch Mobile's interpreter).
class Executor {
 public:
  Executor(std::unique_ptr<ml::LanguageModel> working_model,
           TrainerConfig config);

  /// Run local training from `global_params` (model version `version`) over
  /// the store's training split.
  LocalTrainingResult train(std::span<const float> global_params,
                            std::uint64_t version, std::uint64_t client_id,
                            const ExampleStore& store, util::Rng& rng) const;

  std::size_t model_size() const { return model_->num_params(); }

 private:
  std::unique_ptr<ml::LanguageModel> model_;
  TrainerConfig config_;
};

/// Per-device runtime state: conditions, history, capabilities.
class ClientRuntime {
 public:
  ClientRuntime(std::uint64_t client_id, ExampleStore store);

  std::uint64_t client_id() const { return client_id_; }
  const ExampleStore& store() const { return store_; }

  DeviceConditions& conditions() { return conditions_; }
  const DeviceConditions& conditions() const { return conditions_; }

  bool check_in_allowed(const EligibilityPolicy& policy, double now) const {
    return policy.eligible(conditions_, last_participation_, now);
  }
  void record_participation(double now) { last_participation_ = now; }
  std::optional<double> last_participation() const {
    return last_participation_;
  }

 private:
  std::uint64_t client_id_;
  ExampleStore store_;
  DeviceConditions conditions_;
  std::optional<double> last_participation_;
};

}  // namespace papaya::fl
