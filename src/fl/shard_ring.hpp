#pragma once
// Consistent-hash ring for aggregation-shard placement (Sec. 6.3).
//
// Client update *streams* (keyed by client id) are hashed onto aggregation
// shards through a ring of virtual nodes, the classic consistent-hashing
// construction: each shard owns `vnodes_per_shard` points on a 64-bit ring,
// and a stream lands on the shard owning the first point at or after the
// stream key's hash.  Virtual nodes keep the per-shard load even, and the
// construction keeps placement *stable*: growing from N to N+1 shards moves
// only ~1/(N+1) of the streams, so warm per-shard state (intermediates,
// queues) survives resharding mostly intact.
//
// The ring is shared by every layer that must agree on stream placement:
// ShardedAggregator routes enqueues with it, and VirtualSessionManager
// stamps each session with the shard its upload stream will hit.

#include <cstdint>
#include <utility>
#include <vector>

namespace papaya::fl {

class ConsistentHashRing {
 public:
  /// `num_shards` == 0 is normalized to 1.  `vnodes_per_shard` trades
  /// placement evenness against ring size; 64 keeps the max/min shard load
  /// ratio under ~1.3 for realistic stream counts.
  explicit ConsistentHashRing(std::size_t num_shards,
                              std::size_t vnodes_per_shard = 64);

  /// The shard owning `stream_key`'s arc of the ring.  Deterministic across
  /// processes and runs (the hash is the seedless util::splitmix64_hash).
  std::size_t shard_for(std::uint64_t stream_key) const;

  std::size_t num_shards() const { return num_shards_; }

 private:
  std::size_t num_shards_;
  /// (ring point, shard) sorted by point; lookups binary-search this.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace papaya::fl
