#include "fl/session.hpp"

namespace papaya::fl {

const char* to_string(SessionStage stage) {
  switch (stage) {
    case SessionStage::kSelected:
      return "selected";
    case SessionStage::kDownloading:
      return "downloading";
    case SessionStage::kTraining:
      return "training";
    case SessionStage::kReporting:
      return "reporting";
    case SessionStage::kUploading:
      return "uploading";
    case SessionStage::kCompleted:
      return "completed";
    case SessionStage::kAborted:
      return "aborted";
  }
  return "?";
}

VirtualSessionManager::VirtualSessionManager()
    : VirtualSessionManager(Options{}) {}

VirtualSessionManager::VirtualSessionManager(Options options,
                                             std::uint64_t seed)
    : options_(options),
      shard_ring_(options.aggregator_shards),
      token_stream_(seed | 1) {}

std::uint64_t VirtualSessionManager::open(std::uint64_t client_id,
                                          double now) {
  util::LockGuard lock(mutex_);
  // SplitMix64 stream: unique, non-sequential tokens.
  for (;;) {
    const std::uint64_t token = token_stream_.next();
    if (token == 0 || sessions_.count(token) != 0) continue;
    SessionInfo info;
    info.token = token;
    info.client_id = client_id;
    info.stage = SessionStage::kSelected;
    // The shard the client's upload stream will hit (same consistent-hash
    // ring as the ShardedAggregator folding that stream).
    info.shard = shard_ring_.shard_for(client_id);
    info.opened_at = now;
    info.last_touched = now;
    sessions_.emplace(token, info);
    return token;
  }
}

VirtualSessionManager::SessionInfo* VirtualSessionManager::live_session(
    std::uint64_t token, double now, SessionOutcome& outcome) {
  const auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    outcome = SessionOutcome::kUnknownToken;
    return nullptr;
  }
  SessionInfo& info = it->second;
  if (is_terminal(info.stage)) {
    outcome = SessionOutcome::kTerminal;
    return nullptr;
  }
  if (now - info.last_touched > options_.session_ttl_s) {
    info.stage = SessionStage::kAborted;
    outcome = SessionOutcome::kExpired;
    return nullptr;
  }
  outcome = SessionOutcome::kOk;
  return &info;
}

SessionOutcome VirtualSessionManager::touch(std::uint64_t token, double now) {
  util::LockGuard lock(mutex_);
  SessionOutcome outcome;
  SessionInfo* info = live_session(token, now, outcome);
  if (info == nullptr) return outcome;
  // A gap longer than 10% of the TTL counts as a resume after a transient
  // failure (diagnostics only; any gap within the TTL is fine).
  if (now - info->last_touched > 0.1 * options_.session_ttl_s) {
    ++info->resumes;
  }
  info->last_touched = now;
  return SessionOutcome::kOk;
}

SessionOutcome VirtualSessionManager::advance(std::uint64_t token,
                                              SessionStage stage, double now) {
  util::LockGuard lock(mutex_);
  SessionOutcome outcome;
  SessionInfo* info = live_session(token, now, outcome);
  if (info == nullptr) return outcome;
  if (is_terminal(stage) || stage <= info->stage) {
    return SessionOutcome::kOutOfOrder;  // terminal moves use complete/abort
  }
  info->stage = stage;
  info->last_touched = now;
  return SessionOutcome::kOk;
}

SessionOutcome VirtualSessionManager::record_chunk(std::uint64_t token,
                                                   double now) {
  util::LockGuard lock(mutex_);
  SessionOutcome outcome;
  SessionInfo* info = live_session(token, now, outcome);
  if (info == nullptr) return outcome;
  // Forward-only, like advance(): chunks never rewind a session, and a
  // session already uploading just accumulates progress.
  if (info->stage < SessionStage::kUploading) {
    info->stage = SessionStage::kUploading;
  }
  ++info->chunks_uploaded;
  info->last_touched = now;
  return SessionOutcome::kOk;
}

SessionOutcome VirtualSessionManager::complete(std::uint64_t token,
                                               double now) {
  util::LockGuard lock(mutex_);
  SessionOutcome outcome;
  SessionInfo* info = live_session(token, now, outcome);
  if (info == nullptr) return outcome;
  info->stage = SessionStage::kCompleted;
  info->last_touched = now;
  return SessionOutcome::kOk;
}

SessionOutcome VirtualSessionManager::abort(std::uint64_t token, double now) {
  util::LockGuard lock(mutex_);
  SessionOutcome outcome;
  SessionInfo* info = live_session(token, now, outcome);
  if (info == nullptr) return outcome;
  info->stage = SessionStage::kAborted;
  info->last_touched = now;
  return SessionOutcome::kOk;
}

std::optional<VirtualSessionManager::SessionInfo>
VirtualSessionManager::lookup(std::uint64_t token) const {
  util::LockGuard lock(mutex_);
  const auto it = sessions_.find(token);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> VirtualSessionManager::expire(double now) {
  util::LockGuard lock(mutex_);
  std::vector<std::uint64_t> aborted_clients;
  for (auto& [token, info] : sessions_) {
    if (is_terminal(info.stage)) continue;
    if (now - info.last_touched > options_.session_ttl_s) {
      info.stage = SessionStage::kAborted;
      aborted_clients.push_back(info.client_id);
    }
  }
  return aborted_clients;
}

std::size_t VirtualSessionManager::prune_terminal(double now,
                                                  double retention_s) {
  util::LockGuard lock(mutex_);
  std::size_t pruned = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (is_terminal(it->second.stage) &&
        now - it->second.last_touched > retention_s) {
      it = sessions_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

std::size_t VirtualSessionManager::active_sessions() const {
  util::LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [token, info] : sessions_) {
    n += !is_terminal(info.stage);
  }
  return n;
}

}  // namespace papaya::fl
