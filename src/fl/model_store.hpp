#pragma once
// Write-bandwidth-limited model store (Sec. 7.3).
//
// The paper: "the frequency of server updates is limited by the system's
// write bandwidth.  Thus, we cannot create a new server model too often.  We
// leave improvements to overcome write bandwidth limitations as future
// work."  This module makes that limit a first-class object: publishing a
// new server model writes `model_bytes` through a fixed-bandwidth channel
// (the CDN/model-distribution store), writes are serialized, and a model
// version only becomes visible to clients when its write completes.
//
// bench_ablation_write_bandwidth uses it to show where the Fig. 10 (bottom)
// server-update rate saturates for small aggregation goals.

#include <cstdint>
#include <limits>
#include <vector>

#include "util/sync.hpp"

namespace papaya::fl {

class ModelStore {
 public:
  struct Config {
    /// Sustained write bandwidth to the store; infinity = unconstrained.
    double write_bandwidth_bytes_per_s =
        std::numeric_limits<double>::infinity();
    /// Fixed per-write overhead (metadata commit, fan-out trigger).
    double base_latency_s = 0.0;
  };

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t bytes_written = 0;
    /// Total time publish requests spent queued behind earlier writes — the
    /// wasted server time when steps outpace the store.
    double stall_s = 0.0;
  };

  explicit ModelStore(Config config);

  /// Request publication of model `version` (strictly increasing) at time
  /// `now`.  The write starts when the previous write has finished and
  /// takes base_latency + bytes/bandwidth.  Returns the time at which the
  /// version becomes visible to clients.
  /// Throws std::invalid_argument on non-increasing versions.
  double publish(std::uint64_t version, std::size_t model_bytes, double now);

  /// The newest version whose write has completed by time `now` (0 if none).
  std::uint64_t visible_version(double now) const;

  /// When the store becomes idle (end of the last scheduled write).
  double busy_until() const {
    util::LockGuard lock(mutex_);
    return busy_until_;
  }

  /// Shortest possible interval between visible versions for a given model
  /// size — the hard ceiling on server-step frequency the paper points at.
  double min_publish_interval_s(std::size_t model_bytes) const;

  /// Point-in-time copy (by value: the store is internally locked, so a
  /// reference into it would race concurrent publishes).
  Stats stats() const {
    util::LockGuard lock(mutex_);
    return stats_;
  }

 private:
  struct Completed {
    std::uint64_t version;
    double visible_at;
  };

  Config config_;  ///< immutable after construction

  /// Independent root lock (see util/sync.hpp): serializes publishes —
  /// which the write-bandwidth model requires anyway — and keeps version
  /// monotonicity checks atomic with the schedule update.
  mutable util::Mutex mutex_;
  double busy_until_ PAPAYA_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t last_version_ PAPAYA_GUARDED_BY(mutex_) = 0;
  std::vector<Completed> history_ PAPAYA_GUARDED_BY(mutex_);
  Stats stats_ PAPAYA_GUARDED_BY(mutex_);
};

}  // namespace papaya::fl
