#pragma once
// SMPC-backed synchronous secure aggregation for SyncFL rounds — the GFL
// configuration PAPAYA's Sec. 8 compares against ("GFL uses SMPC-based
// Synchronous SecAgg").
//
// One SmpcSyncRound drives one cohort through the Bonawitz-style protocol
// (src/smpc) over fixed-point-encoded, client-side-weighted model deltas:
// the server learns only the weighted *sum* of the cohort's updates and the
// public per-client weights, from which it forms the weighted mean.
//
// The constructor runs the AdvertiseKeys and ShareKeys legs for the whole
// cohort up front — the cohort-formation requirement that makes this
// protocol incompatible with asynchronous training (Sec. 5): nobody can be
// admitted after the round starts, and everyone must stay reachable across
// four synchronous legs.  PAPAYA's own secure path is the TSA-based
// SecureBufferManager (secure_buffer.hpp); this class exists so the
// baseline the paper argues against is runnable end to end.
//
// Weighting matches the SecureBufferManager convention: the client
// pre-scales its delta by its weight before encoding (the server cannot
// rescale a masked update) and reports the weight in the clear; the server
// divides the unmasked sum by the sum of reported weights.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "secagg/fixed_point.hpp"
#include "smpc/protocol.hpp"

namespace papaya::fl {

class SmpcSyncRound {
 public:
  struct Config {
    std::size_t model_size = 0;   ///< parameters per update
    std::size_t cohort_size = 0;  ///< n: fixed at round start
    std::size_t threshold = 0;    ///< t: minimum survivors for release
    secagg::FixedPointParams fixed_point;
    std::uint64_t seed = 0;       ///< deterministic client key material
  };

  struct RoundResult {
    std::vector<float> mean_delta;   ///< weighted mean over survivors
    std::size_t contributions = 0;   ///< survivors included in the sum
    double weight_sum = 0.0;
    smpc::SmpcTraffic traffic;
  };

  /// Forms the cohort and runs AdvertiseKeys + ShareKeys for all members.
  /// Throws std::invalid_argument on a malformed config (zero sizes,
  /// threshold > cohort).
  explicit SmpcSyncRound(Config config);

  std::size_t cohort_size() const { return config_.cohort_size; }

  /// Cohort member `member` (0-based) contributes its update.  The delta is
  /// scaled by `weight` client-side, fixed-point encoded, masked, and
  /// submitted.  Throws std::invalid_argument on an unknown member, a wrong
  /// delta size, a non-positive weight, or a duplicate submission.
  void submit(std::size_t member, std::span<const float> delta, double weight);

  /// Members that submitted so far.
  std::size_t submissions() const { return weights_.size(); }

  /// Close the round: members that never submitted are the dropouts, the
  /// survivors answer the unmasking leg, and the server decodes the
  /// weighted mean.  Throws std::runtime_error if fewer than `threshold`
  /// members submitted (the protocol refuses to release, Fig. 15).
  RoundResult finalize();

 private:
  Config config_;
  smpc::SmpcServer server_;
  std::vector<smpc::SmpcClient> clients_;
  std::map<std::size_t, double> weights_;  ///< member -> public weight
  bool finalized_ = false;
};

}  // namespace papaya::fl
