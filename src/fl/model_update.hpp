#pragma once
// Client model updates and their weighting (Sec. 3.1, App. E.2).
//
// A model update is the difference between the locally trained model and the
// model the client downloaded.  Updates are weighted by the number of
// training examples and down-weighted by staleness: w = 1 / sqrt(1 + s),
// where s = version_at_upload - version_at_download.

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::fl {

struct ModelUpdate {
  std::uint64_t client_id = 0;
  /// Server model version the client started training from.
  std::uint64_t initial_version = 0;
  /// Number of local training examples (weighting, Sec. 3.1).
  std::size_t num_examples = 0;
  /// trained_params - initial_params.
  std::vector<float> delta;

  /// Wire format used between client and Aggregator (clients upload the
  /// serialized update in chunks; the Aggregator's queue holds these bytes
  /// until a worker deserializes them, Sec. 6.3).
  util::Bytes serialize() const;
  static ModelUpdate deserialize(const util::Bytes& bytes);
};

/// Staleness down-weighting families.  The paper (App. E.2) uses the
/// inverse-sqrt scheme of Nguyen et al. 2021; the others are the standard
/// alternatives from Xie et al. 2019, implemented for the weighting
/// ablation (bench_ablation_weighting).
enum class StalenessScheme {
  kInverseSqrt,  ///< 1 / sqrt(1 + s) — the paper's production choice
  kConstant,     ///< 1 (no down-weighting)
  kInversePoly,  ///< (1 + s)^-a for a configurable exponent a
  kHinge,        ///< 1 for s <= b, then 1 / (1 + a (s - b))
};

const char* to_string(StalenessScheme scheme);

/// Knobs for the parametric schemes; ignored by kInverseSqrt/kConstant.
struct StalenessParams {
  double exponent = 0.5;          ///< a in kInversePoly
  std::uint64_t hinge_cutoff = 10;///< b in kHinge
  double hinge_slope = 0.2;       ///< a in kHinge
};

/// Weight of an update with staleness `s` under the given scheme.  Always in
/// (0, 1]; equals 1 at s = 0 for every scheme.
double staleness_weight(StalenessScheme scheme, std::uint64_t staleness,
                        const StalenessParams& params = {});

/// Staleness down-weighting from Nguyen et al. 2021 (App. E.2):
/// 1 / sqrt(1 + s), the paper's default scheme.
double staleness_weight(std::uint64_t staleness);

/// Combined FedBuff update weight: example weighting * staleness weighting.
/// Example weighting is sqrt(n) — unbounded linear weighting would let one
/// data-heavy client dominate a small buffer.
double update_weight(std::size_t num_examples, std::uint64_t staleness);

}  // namespace papaya::fl
