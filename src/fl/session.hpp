#pragma once
// Virtual sessions for the client participation protocol (Sec. 6.1).
//
// "Transient client failures do not cause clients to dropout because the
// client protocol is based on virtual sessions instead of persistent
// connections.  ...  All stages happen within a virtual session established
// during selection."
//
// A session is a server-side token-addressed record of where a client is in
// the 4-stage participation protocol (download -> train -> report ->
// upload).  A client that loses connectivity mid-stage simply resumes with
// its token — the session survives as long as it is touched within the TTL.
// Sessions expire (and the client counts as failed) only after sustained
// silence, and stages may only move forward, so a replayed or reordered
// request cannot rewind a session.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fl/shard_ring.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace papaya::fl {

/// The participation stages of Sec. 6.1, in protocol order.
enum class SessionStage {
  kSelected = 0,   ///< accepted by the Aggregator, nothing transferred yet
  kDownloading,    ///< fetching model parameters / code / config
  kTraining,       ///< local training in progress
  kReporting,      ///< reporting status, receiving upload (SecAgg) config
  kUploading,      ///< uploading the (possibly masked) update in chunks
  kCompleted,      ///< terminal: update delivered
  kAborted,        ///< terminal: expired, failed, or server-aborted
};

const char* to_string(SessionStage stage);

/// Outcome of a session operation.
enum class SessionOutcome {
  kOk,
  kUnknownToken,   ///< no such session (never existed or already pruned)
  kExpired,        ///< TTL elapsed; the session was aborted
  kOutOfOrder,     ///< attempted to move backwards or skip a terminal state
  kTerminal,       ///< session already completed/aborted
};

/// Server-side session table for one task.
class VirtualSessionManager {
 public:
  struct Options {
    /// Silence tolerated before a session is declared dead.  The paper's
    /// 4-minute client timeout bounds training; the TTL bounds *protocol*
    /// silence within a stage and across transient disconnects.
    double session_ttl_s = 300.0;

    /// Aggregation shard count of the task this session table serves
    /// (TaskConfig::aggregator_shards).  Sessions are stamped at open with
    /// the shard their client's update stream consistent-hashes to, so the
    /// upload stage can be routed straight to the owning shard's queue.
    std::size_t aggregator_shards = 1;
  };

  struct SessionInfo {
    std::uint64_t token = 0;
    std::uint64_t client_id = 0;
    SessionStage stage = SessionStage::kSelected;
    /// Aggregation shard this client's update stream hashes to (same ring
    /// as ShardedAggregator, so session routing and folding agree).
    std::size_t shard = 0;
    double opened_at = 0.0;
    double last_touched = 0.0;
    std::uint32_t resumes = 0;  ///< touches after a gap (diagnostics)
    /// Upload-stage progress: chunks received so far.  Pipelined clients
    /// stream chunks while still training, so this can grow before the
    /// session ever reports kTraining done.
    std::uint32_t chunks_uploaded = 0;
  };

  VirtualSessionManager();
  explicit VirtualSessionManager(Options options,
                                 std::uint64_t seed = 0x5e5510ULL);

  /// Open a session for a selected client.  Tokens are unique and
  /// unpredictable enough for a simulation (64-bit from a seeded stream).
  std::uint64_t open(std::uint64_t client_id, double now);

  /// Resume/heartbeat: refresh the TTL.  Returns kExpired (and aborts the
  /// session) if the TTL had already lapsed at `now`.
  SessionOutcome touch(std::uint64_t token, double now);

  /// Move the session forward to `stage`.  Forward-only: the target must be
  /// strictly later than the current stage (skipping intermediate stages is
  /// allowed — e.g. a cached model skips kDownloading).  Also refreshes the
  /// TTL on success.
  SessionOutcome advance(std::uint64_t token, SessionStage stage, double now);

  /// Upload progress: one chunk of the client's update arrived.  Counts
  /// the chunk, moves the session forward to kUploading if it was in an
  /// earlier live stage (pipelined clients stream their first chunks while
  /// local training is still running), and refreshes the TTL — a
  /// long-training pipelined client stays alive chunk by chunk where a
  /// silent sequential client would expire.
  SessionOutcome record_chunk(std::uint64_t token, double now);

  /// Terminal transitions.
  SessionOutcome complete(std::uint64_t token, double now);
  SessionOutcome abort(std::uint64_t token, double now);

  std::optional<SessionInfo> lookup(std::uint64_t token) const;

  /// Expire sessions silent for longer than the TTL; returns the client ids
  /// whose sessions were aborted (the Aggregator marks them failed and
  /// refills demand, Sec. 6.2).
  std::vector<std::uint64_t> expire(double now);

  /// Drop terminal sessions older than `retention_s` (table hygiene).
  std::size_t prune_terminal(double now, double retention_s);

  std::size_t active_sessions() const;
  std::size_t total_sessions() const {
    util::LockGuard lock(mutex_);
    return sessions_.size();
  }

 private:
  bool is_terminal(SessionStage stage) const {
    return stage == SessionStage::kCompleted ||
           stage == SessionStage::kAborted;
  }
  /// Returns the live session or sets `outcome` and nullptr.
  SessionInfo* live_session(std::uint64_t token, double now,
                            SessionOutcome& outcome) PAPAYA_REQUIRES(mutex_);

  Options options_;          ///< immutable after construction
  ConsistentHashRing shard_ring_;  ///< immutable after construction

  /// Independent root lock (see util/sync.hpp): one session table serves
  /// every protocol-facing thread of a task, so token draws and stage
  /// transitions serialize here.
  mutable util::Mutex mutex_;
  util::SplitMix64 token_stream_ PAPAYA_GUARDED_BY(mutex_);
  std::map<std::uint64_t, SessionInfo> sessions_ PAPAYA_GUARDED_BY(mutex_);
};

}  // namespace papaya::fl
