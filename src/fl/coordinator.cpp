#include "fl/coordinator.hpp"

#include <limits>
#include <stdexcept>

#include "util/log.hpp"

namespace papaya::fl {

Coordinator::Coordinator(std::uint64_t seed) : rng_(seed ^ 0xc00dULL) {}

void Coordinator::register_aggregator(Aggregator& aggregator, double now) {
  util::LockGuard lock(mutex_);
  aggregators_[aggregator.id()] = {&aggregator, now, 0, true};
  place_orphans();
}

std::size_t Coordinator::place_orphans() {
  std::size_t placed = 0;
  for (auto& [task_name, entry] : tasks_) {
    if (!entry.orphan_checkpoint) continue;
    Aggregator* agg = pick_aggregator();
    if (agg == nullptr) break;
    Aggregator::TaskCheckpoint checkpoint = std::move(*entry.orphan_checkpoint);
    entry.orphan_checkpoint.reset();
    agg->assign_task(entry.config, std::move(checkpoint.model),
                     entry.server_opt, checkpoint.version);
    entry.aggregator_id = agg->id();
    entry.reported_demand = static_cast<std::int64_t>(entry.config.concurrency);
    entry.pending_assignments = 0;
    map_.task_to_aggregator[task_name] = agg->id();
    ++placed;
  }
  if (placed > 0) ++map_.version;
  return placed;
}

Aggregator* Coordinator::pick_aggregator() {
  Aggregator* best = nullptr;
  double best_load = std::numeric_limits<double>::infinity();
  for (auto& [id, entry] : aggregators_) {
    if (!entry.alive) continue;
    const double load = entry.aggregator->estimated_workload();
    if (load < best_load) {
      best_load = load;
      best = entry.aggregator;
    }
  }
  return best;
}

void Coordinator::submit_task(const TaskConfig& config,
                              std::vector<float> initial_model,
                              ml::ServerOptimizerConfig server_opt,
                              std::uint64_t initial_version) {
  util::LockGuard lock(mutex_);
  Aggregator* agg = pick_aggregator();
  if (agg == nullptr) {
    throw std::runtime_error("Coordinator: no live aggregators available");
  }
  TaskConfig placed = config;
  // Normalize the shard count at the placement boundary so every layer
  // below (Aggregator pipelines, failover, recovery) sees the same value.
  if (placed.aggregator_shards == 0) placed.aggregator_shards = 1;
  // Placement is the public registration API: reject a strategy outside the
  // enum outright instead of letting Aggregator::assign_task throw after an
  // owner was already picked.
  if (!valid_agg_strategy(placed.aggregation_strategy)) {
    throw std::invalid_argument(
        "Coordinator: unknown aggregation strategy for task " + config.name);
  }
  agg->assign_task(placed, std::move(initial_model), server_opt,
                   initial_version);
  TaskEntry entry;
  entry.config = placed;
  entry.server_opt = server_opt;
  entry.aggregator_id = agg->id();
  // Until the first report arrives, assume full demand so clients can start
  // joining immediately.
  entry.reported_demand = static_cast<std::int64_t>(config.concurrency);
  tasks_.insert_or_assign(config.name, std::move(entry));
  map_.task_to_aggregator[config.name] = agg->id();
  ++map_.version;
}

void Coordinator::adopt_task(const TaskConfig& config,
                             ml::ServerOptimizerConfig server_opt) {
  util::LockGuard lock(mutex_);
  TaskEntry entry;
  entry.config = config;
  if (entry.config.aggregator_shards == 0) entry.config.aggregator_shards = 1;
  // Adoption is the recovery path (a durable store may predate the strategy
  // enum): clamp garbage to kAuto instead of refusing to recover the task.
  if (!valid_agg_strategy(entry.config.aggregation_strategy)) {
    entry.config.aggregation_strategy = AggStrategy::kAuto;
  }
  entry.server_opt = server_opt;
  entry.reported_demand = 0;  // unknown until the owner's first report
  // aggregator_id stays empty: the task is unowned (and therefore not
  // assignable) until recover_from_aggregator_state() or an owner report
  // names the Aggregator actually running it.
  tasks_.insert_or_assign(config.name, std::move(entry));
}

std::size_t Coordinator::task_shards(const std::string& task) const {
  util::LockGuard lock(mutex_);
  const auto it = tasks_.find(task);
  return it == tasks_.end() ? 0 : it->second.config.aggregator_shards;
}

AggStrategy Coordinator::task_strategy(const std::string& task) const {
  util::LockGuard lock(mutex_);
  const auto it = tasks_.find(task);
  return it == tasks_.end() ? AggStrategy::kAuto
                            : it->second.config.aggregation_strategy;
}

void Coordinator::remove_task(const std::string& task) {
  util::LockGuard lock(mutex_);
  const auto it = tasks_.find(task);
  if (it == tasks_.end()) return;
  const auto agg_it = aggregators_.find(it->second.aggregator_id);
  if (agg_it != aggregators_.end() && agg_it->second.alive &&
      agg_it->second.aggregator->has_task(task)) {
    agg_it->second.aggregator->remove_task(task);
  }
  tasks_.erase(it);
  map_.task_to_aggregator.erase(task);
  ++map_.version;
}

void Coordinator::aggregator_report(const std::string& aggregator_id,
                                    std::uint64_t sequence, double now,
                                    const std::vector<TaskReport>& reports) {
  util::LockGuard lock(mutex_);
  const auto it = aggregators_.find(aggregator_id);
  if (it == aggregators_.end()) return;
  if (sequence <= it->second.last_sequence) return;  // stale report
  it->second.last_sequence = sequence;
  it->second.last_heartbeat = now;
  const bool resurrected = !it->second.alive;
  it->second.alive = true;
  if (resurrected) place_orphans();
  for (const auto& report : reports) {
    const auto task_it = tasks_.find(report.task);
    if (task_it == tasks_.end()) continue;
    if (task_it->second.aggregator_id.empty()) {
      // Adopted task (App. E.4) whose owner was unknown: the first report
      // from an Aggregator actually running it claims ownership, which is
      // what makes the task assignable again.
      if (!it->second.aggregator->has_task(report.task)) continue;
      task_it->second.aggregator_id = aggregator_id;
      map_.task_to_aggregator[report.task] = aggregator_id;
      ++map_.version;
    } else if (task_it->second.aggregator_id != aggregator_id) {
      continue;  // stale: task has since moved to another Aggregator
    }
    task_it->second.reported_demand = report.demand;
    // A fresh report reflects all joins that reached the aggregator, so the
    // pending estimate resets.
    task_it->second.pending_assignments = 0;
  }
}

std::vector<std::string> Coordinator::detect_failures(double now,
                                                      double timeout) {
  util::LockGuard lock(mutex_);
  std::vector<std::string> failed;
  for (auto& [id, entry] : aggregators_) {
    if (entry.alive && now - entry.last_heartbeat > timeout) {
      entry.alive = false;
      failed.push_back(id);
      PAPAYA_LOG(util::LogLevel::kWarning)
          << "aggregator " << id << " missed heartbeats (last at "
          << entry.last_heartbeat << ", now " << now << "); reassigning";
    }
  }
  if (failed.empty()) return failed;

  // Reassign every task owned by a failed aggregator.  Model state comes
  // from the task's checkpoint — simulated by pulling the model out of the
  // failed Aggregator object, standing in for the persistent store.
  for (const auto& failed_id : failed) {
    Aggregator* dead = aggregators_.at(failed_id).aggregator;
    for (auto& [task_name, entry] : tasks_) {
      if (entry.aggregator_id != failed_id) continue;
      Aggregator::TaskCheckpoint checkpoint =
          dead->has_task(task_name)
              ? dead->remove_task(task_name)
              : Aggregator::TaskCheckpoint{
                    std::vector<float>(entry.config.model_size, 0.0f), 0};
      Aggregator* replacement = pick_aggregator();
      if (replacement == nullptr) {
        // Total outage: nowhere to move the task.  Throwing here would
        // abandon the loop mid-reassignment with tasks_ half-updated;
        // instead the task is orphaned — checkpoint held, routing entry
        // dropped — and place_orphans() re-places it (at the checkpointed
        // version) when an aggregator registers or comes back.
        entry.aggregator_id.clear();
        entry.orphan_checkpoint = std::move(checkpoint);
        entry.reported_demand = 0;
        entry.pending_assignments = 0;
        map_.task_to_aggregator.erase(task_name);
        continue;
      }
      // entry.config carries the task's shard count, so the replacement
      // rebuilds the same sharded pipeline around the checkpointed model.
      replacement->assign_task(entry.config, std::move(checkpoint.model),
                               entry.server_opt, checkpoint.version);
      entry.aggregator_id = replacement->id();
      entry.reported_demand =
          static_cast<std::int64_t>(entry.config.concurrency);
      entry.pending_assignments = 0;
      map_.task_to_aggregator[task_name] = replacement->id();
    }
  }
  ++map_.version;
  return failed;
}

std::optional<ClientAssignment> Coordinator::assign_client(
    const ClientCapabilities& caps) {
  util::LockGuard lock(mutex_);
  // Build the eligible-task list (Sec. 6.2): capability match and positive
  // remaining demand.
  std::vector<const std::string*> eligible;
  for (const auto& [name, entry] : tasks_) {
    // Unowned (freshly adopted) tasks are ineligible: handing out an
    // assignment would point the client at the empty-string aggregator.
    if (entry.aggregator_id.empty()) continue;
    if (!caps.matches(entry.config.required_capability)) continue;
    if (entry.reported_demand - entry.pending_assignments <= 0) continue;
    eligible.push_back(&name);
  }
  if (eligible.empty()) return std::nullopt;

  const auto& chosen = *eligible[rng_.uniform_int(eligible.size())];
  auto& entry = tasks_.at(chosen);
  ++entry.pending_assignments;
  return ClientAssignment{chosen, entry.aggregator_id};
}

void Coordinator::assignment_concluded(const std::string& task) {
  util::LockGuard lock(mutex_);
  const auto it = tasks_.find(task);
  if (it == tasks_.end()) return;
  if (it->second.pending_assignments > 0) --it->second.pending_assignments;
}

std::int64_t Coordinator::pooled_demand(const std::string& task) const {
  util::LockGuard lock(mutex_);
  const auto it = tasks_.find(task);
  if (it == tasks_.end()) return 0;
  return it->second.reported_demand - it->second.pending_assignments;
}

void Coordinator::recover_from_aggregator_state(double now) {
  util::LockGuard lock(mutex_);
  // Leader re-election recovery (App. E.4): rebuild the assignment map from
  // what the live aggregators are actually running.
  map_.task_to_aggregator.clear();
  for (auto& [agg_id, entry] : aggregators_) {
    if (!entry.alive) continue;
    entry.last_heartbeat = now;
    for (const auto& task_name : entry.aggregator->task_names()) {
      map_.task_to_aggregator[task_name] = agg_id;
      const auto task_it = tasks_.find(task_name);
      if (task_it != tasks_.end()) {
        task_it->second.aggregator_id = agg_id;
        task_it->second.pending_assignments = 0;
      }
    }
  }
  ++map_.version;
  place_orphans();
}

Coordinator::Inspection Coordinator::inspect() const {
  util::LockGuard lock(mutex_);
  Inspection out;
  out.map_version = map_.version;
  out.task_to_aggregator = map_.task_to_aggregator;
  for (const auto& [id, entry] : aggregators_) {
    out.registered_aggregators.insert(id);
    if (entry.alive) out.live_aggregators.insert(id);
  }
  for (const auto& [name, entry] : tasks_) {
    Inspection::TaskView view;
    view.aggregator_id = entry.aggregator_id;
    view.orphaned = entry.orphan_checkpoint.has_value();
    view.reported_demand = entry.reported_demand;
    view.pending_assignments = entry.pending_assignments;
    if (entry.orphan_checkpoint) {
      view.model_version = entry.orphan_checkpoint->version;
    } else if (!entry.aggregator_id.empty()) {
      const auto agg_it = aggregators_.find(entry.aggregator_id);
      if (agg_it != aggregators_.end() &&
          agg_it->second.aggregator->has_task(name)) {
        view.model_version = agg_it->second.aggregator->model_version(name);
      }
    }
    out.tasks.emplace(name, std::move(view));
  }
  return out;
}

}  // namespace papaya::fl
