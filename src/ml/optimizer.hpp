#pragma once
// Optimizers: SGD for the client, Adam and the FedOpt family for the server.
//
// FedAdam (Reddi et al. 2020, "Adaptive Federated Optimization") treats the
// aggregated client model-delta as a pseudo-gradient and applies an Adam-style
// server update.  The paper runs SGD on the client and FedAdam on the server
// for both SyncFL and AsyncFL (Sec. 7.1).  The other members of Reddi et
// al.'s family — FedSGD, FedAvgM, FedAdagrad, FedYogi — are implemented for
// the server-optimizer ablation (bench_ablation_server_opt).

#include <cstdint>
#include <span>
#include <vector>

namespace papaya::ml {

/// Plain SGD: w -= lr * g.  Optional gradient clipping by global norm.
class Sgd {
 public:
  explicit Sgd(float lr, float clip = 0.0f) : lr_(lr), clip_(clip) {}

  void step(std::span<float> params, std::span<float> grad) const;

  float learning_rate() const { return lr_; }

 private:
  float lr_;
  float clip_;
};

/// Adam with bias correction.
class Adam {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
  };

  Adam(std::size_t num_params, Config config);

  /// w -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(std::span<float> params, std::span<const float> grad);

  std::uint64_t steps_taken() const { return t_; }

 private:
  Config config_;
  std::vector<float> m_, v_;
  std::uint64_t t_ = 0;
};

/// FedAdam: server optimizer taking an aggregated client *delta* (average of
/// per-client (trained - initial) weight differences) and applying
/// w += lr * m_hat / (sqrt(v_hat) + tau).  Note the sign: the delta points in
/// the descent direction already, so FedAdam *adds* the update.
class FedAdam {
 public:
  struct Config {
    float lr = 1e-2f;       ///< server learning rate (eta)
    float beta1 = 0.9f;     ///< the paper tunes this one in simulation
    float beta2 = 0.999f;
    float tau = 1e-3f;      ///< adaptivity degree (epsilon in Adam terms)
  };

  FedAdam(std::size_t num_params, Config config);

  /// Apply one server step from an aggregated delta.
  void step(std::span<float> params, std::span<const float> aggregated_delta);

  std::uint64_t steps_taken() const { return t_; }

 private:
  Config config_;
  std::vector<float> m_, v_;
  std::uint64_t t_ = 0;
};

/// Which member of the FedOpt family (Reddi et al. 2020) the server runs.
enum class ServerOptimizerKind {
  kFedSgd,      ///< w += lr * delta
  kFedAvgM,     ///< heavy-ball momentum on the delta
  kFedAdagrad,  ///< accumulated second moment (no decay)
  kFedAdam,     ///< EMA second moment, bias-corrected (the paper's choice)
  kFedYogi,     ///< Yogi's additive second-moment update
};

const char* to_string(ServerOptimizerKind kind);

/// Configuration for any server optimizer.  An aggregate, so call sites can
/// use designated initializers; defaults match the paper's FedAdam setup.
struct ServerOptimizerConfig {
  ServerOptimizerKind kind = ServerOptimizerKind::kFedAdam;
  float lr = 1e-2f;       ///< server learning rate (eta)
  float beta1 = 0.9f;     ///< momentum / first moment
  float beta2 = 0.999f;   ///< second moment (adaptive variants)
  float tau = 1e-3f;      ///< adaptivity degree
};

/// Unified server optimizer: applies an aggregated client delta as a
/// pseudo-gradient with the configured FedOpt rule.  All rules share the
/// m/v state layout; which moments are maintained depends on `kind`.
class ServerOptimizer {
 public:
  ServerOptimizer(std::size_t num_params, ServerOptimizerConfig config);

  /// Apply one server step from an aggregated delta.  Like FedAdam::step,
  /// the delta already points downhill, so updates are added.
  void step(std::span<float> params, std::span<const float> aggregated_delta);

  std::uint64_t steps_taken() const { return t_; }
  const ServerOptimizerConfig& config() const { return config_; }

 private:
  ServerOptimizerConfig config_;
  std::vector<float> m_, v_;
  std::uint64_t t_ = 0;
};

}  // namespace papaya::ml
