#include "ml/math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace papaya::ml {

void matvec(std::span<const float> w, std::span<const float> x,
            std::span<float> y, std::size_t rows, std::size_t cols) {
  assert(w.size() == rows * cols && x.size() == cols && y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void matvec_transposed(std::span<const float> w, std::span<const float> x,
                       std::span<float> y, std::size_t rows, std::size_t cols) {
  assert(w.size() == rows * cols && x.size() == rows && y.size() == cols);
  std::fill(y.begin(), y.end(), 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    const float xr = x[r];
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void outer_accumulate(std::span<float> w, std::span<const float> a,
                      std::span<const float> b, float alpha, std::size_t rows,
                      std::size_t cols) {
  assert(w.size() == rows * cols && a.size() == rows && b.size() == cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = w.data() + r * cols;
    const float ar = alpha * a[r];
    for (std::size_t c = 0; c < cols; ++c) row[c] += ar * b[c];
  }
}

void axpy(std::span<float> out, std::span<const float> x, float alpha) {
  assert(out.size() == x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += alpha * x[i];
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void softmax_in_place(std::span<float> x) {
  const float m = *std::max_element(x.begin(), x.end());
  float sum = 0.0f;
  for (auto& v : x) {
    v = std::exp(v - m);
    sum += v;
  }
  for (auto& v : x) v /= sum;
}

float log_sum_exp(std::span<const float> x) {
  const float m = *std::max_element(x.begin(), x.end());
  float sum = 0.0f;
  for (float v : x) sum += std::exp(v - m);
  return m + std::log(sum);
}

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float tanh_derivative_from_output(float tanh_x) { return 1.0f - tanh_x * tanh_x; }

float norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void clip_norm(std::span<float> x, float max_norm) {
  const float n = norm(x);
  if (n > max_norm && n > 0.0f) {
    const float s = max_norm / n;
    for (auto& v : x) v *= s;
  }
}

}  // namespace papaya::ml
