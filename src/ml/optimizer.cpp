#include "ml/optimizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ml/math.hpp"

namespace papaya::ml {

void Sgd::step(std::span<float> params, std::span<float> grad) const {
  assert(params.size() == grad.size());
  if (clip_ > 0.0f) clip_norm(grad, clip_);
  for (std::size_t i = 0; i < params.size(); ++i) params[i] -= lr_ * grad[i];
}

Adam::Adam(std::size_t num_params, Config config)
    : config_(config), m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void Adam::step(std::span<float> params, std::span<const float> grad) {
  if (params.size() != m_.size() || grad.size() != m_.size()) {
    throw std::invalid_argument("Adam::step: size mismatch");
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0f - config_.beta1) * grad[i];
    v_[i] = config_.beta2 * v_[i] + (1.0f - config_.beta2) * grad[i] * grad[i];
    const float m_hat = m_[i] / bc1;
    const float v_hat = v_[i] / bc2;
    params[i] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

FedAdam::FedAdam(std::size_t num_params, Config config)
    : config_(config), m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void FedAdam::step(std::span<float> params,
                   std::span<const float> aggregated_delta) {
  if (params.size() != m_.size() || aggregated_delta.size() != m_.size()) {
    throw std::invalid_argument("FedAdam::step: size mismatch");
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float d = aggregated_delta[i];
    m_[i] = config_.beta1 * m_[i] + (1.0f - config_.beta1) * d;
    v_[i] = config_.beta2 * v_[i] + (1.0f - config_.beta2) * d * d;
    const float m_hat = m_[i] / bc1;
    const float v_hat = v_[i] / bc2;
    params[i] += config_.lr * m_hat / (std::sqrt(v_hat) + config_.tau);
  }
}


const char* to_string(ServerOptimizerKind kind) {
  switch (kind) {
    case ServerOptimizerKind::kFedSgd:
      return "FedSGD";
    case ServerOptimizerKind::kFedAvgM:
      return "FedAvgM";
    case ServerOptimizerKind::kFedAdagrad:
      return "FedAdagrad";
    case ServerOptimizerKind::kFedAdam:
      return "FedAdam";
    case ServerOptimizerKind::kFedYogi:
      return "FedYogi";
  }
  return "?";
}

ServerOptimizer::ServerOptimizer(std::size_t num_params,
                                 ServerOptimizerConfig config)
    : config_(config), m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void ServerOptimizer::step(std::span<float> params,
                           std::span<const float> aggregated_delta) {
  if (params.size() != m_.size() || aggregated_delta.size() != m_.size()) {
    throw std::invalid_argument("ServerOptimizer::step: size mismatch");
  }
  ++t_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  // Bias correction only applies to the EMA moments of FedAdam.
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    const float d = aggregated_delta[i];
    switch (config_.kind) {
      case ServerOptimizerKind::kFedSgd:
        params[i] += config_.lr * d;
        break;
      case ServerOptimizerKind::kFedAvgM:
        // Heavy-ball: m = b1 * m + d (Reddi et al., Sec. 5 "momentum").
        m_[i] = b1 * m_[i] + d;
        params[i] += config_.lr * m_[i];
        break;
      case ServerOptimizerKind::kFedAdagrad:
        m_[i] = b1 * m_[i] + (1.0f - b1) * d;
        v_[i] += d * d;  // no decay: Adagrad accumulates
        params[i] += config_.lr * m_[i] / (std::sqrt(v_[i]) + config_.tau);
        break;
      case ServerOptimizerKind::kFedAdam: {
        m_[i] = b1 * m_[i] + (1.0f - b1) * d;
        v_[i] = b2 * v_[i] + (1.0f - b2) * d * d;
        const float m_hat = m_[i] / bc1;
        const float v_hat = v_[i] / bc2;
        params[i] += config_.lr * m_hat / (std::sqrt(v_hat) + config_.tau);
        break;
      }
      case ServerOptimizerKind::kFedYogi: {
        m_[i] = b1 * m_[i] + (1.0f - b1) * d;
        const float d2 = d * d;
        const float sign = v_[i] > d2 ? 1.0f : (v_[i] < d2 ? -1.0f : 0.0f);
        v_[i] = v_[i] - (1.0f - b2) * d2 * sign;
        params[i] += config_.lr * m_[i] / (std::sqrt(v_[i]) + config_.tau);
        break;
      }
    }
  }
}

}  // namespace papaya::ml
