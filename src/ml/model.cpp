#include "ml/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ml/math.hpp"

namespace papaya::ml {

double LanguageModel::perplexity(std::span<const Sequence> batch) const {
  return std::exp(loss(batch, {}));
}

std::size_t LanguageModel::num_predictions(std::span<const Sequence> batch) {
  std::size_t n = 0;
  for (const auto& s : batch) {
    if (s.size() >= 2) n += s.size() - 1;
  }
  return n;
}

namespace {

void init_params(std::span<float> params, util::Rng& rng) {
  for (auto& p : params) p = static_cast<float>(rng.uniform(-0.08, 0.08));
}

void check_token(std::int32_t t, std::size_t vocab) {
  if (t < 0 || static_cast<std::size_t>(t) >= vocab) {
    throw std::out_of_range("LanguageModel: token id outside vocabulary");
  }
}

// ---------------------------------------------------------------------------
// MLP n-gram language model.
// Parameter layout (flat): E[V*De] | W1[H*(C*De)] | b1[H] | W2[V*H] | b2[V].
// ---------------------------------------------------------------------------
class MlpLm final : public LanguageModel {
 public:
  MlpLm(const LmConfig& cfg, util::Rng& rng) : cfg_(cfg) {
    offsets_.embed = 0;
    offsets_.w1 = offsets_.embed + cfg.vocab_size * cfg.embed_dim;
    offsets_.b1 = offsets_.w1 + cfg.hidden_dim * cfg.context * cfg.embed_dim;
    offsets_.w2 = offsets_.b1 + cfg.hidden_dim;
    offsets_.b2 = offsets_.w2 + cfg.vocab_size * cfg.hidden_dim;
    params_.resize(offsets_.b2 + cfg.vocab_size);
    init_params(params_, rng);
  }

  std::size_t num_params() const override { return params_.size(); }
  std::span<float> params() override { return params_; }
  std::span<const float> params() const override { return params_; }

  double loss(std::span<const Sequence> batch,
              std::span<float> grad) const override {
    if (!grad.empty() && grad.size() != params_.size()) {
      throw std::invalid_argument("MlpLm::loss: gradient buffer size mismatch");
    }
    if (!grad.empty()) std::fill(grad.begin(), grad.end(), 0.0f);

    const std::size_t n_pred = num_predictions(batch);
    if (n_pred == 0) return 0.0;
    const float inv_n = 1.0f / static_cast<float>(n_pred);

    const std::size_t V = cfg_.vocab_size, De = cfg_.embed_dim,
                      H = cfg_.hidden_dim, C = cfg_.context;
    const std::span<const float> embed(params_.data() + offsets_.embed, V * De);
    const std::span<const float> w1(params_.data() + offsets_.w1, H * C * De);
    const std::span<const float> b1(params_.data() + offsets_.b1, H);
    const std::span<const float> w2(params_.data() + offsets_.w2, V * H);
    const std::span<const float> b2(params_.data() + offsets_.b2, V);

    std::vector<float> x(C * De), h(H), logits(V), dh(H), dx(C * De);
    double total_loss = 0.0;

    for (const auto& seq : batch) {
      if (seq.size() < 2) continue;
      for (std::size_t t = 1; t < seq.size(); ++t) {
        const std::int32_t target = seq[t];
        check_token(target, V);
        // Build the context window [t-C, t), padding on the left with the
        // first token of the sequence.
        std::array<std::int32_t, 64> ctx{};
        if (C > ctx.size()) throw std::invalid_argument("context too large");
        for (std::size_t j = 0; j < C; ++j) {
          const std::ptrdiff_t idx =
              static_cast<std::ptrdiff_t>(t) - static_cast<std::ptrdiff_t>(C) +
              static_cast<std::ptrdiff_t>(j);
          ctx[j] = idx >= 0 ? seq[static_cast<std::size_t>(idx)] : seq[0];
          check_token(ctx[j], V);
        }
        for (std::size_t j = 0; j < C; ++j) {
          std::memcpy(x.data() + j * De,
                      embed.data() + static_cast<std::size_t>(ctx[j]) * De,
                      De * sizeof(float));
        }

        matvec(w1, x, h, H, C * De);
        for (std::size_t i = 0; i < H; ++i) h[i] = std::tanh(h[i] + b1[i]);
        matvec(w2, h, logits, V, H);
        for (std::size_t i = 0; i < V; ++i) logits[i] += b2[i];

        const float lse = log_sum_exp(logits);
        total_loss += lse - logits[static_cast<std::size_t>(target)];

        if (grad.empty()) continue;

        // dlogits = softmax - onehot(target), scaled by 1/n_pred.
        softmax_in_place(logits);
        logits[static_cast<std::size_t>(target)] -= 1.0f;
        for (auto& v : logits) v *= inv_n;

        const std::span<float> g_embed(grad.data() + offsets_.embed, V * De);
        const std::span<float> g_w1(grad.data() + offsets_.w1, H * C * De);
        const std::span<float> g_b1(grad.data() + offsets_.b1, H);
        const std::span<float> g_w2(grad.data() + offsets_.w2, V * H);
        const std::span<float> g_b2(grad.data() + offsets_.b2, V);

        outer_accumulate(g_w2, logits, h, 1.0f, V, H);
        axpy(g_b2, logits, 1.0f);
        matvec_transposed(w2, logits, dh, V, H);
        for (std::size_t i = 0; i < H; ++i) {
          dh[i] *= tanh_derivative_from_output(h[i]);
        }
        outer_accumulate(g_w1, dh, x, 1.0f, H, C * De);
        axpy(g_b1, dh, 1.0f);
        matvec_transposed(w1, dh, dx, H, C * De);
        for (std::size_t j = 0; j < C; ++j) {
          float* ge = g_embed.data() + static_cast<std::size_t>(ctx[j]) * De;
          for (std::size_t d = 0; d < De; ++d) ge[d] += dx[j * De + d];
        }
      }
    }
    return total_loss / static_cast<double>(n_pred);
  }

  std::unique_ptr<LanguageModel> clone() const override {
    return std::make_unique<MlpLm>(*this);
  }

 private:
  struct Offsets {
    std::size_t embed, w1, b1, w2, b2;
  };
  LmConfig cfg_;
  Offsets offsets_{};
  std::vector<float> params_;
};

// ---------------------------------------------------------------------------
// Single-layer LSTM language model with BPTT.
// Gate order within the 4H block: input, forget, candidate, output.
// Layout: E[V*De] | Wx[4H*De] | Wh[4H*H] | b[4H] | Wo[V*H] | bo[V].
// ---------------------------------------------------------------------------
class LstmLm final : public LanguageModel {
 public:
  LstmLm(const LmConfig& cfg, util::Rng& rng) : cfg_(cfg) {
    const std::size_t V = cfg.vocab_size, De = cfg.embed_dim, H = cfg.hidden_dim;
    offsets_.embed = 0;
    offsets_.wx = offsets_.embed + V * De;
    offsets_.wh = offsets_.wx + 4 * H * De;
    offsets_.b = offsets_.wh + 4 * H * H;
    offsets_.wo = offsets_.b + 4 * H;
    offsets_.bo = offsets_.wo + V * H;
    params_.resize(offsets_.bo + V);
    init_params(params_, rng);
    // Forget-gate bias init to 1.0: standard trick for trainable small LSTMs.
    for (std::size_t i = 0; i < H; ++i) params_[offsets_.b + H + i] = 1.0f;
  }

  std::size_t num_params() const override { return params_.size(); }
  std::span<float> params() override { return params_; }
  std::span<const float> params() const override { return params_; }

  double loss(std::span<const Sequence> batch,
              std::span<float> grad) const override {
    if (!grad.empty() && grad.size() != params_.size()) {
      throw std::invalid_argument("LstmLm::loss: gradient buffer size mismatch");
    }
    if (!grad.empty()) std::fill(grad.begin(), grad.end(), 0.0f);

    const std::size_t n_pred = num_predictions(batch);
    if (n_pred == 0) return 0.0;
    const float inv_n = 1.0f / static_cast<float>(n_pred);

    double total_loss = 0.0;
    for (const auto& seq : batch) {
      if (seq.size() < 2) continue;
      total_loss += sequence_loss(seq, grad, inv_n);
    }
    return total_loss / static_cast<double>(n_pred);
  }

  std::unique_ptr<LanguageModel> clone() const override {
    return std::make_unique<LstmLm>(*this);
  }

 private:
  struct Offsets {
    std::size_t embed, wx, wh, b, wo, bo;
  };

  /// Forward + (optional) BPTT for one sequence.  Returns the *summed*
  /// cross-entropy over the sequence; gradients are scaled by inv_n so the
  /// batch-level gradient matches the mean loss.
  double sequence_loss(const Sequence& seq, std::span<float> grad,
                       float inv_n) const {
    const std::size_t V = cfg_.vocab_size, De = cfg_.embed_dim,
                      H = cfg_.hidden_dim;
    const std::size_t steps = seq.size() - 1;

    const std::span<const float> embed(params_.data() + offsets_.embed, V * De);
    const std::span<const float> wx(params_.data() + offsets_.wx, 4 * H * De);
    const std::span<const float> wh(params_.data() + offsets_.wh, 4 * H * H);
    const std::span<const float> b(params_.data() + offsets_.b, 4 * H);
    const std::span<const float> wo(params_.data() + offsets_.wo, V * H);
    const std::span<const float> bo(params_.data() + offsets_.bo, V);

    // Stored activations for BPTT, indexed by step.
    std::vector<std::vector<float>> xs(steps), gates(steps), cs(steps),
        hs(steps), tanh_cs(steps), probs(steps);
    std::vector<float> h_prev(H, 0.0f), c_prev(H, 0.0f);
    std::vector<float> z(4 * H), logits(V);

    double loss_sum = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
      const std::int32_t tok = seq[t];
      const std::int32_t target = seq[t + 1];
      check_token(tok, V);
      check_token(target, V);

      xs[t].assign(embed.begin() + static_cast<std::ptrdiff_t>(
                                       static_cast<std::size_t>(tok) * De),
                   embed.begin() + static_cast<std::ptrdiff_t>(
                                       (static_cast<std::size_t>(tok) + 1) * De));

      matvec(wx, xs[t], z, 4 * H, De);
      std::vector<float> zh(4 * H);
      matvec(wh, h_prev, zh, 4 * H, H);
      for (std::size_t i = 0; i < 4 * H; ++i) z[i] += zh[i] + b[i];

      gates[t].resize(4 * H);
      cs[t].resize(H);
      hs[t].resize(H);
      tanh_cs[t].resize(H);
      for (std::size_t i = 0; i < H; ++i) {
        const float ig = sigmoid(z[i]);
        const float fg = sigmoid(z[H + i]);
        const float gg = std::tanh(z[2 * H + i]);
        const float og = sigmoid(z[3 * H + i]);
        gates[t][i] = ig;
        gates[t][H + i] = fg;
        gates[t][2 * H + i] = gg;
        gates[t][3 * H + i] = og;
        cs[t][i] = fg * c_prev[i] + ig * gg;
        tanh_cs[t][i] = std::tanh(cs[t][i]);
        hs[t][i] = og * tanh_cs[t][i];
      }

      matvec(wo, hs[t], logits, V, H);
      for (std::size_t i = 0; i < V; ++i) logits[i] += bo[i];
      const float lse = log_sum_exp(logits);
      loss_sum += lse - logits[static_cast<std::size_t>(target)];

      if (!grad.empty()) {
        probs[t] = logits;
        softmax_in_place(probs[t]);
        probs[t][static_cast<std::size_t>(target)] -= 1.0f;
        for (auto& v : probs[t]) v *= inv_n;
      }

      h_prev = hs[t];
      c_prev = cs[t];
    }

    if (grad.empty()) return loss_sum;

    const std::span<float> g_embed(grad.data() + offsets_.embed, V * De);
    const std::span<float> g_wx(grad.data() + offsets_.wx, 4 * H * De);
    const std::span<float> g_wh(grad.data() + offsets_.wh, 4 * H * H);
    const std::span<float> g_b(grad.data() + offsets_.b, 4 * H);
    const std::span<float> g_wo(grad.data() + offsets_.wo, V * H);
    const std::span<float> g_bo(grad.data() + offsets_.bo, V);

    std::vector<float> dh(H, 0.0f), dc(H, 0.0f), dz(4 * H), dh_tmp(H),
        dx(De);
    for (std::size_t t = steps; t-- > 0;) {
      // Output layer.
      outer_accumulate(g_wo, probs[t], hs[t], 1.0f, V, H);
      axpy(g_bo, probs[t], 1.0f);
      matvec_transposed(wo, probs[t], dh_tmp, V, H);
      for (std::size_t i = 0; i < H; ++i) dh[i] += dh_tmp[i];

      const std::span<const float> h_before =
          t == 0 ? std::span<const float>() : std::span<const float>(hs[t - 1]);
      const std::span<const float> c_before =
          t == 0 ? std::span<const float>() : std::span<const float>(cs[t - 1]);

      for (std::size_t i = 0; i < H; ++i) {
        const float ig = gates[t][i];
        const float fg = gates[t][H + i];
        const float gg = gates[t][2 * H + i];
        const float og = gates[t][3 * H + i];
        const float tc = tanh_cs[t][i];

        const float do_ = dh[i] * tc;
        dc[i] += dh[i] * og * tanh_derivative_from_output(tc);

        const float c_prev_i = t == 0 ? 0.0f : c_before[i];
        const float di = dc[i] * gg;
        const float df = dc[i] * c_prev_i;
        const float dg = dc[i] * ig;

        dz[i] = di * ig * (1.0f - ig);
        dz[H + i] = df * fg * (1.0f - fg);
        dz[2 * H + i] = dg * tanh_derivative_from_output(gg);
        dz[3 * H + i] = do_ * og * (1.0f - og);

        // Carry cell gradient to t-1 through the forget gate.
        dc[i] = dc[i] * fg;
      }

      outer_accumulate(g_wx, dz, xs[t], 1.0f, 4 * H, De);
      if (t > 0) {
        outer_accumulate(g_wh, dz, h_before, 1.0f, 4 * H, H);
      }
      axpy(g_b, dz, 1.0f);

      // dh for t-1 flows through Wh.
      std::fill(dh.begin(), dh.end(), 0.0f);
      if (t > 0) {
        std::vector<float> dh_prev(H);
        matvec_transposed(wh, dz, dh_prev, 4 * H, H);
        for (std::size_t i = 0; i < H; ++i) dh[i] = dh_prev[i];
      }

      // Embedding gradient.
      matvec_transposed(wx, dz, dx, 4 * H, De);
      const auto tok = static_cast<std::size_t>(seq[t]);
      float* ge = g_embed.data() + tok * De;
      for (std::size_t d = 0; d < De; ++d) ge[d] += dx[d];
    }
    return loss_sum;
  }

  LmConfig cfg_;
  Offsets offsets_{};
  std::vector<float> params_;
};

}  // namespace

std::unique_ptr<LanguageModel> make_mlp_lm(const LmConfig& config,
                                           util::Rng& rng) {
  return std::make_unique<MlpLm>(config, rng);
}

std::unique_ptr<LanguageModel> make_lstm_lm(const LmConfig& config,
                                            util::Rng& rng) {
  return std::make_unique<LstmLm>(config, rng);
}

}  // namespace papaya::ml
