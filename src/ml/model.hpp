#pragma once
// Language-model interface and configurations.
//
// The paper trains an LSTM-based next-word-prediction model (Kim et al.
// 2015).  Two implementations are provided behind one interface:
//   - LstmLm: embedding -> single-layer LSTM (BPTT) -> tied-size softmax.
//     Protocol-faithful to the paper's workload.
//   - MlpLm:  concatenated n-gram embeddings -> tanh hidden -> softmax.
//     ~10x cheaper per example; used by the large population sweeps where
//     tens of thousands of simulated clients train.
// Both keep parameters in one flat float vector, because FL model updates
// are flat vectors: update = params_after_training - params_received.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace papaya::ml {

/// One training example: a token sequence.  The model predicts token[t+1]
/// from tokens[0..t] at every position.
using Sequence = std::vector<std::int32_t>;

struct LmConfig {
  std::size_t vocab_size = 64;
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 32;
  /// MLP only: number of previous tokens in the context window.
  std::size_t context = 3;
};

/// A next-word-prediction model with flat parameters and manual gradients.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual std::size_t num_params() const = 0;
  virtual std::span<float> params() = 0;
  virtual std::span<const float> params() const = 0;

  /// Mean cross-entropy (nats/token) over the sequences; if `grad` is
  /// non-null it must have num_params() entries and receives d(loss)/d(params)
  /// (overwritten, not accumulated).
  virtual double loss(std::span<const Sequence> batch,
                      std::span<float> grad) const = 0;

  /// Perplexity = exp(mean cross-entropy).
  double perplexity(std::span<const Sequence> batch) const;

  /// Number of next-token predictions in a batch (sum of len-1 per sequence).
  static std::size_t num_predictions(std::span<const Sequence> batch);

  virtual std::unique_ptr<LanguageModel> clone() const = 0;
};

/// Factory helpers; parameters initialized from `rng` (uniform +-0.08, the
/// classic small-LSTM init).
std::unique_ptr<LanguageModel> make_mlp_lm(const LmConfig& config,
                                           util::Rng& rng);
std::unique_ptr<LanguageModel> make_lstm_lm(const LmConfig& config,
                                            util::Rng& rng);

}  // namespace papaya::ml
