#pragma once
// Minimal dense math kernels for the ML substrate.
//
// Models keep their parameters in one flat float vector (which is exactly
// the shape FL model updates travel in); these kernels operate on spans into
// that storage.  Row-major everywhere: W is rows x cols, W[r*cols + c].

#include <cstddef>
#include <span>
#include <vector>

namespace papaya::ml {

/// y = W x, W: rows x cols, x: cols, y: rows.
void matvec(std::span<const float> w, std::span<const float> x,
            std::span<float> y, std::size_t rows, std::size_t cols);

/// y = W^T x, W: rows x cols, x: rows, y: cols.
void matvec_transposed(std::span<const float> w, std::span<const float> x,
                       std::span<float> y, std::size_t rows, std::size_t cols);

/// W += alpha * a b^T  (outer-product accumulate), a: rows, b: cols.
void outer_accumulate(std::span<float> w, std::span<const float> a,
                      std::span<const float> b, float alpha, std::size_t rows,
                      std::size_t cols);

/// out += alpha * x.
void axpy(std::span<float> out, std::span<const float> x, float alpha);

float dot(std::span<const float> a, std::span<const float> b);

/// In-place numerically stable softmax.
void softmax_in_place(std::span<float> x);

/// log(sum(exp(x))) computed stably.
float log_sum_exp(std::span<const float> x);

float sigmoid(float x);
float tanh_derivative_from_output(float tanh_x);

/// L2 norm.
float norm(std::span<const float> x);

/// Scale x so its L2 norm is at most `max_norm` (gradient clipping).
void clip_norm(std::span<float> x, float max_norm);

}  // namespace papaya::ml
