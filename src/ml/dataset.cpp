#include "ml/dataset.hpp"

#include <algorithm>

namespace papaya::ml {

FederatedCorpus::FederatedCorpus(CorpusConfig config, std::uint64_t seed)
    : config_(config), seed_(seed), zipf_(config.vocab_size, config.zipf_exponent) {
  util::Rng rng(seed ^ 0x70f1c5ULL);
  topic_params_.reserve(config_.num_topics);
  for (std::size_t t = 0; t < config_.num_topics; ++t) {
    // Odd multiplier so the affine map permutes Z_V when V is a power of two;
    // any multiplier still yields learnable structure otherwise.
    const std::uint64_t a = rng.uniform_int(config_.vocab_size / 2) * 2 + 1;
    const std::uint64_t b = rng.uniform_int(config_.vocab_size);
    topic_params_.emplace_back(a, b);
  }
}

Sequence FederatedCorpus::generate_sequence(util::Rng& rng,
                                            std::size_t topic) const {
  const auto [a, b] = topic_params_[topic % topic_params_.size()];
  const std::size_t len =
      config_.seq_len_min +
      rng.uniform_int(config_.seq_len_max - config_.seq_len_min + 1);
  Sequence seq;
  seq.reserve(len);
  std::uint64_t tok = rng.uniform_int(config_.vocab_size);
  seq.push_back(static_cast<std::int32_t>(tok));
  for (std::size_t i = 1; i < len; ++i) {
    if (rng.bernoulli(config_.noise)) {
      tok = zipf_.sample(rng);
    } else {
      tok = (a * tok + b) % config_.vocab_size;
    }
    seq.push_back(static_cast<std::int32_t>(tok));
  }
  return seq;
}

ClientDataset FederatedCorpus::client_dataset(std::uint64_t client_id,
                                              std::size_t num_examples) const {
  util::Rng rng(seed_ ^ (client_id * 0x9e3779b97f4a7c15ULL + 1));
  // Pick this client's topic mixture.
  std::vector<std::size_t> topics(config_.topics_per_client);
  for (auto& t : topics) t = rng.uniform_int(config_.num_topics);

  std::vector<Sequence> all;
  all.reserve(num_examples);
  for (std::size_t i = 0; i < num_examples; ++i) {
    const std::size_t topic = topics[rng.uniform_int(topics.size())];
    all.push_back(generate_sequence(rng, topic));
  }

  // 80/10/10 random split; at least one training example when any exist.
  ClientDataset out;
  for (auto& seq : all) {
    const double u = rng.uniform();
    if (u < 0.8 || out.train.empty()) {
      out.train.push_back(std::move(seq));
    } else if (u < 0.9) {
      out.validation.push_back(std::move(seq));
    } else {
      out.test.push_back(std::move(seq));
    }
  }
  return out;
}

std::vector<Sequence> FederatedCorpus::global_test_set(
    std::size_t num_examples) const {
  util::Rng rng(seed_ ^ 0x7e57da7aULL);
  std::vector<Sequence> out;
  out.reserve(num_examples);
  for (std::size_t i = 0; i < num_examples; ++i) {
    out.push_back(generate_sequence(rng, rng.uniform_int(config_.num_topics)));
  }
  return out;
}

}  // namespace papaya::ml
