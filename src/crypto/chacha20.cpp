#include "crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace papaya::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce,
                   std::uint32_t counter) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::xor_stream(std::span<std::uint8_t> data) {
  for (auto& byte : data) {
    if (block_pos_ == 64) refill();
    byte ^= block_[block_pos_++];
  }
}

util::Bytes ChaCha20::keystream(std::size_t n) {
  util::Bytes out(n, 0);
  xor_stream(out);
  return out;
}

std::uint32_t ChaCha20::next_u32() {
  std::uint8_t b[4];
  for (auto& byte : b) {
    if (block_pos_ == 64) refill();
    byte = block_[block_pos_++];
  }
  return load32(b);
}

MaskPrng::MaskPrng(std::span<const std::uint8_t> seed)
    : cipher_([&] {
        static const std::string info = "papaya-mask-prng-v1";
        const util::Bytes key = hkdf_sha256(
            seed, {},
            {reinterpret_cast<const std::uint8_t*>(info.data()), info.size()},
            ChaCha20::kKeySize);
        const std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
        return ChaCha20(key, nonce);
      }()) {}

std::vector<std::uint32_t> MaskPrng::words(std::size_t n) {
  std::vector<std::uint32_t> out(n);
  for (auto& w : out) w = cipher_.next_u32();
  return out;
}

}  // namespace papaya::crypto
