#include "crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace papaya::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// The 10 double rounds on a working copy of the state (no feed-forward add).
inline void core_rounds(std::array<std::uint32_t, 16>& x) {
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
}

constexpr std::size_t kLanes = ChaCha20::kMultiStreamLanes;

// The multi-stream tile kernel: run `blocks` ChaCha20 blocks for kLanes
// independent streams in lockstep.  `st[w]` holds state word w across all
// lanes (stream-major), outs[l] receives stream l's keystream words, and
// st[12] leaves incremented by `blocks` per lane.
//
// On x86-64 the kernel is cloned per ISA (GCC/Clang target_clones with
// runtime dispatch): one state row spans two SSE registers but only one
// AVX2 register, and the register file is the bottleneck — the AVX2 clone
// runs the 8-lane rounds without spilling every quarter-round.  The
// dispatch lowers to an ELF ifunc, so non-ELF targets (macOS, musl) stay
// on the plain kernel; sanitizer builds must not use it either — the
// ifunc resolver runs during relocation, before the sanitizer runtime
// initializes, and segfaults.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PAPAYA_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PAPAYA_SANITIZED 1
#endif
#endif

#if defined(__x86_64__) && defined(__GNUC__) && defined(__ELF__) && \
    !defined(PAPAYA_SANITIZED)
#define PAPAYA_MULTI_STREAM_CLONES \
  __attribute__((target_clones("avx2", "default")))
#else
#define PAPAYA_MULTI_STREAM_CLONES
#endif

#if defined(__GNUC__) || defined(__clang__)
// GNU vector extensions guarantee the SIMD shape (GCC 12's SLP pass does
// not reliably vectorize the equivalent lane-array loops); targets without
// wide registers get correct element-wise lowering.
typedef std::uint32_t LaneVec
    __attribute__((vector_size(kLanes * sizeof(std::uint32_t))));

PAPAYA_MULTI_STREAM_CLONES
void expand_tile(std::uint32_t (&state)[16][kLanes],
                 std::uint32_t* const* outs, std::size_t blocks) {
  LaneVec st[16];
  std::memcpy(st, state, sizeof(st));
#define PAPAYA_CHACHA_QR(a, b, c, d)                                   \
  do {                                                                 \
    x[a] += x[b]; x[d] ^= x[a]; x[d] = (x[d] << 16) | (x[d] >> 16);    \
    x[c] += x[d]; x[b] ^= x[c]; x[b] = (x[b] << 12) | (x[b] >> 20);    \
    x[a] += x[b]; x[d] ^= x[a]; x[d] = (x[d] << 8) | (x[d] >> 24);     \
    x[c] += x[d]; x[b] ^= x[c]; x[b] = (x[b] << 7) | (x[b] >> 25);     \
  } while (0)
  std::size_t base = 0;
  for (std::size_t blk = 0; blk < blocks; ++blk, base += 16) {
    LaneVec x[16];
    std::memcpy(x, st, sizeof(x));
    for (int r = 0; r < 10; ++r) {
      PAPAYA_CHACHA_QR(0, 4, 8, 12);
      PAPAYA_CHACHA_QR(1, 5, 9, 13);
      PAPAYA_CHACHA_QR(2, 6, 10, 14);
      PAPAYA_CHACHA_QR(3, 7, 11, 15);
      PAPAYA_CHACHA_QR(0, 5, 10, 15);
      PAPAYA_CHACHA_QR(1, 6, 11, 12);
      PAPAYA_CHACHA_QR(2, 7, 8, 13);
      PAPAYA_CHACHA_QR(3, 4, 9, 14);
    }
    for (std::size_t w = 0; w < 16; ++w) {
      const LaneVec v = x[w] + st[w];
      for (std::size_t l = 0; l < kLanes; ++l) {
        outs[l][base + w] = v[l];
      }
    }
    st[12] += 1;  // per-lane block counter
  }
#undef PAPAYA_CHACHA_QR
  std::memcpy(state, st, sizeof(st));
}
#else
void expand_tile(std::uint32_t (&state)[16][kLanes],
                 std::uint32_t* const* outs, std::size_t blocks) {
  std::size_t base = 0;
  for (std::size_t blk = 0; blk < blocks; ++blk, base += 16) {
    std::uint32_t x[16][kLanes];
    std::memcpy(x, state, sizeof(x));
    const auto qr = [&x](int a, int b, int c, int d) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        x[a][l] += x[b][l]; x[d][l] ^= x[a][l]; x[d][l] = rotl(x[d][l], 16);
        x[c][l] += x[d][l]; x[b][l] ^= x[c][l]; x[b][l] = rotl(x[b][l], 12);
        x[a][l] += x[b][l]; x[d][l] ^= x[a][l]; x[d][l] = rotl(x[d][l], 8);
        x[c][l] += x[d][l]; x[b][l] ^= x[c][l]; x[b][l] = rotl(x[b][l], 7);
      }
    };
    for (int r = 0; r < 10; ++r) {
      qr(0, 4, 8, 12);
      qr(1, 5, 9, 13);
      qr(2, 6, 10, 14);
      qr(3, 7, 11, 15);
      qr(0, 5, 10, 15);
      qr(1, 6, 11, 12);
      qr(2, 7, 8, 13);
      qr(3, 4, 9, 14);
    }
    for (std::size_t w = 0; w < 16; ++w) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        outs[l][base + w] = x[w][l] + state[w][l];
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) ++state[12][l];
  }
}
#endif

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce,
                   std::uint32_t counter) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  core_rounds(x);
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::xor_stream(std::span<std::uint8_t> data) {
  for (auto& byte : data) {
    if (block_pos_ == 64) refill();
    byte ^= block_[block_pos_++];
  }
}

util::Bytes ChaCha20::keystream(std::size_t n) {
  util::Bytes out(n, 0);
  xor_stream(out);
  return out;
}

std::uint32_t ChaCha20::next_u32() {
  std::uint8_t b[4];
  for (auto& byte : b) {
    if (block_pos_ == 64) refill();
    byte = block_[block_pos_++];
  }
  return load32(b);
}

void ChaCha20::keystream_words(std::span<std::uint32_t> out) {
  std::size_t i = 0;
  // Drain any buffered partial block first so the word sequence lines up
  // with repeated next_u32() calls.
  while (i < out.size() && block_pos_ != 64) out[i++] = next_u32();
  // Whole blocks straight from the core: word w of a block is the
  // little-endian load of bytes 4w..4w+3, i.e. exactly x[w] + state_[w].
  for (; i + 16 <= out.size(); i += 16) {
    std::array<std::uint32_t, 16> x = state_;
    core_rounds(x);
    for (int w = 0; w < 16; ++w) out[i + w] = x[w] + state_[w];
    ++state_[12];
  }
  while (i < out.size()) out[i++] = next_u32();
}

void ChaCha20::keystream_words_multi(std::span<ChaCha20* const> streams,
                                     std::span<std::uint32_t* const> outs,
                                     std::size_t n) {
  if (streams.size() != outs.size()) {
    throw std::invalid_argument("ChaCha20: streams/outs size mismatch");
  }
  constexpr std::size_t kLanes = kMultiStreamLanes;
  std::size_t s = 0;
  for (; s + kLanes <= streams.size(); s += kLanes) {
    // A stream with buffered partial-block keystream cannot join a lockstep
    // tile (its block boundary is offset); fall back to the scalar path.
    bool aligned = true;
    for (std::size_t l = 0; l < kLanes; ++l) {
      aligned = aligned && streams[s + l]->block_pos_ == 64;
    }
    if (!aligned) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        streams[s + l]->keystream_words({outs[s + l], n});
      }
      continue;
    }

    const std::size_t blocks = n / 16;
    // Stream-major working state: state[w] holds state word w across all
    // kLanes lanes, so every quarter-round op in the kernel is one
    // operation on kLanes independent values.
    std::uint32_t state[16][kLanes];
    for (std::size_t w = 0; w < 16; ++w) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        state[w][l] = streams[s + l]->state_[w];
      }
    }
    expand_tile(state, outs.data() + s, blocks);
    const std::size_t base = blocks * 16;
    for (std::size_t l = 0; l < kLanes; ++l) {
      streams[s + l]->state_[12] = state[12][l];
      if (const std::size_t tail = n - base; tail > 0) {
        streams[s + l]->keystream_words({outs[s + l] + base, tail});
      }
    }
  }
  // Remainder streams (fewer than a full tile): scalar whole-block path.
  for (; s < streams.size(); ++s) {
    streams[s]->keystream_words({outs[s], n});
  }
}

MaskPrng::MaskPrng(std::span<const std::uint8_t> seed)
    : cipher_([&] {
        static const std::string info = "papaya-mask-prng-v1";
        const util::Bytes key = hkdf_sha256(
            seed, {},
            {reinterpret_cast<const std::uint8_t*>(info.data()), info.size()},
            ChaCha20::kKeySize);
        const std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
        return ChaCha20(key, nonce);
      }()) {}

std::vector<std::uint32_t> MaskPrng::words(std::size_t n) {
  std::vector<std::uint32_t> out(n);
  cipher_.keystream_words(out);
  return out;
}

void MaskPrng::fill_words_multi(std::span<MaskPrng* const> prngs,
                                std::span<std::uint32_t* const> outs,
                                std::size_t n) {
  std::vector<ChaCha20*> streams(prngs.size());
  for (std::size_t i = 0; i < prngs.size(); ++i) {
    streams[i] = &prngs[i]->cipher_;
  }
  ChaCha20::keystream_words_multi(streams, outs, n);
}

}  // namespace papaya::crypto
