#pragma once
// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Two roles in PAPAYA's Asynchronous SecAgg:
//  1. The cryptographically secure PRNG that expands a 16-byte client seed
//     into an as-large-as-the-model additive one-time pad (App. A.2).  The
//     client and the TSA must expand the same seed to identical masks.
//  2. The stream cipher inside the authenticated encryption used to ship
//     the seed to the TSA over the DH-established channel (Fig. 16 step 4).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::crypto {

/// ChaCha20 block function keystream generator.
class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> nonce, std::uint32_t counter = 0);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void xor_stream(std::span<std::uint8_t> data);

  /// Produce `n` keystream bytes.
  util::Bytes keystream(std::size_t n);

  /// Next 32 bits of keystream interpreted as a little-endian word.  This is
  /// the primitive mask-generation call: mask vectors over Z_{2^32} are read
  /// word-by-word from the stream.
  std::uint32_t next_u32();

  /// Fill `out` with keystream words.  Bit-identical to calling next_u32()
  /// out.size() times, but whole blocks are produced straight from the core
  /// without the per-byte buffer bookkeeping.
  void keystream_words(std::span<std::uint32_t> out);

  /// Multi-stream keystream: fill outs[s][0..n) for every cipher in
  /// `streams`, generating blocks for up to kMultiStreamLanes streams in
  /// lockstep.  The working state is kept stream-major (state word x lane)
  /// so the quarter-round arithmetic runs across independent lanes — a shape
  /// the compiler auto-vectorizes — and each tile's state block stays
  /// cache-resident for the whole expansion.  Per-stream output is
  /// bit-identical to streams[s]->keystream_words({outs[s], n}).
  static constexpr std::size_t kMultiStreamLanes = 8;
  static void keystream_words_multi(std::span<ChaCha20* const> streams,
                                    std::span<std::uint32_t* const> outs,
                                    std::size_t n);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // force refill on first use
};

/// Deterministic seed-expansion PRNG: expands a seed (typically 16 bytes)
/// into mask words via ChaCha20 keyed by HKDF(seed).  Both the client and
/// the TSA construct this from the same seed and obtain identical masks.
class MaskPrng {
 public:
  explicit MaskPrng(std::span<const std::uint8_t> seed);

  std::uint32_t next_u32() { return cipher_.next_u32(); }

  /// Fill a vector of n mask words.
  std::vector<std::uint32_t> words(std::size_t n);

  /// Batched expansion: outs[i][0..n) receives the words MaskPrng(seed_i)
  /// would produce, for `prngs.size()` independent PRNGs, via the
  /// multi-stream ChaCha20 path.
  static void fill_words_multi(std::span<MaskPrng* const> prngs,
                               std::span<std::uint32_t* const> outs,
                               std::size_t n);

 private:
  ChaCha20 cipher_;
};

}  // namespace papaya::crypto
