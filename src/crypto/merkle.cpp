#include "crypto/merkle.hpp"

#include <stdexcept>

namespace papaya::crypto {

namespace {

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t prefix = 0x01;
  h.update({&prefix, 1});
  h.update(left);
  h.update(right);
  return h.finish();
}

/// Largest power of two strictly less than n (n >= 2).
std::uint64_t split_point(std::uint64_t n) {
  std::uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Digest VerifiableLog::leaf_hash(std::span<const std::uint8_t> record) {
  Sha256 h;
  const std::uint8_t prefix = 0x00;
  h.update({&prefix, 1});
  h.update(record);
  return h.finish();
}

std::uint64_t VerifiableLog::append(std::span<const std::uint8_t> record) {
  leaves_.push_back(leaf_hash(record));
  return leaves_.size() - 1;
}

std::uint64_t VerifiableLog::append(const std::string& record) {
  return append(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(record.data()), record.size()));
}

Digest VerifiableLog::subtree_root(std::uint64_t lo, std::uint64_t hi) const {
  const std::uint64_t n = hi - lo;
  if (n == 0) {
    // Empty tree root = H of empty string (RFC 6962).
    return Sha256::hash(std::span<const std::uint8_t>{});
  }
  if (n == 1) return leaves_[lo];
  const std::uint64_t k = split_point(n);
  return node_hash(subtree_root(lo, lo + k), subtree_root(lo + k, hi));
}

Digest VerifiableLog::root_at(std::uint64_t n) const {
  if (n > leaves_.size()) {
    throw std::out_of_range("VerifiableLog::root_at: beyond log size");
  }
  return subtree_root(0, n);
}

LogSnapshot VerifiableLog::snapshot() const {
  return {leaves_.size(), root_at(leaves_.size())};
}

void VerifiableLog::inclusion_path(std::uint64_t index, std::uint64_t lo,
                                   std::uint64_t hi,
                                   std::vector<Digest>& out) const {
  const std::uint64_t n = hi - lo;
  if (n <= 1) return;
  const std::uint64_t k = split_point(n);
  if (index < k) {
    inclusion_path(index, lo, lo + k, out);
    out.push_back(subtree_root(lo + k, hi));
  } else {
    inclusion_path(index - k, lo + k, hi, out);
    out.push_back(subtree_root(lo, lo + k));
  }
}

InclusionProof VerifiableLog::prove_inclusion(std::uint64_t leaf_index) const {
  if (leaf_index >= leaves_.size()) {
    throw std::out_of_range("VerifiableLog::prove_inclusion: no such leaf");
  }
  InclusionProof proof;
  proof.leaf_index = leaf_index;
  proof.tree_size = leaves_.size();
  inclusion_path(leaf_index, 0, leaves_.size(), proof.path);
  return proof;
}

void VerifiableLog::consistency_path(std::uint64_t old_size, std::uint64_t lo,
                                     std::uint64_t hi, bool whole_is_old,
                                     std::vector<Digest>& out) const {
  const std::uint64_t n = hi - lo;
  if (old_size == n) {
    if (!whole_is_old) out.push_back(subtree_root(lo, hi));
    return;
  }
  const std::uint64_t k = split_point(n);
  if (old_size <= k) {
    consistency_path(old_size, lo, lo + k, whole_is_old, out);
    out.push_back(subtree_root(lo + k, hi));
  } else {
    consistency_path(old_size - k, lo + k, hi, false, out);
    out.push_back(subtree_root(lo, lo + k));
  }
}

ConsistencyProof VerifiableLog::prove_consistency(std::uint64_t old_size) const {
  if (old_size > leaves_.size()) {
    throw std::out_of_range("VerifiableLog::prove_consistency: bad old size");
  }
  ConsistencyProof proof;
  proof.old_size = old_size;
  proof.new_size = leaves_.size();
  if (old_size == 0 || old_size == leaves_.size()) return proof;  // trivial
  consistency_path(old_size, 0, leaves_.size(), true, proof.path);
  return proof;
}

bool verify_inclusion(const Digest& leaf_hash, const InclusionProof& proof,
                      const LogSnapshot& snapshot) {
  if (proof.tree_size != snapshot.tree_size) return false;
  if (proof.leaf_index >= snapshot.tree_size) return false;

  std::uint64_t fn = proof.leaf_index;
  std::uint64_t sn = snapshot.tree_size - 1;
  Digest r = leaf_hash;
  for (const Digest& p : proof.path) {
    if (sn == 0) return false;
    if ((fn & 1) != 0 || fn == sn) {
      r = node_hash(p, r);
      if ((fn & 1) == 0) {
        do {
          fn >>= 1;
          sn >>= 1;
        } while ((fn & 1) == 0 && fn != 0);
      }
    } else {
      r = node_hash(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == snapshot.root;
}

bool verify_consistency(const LogSnapshot& old_snapshot,
                        const LogSnapshot& new_snapshot,
                        const ConsistencyProof& proof) {
  if (proof.old_size != old_snapshot.tree_size ||
      proof.new_size != new_snapshot.tree_size) {
    return false;
  }
  const std::uint64_t m = proof.old_size;
  const std::uint64_t n = proof.new_size;
  if (m > n) return false;
  if (m == n) {
    return proof.path.empty() && old_snapshot.root == new_snapshot.root;
  }
  if (m == 0) return proof.path.empty();  // empty log is a prefix of anything

  // RFC 6962-bis verification.
  std::vector<Digest> path = proof.path;
  if ((m & (m - 1)) == 0) {
    // old size is a power of two: the old root itself seeds the walk.
    path.insert(path.begin(), old_snapshot.root);
  }
  if (path.empty()) return false;

  std::uint64_t fn = m - 1;
  std::uint64_t sn = n - 1;
  while ((fn & 1) != 0) {
    fn >>= 1;
    sn >>= 1;
  }
  Digest fr = path.front();
  Digest sr = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Digest& c = path[i];
    if (sn == 0) return false;
    if ((fn & 1) != 0 || fn == sn) {
      fr = node_hash(c, fr);
      sr = node_hash(c, sr);
      if ((fn & 1) == 0) {
        do {
          fn >>= 1;
          sn >>= 1;
        } while ((fn & 1) == 0 && fn != 0);
      }
    } else {
      sr = node_hash(sr, c);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && fr == old_snapshot.root && sr == new_snapshot.root;
}

}  // namespace papaya::crypto
