#pragma once
// Append-only Merkle-tree verifiable log (App. C.2).
//
// PAPAYA uses a verifiable log (a la Trillian / Certificate Transparency) to
// record every trusted binary that may run inside the enclave: clients verify
// an *inclusion proof* that the attested binary is in the log, and auditors
// verify *consistency proofs* showing the log is append-only between any two
// snapshots.  The construction follows RFC 6962: leaf hash H(0x00 || data),
// interior hash H(0x01 || left || right).

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace papaya::crypto {

/// A snapshot of the log: its size and root hash.
struct LogSnapshot {
  std::uint64_t tree_size = 0;
  Digest root{};
};

/// Audit path proving a leaf is present in a snapshot.
struct InclusionProof {
  std::uint64_t leaf_index = 0;
  std::uint64_t tree_size = 0;
  std::vector<Digest> path;
};

/// Proof that the tree at `old_size` is a prefix of the tree at `new_size`.
struct ConsistencyProof {
  std::uint64_t old_size = 0;
  std::uint64_t new_size = 0;
  std::vector<Digest> path;
};

/// The log itself, held by the operator (server side).  Auditors and clients
/// only ever see snapshots and proofs.
class VerifiableLog {
 public:
  /// Append a record; returns its leaf index.
  std::uint64_t append(std::span<const std::uint8_t> record);
  std::uint64_t append(const std::string& record);

  std::uint64_t size() const { return leaves_.size(); }
  LogSnapshot snapshot() const;

  InclusionProof prove_inclusion(std::uint64_t leaf_index) const;
  ConsistencyProof prove_consistency(std::uint64_t old_size) const;

  /// Root of the first `n` leaves (n <= size()).
  Digest root_at(std::uint64_t n) const;

  static Digest leaf_hash(std::span<const std::uint8_t> record);

 private:
  Digest subtree_root(std::uint64_t lo, std::uint64_t hi) const;
  void inclusion_path(std::uint64_t index, std::uint64_t lo, std::uint64_t hi,
                      std::vector<Digest>& out) const;
  void consistency_path(std::uint64_t old_size, std::uint64_t lo,
                        std::uint64_t hi, bool whole_is_old,
                        std::vector<Digest>& out) const;

  std::vector<Digest> leaves_;  // leaf hashes
};

/// Client/auditor-side verification (no access to the log contents).
bool verify_inclusion(const Digest& leaf_hash, const InclusionProof& proof,
                      const LogSnapshot& snapshot);
bool verify_consistency(const LogSnapshot& old_snapshot,
                        const LogSnapshot& new_snapshot,
                        const ConsistencyProof& proof);

}  // namespace papaya::crypto
