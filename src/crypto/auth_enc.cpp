#include "crypto/auth_enc.hpp"

#include <array>

#include "crypto/chacha20.hpp"

namespace papaya::crypto {

namespace {

constexpr std::size_t kNonceSize = ChaCha20::kNonceSize;
constexpr std::size_t kTagSize = 32;

/// Derive independent cipher and MAC keys from the box key.
struct Keys {
  std::array<std::uint8_t, 32> enc;
  std::array<std::uint8_t, 32> mac;
};

Keys derive_keys(const Digest& key) {
  static const std::string info = "papaya-auth-enc-v1";
  const util::Bytes okm = hkdf_sha256(
      key, {}, {reinterpret_cast<const std::uint8_t*>(info.data()), info.size()},
      64);
  Keys out{};
  std::copy(okm.begin(), okm.begin() + 32, out.enc.begin());
  std::copy(okm.begin() + 32, okm.end(), out.mac.begin());
  return out;
}

/// Nonce = first 4 bytes zero | 8-byte little-endian sequence number.
std::array<std::uint8_t, kNonceSize> make_nonce(std::uint64_t sequence) {
  std::array<std::uint8_t, kNonceSize> nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(sequence >> (8 * i));
  }
  return nonce;
}

Digest compute_tag(const std::array<std::uint8_t, 32>& mac_key,
                   std::uint64_t sequence,
                   std::span<const std::uint8_t> nonce,
                   std::span<const std::uint8_t> body,
                   std::span<const std::uint8_t> associated_data) {
  util::ByteWriter w;
  w.u64(sequence);
  w.bytes(nonce);
  w.bytes(associated_data);
  w.bytes(body);
  return hmac_sha256(mac_key, w.data());
}

}  // namespace

SealedBox seal(const Digest& key, std::uint64_t sequence,
               std::span<const std::uint8_t> plaintext,
               std::span<const std::uint8_t> associated_data) {
  const Keys keys = derive_keys(key);
  const auto nonce = make_nonce(sequence);

  util::Bytes body(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(keys.enc, nonce);
  cipher.xor_stream(body);

  const Digest tag = compute_tag(keys.mac, sequence, nonce, body, associated_data);

  util::Bytes out;
  out.reserve(kNonceSize + body.size() + kTagSize);
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.insert(out.end(), body.begin(), body.end());
  out.insert(out.end(), tag.begin(), tag.end());
  return {std::move(out)};
}

std::optional<util::Bytes> open(const Digest& key, std::uint64_t sequence,
                                const SealedBox& box,
                                std::span<const std::uint8_t> associated_data) {
  const util::Bytes& ct = box.ciphertext;
  if (ct.size() < kNonceSize + kTagSize) return std::nullopt;

  const std::span<const std::uint8_t> nonce(ct.data(), kNonceSize);
  const std::span<const std::uint8_t> body(ct.data() + kNonceSize,
                                           ct.size() - kNonceSize - kTagSize);
  const std::span<const std::uint8_t> tag(ct.data() + ct.size() - kTagSize,
                                          kTagSize);

  const Keys keys = derive_keys(key);
  // The nonce must match the claimed sequence number — reject replays under
  // a shifted sequence even before checking the MAC.
  const auto expected_nonce = make_nonce(sequence);
  if (!util::constant_time_equal(nonce, expected_nonce)) return std::nullopt;

  const Digest expected_tag =
      compute_tag(keys.mac, sequence, nonce, body, associated_data);
  if (!util::constant_time_equal(tag, expected_tag)) return std::nullopt;

  util::Bytes plaintext(body.begin(), body.end());
  ChaCha20 cipher(keys.enc, expected_nonce);
  cipher.xor_stream(plaintext);
  return plaintext;
}

}  // namespace papaya::crypto
