#include "crypto/dh.hpp"

#include <stdexcept>

namespace papaya::crypto {

const DhParams& DhParams::simulation256() {
  // Largest prime below 2^256 (p = 2^256 - 189), generator 5.  Chosen for
  // simulation speed; see header comment.
  static const DhParams params{
      BigUInt::from_hex(
          "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43"),
      BigUInt(5)};
  return params;
}

const DhParams& DhParams::rfc3526_1536() {
  static const DhParams params{
      BigUInt::from_hex(
          "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
          "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
          "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
          "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
          "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
          "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
          "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"),
      BigUInt(2)};
  return params;
}

DhRandom::DhRandom(std::span<const std::uint8_t> seed)
    : stream_([&] {
        static const std::string info = "papaya-dh-random-v1";
        const util::Bytes key = hkdf_sha256(
            seed, {},
            {reinterpret_cast<const std::uint8_t*>(info.data()), info.size()},
            ChaCha20::kKeySize);
        const std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
        return ChaCha20(key, nonce);
      }()) {}

util::Bytes DhRandom::bytes(std::size_t n) { return stream_.keystream(n); }

DhKeyPair dh_generate(const DhParams& params, DhRandom& random) {
  const BigUInt upper = params.p - BigUInt(3);  // range [0, p-3)
  const BigUInt x =
      BigUInt::random_below(upper, [&](std::size_t n) { return random.bytes(n); }) +
      BigUInt(2);  // shift into [2, p-2]
  return {x, params.g.powmod(x, params.p)};
}

BigUInt dh_shared_element(const DhParams& params, const BigUInt& private_key,
                          const BigUInt& peer_public) {
  if (peer_public.is_zero() || peer_public >= params.p) {
    throw std::invalid_argument("dh_shared_element: public key out of range");
  }
  if (peer_public == BigUInt(1)) {
    throw std::invalid_argument("dh_shared_element: degenerate public key");
  }
  return peer_public.powmod(private_key, params.p);
}

Digest dh_derive_key(const DhParams& params, const BigUInt& shared_element,
                     const std::string& label) {
  const util::Bytes raw = shared_element.to_bytes(params.byte_width());
  const util::Bytes okm = hkdf_sha256(
      raw, {},
      {reinterpret_cast<const std::uint8_t*>(label.data()), label.size()}, 32);
  Digest out{};
  std::copy(okm.begin(), okm.end(), out.begin());
  return out;
}

}  // namespace papaya::crypto
