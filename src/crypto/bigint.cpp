#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace papaya::crypto {

namespace {

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("BigUInt::from_hex: invalid hex digit");
}

}  // namespace

BigUInt::BigUInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(const std::string& hex) {
  BigUInt out;
  for (char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') continue;
    out = (out << 4) + BigUInt(static_cast<std::uint64_t>(hex_val(c)));
  }
  return out;
}

BigUInt BigUInt::from_bytes(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  const std::size_t nlimbs = (bytes.size() + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  // bytes are big-endian; limb 0 is least significant.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t byte_from_lsb = bytes.size() - 1 - i;
    out.limbs_[byte_from_lsb / 8] |= static_cast<std::uint64_t>(bytes[i])
                                     << (8 * (byte_from_lsb % 8));
  }
  out.trim();
  return out;
}

util::Bytes BigUInt::to_bytes(std::size_t width) const {
  const std::size_t min_width = (bit_length() + 7) / 8;
  const std::size_t w = width == 0 ? std::max<std::size_t>(min_width, 1) : width;
  util::Bytes out(w, 0);
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t byte_from_lsb = i;
    const std::size_t limb = byte_from_lsb / 8;
    if (limb >= limbs_.size()) break;
    out[w - 1 - i] =
        static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_from_lsb % 8)));
  }
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(*it >> shift) & 0xf]);
    }
  }
  const auto first = out.find_first_not_of('0');
  return out.substr(first);
}

bool BigUInt::is_zero() const { return limbs_.empty(); }

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint64_t top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt BigUInt::operator+(const BigUInt& other) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned __int128 s = carry;
    if (i < limbs_.size()) s += limbs_[i];
    if (i < other.limbs_.size()) s += other.limbs_[i];
    out.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.limbs_[n] = static_cast<std::uint64_t>(carry);
  out.trim();
  return out;
}

BigUInt BigUInt::operator-(const BigUInt& other) const {
  if (*this < other) {
    throw std::underflow_error("BigUInt: subtraction underflow");
  }
  BigUInt out;
  out.limbs_.assign(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t lhs = limbs_[i];
    const std::uint64_t d1 = lhs - rhs;
    const std::uint64_t b1 = lhs < rhs;
    const std::uint64_t d2 = d1 - borrow;
    const std::uint64_t b2 = d1 < borrow;
    out.limbs_[i] = d2;
    borrow = b1 | b2;
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& other) const {
  if (is_zero() || other.is_zero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs_[i]) * other.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    out.limbs_[i + other.limbs_.size()] += static_cast<std::uint64_t>(carry);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& divisor) const {
  if (divisor.is_zero()) {
    throw std::domain_error("BigUInt: division by zero");
  }
  if (*this < divisor) return {BigUInt(), *this};

  // Schoolbook binary long division: O(bits * limbs).  Fast enough for DH at
  // simulation scale; not intended for production cryptography.
  const std::size_t shift = bit_length() - divisor.bit_length();
  BigUInt remainder = *this;
  BigUInt quotient;
  quotient.limbs_.assign(shift / 64 + 1, 0);
  BigUInt shifted = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= shifted) {
      remainder = remainder - shifted;
      quotient.limbs_[i / 64] |= 1ULL << (i % 64);
    }
    shifted = shifted >> 1;
  }
  quotient.trim();
  return {quotient, remainder};
}

BigUInt BigUInt::mulmod(const BigUInt& other, const BigUInt& m) const {
  return ((*this) * other) % m;
}

BigUInt BigUInt::powmod(const BigUInt& exp, const BigUInt& m) const {
  if (m.is_zero()) throw std::domain_error("BigUInt: powmod modulus zero");
  BigUInt base = *this % m;
  BigUInt result(1);
  result = result % m;  // handles m == 1
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = result.mulmod(result, m);
    if (exp.bit(i)) result = result.mulmod(base, m);
  }
  return result;
}

}  // namespace papaya::crypto
