#pragma once
// Arbitrary-precision unsigned integers with modular arithmetic.
//
// Backs the finite-field Diffie–Hellman key exchange (App. A.1).  Scope is
// deliberately narrow: add, sub, compare, multiply, shift, divide/mod, and
// modular exponentiation — exactly what modexp-based DH needs.  Little-endian
// limb order (limbs_[0] is least significant).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace papaya::crypto {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);

  /// Parse big-endian hex (as printed in RFC group definitions).
  static BigUInt from_hex(const std::string& hex);
  /// Parse big-endian bytes.
  static BigUInt from_bytes(std::span<const std::uint8_t> bytes);

  /// Serialize to big-endian bytes, zero-padded/truncated to `width` bytes
  /// (0 = minimal width).
  util::Bytes to_bytes(std::size_t width = 0) const;
  std::string to_hex() const;

  bool is_zero() const;
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  // Comparison.
  int compare(const BigUInt& other) const;
  bool operator==(const BigUInt& other) const { return compare(other) == 0; }
  bool operator!=(const BigUInt& other) const { return compare(other) != 0; }
  bool operator<(const BigUInt& other) const { return compare(other) < 0; }
  bool operator<=(const BigUInt& other) const { return compare(other) <= 0; }
  bool operator>(const BigUInt& other) const { return compare(other) > 0; }
  bool operator>=(const BigUInt& other) const { return compare(other) >= 0; }

  BigUInt operator+(const BigUInt& other) const;
  /// Subtraction; throws std::underflow_error if other > *this.
  BigUInt operator-(const BigUInt& other) const;
  BigUInt operator*(const BigUInt& other) const;
  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;

  /// {quotient, remainder} by binary long division.
  std::pair<BigUInt, BigUInt> divmod(const BigUInt& divisor) const;
  BigUInt operator%(const BigUInt& m) const { return divmod(m).second; }
  BigUInt operator/(const BigUInt& m) const { return divmod(m).first; }

  /// (this * other) mod m.
  BigUInt mulmod(const BigUInt& other, const BigUInt& m) const;
  /// this^exp mod m by square-and-multiply.
  BigUInt powmod(const BigUInt& exp, const BigUInt& m) const;

  /// Uniform value in [0, bound) from a caller-supplied byte source
  /// (rejection sampling).  `random_bytes(n)` must return n fresh bytes.
  template <typename ByteSource>
  static BigUInt random_below(const BigUInt& bound, ByteSource&& random_bytes) {
    const std::size_t nbytes = (bound.bit_length() + 7) / 8;
    for (;;) {
      BigUInt candidate = from_bytes(random_bytes(nbytes));
      if (candidate < bound) return candidate;
    }
  }

 private:
  void trim();

  std::vector<std::uint64_t> limbs_;  // little-endian; empty == 0
};

}  // namespace papaya::crypto
