#pragma once
// Finite-field Diffie–Hellman key exchange (App. A.1).
//
// PAPAYA's Asynchronous SecAgg uses DH to establish a shared secret between
// each client and the Trusted Secure Aggregator (TSA) through the untrusted
// server.  The TSA prepares *initial messages* in advance, without knowing
// which clients will claim them; a client completes the exchange with a
// single *completing message* (Fig. 16 steps 1–3).
//
// Group choice: a 256-bit safe-prime group is the default so that
// laptop-scale simulations with thousands of clients stay fast; the RFC 3526
// 1536-bit MODP group is available for protocol-fidelity tests.  Neither is a
// statement about production parameter sizes.

#include <cstdint>

#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace papaya::crypto {

/// DH group parameters (prime modulus p and generator g).
struct DhParams {
  BigUInt p;
  BigUInt g;
  std::size_t byte_width() const { return (p.bit_length() + 7) / 8; }

  /// 256-bit safe prime group — simulation default.
  static const DhParams& simulation256();
  /// RFC 3526 group 5 (1536-bit MODP) — protocol-fidelity testing.
  static const DhParams& rfc3526_1536();
};

/// One party's DH keypair: x private, g^x mod p public.
struct DhKeyPair {
  BigUInt private_key;
  BigUInt public_key;
};

/// Deterministic CSPRNG wrapper for key generation (seeded per entity so
/// simulations replay exactly).
class DhRandom {
 public:
  explicit DhRandom(std::span<const std::uint8_t> seed);
  util::Bytes bytes(std::size_t n);

 private:
  ChaCha20 stream_;
};

/// Generate a keypair: private key uniform in [2, p-2].
DhKeyPair dh_generate(const DhParams& params, DhRandom& random);

/// Compute the raw shared group element peer_public^private mod p.
BigUInt dh_shared_element(const DhParams& params, const BigUInt& private_key,
                          const BigUInt& peer_public);

/// Derive a 32-byte symmetric key from the shared element via HKDF with a
/// protocol-label info string (both sides must use the same label).
Digest dh_derive_key(const DhParams& params, const BigUInt& shared_element,
                     const std::string& label);

}  // namespace papaya::crypto
