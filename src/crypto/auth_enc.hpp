#pragma once
// Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//
// Fig. 16 step 4 requires that the seed the client ships to the TSA "employs
// standard techniques like MAC and sequential number to detect any tampered
// encryption".  The sequence number is bound into both the nonce and the MAC
// so a ciphertext cannot be replayed under a different sequence number.

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace papaya::crypto {

/// Ciphertext layout: [ 12-byte nonce | body | 32-byte tag ].
struct SealedBox {
  util::Bytes ciphertext;
};

/// Encrypt `plaintext` under `key` (32 bytes) with the given sequence
/// number and associated data.
SealedBox seal(const Digest& key, std::uint64_t sequence,
               std::span<const std::uint8_t> plaintext,
               std::span<const std::uint8_t> associated_data = {});

/// Decrypt and verify.  Returns nullopt if the MAC check fails (tampered
/// ciphertext, wrong key, or wrong sequence number).
std::optional<util::Bytes> open(const Digest& key, std::uint64_t sequence,
                                const SealedBox& box,
                                std::span<const std::uint8_t> associated_data = {});

}  // namespace papaya::crypto
