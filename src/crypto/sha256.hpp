#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for attestation measurements, Merkle-tree hashing in the verifiable
// log, HMAC, and HKDF.  Streaming interface plus one-shot helper.

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace papaya::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalize and return the digest.  The object must be reset() before
  /// further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

/// HKDF-SHA256 (RFC 5869): extract-then-expand, output up to 255*32 bytes.
util::Bytes hkdf_sha256(std::span<const std::uint8_t> ikm,
                        std::span<const std::uint8_t> salt,
                        std::span<const std::uint8_t> info,
                        std::size_t length);

}  // namespace papaya::crypto
