// FSM workload harness suite (`ctest -L fsm`): four composed workloads —
// each pairing one workload with an adversarial scenario — plus the harness
// meta-tests (byte-identical replay, failure repro lines, override parsing).
//
// Replaying a failure: every broken invariant prints
//   repro: ./fsm_workload_test --seed=S --steps=K --workload=W
// and this binary's main() installs those flags (or the PAPAYA_FSM_*
// environment — see fsm/repro.hpp) over each test's defaults before gtest
// runs.  --workload narrows the run to the failing workload; the others
// skip themselves.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "fsm/repro.hpp"
#include "fsm/scenario.hpp"
#include "fsm/workload.hpp"
#include "fsm/workloads.hpp"

namespace papaya::fsm {
namespace {

HarnessOptions defaults(std::uint64_t seed, std::size_t actors,
                        std::uint64_t steps, std::uint64_t quiesce_every,
                        const Scenario* scenario) {
  HarnessOptions options;
  options.seed = seed;
  options.actors = actors;
  options.steps = steps;
  options.quiesce_every = quiesce_every;
  options.scenario = scenario;
  return apply_overrides(options);
}

// ------------------------------------------------- composed workload runs --

TEST(FsmWorkload, SessionChurnUnderDiurnalWave) {
  if (!workload_selected("session_churn")) GTEST_SKIP();
  DiurnalWaveScenario::Config wave_config;
  wave_config.period_steps = 48;
  wave_config.min_availability = 0.25;
  DiurnalWaveScenario wave(wave_config);
  const HarnessOptions options = defaults(101, 4, 160, 40, &wave);
  SessionChurnWorkload workload(options.actors);
  const HarnessResult result = run_workload(workload, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.steps_run, options.steps);
}

TEST(FsmWorkload, CoordinatorFailoverUnderPartitionAndStragglers) {
  if (!workload_selected("coordinator_failover")) GTEST_SKIP();
  // Two of the three aggregators drop off the network mid-run: their
  // heartbeats stop, detect_failures moves (or orphans) their tasks, and
  // after the partition heals the first resumed heartbeat re-places any
  // orphans — all while a straggler storm skews the actor interleaving.
  PartitionScenario::Config partition_config;
  partition_config.begin_step = 40;
  partition_config.end_step = 90;
  partition_config.nodes = {0, 1};
  PartitionScenario partition(partition_config);
  StragglerStormScenario::Config storm_config;
  storm_config.begin_step = 30;
  storm_config.end_step = 120;
  storm_config.every_kth_actor = 2;
  storm_config.yields = 8;
  StragglerStormScenario storm(storm_config);
  ComposedScenario composed({&partition, &storm});
  const HarnessOptions options = defaults(202, 4, 160, 40, &composed);
  CoordinatorFailoverWorkload workload(options.actors);
  const HarnessResult result = run_workload(workload, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.steps_run, options.steps);
}

TEST(FsmWorkload, ShardedAggregationUnderStragglerStorm) {
  if (!workload_selected("sharded_agg")) GTEST_SKIP();
  StragglerStormScenario::Config storm_config;
  storm_config.begin_step = 20;
  storm_config.end_step = 100;
  storm_config.every_kth_actor = 2;
  storm_config.yields = 16;
  StragglerStormScenario storm(storm_config);
  const HarnessOptions options = defaults(303, 4, 120, 40, &storm);
  ShardedAggWorkload workload(options.actors);
  const HarnessResult result = run_workload(workload, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.steps_run, options.steps);
}

TEST(FsmWorkload, SecAggUnderByzantineFlood) {
  if (!workload_selected("secagg_flood")) GTEST_SKIP();
  ByzantineFloodScenario::Config flood_config;
  flood_config.probability = 0.45;
  ByzantineFloodScenario flood(flood_config);
  const HarnessOptions options = defaults(404, 3, 60, 20, &flood);
  SecAggFloodWorkload workload(options.actors);
  const HarnessResult result = run_workload(workload, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.steps_run, options.steps);
  // The flood must actually have exercised both paths, or the accounting
  // invariants were vacuous.
  EXPECT_GT(workload.valid_submitted(), 0u);
  EXPECT_GT(workload.malformed_submitted(), 0u);
}

TEST(FsmWorkload, EventQueueChurnOnAllBackends) {
  if (!workload_selected("event_queue_churn")) GTEST_SKIP();
  // Same interleaving pressure against the reference heap, the calendar
  // backend, and the timing wheel: whichever one the ctest leg runs under
  // (TSan included), all three must keep the (time, tie_key) drain order
  // and event conservation.
  StragglerStormScenario::Config storm_config;
  storm_config.begin_step = 20;
  storm_config.end_step = 120;
  storm_config.every_kth_actor = 2;
  storm_config.yields = 8;
  StragglerStormScenario storm(storm_config);
  for (const auto backend :
       {sim::EventQueueBackend::kHeap, sim::EventQueueBackend::kCalendar,
        sim::EventQueueBackend::kWheel}) {
    const HarnessOptions options = defaults(505, 4, 160, 40, &storm);
    EventQueueChurnWorkload workload(options.actors, backend);
    const HarnessResult result = run_workload(workload, options);
    EXPECT_TRUE(result.ok())
        << "backend="
        << (backend == sim::EventQueueBackend::kHeap       ? "heap"
            : backend == sim::EventQueueBackend::kCalendar ? "calendar"
                                                           : "wheel")
        << "\n"
        << result.summary();
    EXPECT_EQ(result.steps_run, options.steps);
  }
}

// ---------------------------------------------------- harness meta-tests --

TEST(FsmWorkload, SameSeedReplaysByteIdenticalStepLog) {
  if (!workload_selected("session_churn")) GTEST_SKIP();
  DiurnalWaveScenario::Config wave_config;
  wave_config.period_steps = 32;
  wave_config.min_availability = 0.3;
  DiurnalWaveScenario wave(wave_config);
  const HarnessOptions options = defaults(7, 4, 80, 40, &wave);

  SessionChurnWorkload first(options.actors);
  const HarnessResult a = run_workload(first, options);
  SessionChurnWorkload second(options.actors);
  const HarnessResult b = run_workload(second, options);
  ASSERT_TRUE(a.ok()) << a.summary();
  ASSERT_TRUE(b.ok()) << b.summary();
  // The acceptance artifact: thread interleavings vary, the chosen
  // trajectory does not.
  EXPECT_EQ(a.step_log, b.step_log);

  HarnessOptions reseeded = options;
  reseeded.seed = options.seed + 1;
  SessionChurnWorkload third(reseeded.actors);
  const HarnessResult c = run_workload(third, reseeded);
  ASSERT_TRUE(c.ok()) << c.summary();
  EXPECT_NE(a.step_log, c.step_log);
}

/// A deliberately broken workload: the negative control proving a violated
/// invariant surfaces as a failure with a usable repro line.
class AlwaysBrokenWorkload final : public Workload {
 public:
  std::string name() const override { return "always_broken"; }
  std::string initial_state() const override { return "noop"; }
  std::vector<StateDef> states() override {
    return {{"noop", [](StepContext&) {}, {{"noop", 1.0}}}};
  }
  void check_quiesce(std::uint64_t step,
                     InvariantCollector& invariants) override {
    invariants.fail(name(), 0, step, "deliberately broken (negative control)");
  }
};

TEST(FsmWorkload, BrokenInvariantFailsWithReproLine) {
  AlwaysBrokenWorkload workload;
  HarnessOptions options;
  options.seed = 99;
  options.actors = 2;
  options.steps = 32;
  options.quiesce_every = 8;
  const HarnessResult result = run_workload(workload, options);
  EXPECT_FALSE(result.ok());
  // The run stops at the first failing quiesce barrier instead of burning
  // the remaining steps.
  EXPECT_EQ(result.steps_run, options.quiesce_every);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("deliberately broken"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--seed=99"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--steps=32"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--workload=always_broken"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("PAPAYA_FSM_SEED=99"), std::string::npos) << summary;
  EXPECT_EQ(result.repro_line(),
            "repro: ./fsm_workload_test --seed=99 --steps=32 "
            "--workload=always_broken");
}

TEST(FsmWorkload, MalformedStateTableIsRejectedUpFront) {
  class BadTargetWorkload final : public Workload {
   public:
    std::string name() const override { return "bad_target"; }
    std::string initial_state() const override { return "a"; }
    std::vector<StateDef> states() override {
      return {{"a", [](StepContext&) {}, {{"no_such_state", 1.0}}}};
    }
  };
  BadTargetWorkload workload;
  EXPECT_THROW(run_workload(workload, HarnessOptions{}),
               std::invalid_argument);
}

// ------------------------------------------------------- override parsing --

TEST(FsmRepro, ParsesEnvironmentAndFlagsWithFlagsWinning) {
  const std::map<std::string, std::string> env_map = {
      {"PAPAYA_FSM_SEED", "11"},
      {"PAPAYA_FSM_STEPS", "22"},
      {"PAPAYA_FSM_WORKLOAD", "from_env"},
  };
  const EnvLookup env = [&env_map](const char* name) -> const char* {
    const auto it = env_map.find(name);
    return it == env_map.end() ? nullptr : it->second.c_str();
  };

  {
    const ReproOverrides o = parse_overrides(1, nullptr, env);
    ASSERT_TRUE(o.seed.has_value());
    EXPECT_EQ(*o.seed, 11u);
    ASSERT_TRUE(o.steps.has_value());
    EXPECT_EQ(*o.steps, 22u);
    ASSERT_TRUE(o.workload.has_value());
    EXPECT_EQ(*o.workload, "from_env");
    EXPECT_FALSE(o.long_run);
  }
  {
    const char* argv[] = {"fsm_workload_test", "--seed=33",
                          "--workload=from_flag", "--long",
                          "--gtest_color=no"};
    const ReproOverrides o = parse_overrides(5, argv, env);
    EXPECT_EQ(*o.seed, 33u);        // flag wins over env
    EXPECT_EQ(*o.steps, 22u);       // env survives where no flag given
    EXPECT_EQ(*o.workload, "from_flag");
    EXPECT_TRUE(o.long_run);
  }
  {
    // Garbage numerics are ignored rather than misparsed.
    const char* argv[] = {"fsm_workload_test", "--seed=12x"};
    const ReproOverrides o = parse_overrides(2, argv, nullptr);
    EXPECT_FALSE(o.seed.has_value());
    EXPECT_FALSE(o.workload.has_value());
  }
}

TEST(FsmRepro, AppliedOverridesScaleLongRunsUnlessStepsPinned) {
  // Exercise apply_overrides() against a scratch copy of the process-wide
  // overrides, restoring them afterwards so the other tests keep honouring
  // whatever main() installed.
  const ReproOverrides installed = overrides();
  HarnessOptions base;
  base.seed = 5;
  base.steps = 100;

  overrides() = ReproOverrides{};
  overrides().long_run = true;
  EXPECT_EQ(apply_overrides(base).steps, 1000u);

  overrides().steps = 7;
  EXPECT_EQ(apply_overrides(base).steps, 7u);  // explicit steps pin the soak

  overrides().workload = "session_churn";
  EXPECT_TRUE(workload_selected("session_churn"));
  EXPECT_FALSE(workload_selected("sharded_agg"));

  overrides() = installed;
}

}  // namespace
}  // namespace papaya::fsm

// Custom main: gtest strips its own flags first, then the repro flags are
// parsed from what remains (plus the PAPAYA_FSM_* environment).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  papaya::fsm::overrides() = papaya::fsm::parse_overrides(
      argc, argv, [](const char* name) -> const char* {
        return std::getenv(name);
      });
  return RUN_ALL_TESTS();
}
