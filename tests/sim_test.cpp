// Tests for the simulation substrate: event-queue ordering, population
// distribution properties (the Fig. 2 / Sec. 7.4 requirements), network
// model, and metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>

#include "sim/event_queue.hpp"
#include "sim/fl_simulator.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/population.hpp"
#include "util/stats.hpp"

namespace papaya::sim {
namespace {

// ------------------------------------------------------------ Event queue --

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&](double) { order.push_back(3); });
  q.schedule_at(1.0, [&](double) { order.push_back(1); });
  q.schedule_at(2.0, [&](double) { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i](double) { order.push_back(i); });
  }
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(double)> tick = [&](double) {
    if (++count < 10) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  while (q.step()) {
  }
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&](double) { ++ran; });
  q.schedule_at(100.0, [&](double) { ++ran; });
  q.run_until(10.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilHonoursStopPredicate) {
  EventQueue q;
  int ran = 0;
  bool stop = false;
  q.schedule_at(1.0, [&](double) {
    ++ran;
    stop = true;
  });
  q.schedule_at(2.0, [&](double) { ++ran; });
  q.run_until(10.0, [&] { return stop; });
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(5.0, [](double) {});
  q.step();
  EXPECT_THROW(q.schedule_at(1.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [](double) {}), std::invalid_argument);
}

TEST(EventQueue, FifoHoldsWhenSimultaneousEventsScheduleMore) {
  // The closed-loop determinism story leans on the seq tie-break: an event
  // that schedules another event at the *same* timestamp must see it run
  // after every already-queued event at that timestamp.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&](double now) {
    order.push_back(0);
    q.schedule_at(now, [&](double) { order.push_back(2); });
  });
  q.schedule_at(1.0, [&](double) { order.push_back(1); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, TieKeyOrdersEqualTimeEventsBeforeArrival) {
  // The documented total order is (time, tie_key, seq): at one timestamp,
  // tie keys sort before arrival order.
  EventQueue q;
  std::vector<int> order;
  for (int key = 4; key >= 0; --key) {
    q.schedule_at(1.0, static_cast<std::uint64_t>(key),
                  [&order, key](double) { order.push_back(key); });
  }
  q.schedule_in(1.0, 5, [&order](double) { order.push_back(5); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueue, EqualTimePopOrderIsScheduleRaceIndependent) {
  // Regression: equal-time events scheduled concurrently from different
  // threads used to pop in seq order — i.e. in whatever order the two
  // threads won the scheduling race, a different order every run.  With
  // explicit tie keys the pop order at a timestamp is a pure function of
  // the keys, whatever the arrival interleaving was.
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    constexpr int kPerThread = 16;
    std::vector<int> order;
    // The recording lambdas only run in the single-threaded pump below, so
    // capturing `order` from both scheduling threads is race-free.
    auto schedule_keys = [&](int first_key) {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = first_key + 2 * i;
        q.schedule_at(1.0, static_cast<std::uint64_t>(key),
                      [&order, key](double) { order.push_back(key); });
      }
    };
    std::thread even([&] { schedule_keys(0); });
    std::thread odd([&] { schedule_keys(1); });
    even.join();
    odd.join();
    while (q.step()) {
    }
    std::vector<int> expected(2 * kPerThread);
    for (int i = 0; i < 2 * kPerThread; ++i) {
      expected[static_cast<std::size_t>(i)] = i;
    }
    ASSERT_EQ(order, expected) << "trial " << trial;
  }
}

TEST(EventQueue, ScheduleAtNowIsLegalAndRunsThisInstant) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(2.0, [&](double now) {
    q.schedule_at(now, [&](double) { ++ran; });  // not "the past"
  });
  while (q.step()) {
  }
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, RunUntilWithStopAlreadyTrueRunsNothing) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&](double) { ++ran; });
  q.run_until(10.0, [] { return true; });
  EXPECT_EQ(ran, 0);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // a stopped clock does not jump ahead
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilStopMidwayLeavesClockAtLastEvent) {
  EventQueue q;
  bool stop = false;
  q.schedule_at(1.0, [&](double) { stop = true; });
  q.schedule_at(5.0, [](double) {});
  q.run_until(10.0, [&] { return stop; });
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesToDeadline) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------- Calendar backend equivalence --

TEST(EventQueue, BackendFromEnvParsesAndRejects) {
  unsetenv("PAPAYA_EVENT_QUEUE");
  EXPECT_EQ(event_queue_backend_from_env(EventQueueBackend::kHeap),
            EventQueueBackend::kHeap);
  EXPECT_EQ(event_queue_backend_from_env(EventQueueBackend::kCalendar),
            EventQueueBackend::kCalendar);
  setenv("PAPAYA_EVENT_QUEUE", "calendar", 1);
  EXPECT_EQ(event_queue_backend_from_env(EventQueueBackend::kHeap),
            EventQueueBackend::kCalendar);
  EXPECT_EQ(EventQueue{}.backend(), EventQueueBackend::kCalendar);
  setenv("PAPAYA_EVENT_QUEUE", "heap", 1);
  EXPECT_EQ(event_queue_backend_from_env(EventQueueBackend::kCalendar),
            EventQueueBackend::kHeap);
  setenv("PAPAYA_EVENT_QUEUE", "wheel", 1);
  EXPECT_EQ(event_queue_backend_from_env(EventQueueBackend::kHeap),
            EventQueueBackend::kWheel);
  EXPECT_EQ(EventQueue{}.backend(), EventQueueBackend::kWheel);
  setenv("PAPAYA_EVENT_QUEUE", "splay", 1);
  EXPECT_THROW(event_queue_backend_from_env(EventQueueBackend::kHeap),
               std::invalid_argument);
  unsetenv("PAPAYA_EVENT_QUEUE");
  EXPECT_EQ(EventQueue{}.backend(), EventQueueBackend::kHeap);
}

TEST(EventQueue, SchedulingInThePastThrowsOnEveryBackend) {
  for (const auto backend :
       {EventQueueBackend::kHeap, EventQueueBackend::kCalendar,
        EventQueueBackend::kWheel}) {
    EventQueue q(backend);
    q.schedule_at(5.0, [](double) {});
    q.step();
    EXPECT_THROW(q.schedule_at(1.0, [](double) {}), std::invalid_argument);
    EXPECT_THROW(q.schedule_in(-1.0, [](double) {}), std::invalid_argument);
    // The rejected calls must not have half-enqueued anything.
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
  }
}

// The acceptance bar for an O(1) backend: under randomized interleaved
// scheduling and popping — equal-time ties, fractional boundary-hugging
// times, far-future sparse stretches, events scheduling events — the
// candidate backend must pop the exact same label sequence as the reference
// heap.  Both implement the same documented (time, tie_key, seq) total
// order, so the sequences are equal by construction or one of them is
// broken.
void expect_pop_sequence_matches_heap(EventQueueBackend candidate) {
  util::Rng rng(0xca1e2026ULL);
  for (int trial = 0; trial < 10; ++trial) {
    EventQueue heap(EventQueueBackend::kHeap);
    EventQueue other(candidate);
    std::vector<int> heap_order, other_order;
    int label = 0;
    auto schedule_both = [&](double delay, std::uint64_t key) {
      heap.schedule_at(heap.now() + delay, key,
                       [&heap_order, label](double) {
                         heap_order.push_back(label);
                       });
      other.schedule_at(other.now() + delay, key,
                        [&other_order, label](double) {
                          other_order.push_back(label);
                        });
      ++label;
    };
    for (int round = 0; round < 50; ++round) {
      const int burst = 1 + static_cast<int>(rng.uniform_int(8));
      for (int i = 0; i < burst; ++i) {
        double delay = 0.0;
        switch (rng.uniform_int(4)) {
          case 0:  // quantized near delays: heavy equal-time collisions
            delay = 0.25 * static_cast<double>(rng.uniform_int(8));
            break;
          case 1:  // continuous near delays: bucket-boundary huggers
            delay = rng.uniform(0.0, 4.0);
            break;
          case 2:  // mid-range
            delay = rng.uniform(0.0, 64.0);
            break;
          case 3:  // far future: sparse-year jumps, resizes, wheel
                   // level promotions
            delay = 256.0 + rng.uniform(0.0, 4096.0);
            break;
        }
        schedule_both(delay, rng.uniform_int(4));
      }
      // Drain a random prefix from both in lockstep; clocks stay equal, so
      // the relative delays above land on identical absolute times.
      const int pops = static_cast<int>(rng.uniform_int(6));
      for (int i = 0; i < pops; ++i) {
        const bool heap_popped = heap.step();
        ASSERT_EQ(heap_popped, other.step());
      }
      ASSERT_DOUBLE_EQ(heap.now(), other.now());
    }
    while (heap.step()) {
    }
    while (other.step()) {
    }
    ASSERT_EQ(heap_order, other_order) << "trial " << trial;
    ASSERT_DOUBLE_EQ(heap.now(), other.now());
    EXPECT_EQ(heap.events_processed(), other.events_processed());
  }
}

TEST(EventQueue, CalendarPopSequenceMatchesHeapUnderRandomChurn) {
  expect_pop_sequence_matches_heap(EventQueueBackend::kCalendar);
}

TEST(EventQueue, WheelPopSequenceMatchesHeapUnderRandomChurn) {
  expect_pop_sequence_matches_heap(EventQueueBackend::kWheel);
}

// The O(1) backends face the same concurrency contract as the heap:
// equal-time events scheduled from racing threads pop in tie-key order,
// not arrival order.  (This is also the TSan hammer for each backend's
// scheduling path.)
void expect_equal_time_order_race_independent(EventQueueBackend backend) {
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q(backend);
    constexpr int kPerThread = 16;
    std::vector<int> order;
    auto schedule_keys = [&](int first_key) {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = first_key + 2 * i;
        q.schedule_at(1.0, static_cast<std::uint64_t>(key),
                      [&order, key](double) { order.push_back(key); });
      }
    };
    std::thread even([&] { schedule_keys(0); });
    std::thread odd([&] { schedule_keys(1); });
    even.join();
    odd.join();
    while (q.step()) {
    }
    std::vector<int> expected(2 * kPerThread);
    for (int i = 0; i < 2 * kPerThread; ++i) {
      expected[static_cast<std::size_t>(i)] = i;
    }
    ASSERT_EQ(order, expected) << "trial " << trial;
  }
}

TEST(EventQueue, CalendarEqualTimePopOrderIsScheduleRaceIndependent) {
  expect_equal_time_order_race_independent(EventQueueBackend::kCalendar);
}

TEST(EventQueue, WheelEqualTimePopOrderIsScheduleRaceIndependent) {
  expect_equal_time_order_race_independent(EventQueueBackend::kWheel);
}

TEST(EventQueue, CalendarSurvivesResizeChurn) {
  // Push enough to force doubling resizes, drain to force shrinks, and keep
  // the order invariant throughout.  Times repeat across waves' offsets so
  // bucket occupancy is lumpy.
  EventQueue q(EventQueueBackend::kCalendar);
  util::Rng rng(77);
  double last = -1.0;
  std::size_t popped = 0;
  std::function<void(double)> check = [&](double t) {
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  };
  std::size_t scheduled = 0;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 3000; ++i) {
      q.schedule_at(q.now() + rng.uniform(0.0, 50.0), check);
      ++scheduled;
    }
    // Partial drain between waves shrinks the ring again.
    for (int i = 0; i < 2500 && q.step(); ++i) {
    }
  }
  while (q.step()) {
  }
  EXPECT_EQ(popped, scheduled);
  EXPECT_EQ(q.events_processed(), scheduled);
}

TEST(EventQueue, CalendarGrowBoundaryKeepsOrderAtExactThreshold) {
  // Regression for the 2N grow rule: walk the pending count right across
  // the resize thresholds (16 -> rebuild at 17 pushes on the 8-bucket ring,
  // then again at each doubling) with every event at the *same* timestamp,
  // the degenerate span that forces the width clamp (hi == lo) down the
  // std::max({1.0, 1e-9, hi * 2^-40}) path.  Pop order must stay the
  // documented tie-key order through every rebuild.
  EventQueue q(EventQueueBackend::kCalendar);
  constexpr int kEvents = 600;  // crosses 16, 32, 64, 128, 256, 512
  std::vector<int> order;
  for (int i = kEvents - 1; i >= 0; --i) {
    q.schedule_at(1000.0, static_cast<std::uint64_t>(i),
                  [&order, i](double) { order.push_back(i); });
  }
  while (q.step()) {
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "at pop " << i;
  }
}

TEST(EventQueue, CalendarPushBelowRebuildFloorPullsCursorBack) {
  // Stranded-event regression.  A grow rebuild re-anchors the cursor at
  // the home bucket of the minimum event present *at rebuild time*, but a
  // later push may legally arrive earlier than that minimum (any time >=
  // the last pop is valid — here nothing has popped, so anything >= 0).
  // Without the push-side cursor pull-back such an event sits behind the
  // cursor where the year scan never looks, and pops arbitrarily late:
  // the 10M-device seeding loop rebuilds mid-seed, and every later device
  // that drew a check-in below the rebuild-time minimum was stranded —
  // heap and calendar trajectories diverged from the very first pop.
  EventQueue q(EventQueueBackend::kCalendar);
  std::vector<double> popped;
  auto record = [&popped](double t) { popped.push_back(t); };
  // 17 pushes on the initial 8-bucket ring trigger the grow rebuild; the
  // degenerate span (hi == lo == 10) clamps the width to 1.0, anchoring
  // the cursor at virtual bucket 10.
  for (int i = 0; i < 17; ++i) q.schedule_at(10.0, record);
  // Home bucket 0 — behind the post-rebuild cursor.  Must still pop first.
  q.schedule_at(0.5, record);
  while (q.step()) {
  }
  ASSERT_EQ(popped.size(), 18u);
  EXPECT_DOUBLE_EQ(popped.front(), 0.5);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_DOUBLE_EQ(popped[i], 10.0) << "at pop " << i;
  }
}

TEST(EventQueue, CalendarShrinkBoundaryKeepsOrderAcrossWidthRetune) {
  // Regression for the N/4 shrink rule: grow the ring with a wide time
  // span (large width estimate), then drain until size_ < buckets/4 so the
  // rebuild re-tunes the width from the *surviving* (narrow, far-future)
  // span.  The pop order across the shrink — where every surviving event's
  // virtual bucket is recomputed under a new width — must stay global.
  EventQueue q(EventQueueBackend::kCalendar);
  util::Rng rng(0x5157ULL);
  std::vector<double> times;
  // 200 near events across a wide span (drives width up on grow rebuilds)
  // and 40 far events packed into a 2-second window (the survivors).
  for (int i = 0; i < 200; ++i) times.push_back(rng.uniform(0.0, 5000.0));
  for (int i = 0; i < 40; ++i) times.push_back(9000.0 + rng.uniform(0.0, 2.0));
  std::vector<double> popped;
  for (const double t : times) {
    q.schedule_at(t, [&popped](double at) { popped.push_back(at); });
  }
  while (q.step()) {
  }
  std::sort(times.begin(), times.end());
  ASSERT_EQ(popped.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_DOUBLE_EQ(popped[i], times[i]) << "at pop " << i;
  }
}

TEST(EventQueue, CalendarBucketEdgeRoundingCannotSplitPushFromScan) {
  // Bucket-edge FP rounding regression: schedule times that hug bucket
  // boundaries from both sides at many magnitudes (k*width ± 1 ulp-ish
  // offsets).  Push and the year scan share one floor(time/width)
  // expression, so an edge-hugger must never qualify in a different bucket
  // than it was inserted into — which would either skip it (hang) or pop
  // it out of order.
  EventQueue q(EventQueueBackend::kCalendar);
  std::vector<double> times;
  for (int k = 1; k <= 64; ++k) {
    const double edge = static_cast<double>(k);  // initial width_ is 1.0
    times.push_back(edge);
    times.push_back(std::nextafter(edge, 0.0));
    times.push_back(std::nextafter(edge, 1e9));
    times.push_back(edge * 128.0);  // far enough to cross rebuilt widths
  }
  std::vector<double> popped;
  for (const double t : times) {
    q.schedule_at(t, [&popped](double at) { popped.push_back(at); });
  }
  while (q.step()) {
  }
  std::sort(times.begin(), times.end());
  ASSERT_EQ(popped.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_DOUBLE_EQ(popped[i], times[i]) << "at pop " << i;
  }
}

TEST(EventQueue, WheelSurvivesCascadeAndOverflowChurn) {
  // Wheel-specific shapes: far-future events beyond the 2^32-tick horizon
  // (the sorted overflow list), coarse-level promotions that cascade back
  // down as the clock advances, equal-tick collisions inside one level-0
  // bucket, and near/far interleaving that exercises the post-cascade
  // "schedule before base" clamp.  Order must stay the full documented
  // total order throughout.
  EventQueue q(EventQueueBackend::kWheel);
  util::Rng rng(0x8ee1ULL);
  double last = -1.0;
  std::size_t popped = 0;
  std::function<void(double)> check = [&](double t) {
    EXPECT_GE(t, last);
    last = t;
    ++popped;
    if (popped % 7 == 0) {
      // Events scheduling events just above now: lands before base_ after
      // a cascade jumped it ahead.
      q.schedule_at(t + 0.0001, [&](double u) {
        EXPECT_GE(u, last);
        last = u;
        ++popped;
      });
    }
  };
  std::size_t scheduled = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 500; ++i) {
      double delay = 0.0;
      switch (rng.uniform_int(4)) {
        case 0: delay = rng.uniform(0.0, 0.01); break;        // level 0
        case 1: delay = rng.uniform(0.0, 50.0); break;        // mid levels
        case 2: delay = 1e5 + rng.uniform(0.0, 1e5); break;   // level 3
        case 3: delay = 5e6 + rng.uniform(0.0, 1e6); break;   // overflow
      }
      q.schedule_at(q.now() + delay, check);
      ++scheduled;
    }
    for (int i = 0; i < 400 && q.step(); ++i) {
    }
  }
  while (q.step()) {
  }
  EXPECT_GE(popped, scheduled);
  EXPECT_EQ(q.events_processed(), popped);
}

// -------------------------------------------------------------- Population --

PopulationConfig default_population(std::size_t n = 20000) {
  PopulationConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 7;
  return cfg;
}

TEST(Population, ExecutionTimesSpanTwoOrdersOfMagnitude) {
  // The Fig. 2 requirement.
  const DevicePopulation pop(default_population());
  std::vector<double> times;
  times.reserve(pop.size());
  for (const auto& d : pop.devices()) times.push_back(d.mean_exec_time_s);
  const double p1 = util::percentile(times, 1.0);
  const double p99 = util::percentile(times, 99.0);
  EXPECT_GT(p99 / p1, 100.0);
}

TEST(Population, SlownessCorrelatesWithExampleCount) {
  // The Sec. 7.4 requirement: "very high correlation between slow devices
  // and devices with many training samples".
  const DevicePopulation pop(default_population());
  std::vector<double> slowness, examples;
  for (const auto& d : pop.devices()) {
    slowness.push_back(std::log(d.hardware_factor));
    examples.push_back(static_cast<double>(d.num_examples));
  }
  EXPECT_GT(util::pearson(slowness, examples), 0.6);
}

TEST(Population, ExampleCountsWithinRange) {
  PopulationConfig cfg = default_population(5000);
  cfg.min_examples = 3;
  cfg.max_examples = 17;
  const DevicePopulation pop(cfg);
  for (const auto& d : pop.devices()) {
    EXPECT_GE(d.num_examples, 3u);
    EXPECT_LE(d.num_examples, 17u);
  }
}

TEST(Population, DeterministicFromSeed) {
  const DevicePopulation a(default_population(100));
  const DevicePopulation b(default_population(100));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.device(i).mean_exec_time_s, b.device(i).mean_exec_time_s);
    EXPECT_EQ(a.device(i).num_examples, b.device(i).num_examples);
  }
}

TEST(Population, SampledExecTimeJittersAroundMean) {
  const DevicePopulation pop(default_population(10));
  util::Rng rng(9);
  const auto& d = pop.device(0);
  util::RunningStat stat;
  for (int i = 0; i < 2000; ++i) {
    stat.add(pop.sample_exec_time(0, rng));
  }
  // Log-normal jitter with sigma 0.2: mean ~ mean_exec * exp(0.02).
  EXPECT_NEAR(stat.mean(), d.mean_exec_time_s * std::exp(0.02),
              0.05 * d.mean_exec_time_s);
}

TEST(Population, ZeroCorrelationDecouplesExamples) {
  PopulationConfig cfg = default_population(20000);
  cfg.slowness_example_correlation = 0.0;
  const DevicePopulation pop(cfg);
  std::vector<double> slowness, examples;
  for (const auto& d : pop.devices()) {
    slowness.push_back(std::log(d.hardware_factor));
    examples.push_back(static_cast<double>(d.num_examples));
  }
  EXPECT_NEAR(util::pearson(slowness, examples), 0.0, 0.05);
}

TEST(Population, InvalidConfigThrows) {
  PopulationConfig cfg = default_population(0);
  EXPECT_THROW(DevicePopulation{cfg}, std::invalid_argument);
  cfg = default_population(10);
  cfg.min_examples = 10;
  cfg.max_examples = 5;
  EXPECT_THROW(DevicePopulation{cfg}, std::invalid_argument);
}

TEST(Population, QuantileMappingIsHalfOpenWithClosedTopEdge) {
  // Regression for the example-count bucket mapping: u ∈ [k/range,
  // (k+1)/range) lands in bucket k; only u == 1.0 exactly takes the top
  // bucket's closed upper edge.
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.0, 3, 6), 3u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.249, 3, 6), 3u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.25, 3, 6), 4u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.5, 3, 6), 5u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.75, 3, 6), 6u);
  const double just_under_one = std::nextafter(1.0, 0.0);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(just_under_one, 3, 6),
            6u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(1.0, 3, 6), 6u);
  // Degenerate single-bucket range.
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(0.0, 5, 5), 5u);
  EXPECT_EQ(DevicePopulation::example_count_from_quantile(1.0, 5, 5), 5u);
}

TEST(Population, QuantileMappingDistributesBucketsUniformly) {
  // Pin the bucket weights: a uniform grid of quantiles must land exactly
  // evenly across [lo, hi] — the half-open mapping gives every count k the
  // same probability mass 1/range, including both endpoints.
  constexpr std::size_t kLo = 2, kHi = 9;  // 8 buckets
  constexpr std::size_t kGrid = 8000;      // 1000 grid points per bucket
  std::vector<std::size_t> hits(kHi + 1, 0);
  for (std::size_t i = 0; i < kGrid; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / kGrid;
    ++hits[DevicePopulation::example_count_from_quantile(u, kLo, kHi)];
  }
  for (std::size_t k = kLo; k <= kHi; ++k) {
    EXPECT_EQ(hits[k], kGrid / (kHi - kLo + 1)) << "bucket " << k;
  }
}

// ----------------------------------------------------------------- Network --

TEST(Network, LargerTransfersTakeLonger) {
  NetworkModel net({});
  util::Rng rng(10);
  double small = 0.0, large = 0.0;
  for (int i = 0; i < 200; ++i) {
    small += net.download_time_s(100'000, rng);
    large += net.download_time_s(10'000'000, rng);
  }
  EXPECT_GT(large, small);
}

TEST(Network, IncludesRtt) {
  NetworkConfig cfg;
  cfg.rtt_s = 2.0;
  NetworkModel net(cfg);
  util::Rng rng(11);
  EXPECT_GE(net.download_time_s(1, rng), 2.0);
}

TEST(Network, ZeroByteTransfersAreFreeAndDrawless) {
  NetworkModel net({});
  util::Rng rng(12);
  EXPECT_DOUBLE_EQ(net.download_time_s(0, rng), 0.0);
  EXPECT_DOUBLE_EQ(net.upload_time_s(0, rng), 0.0);
  // No jitter draw was consumed by either zero-byte transfer: the next raw
  // draw is still the seed's first (draw budgets are per-participation
  // invariants in per-entity stream mode).
  util::Rng untouched(12);
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(Network, NonpositiveBandwidthIsRejectedAtConstruction) {
  NetworkConfig cfg;
  cfg.mean_download_mbps = 0.0;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.mean_upload_mbps = -1.0;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.serialize_mbps = 0.0;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
  cfg = {};
  cfg.rtt_s = -0.1;
  EXPECT_THROW(NetworkModel{cfg}, std::invalid_argument);
}

TEST(Network, StreamRngJitterMatchesSharedRngBitForBit) {
  // The jitter draw is generic over the generator: the same raw 64-bit
  // draws produce the same transfer time whichever generator supplies them
  // (the distribution layer is shared — util::RngDistributions).
  NetworkModel net({});
  util::Rng xoshiro(3);
  util::Rng xoshiro_replay(3);
  EXPECT_DOUBLE_EQ(net.download_time_s(1 << 20, xoshiro),
                   net.download_time_s(1 << 20, xoshiro_replay));
  util::StreamRng stream(3, 1, 1);
  util::StreamRng stream_replay(3, 1, 1);
  EXPECT_DOUBLE_EQ(net.upload_time_s(1 << 20, stream),
                   net.upload_time_s(1 << 20, stream_replay));
}

// ----------------------------------------------------------------- Metrics --

TEST(TimeSeries, ValueAtReturnsLastValueAtOrBefore) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  ts.add(4.0, 40.0);
  EXPECT_TRUE(std::isnan(ts.value_at(0.5)));
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(3.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 40.0);
}

TEST(TimeSeries, ValueAtBoundaryCases) {
  TimeSeries empty;
  EXPECT_TRUE(std::isnan(empty.value_at(0.0)));

  TimeSeries single;
  single.add(2.0, 7.0);
  EXPECT_TRUE(std::isnan(single.value_at(1.999)));
  EXPECT_DOUBLE_EQ(single.value_at(2.0), 7.0);   // t == times.front()
  EXPECT_DOUBLE_EQ(single.value_at(1e9), 7.0);   // far past the end

  TimeSeries ts;
  ts.add(1.0, 1.0);
  ts.add(1.0, 1.5);  // equal-time appends are legal (monotone, not strict)
  ts.add(3.0, 3.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 1.5);  // latest value at a repeated t
  EXPECT_DOUBLE_EQ(ts.value_at(3.0), 3.0);  // t == times.back()
  EXPECT_DOUBLE_EQ(ts.value_at(2.0), 1.5);
}

TEST(TimeSeries, CappedSeriesDecimatesDeterministically) {
  // With a capacity the series keeps a stride-decimated prefix-preserving
  // subsample: bounded memory, first point always retained, still
  // time-monotone, and value_at keeps working on the survivors.
  TimeSeries ts;
  ts.set_capacity(8);
  for (int i = 0; i < 1000; ++i) {
    ts.add(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_LE(ts.size(), 8u);
  EXPECT_GE(ts.size(), 4u);  // halving never drops below cap/2
  EXPECT_DOUBLE_EQ(ts.times.front(), 0.0);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_GT(ts.times[i], ts.times[i - 1]);
  }
  EXPECT_DOUBLE_EQ(ts.value_at(999.0), ts.values.back());

  // Identical input → identical survivors (pure function of the sequence).
  TimeSeries replay;
  replay.set_capacity(8);
  for (int i = 0; i < 1000; ++i) {
    replay.add(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_EQ(ts.times, replay.times);
  EXPECT_EQ(ts.values, replay.values);
}

TEST(TimeSeries, UncappedSeriesKeepsEveryPoint) {
  TimeSeries ts;  // capacity 0 = unlimited (the default)
  for (int i = 0; i < 100; ++i) ts.add(static_cast<double>(i), 0.0);
  EXPECT_EQ(ts.size(), 100u);
}

// -------------------------------------------------------------- Model store --

SimulationConfig store_config() {
  SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 12;
  cfg.task.aggregation_goal = 2;
  cfg.population.num_devices = 100;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 20;
  cfg.eval_every_steps = 10;
  cfg.seed = 5;
  return cfg;
}

TEST(Simulator, UnconstrainedModelStoreNeverStalls) {
  SimulationConfig cfg = store_config();
  FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_EQ(result.model_store_stats.writes, result.server_steps);
  EXPECT_DOUBLE_EQ(result.model_store_stats.stall_s, 0.0);
}

TEST(Simulator, TightModelStoreAccumulatesStall) {
  // Model is ~10^4 bytes; at 10 B/s each publish takes ~10^3 s while steps
  // land every few sim-seconds — the Sec. 7.3 pressure must register.
  SimulationConfig cfg = store_config();
  cfg.model_store.write_bandwidth_bytes_per_s = 10.0;
  FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_EQ(result.model_store_stats.writes, result.server_steps);
  EXPECT_GT(result.model_store_stats.stall_s, 0.0);
  EXPECT_GT(result.model_store_stats.bytes_written, 0u);
}

TEST(Simulator, ModelStoreDoesNotPerturbTraining) {
  // Metering is observational: identical seeds converge to bit-identical
  // models regardless of store bandwidth.
  SimulationConfig cfg = store_config();
  FlSimulator unconstrained(cfg);
  cfg.model_store.write_bandwidth_bytes_per_s = 10.0;
  FlSimulator constrained(cfg);
  EXPECT_EQ(unconstrained.run().final_model, constrained.run().final_model);
}

// ------------------------------------------------------ Sharded aggregation --

TEST(Simulator, ShardedTaskTrainsEndToEnd) {
  // The sharded server path (task.aggregator_shards > 1) must carry a whole
  // simulated deployment: client updates are consistent-hashed across
  // per-shard pipelines, every goal still triggers exactly one cross-shard
  // server step, and the update-conservation invariants hold.
  SimulationConfig cfg = store_config();
  cfg.task.aggregator_shards = 4;
  FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_EQ(result.server_steps, 20u);
  EXPECT_EQ(result.task_stats.updates_applied,
            result.server_steps * cfg.task.aggregation_goal);
  EXPECT_GE(result.task_stats.updates_received,
            result.task_stats.updates_applied);
  EXPECT_GT(result.final_eval_loss, 0.0);
}

TEST(Simulator, ShardedRunIsDeterministicPerShardCount) {
  // Stream-to-shard placement is hash-deterministic and each single-worker
  // shard folds in arrival order, so a sharded simulation is bit-for-bit
  // reproducible for a fixed shard count.
  SimulationConfig cfg = store_config();
  cfg.task.aggregator_shards = 2;
  cfg.max_server_steps = 8;
  FlSimulator first(cfg);
  FlSimulator second(cfg);
  EXPECT_EQ(first.run().final_model, second.run().final_model);
}

// ------------------------------------------------------- Batched pipelines --

TEST(Simulator, BatchedSecAggModeMatchesPerUpdateMode) {
  // The batched SecAgg pipeline (TaskConfig::aggregation_batch_size > 1)
  // accepts the same contributions into the same epochs and folds in
  // Z_{2^32}, so a whole simulated deployment must train to a bit-identical
  // model in batched and per-update mode.
  SimulationConfig cfg = store_config();
  cfg.task.secagg_enabled = true;
  cfg.task.aggregation_goal = 4;
  cfg.max_server_steps = 6;
  FlSimulator per_update(cfg);
  cfg.task.aggregation_batch_size = 3;
  FlSimulator batched(cfg);

  const auto a = per_update.run();
  const auto b = batched.run();
  EXPECT_EQ(a.server_steps, b.server_steps);
  EXPECT_EQ(a.task_stats.updates_applied, b.task_stats.updates_applied);
  EXPECT_EQ(a.final_model, b.final_model);
}

// ------------------------------------------------ Pipelined client runtime --

TEST(Simulator, PipelinedModeMatchesSequentialBitForBit) {
  // TaskConfig::pipelined_clients is an observational latency model (like
  // ModelStore metering): with the same seed, pipelining on and off must
  // produce identical model trajectories, applied-update counts, and event
  // schedules — only per-client latency metrics may differ.
  SimulationConfig cfg = store_config();
  cfg.max_server_steps = 12;
  FlSimulator sequential(cfg);
  cfg.task.pipelined_clients = true;
  FlSimulator pipelined(cfg);

  const auto a = sequential.run();
  const auto b = pipelined.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_EQ(a.server_steps, b.server_steps);
  EXPECT_EQ(a.task_stats.updates_applied, b.task_stats.updates_applied);
  EXPECT_EQ(a.task_stats.updates_received, b.task_stats.updates_received);
  EXPECT_EQ(a.task_stats.updates_discarded, b.task_stats.updates_discarded);
  EXPECT_EQ(a.participations_started, b.participations_started);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
  // The whole trajectory, not just the endpoint: identical evaluation
  // points at identical times.
  EXPECT_EQ(a.loss_curve.times, b.loss_curve.times);
  EXPECT_EQ(a.loss_curve.values, b.loss_curve.values);
}

TEST(Simulator, PipelinedLatencyDropsWhileDynamicsUnchanged) {
  // With multi-chunk uploads the pipelined schedule genuinely overlaps
  // train/serialize/upload: every completed participation's pipelined
  // latency must beat the sequential stage-sum charge, while the protocol
  // schedule (and therefore every record's identity and timing) matches
  // the sequential run exactly.
  SimulationConfig cfg = store_config();
  cfg.upload_chunk_bytes = 256;  // force several chunks per upload
  cfg.max_server_steps = 10;
  FlSimulator sequential(cfg);
  cfg.task.pipelined_clients = true;
  FlSimulator pipelined(cfg);

  const auto a = sequential.run();
  const auto b = pipelined.run();
  EXPECT_EQ(a.final_model, b.final_model);
  ASSERT_EQ(a.participations.size(), b.participations.size());

  std::size_t completed = 0;
  for (std::size_t i = 0; i < a.participations.size(); ++i) {
    const auto& seq = a.participations[i];
    const auto& pipe = b.participations[i];
    EXPECT_EQ(seq.client_id, pipe.client_id);
    EXPECT_EQ(seq.update_applied, pipe.update_applied);
    EXPECT_DOUBLE_EQ(seq.start_time, pipe.start_time);
    EXPECT_DOUBLE_EQ(seq.round_latency_s, pipe.round_latency_s);
    if (seq.round_latency_s > 0.0) {  // completed participation
      ++completed;
      // Sequential mode reports the stage sum for both metrics.
      EXPECT_DOUBLE_EQ(seq.pipelined_latency_s, seq.round_latency_s);
      // Pipelined mode strictly beats it once there is overlap to exploit.
      EXPECT_GT(pipe.upload_chunks, 1u);
      EXPECT_LT(pipe.pipelined_latency_s, pipe.round_latency_s);
      EXPECT_GT(pipe.pipelined_latency_s, 0.0);
    }
  }
  EXPECT_GT(completed, 0u);
}

TEST(Simulator, PipelinedRunIsDeterministicIncludingBusySeries) {
  SimulationConfig cfg = store_config();
  cfg.task.pipelined_clients = true;
  cfg.record_utilization = true;
  cfg.max_server_steps = 6;
  FlSimulator first(cfg);
  FlSimulator second(cfg);
  const auto a = first.run();
  const auto b = second.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_EQ(a.busy_clients.times, b.busy_clients.times);
  EXPECT_EQ(a.busy_clients.values, b.busy_clients.values);
  EXPECT_GT(a.busy_clients.size(), 0u);
  // The busy gauge stays within the concurrency envelope.
  for (const double v : a.busy_clients.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, static_cast<double>(cfg.task.concurrency));
  }
}

TEST(Simulator, BusySeriesOnlyRecordedWhenPipelined) {
  SimulationConfig cfg = store_config();
  cfg.record_utilization = true;
  cfg.max_server_steps = 4;
  FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_GT(result.active_clients.size(), 0u);
  EXPECT_EQ(result.busy_clients.size(), 0u);
}

// ------------------------------------------------- RNG stream equivalence --

std::uint64_t fnv1a_floats(const std::vector<float>& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size() * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

double exec_time_sum(const SimulationResult& r) {
  double sum = 0.0;
  for (const auto& p : r.participations) sum += p.exec_time_s;
  return sum;
}

TEST(Simulator, LegacyStreamsReproducePreRefactorTrajectoryBitForBit) {
  // The acceptance bar for the stream refactor: with the default
  // kSharedLegacy mode, the simulator must reproduce the trajectories the
  // pre-stream code produced — these constants are a fingerprint captured
  // from the shared-rng_ simulator (commit 1808681) running exactly this
  // config.  If this test fails, the migration shim no longer maps the old
  // draw sites onto the shared sequence in the legacy order.
  SimulationConfig cfg = store_config();  // async, seed 5, 20 steps
  FlSimulator simulator(cfg);
  const auto r = simulator.run();
  EXPECT_DOUBLE_EQ(r.end_time_s, 190.59219085447933);
  EXPECT_EQ(r.server_steps, 20u);
  EXPECT_EQ(r.comm_trips, 40u);
  EXPECT_EQ(r.participations_started, 54u);
  EXPECT_DOUBLE_EQ(r.final_eval_loss, 3.4466637699270413);
  ASSERT_EQ(r.participations.size(), 43u);
  EXPECT_DOUBLE_EQ(exec_time_sum(r), 1510.9047466958796);
  EXPECT_EQ(fnv1a_floats(r.final_model), 0xa12a2ff541ae1f54ULL);
}

TEST(Simulator, LegacyStreamsReproducePreRefactorSyncTrajectory) {
  // Same fingerprint discipline for the SyncFL path (cohort semantics hit
  // the same draw sites in a different schedule).
  SimulationConfig cfg = store_config();
  cfg.task.mode = fl::TrainingMode::kSync;
  cfg.task.concurrency = 13;
  cfg.task.aggregation_goal = 10;
  cfg.max_server_steps = 6;
  cfg.seed = 9;
  FlSimulator simulator(cfg);
  const auto r = simulator.run();
  EXPECT_DOUBLE_EQ(r.end_time_s, 599.93502974803403);
  EXPECT_EQ(r.server_steps, 6u);
  EXPECT_EQ(r.comm_trips, 60u);
  EXPECT_EQ(r.participations_started, 79u);
  EXPECT_DOUBLE_EQ(r.final_eval_loss, 3.4564896490925139);
  ASSERT_EQ(r.participations.size(), 79u);
  EXPECT_DOUBLE_EQ(exec_time_sum(r), 6024.8335555918538);
  EXPECT_EQ(fnv1a_floats(r.final_model), 0x649e6f135070e30eULL);
}

TEST(Simulator, PerEntityStreamsKeepDistributionShapeNotDrawValues) {
  // Per-entity mode redraws every stochastic quantity from entity-keyed
  // streams: trajectories legitimately differ from legacy mode in values
  // but must stay statistically comparable (same config reaches the same
  // step count with a similar amount of work).
  SimulationConfig cfg = store_config();
  FlSimulator legacy(cfg);
  cfg.rng_streams = RngStreamMode::kPerEntity;
  FlSimulator per_entity(cfg);
  const auto a = legacy.run();
  const auto b = per_entity.run();
  EXPECT_EQ(a.server_steps, b.server_steps);
  EXPECT_EQ(a.task_stats.updates_applied, b.task_stats.updates_applied);
  EXPECT_NE(a.final_model, b.final_model);  // different draws, same law
  EXPECT_GT(b.participations_started, 0u);
  // Mean exec times within the same order of magnitude (log-normal fleet).
  const double mean_a =
      exec_time_sum(a) / static_cast<double>(a.participations.size());
  const double mean_b =
      exec_time_sum(b) / static_cast<double>(b.participations.size());
  EXPECT_GT(mean_b, mean_a / 3.0);
  EXPECT_LT(mean_b, mean_a * 3.0);
}

TEST(Simulator, BatchedPlaintextDrainMatchesPerUpdateDrain) {
  // On the plaintext path the batch size only changes queue-lock
  // amortization: single-worker shards fold in FIFO order either way, so
  // the simulation is bit-identical.
  SimulationConfig cfg = store_config();
  cfg.max_server_steps = 8;
  FlSimulator per_update(cfg);
  cfg.task.aggregation_batch_size = 8;
  FlSimulator batched(cfg);
  EXPECT_EQ(per_update.run().final_model, batched.run().final_model);
}

}  // namespace
}  // namespace papaya::sim
