// Multi-threaded hammer for util::Logger (the level-0 leaf lock in the
// util/sync.hpp hierarchy).  The Logger contract: the sink runs under an
// exclusive lock, so concurrent LogMessage submissions are never torn,
// never interleaved, and never lost — even while other threads flip the
// level and swap the sink.  Carries the "concurrency" ctest label so the
// sanitizer CI jobs (tsan above all) can target the lock-hammer suites.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/sync.hpp"

namespace papaya {
namespace {

using util::LogLevel;
using util::Logger;

// Restores the logger's global state around each test (level + stderr sink).
class LoggerStateGuard {
 public:
  LoggerStateGuard() { Logger::instance().set_level(LogLevel::kDebug); }
  ~LoggerStateGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarning);
  }
};

TEST(LogConcurrencyTest, ConcurrentWritersLoseNothingAndTearNothing) {
  LoggerStateGuard guard;

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;

  // The sink appends under the Logger's own lock — by contract it needs no
  // synchronization of its own, and TSan verifies that claim.
  std::vector<std::string> records;
  Logger::instance().set_sink(
      [&records](LogLevel, const std::string& message) {
        records.push_back(message);
      });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // One record = one string: if the lock were dropped mid-record the
        // halves could interleave and the parse below would fail.
        PAPAYA_LOG(LogLevel::kInfo) << "writer=" << t << " seq=" << i;
      }
    });
  }
  for (auto& w : writers) w.join();
  Logger::instance().set_sink(nullptr);

  ASSERT_EQ(records.size(), kThreads * kPerThread) << "lost log records";

  // Every record must parse back to exactly one (writer, seq) pair, and each
  // writer's sequence must arrive complete and in order.
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kPerThread, false));
  std::vector<std::size_t> last_seq(kThreads, 0);
  std::vector<bool> any_seen(kThreads, false);
  for (const std::string& r : records) {
    std::size_t writer = 0, seq = 0;
    ASSERT_EQ(std::sscanf(r.c_str(), "writer=%zu seq=%zu", &writer, &seq), 2)
        << "torn or malformed record: '" << r << "'";
    ASSERT_LT(writer, kThreads);
    ASSERT_LT(seq, kPerThread);
    EXPECT_FALSE(seen[writer][seq]) << "duplicate record: " << r;
    seen[writer][seq] = true;
    if (any_seen[writer]) {
      // Per-writer order is preserved: the log lock serializes submissions,
      // and a single thread's submissions are program-ordered.
      EXPECT_GT(seq, last_seq[writer]) << "out-of-order record: " << r;
    }
    last_seq[writer] = seq;
    any_seen[writer] = true;
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(seen[t][i]) << "missing writer=" << t << " seq=" << i;
    }
  }
}

TEST(LogConcurrencyTest, WritersRaceLevelAndSinkSwaps) {
  LoggerStateGuard guard;

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kIters = 400;

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> sink_calls{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        PAPAYA_LOG(LogLevel::kInfo) << "w" << t << ":" << i;
      }
    });
  }
  // One thread flips the threshold; another swaps sinks.  Neither interferes
  // with record integrity — the level+sink decision is atomic per record.
  threads.emplace_back([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      Logger::instance().set_level(LogLevel::kDebug);
      Logger::instance().set_level(LogLevel::kError);
    }
    Logger::instance().set_level(LogLevel::kDebug);
  });
  threads.emplace_back([&stop, &sink_calls] {
    while (!stop.load(std::memory_order_relaxed)) {
      Logger::instance().set_sink(
          [&sink_calls](LogLevel, const std::string& message) {
            sink_calls.fetch_add(1, std::memory_order_relaxed);
            // Tear check: a record is either fully present or not seen.
            EXPECT_EQ(message.front(), 'w');
          });
      Logger::instance().set_sink(nullptr);
    }
  });

  for (std::size_t t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  Logger::instance().set_sink(nullptr);
  SUCCEED();  // primarily a TSan target: races here fail the tsan CI job
}

TEST(LogConcurrencyTest, LevelReadsAreSharedAndConsistent) {
  LoggerStateGuard guard;
  Logger::instance().set_level(LogLevel::kInfo);

  std::vector<std::thread> readers;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&ok] {
      for (int i = 0; i < 10000; ++i) {
        const LogLevel level = Logger::instance().level();
        if (level != LogLevel::kInfo && level != LogLevel::kWarning) {
          ok.store(false, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread flipper([] {
    for (int i = 0; i < 1000; ++i) {
      Logger::instance().set_level(LogLevel::kWarning);
      Logger::instance().set_level(LogLevel::kInfo);
    }
  });
  for (auto& r : readers) r.join();
  flipper.join();
  EXPECT_TRUE(ok.load()) << "level() observed a value never set";
}

}  // namespace
}  // namespace papaya
