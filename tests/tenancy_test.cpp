// Multi-tenant coordination tests (Sec. 6.2): several FL tasks share one
// client population, the Coordinator balances assignments by demand and
// eligibility, every task's concurrency is kept fed simultaneously, and an
// Aggregator failure disturbs only the tasks it owned.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "fl/aggregator.hpp"
#include "fl/coordinator.hpp"
#include "fl/model_update.hpp"
#include "fl/selector.hpp"
#include "util/rng.hpp"

namespace papaya::fl {
namespace {

TaskConfig make_task(const std::string& name, std::size_t concurrency,
                     const std::string& capability = "") {
  TaskConfig cfg;
  cfg.name = name;
  cfg.mode = TrainingMode::kAsync;
  cfg.concurrency = concurrency;
  cfg.aggregation_goal = 4;
  cfg.model_size = 2;
  cfg.required_capability = capability;
  return cfg;
}

/// Drives clients through select -> join -> train -> report across several
/// tasks, with periodic aggregator reports back to the Coordinator —
/// the Sec. 6.2 assignment loop without the ML.
struct TenancyHarness {
  Coordinator coord{11};
  std::map<std::string, Aggregator*> aggregators;
  util::Rng rng{17};
  std::uint64_t next_client = 1;
  /// client id -> (task, completion time)
  std::map<std::uint64_t, std::pair<std::string, double>> in_flight;

  void add_aggregator(Aggregator& agg, double now) {
    aggregators[agg.id()] = &agg;
    coord.register_aggregator(agg, now);
  }

  Aggregator& owner_of(const std::string& task) {
    return *aggregators.at(coord.assignment_map().task_to_aggregator.at(task));
  }

  /// One simulated second: clients check in, training completes, reports
  /// flow to aggregators and from aggregators to the Coordinator.
  void step(double now, const ClientCapabilities& caps = {},
            std::size_t checkins = 6) {
    // Arrivals.
    for (std::size_t i = 0; i < checkins; ++i) {
      const auto assignment = coord.assign_client(caps);
      if (!assignment) break;
      Aggregator& agg = *aggregators.at(assignment->aggregator_id);
      const std::uint64_t client = next_client++;
      const auto join = agg.client_join(assignment->task, client, now);
      coord.assignment_concluded(assignment->task);
      if (join.accepted) {
        const double exec = 2.0 + rng.uniform(0.0, 6.0);
        in_flight[client] = {assignment->task, now + exec};
      }
    }
    // Completions.
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->second.second <= now) {
        const auto& task = it->second.first;
        Aggregator& agg = owner_of(task);
        ModelUpdate u;
        u.client_id = it->first;
        u.initial_version = agg.model_version(task);
        u.num_examples = 4;
        u.delta = {0.01f, 0.01f};
        (void)agg.client_report(task, u.serialize(), now);
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    // Aggregator reports (heartbeat + demand) every step.
    for (auto& [id, agg] : aggregators) {
      std::vector<TaskReport> reports;
      for (const auto& task : agg->task_names()) {
        reports.push_back(TaskReport{task, agg->client_demand(task),
                                     agg->model_version(task)});
      }
      coord.aggregator_report(id, agg->next_report_sequence(), now, reports);
    }
  }
};

TEST(MultiTenant, AllTasksReachAndHoldTheirConcurrency) {
  Aggregator a("a"), b("b");
  TenancyHarness h;
  h.add_aggregator(a, 0.0);
  h.add_aggregator(b, 0.0);
  h.coord.submit_task(make_task("small", 6), std::vector<float>(2, 0.0f), {});
  h.coord.submit_task(make_task("large", 18), std::vector<float>(2, 0.0f), {});

  double total_small = 0.0, total_large = 0.0;
  int samples = 0;
  for (double t = 1.0; t <= 120.0; t += 1.0) {
    h.step(t, {}, 10);
    if (t > 30.0) {  // after warm-up
      total_small += static_cast<double>(h.owner_of("small").active_clients("small"));
      total_large += static_cast<double>(h.owner_of("large").active_clients("large"));
      ++samples;
    }
  }
  // Both tasks are simultaneously near their targets — the multi-tenant
  // utilization claim of Sec. 6.2.
  EXPECT_GT(total_small / samples, 0.8 * 6);
  EXPECT_LE(total_small / samples, 6.0);
  EXPECT_GT(total_large / samples, 0.8 * 18);
  EXPECT_LE(total_large / samples, 18.0);
  // Both made training progress.
  EXPECT_GT(h.owner_of("small").stats("small").server_steps, 0u);
  EXPECT_GT(h.owner_of("large").stats("large").server_steps, 0u);
}

TEST(MultiTenant, CapabilityGatedTaskOnlyReceivesCapableClients) {
  Aggregator a("a");
  TenancyHarness h;
  h.add_aggregator(a, 0.0);
  h.coord.submit_task(make_task("open", 8), std::vector<float>(2, 0.0f), {});
  h.coord.submit_task(make_task("gated", 8, "lstm"),
                      std::vector<float>(2, 0.0f), {});

  // Plain clients fill only the open task...
  for (double t = 1.0; t <= 40.0; t += 1.0) h.step(t, {}, 4);
  EXPECT_EQ(a.active_clients("gated"), 0u);
  EXPECT_GT(a.active_clients("open"), 0u);
  // ...capable clients then fill the gated one too.
  for (double t = 41.0; t <= 80.0; t += 1.0) {
    h.step(t, ClientCapabilities{{"lstm"}}, 4);
  }
  EXPECT_GT(a.active_clients("gated"), 0u);
}

TEST(MultiTenant, AggregatorFailureOnlyDisturbsItsOwnTasks) {
  Aggregator a("a"), b("b");
  TenancyHarness h;
  h.add_aggregator(a, 0.0);
  h.add_aggregator(b, 0.0);
  // Four tasks spread across the two aggregators by load balancing.
  for (int i = 0; i < 4; ++i) {
    h.coord.submit_task(make_task("t" + std::to_string(i), 6),
                        std::vector<float>(2, 0.0f), {});
  }
  for (double t = 1.0; t <= 60.0; t += 1.0) h.step(t, {}, 10);

  // Remember who owned what, then fail "a" (stop its heartbeats).
  const auto before = h.coord.assignment_map().task_to_aggregator;
  std::set<std::string> owned_by_a, owned_by_b;
  for (const auto& [task, agg] : before) {
    (agg == "a" ? owned_by_a : owned_by_b).insert(task);
  }
  ASSERT_FALSE(owned_by_a.empty());
  ASSERT_FALSE(owned_by_b.empty());

  // Only b heartbeats from t=61; a goes silent.
  for (double t = 61.0; t <= 100.0; t += 1.0) {
    std::vector<TaskReport> reports;
    for (const auto& task : b.task_names()) {
      reports.push_back(TaskReport{task, b.client_demand(task), 0});
    }
    h.coord.aggregator_report("b", b.next_report_sequence(), t, reports);
  }
  const auto failed = h.coord.detect_failures(100.0, 20.0);
  ASSERT_EQ(failed, std::vector<std::string>{"a"});

  const auto& after = h.coord.assignment_map().task_to_aggregator;
  for (const auto& task : owned_by_a) {
    EXPECT_EQ(after.at(task), "b") << task << " must have moved";
    EXPECT_TRUE(b.has_task(task));
  }
  for (const auto& task : owned_by_b) {
    // Model versions on the survivor are untouched by the failover.
    EXPECT_EQ(after.at(task), "b") << task << " must not have moved";
  }
}

TEST(MultiTenant, DemandDrainsAsTasksFill) {
  Aggregator a("a");
  TenancyHarness h;
  h.add_aggregator(a, 0.0);
  h.coord.submit_task(make_task("t", 5), std::vector<float>(2, 0.0f), {});

  // Fill the task completely with very slow clients (they never finish
  // within the horizon), then demand must be zero and assignment refused.
  for (int i = 0; i < 5; ++i) {
    const auto assignment = h.coord.assign_client({});
    ASSERT_TRUE(assignment.has_value());
    ASSERT_TRUE(a.client_join("t", 1000 + i, 0.0).accepted);
    h.coord.assignment_concluded("t");
  }
  h.coord.aggregator_report("a", a.next_report_sequence(), 1.0,
                            {TaskReport{"t", a.client_demand("t"), 0}});
  EXPECT_EQ(h.coord.pooled_demand("t"), 0);
  EXPECT_FALSE(h.coord.assign_client({}).has_value());
}

}  // namespace
}  // namespace papaya::fl
