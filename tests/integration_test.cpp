// End-to-end integration tests: full simulations driving the production
// components, sync vs async semantics at the system level, SecAgg wired into
// a server step, and determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "sim/fl_simulator.hpp"
#include "util/stats.hpp"

namespace papaya {
namespace {

sim::SimulationConfig small_config(fl::TrainingMode mode) {
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = mode;
  if (mode == fl::TrainingMode::kAsync) {
    cfg.task.concurrency = 16;
    cfg.task.aggregation_goal = 4;
  } else {
    cfg.task.aggregation_goal = 12;
    cfg.task.concurrency = fl::TaskConfig::over_selected_cohort(12, 0.3);
  }
  cfg.task.max_staleness = 20;
  cfg.task.client_timeout_s = 2000.0;

  cfg.population.num_devices = 120;
  cfg.population.seed = 5;
  cfg.population.min_examples = 4;
  cfg.population.max_examples = 24;

  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 8;
  cfg.model.hidden_dim = 12;
  cfg.model.context = 2;
  cfg.model_kind = sim::ModelKind::kMlp;

  cfg.trainer.learning_rate = 0.3f;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;

  cfg.max_server_steps = 25;
  cfg.eval_every_steps = 5;
  cfg.eval_set_size = 80;
  cfg.seed = 11;
  cfg.record_utilization = true;
  return cfg;
}

TEST(Integration, AsyncTrainingReducesEvalLoss) {
  sim::FlSimulator simulator(small_config(fl::TrainingMode::kAsync));
  const sim::SimulationResult result = simulator.run();
  ASSERT_GE(result.server_steps, 25u);
  ASSERT_GE(result.loss_curve.size(), 2u);
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
  EXPECT_GT(result.comm_trips, 0u);
}

TEST(Integration, SyncTrainingReducesEvalLoss) {
  sim::FlSimulator simulator(small_config(fl::TrainingMode::kSync));
  const sim::SimulationResult result = simulator.run();
  ASSERT_GE(result.server_steps, 25u);
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
}

TEST(Integration, AsyncUtilizationStaysNearConcurrency) {
  // Fig. 7: async keeps utilization ~flat near the concurrency target.
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.max_server_steps = 40;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();

  // Skip the warm-up third, then expect high mean utilization.
  const auto& series = result.active_clients;
  ASSERT_GT(series.size(), 10u);
  const double t_warm = result.end_time_s / 3.0;
  std::vector<double> active;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.times[i] >= t_warm) active.push_back(series.values[i]);
  }
  ASSERT_FALSE(active.empty());
  EXPECT_GT(util::mean(active), 0.8 * 16);
}

TEST(Integration, SyncUtilizationSawtoothsBelowAsync) {
  auto sync_cfg = small_config(fl::TrainingMode::kSync);
  sync_cfg.max_server_steps = 15;
  sim::FlSimulator sync_sim(sync_cfg);
  const auto sync_result = sync_sim.run();

  // Sync utilization dips toward zero at round boundaries: its minimum after
  // warm-up must be far below the cohort size.
  const auto& series = sync_result.active_clients;
  ASSERT_GT(series.size(), 10u);
  const double t_warm = sync_result.end_time_s / 3.0;
  double min_active = 1e9;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series.times[i] >= t_warm) {
      min_active = std::min(min_active, series.values[i]);
    }
  }
  EXPECT_LT(min_active, 4.0);
}

TEST(Integration, AsyncProducesMoreServerStepsPerSimHour) {
  // Fig. 8's mechanism at miniature scale: same concurrency, async K=4 vs
  // sync goal=12 -> async steps much more often.
  auto async_cfg = small_config(fl::TrainingMode::kAsync);
  async_cfg.task.concurrency = 16;
  async_cfg.task.aggregation_goal = 4;
  async_cfg.max_server_steps = 30;
  sim::FlSimulator async_sim(async_cfg);
  const auto async_result = async_sim.run();

  auto sync_cfg = small_config(fl::TrainingMode::kSync);
  sync_cfg.task.aggregation_goal = 12;
  sync_cfg.task.concurrency = 16;
  sync_cfg.max_server_steps = 30;
  sim::FlSimulator sync_sim(sync_cfg);
  const auto sync_result = sync_sim.run();

  const double async_rate =
      static_cast<double>(async_result.server_steps) / async_result.end_time_s;
  const double sync_rate =
      static_cast<double>(sync_result.server_steps) / sync_result.end_time_s;
  EXPECT_GT(async_rate, 1.5 * sync_rate);
}

TEST(Integration, DeterministicGivenSeed) {
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.max_server_steps = 10;
  sim::FlSimulator a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.server_steps, rb.server_steps);
  EXPECT_EQ(ra.comm_trips, rb.comm_trips);
  EXPECT_DOUBLE_EQ(ra.end_time_s, rb.end_time_s);
  EXPECT_EQ(ra.final_model, rb.final_model);
}

TEST(Integration, ParticipationRecordsCoverAllStartedParticipations) {
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.max_server_steps = 10;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();
  // Every recorded participation is one of: applied, dropped, or discarded;
  // records can lag participations started (in-flight at stop).
  EXPECT_LE(result.participations.size(), result.participations_started);
  EXPECT_GT(result.participations.size(), 0u);
  std::size_t applied = 0;
  for (const auto& p : result.participations) applied += p.update_applied;
  EXPECT_EQ(applied, result.task_stats.updates_applied);
}

TEST(Integration, MaxAppliedUpdatesBudgetStopsRun) {
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.max_server_steps = 0;
  cfg.max_applied_updates = 20;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_GE(result.task_stats.updates_applied, 20u);
  EXPECT_LT(result.task_stats.updates_applied, 20u + cfg.task.aggregation_goal);
}

TEST(Integration, SecAggAggregateMatchesPlaintextAggregate) {
  // Wire SecAgg around a buffer of real model updates and check the secure
  // weighted sum matches the plaintext sum to fixed-point resolution.
  const std::size_t model_size = 64;
  const std::size_t n_clients = 6;

  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(1);
  const crypto::Digest binary = crypto::Sha256::hash(std::string("tsa"));
  crypto::VerifiableLog log;
  log.append(binary);

  secagg::SecAggParams params;
  params.vector_length = model_size;
  params.threshold = n_clients;
  const secagg::FixedPointParams fp =
      secagg::FixedPointParams::for_budget(2.0, n_clients);

  secagg::TrustedSecureAggregator tsa(dh, params, n_clients + 2, platform,
                                      binary, 3);
  secagg::QuoteExpectations expectations{params.hash(dh), log.snapshot()};
  secagg::SecureAggregationSession session(tsa, model_size, n_clients);

  util::Rng rng(17);
  std::vector<float> plaintext_sum(model_size, 0.0f);
  for (std::uint64_t c = 0; c < n_clients; ++c) {
    std::vector<float> delta(model_size);
    for (auto& v : delta) v = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (std::size_t i = 0; i < model_size; ++i) plaintext_sum[i] += delta[i];

    secagg::SecAggClient client(dh, fp, c);
    const auto contribution = client.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(c),
        log.prove_inclusion(0), delta);
    ASSERT_TRUE(contribution.has_value());
    ASSERT_EQ(session.accept(*contribution), secagg::TsaAccept::kAccepted);
  }

  const auto secure_sum = session.finalize_decoded(fp);
  ASSERT_TRUE(secure_sum.has_value());
  for (std::size_t i = 0; i < model_size; ++i) {
    EXPECT_NEAR((*secure_sum)[i], plaintext_sum[i],
                static_cast<double>(n_clients) / fp.scale + 1e-4);
  }
}

TEST(Integration, SecAggEnabledTrainingStillConverges) {
  // Full simulation with the secure aggregation path in the training loop:
  // the Aggregator never sees plaintext updates, and the model still learns.
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.task.secagg_enabled = true;
  cfg.task.concurrency = 8;
  cfg.task.aggregation_goal = 4;
  cfg.population.num_devices = 60;
  cfg.max_server_steps = 12;
  cfg.eval_every_steps = 4;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  ASSERT_GE(result.server_steps, 12u);
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
}

TEST(Integration, DpTrainingConvergesWithModestNoise) {
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.task.dp.enabled = true;
  cfg.task.dp.clip_norm = 5.0f;
  cfg.task.dp.noise_multiplier = 0.02f;
  cfg.max_server_steps = 40;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
}

TEST(Integration, TrainingSurvivesAggregatorFailover) {
  // App. E.4: the Aggregator owning the task crashes mid-training; the
  // Coordinator detects the missed heartbeats, moves the task (checkpointed
  // model + version) to the other Aggregator, Selectors refresh, and
  // training continues to the target.
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.num_aggregators = 2;
  cfg.max_server_steps = 0;
  cfg.target_loss = 3.35;
  cfg.max_sim_time_s = 2.0e5;
  cfg.aggregator_failure_at_s = 60.0;
  cfg.aggregator_failure_timeout_s = 20.0;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.time_to_target_s, 60.0);  // target hit after the crash
}

TEST(Integration, FailoverPreservesModelVersionAndCheckpoint) {
  // Component-level: version continuity across reassignment.
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  fl::TaskConfig cfg;
  cfg.name = "t";
  cfg.mode = fl::TrainingMode::kAsync;
  cfg.concurrency = 4;
  cfg.aggregation_goal = 1;
  cfg.model_size = 2;
  coord.submit_task(cfg, std::vector<float>(2, 0.0f), {.lr = 0.1f});
  const std::string owner_id = coord.assignment_map().task_to_aggregator.at("t");
  fl::Aggregator& owner = owner_id == "a" ? a : b;
  fl::Aggregator& other = owner_id == "a" ? b : a;

  // Drive three server steps on the owner.
  for (std::uint64_t c = 1; c <= 3; ++c) {
    owner.client_join("t", c, 0.0);
    fl::ModelUpdate u;
    u.client_id = c;
    u.initial_version = owner.model_version("t");
    u.num_examples = 1;
    u.delta = {0.1f, 0.1f};
    owner.client_report("t", u.serialize(), 1.0);
  }
  EXPECT_EQ(owner.model_version("t"), 3u);
  const float model_before = owner.model("t")[0];

  // Crash the owner: only the other aggregator heartbeats.
  coord.aggregator_report(other.id(), 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);
  ASSERT_TRUE(other.has_task("t"));
  EXPECT_EQ(other.model_version("t"), 3u);  // version survived
  EXPECT_FLOAT_EQ(other.model("t")[0], model_before);
}

TEST(Integration, LstmModelTrainsInSimulator) {
  auto cfg = small_config(fl::TrainingMode::kAsync);
  cfg.model_kind = sim::ModelKind::kLstm;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.task.concurrency = 8;
  cfg.task.aggregation_goal = 4;
  cfg.population.num_devices = 60;
  cfg.max_server_steps = 15;
  cfg.eval_every_steps = 5;
  cfg.eval_set_size = 40;
  sim::FlSimulator simulator(cfg);
  const sim::SimulationResult result = simulator.run();
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
}

TEST(Integration, OverSelectionBiasesParticipantDistribution) {
  // Miniature Sec. 7.4: with over-selection, the applied-update exec-time
  // distribution is visibly faster than the full started distribution.
  auto cfg = small_config(fl::TrainingMode::kSync);
  cfg.task.aggregation_goal = 8;
  cfg.task.concurrency = fl::TaskConfig::over_selected_cohort(8, 0.5);
  cfg.max_server_steps = 40;
  cfg.population.num_devices = 200;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();

  std::vector<double> applied_times, all_times;
  for (const auto& p : result.participations) {
    if (p.dropped_out) continue;
    all_times.push_back(p.exec_time_s);
    if (p.update_applied) applied_times.push_back(p.exec_time_s);
  }
  ASSERT_GT(applied_times.size(), 50u);
  ASSERT_GT(all_times.size(), applied_times.size());
  EXPECT_LT(util::mean(applied_times), util::mean(all_times));
}

}  // namespace
}  // namespace papaya
