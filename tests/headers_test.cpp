// Header hygiene suite.
//
// Every public header is included here, in alphabetical order, so a header
// that silently depends on another being included first breaks this TU.  The
// stronger guarantee — each header compiles in a TU of its own — is enforced
// at build time by the papaya_header_check object library in CMakeLists.txt,
// which generates one source file per header.  This suite additionally smoke
// tests a symbol from each module so the link line covers all seven layers.

#include <gtest/gtest.h>

#include "crypto/auth_enc.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "fl/aggregator.hpp"
#include "fl/chunking.hpp"
#include "fl/client_runtime.hpp"
#include "fl/coordinator.hpp"
#include "fl/election.hpp"
#include "fl/model_store.hpp"
#include "fl/model_update.hpp"
#include "fl/parallel_agg.hpp"
#include "fl/secure_buffer.hpp"
#include "fl/selector.hpp"
#include "fl/session.hpp"
#include "fl/smpc_round.hpp"
#include "fl/task.hpp"
#include "ml/dataset.hpp"
#include "ml/math.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "secagg/attestation.hpp"
#include "secagg/audit.hpp"
#include "secagg/boundary.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/group.hpp"
#include "secagg/otp.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "secagg/tsa.hpp"
#include "sim/event_queue.hpp"
#include "sim/fl_simulator.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/population.hpp"
#include "sim/trace_export.hpp"
#include "smpc/protocol.hpp"
#include "smpc/shamir.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace papaya {
namespace {

TEST(Headers, RequireCpp20) {
  // Mirrors the static_assert in util/bytes.hpp, including its MSVC branch
  // (MSVC leaves __cplusplus at 199711L without /Zc:__cplusplus).
#if defined(_MSVC_LANG)
  EXPECT_GE(_MSVC_LANG, 202002L);
#else
  EXPECT_GE(__cplusplus, 202002L);
#endif
}

TEST(Headers, UtilLayerLinks) {
  util::ByteWriter w;
  w.u32(0xdeadbeef);
  EXPECT_EQ(w.size(), 4u);
}

TEST(Headers, CryptoLayerLinks) {
  const auto digest = crypto::Sha256::hash(std::string("abc"));
  EXPECT_EQ(util::to_hex(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Headers, SmpcLayerLinks) {
  util::Rng rng(7);
  const util::Bytes secret = {1, 2, 3, 4};
  const auto random_bytes = [&rng](std::size_t n) {
    util::Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
    return out;
  };
  const auto shares = smpc::shamir_split(secret, 5, 3, random_bytes);
  EXPECT_EQ(shares.size(), 5u);
}

TEST(Headers, MlLayerLinks) {
  std::vector<float> logits = {1.0f, 2.0f, 3.0f};
  ml::softmax_in_place(logits);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0f, 1e-5f);
}

TEST(Headers, FlLayerLinks) {
  fl::ModelUpdate u;
  u.client_id = 9;
  u.num_examples = 3;
  u.delta = {0.5f, -0.5f};
  const auto round_trip = fl::ModelUpdate::deserialize(u.serialize());
  EXPECT_EQ(round_trip.client_id, 9u);
  EXPECT_EQ(round_trip.delta, u.delta);
}

}  // namespace
}  // namespace papaya
