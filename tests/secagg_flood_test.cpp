// SecAgg reject-path flood suite (`ctest -L fsm`): 10k malformed
// contributions interleaved with valid ones, asserting the
// SecureBufferManager::Accounting invariants the FSM harness also leans on —
// no accepted-set drift (a malformed contribution is never credited), no
// buffered-slot leak (pending contribution and weight slots stay paired),
// and exact conservation: every submit() is accepted, rejected, wrong-epoch,
// or pending, nothing else.
//
// Malformed contributions are tampered *clones* of honestly prepared
// reports: flipping one sealed-seed ciphertext byte breaks the TSA's
// authenticated decryption (kDecryptionFailed), and a clone submitted after
// its original bounces off the consumed index (kIndexConsumed) — so the
// flood costs one cheap copy per malformed submission instead of a fresh DH
// handshake, which is what makes a 10k-contribution flood affordable.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "fl/agg_strategy.hpp"
#include "fl/secure_buffer.hpp"

namespace papaya::fl {
namespace {

constexpr std::size_t kModelSize = 8;
constexpr std::size_t kGoal = 6;

SecureReport tampered_clone(const SecureReport& report, std::size_t flip) {
  SecureReport clone = report;
  auto& ciphertext = clone.contribution.sealed_seed.ciphertext;
  ciphertext[flip % ciphertext.size()] ^= 1;
  return clone;
}

TEST(SecAggFlood, TenThousandMalformedSubmissionsCannotDriftAccounting) {
  constexpr std::size_t kMalformedTarget = 10000;
  SecureBufferManager manager(kModelSize, kGoal, /*seed=*/0xf100d,
                              /*batch_size=*/4, AggStrategy::kAuto);
  const std::vector<float> delta(kModelSize, 0.5f);

  std::uint64_t valid = 0;
  std::uint64_t malformed = 0;
  std::uint64_t replayed = 0;
  std::uint64_t claimed = 0;
  std::uint64_t epochs = 0;

  while (malformed + replayed < kMalformedTarget) {
    ++epochs;
    // Honest side of the interleaving: one goal's worth of real clients.
    std::vector<SecureReport> honest;
    for (std::size_t i = 0; i < kGoal; ++i) {
      const auto config = manager.next_upload_config();
      ASSERT_TRUE(config.has_value());
      auto report = SecureBufferManager::prepare_report(
          manager.platform(), *config, /*client_id=*/epochs * 100 + i,
          /*initial_version=*/0, /*num_examples=*/1, /*weight=*/1.0, delta,
          /*client_seed=*/epochs * 0x1000 + i);
      ASSERT_TRUE(report.has_value());
      honest.push_back(std::move(*report));
    }

    // Interleave: a burst of tampered clones before each honest submit
    // (kDecryptionFailed), the honest submit, a burst after it plus one
    // pristine replay (kIndexConsumed).  ~1k malformed per epoch keeps the
    // epoch count (and with it the DH handshake cost, the expensive part
    // under TSan) low while still crossing plenty of epoch boundaries.
    const std::size_t burst = (kMalformedTarget / 10) / (2 * kGoal);
    for (const auto& report : honest) {
      for (std::size_t j = 0; j < burst; ++j) {
        manager.submit(tampered_clone(report, j), 1.0);
        ++malformed;
      }
      ASSERT_NE(manager.submit(report, 1.0), SecureSubmitOutcome::kWrongEpoch);
      ++valid;
      for (std::size_t j = 0; j < burst; ++j) {
        manager.submit(tampered_clone(report, j), 1.0);
        ++malformed;
      }
      manager.submit(report, 1.0);  // replay of an already-used index
      ++replayed;
    }

    const auto mean = manager.finalize_mean();
    ASSERT_TRUE(mean.has_value()) << "epoch " << epochs
                                  << " failed to reach its goal";
    // No accepted-set drift, measured end to end: the released mean is the
    // honest clients' mean, untouched by thousands of rejected neighbours.
    for (const float v : *mean) {
      EXPECT_NEAR(v, 0.5f, 1e-2f);
    }
    claimed += manager.take_rejected();
  }

  const auto acct = manager.accounting();
  EXPECT_EQ(acct.submitted, valid + malformed + replayed);
  EXPECT_EQ(acct.accepted, valid);
  EXPECT_EQ(acct.rejected, malformed + replayed);
  EXPECT_EQ(acct.wrong_epoch, 0u);
  EXPECT_EQ(acct.pending, 0u);  // no buffered-slot leak across 10k rejects
  EXPECT_EQ(acct.pending_weight_slots, 0u);
  EXPECT_EQ(acct.epochs_released, epochs);
  EXPECT_EQ(acct.submitted,
            acct.accepted + acct.rejected + acct.wrong_epoch + acct.pending);
  // Every deferred rejection was claimable exactly once.
  EXPECT_EQ(claimed + manager.take_rejected(), malformed + replayed);
  EXPECT_GE(malformed + replayed, kMalformedTarget);
}

TEST(SecAggFlood, ConcurrentFloodPreservesConservation) {
  // Four attacker threads flood tampered clones while an honest thread
  // submits real contributions and finalizes whenever the goal is reached.
  // Interleavings vary run to run; the conservation identities may not.
  SecureBufferManager manager(kModelSize, kGoal, /*seed=*/0xf200d,
                              /*batch_size=*/3, AggStrategy::kAuto);
  const std::vector<float> delta(kModelSize, 0.25f);

  // One honestly prepared report per attacker to clone from (epoch 1).
  std::vector<SecureReport> seeds;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto config = manager.next_upload_config();
    ASSERT_TRUE(config.has_value());
    auto report = SecureBufferManager::prepare_report(
        manager.platform(), *config, /*client_id=*/900 + i,
        /*initial_version=*/0, /*num_examples=*/1, /*weight=*/1.0, delta,
        /*client_seed=*/0x9000 + i);
    ASSERT_TRUE(report.has_value());
    seeds.push_back(std::move(*report));
  }

  constexpr std::size_t kPerAttacker = 500;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> honest_submitted{0};
  std::vector<std::thread> attackers;
  attackers.reserve(seeds.size());
  for (std::size_t a = 0; a < seeds.size(); ++a) {
    attackers.emplace_back([&, a] {
      for (std::size_t j = 0; j < kPerAttacker; ++j) {
        manager.submit(tampered_clone(seeds[a], j), 1.0);
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread honest([&] {
    for (std::size_t i = 0; i < 40; ++i) {
      const auto config = manager.next_upload_config();
      if (config) {
        auto report = SecureBufferManager::prepare_report(
            manager.platform(), *config, /*client_id=*/i,
            /*initial_version=*/0, /*num_examples=*/1, /*weight=*/1.0, delta,
            /*client_seed=*/0xa000 + i);
        if (report) {
          manager.submit(*report, 1.0);
          submitted.fetch_add(1, std::memory_order_relaxed);
          honest_submitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (manager.goal_reached()) manager.finalize_mean();
    }
  });
  for (auto& t : attackers) t.join();
  honest.join();

  const auto acct = manager.accounting();
  EXPECT_EQ(acct.submitted, submitted.load());
  EXPECT_EQ(acct.submitted,
            acct.accepted + acct.rejected + acct.wrong_epoch + acct.pending);
  EXPECT_EQ(acct.pending, acct.pending_weight_slots);
  // Tampered clones can never be credited, so the accepted set is bounded
  // by the honest submissions (some of which may themselves have bounced at
  // an epoch boundary).
  EXPECT_LE(acct.accepted, honest_submitted.load());
}

}  // namespace
}  // namespace papaya::fl
