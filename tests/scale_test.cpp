// Million-device scale-out suite: lazy keyed device materialization, the
// calendar event-queue backend, dense stream counters, and streaming
// metrics must each be *observationally equivalent* to the exact,
// memory-hungry representations they replace — same draws, same pop order,
// same trajectories — while holding per-device state to O(bytes).
//
// The equivalences proved here are what lets bench_macro_population run
// fig-class simulations at 10^6 devices and still claim the results mean
// the same thing as the small-fleet goldens in sim_test.cpp.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fl_simulator.hpp"
#include "sim/population.hpp"
#include "sim/streams.hpp"
#include "util/stats.hpp"

namespace papaya::sim {
namespace {

// ------------------------------------------------- dense stream counters --

TEST(ScaleStreams, DenseCountersMatchMapStreamsBitForBit) {
  // A StreamRng's i-th draw is a pure function of (key, i), so keeping only
  // the u32 counter and rebuilding the generator per call must reproduce
  // the map-of-StreamRng path exactly — interleaved entities, interleaved
  // purposes, multiple draws per call.
  SimStreams dense(42, RngStreamMode::kPerEntity, /*dense_entities=*/64);
  SimStreams mapped(42, RngStreamMode::kPerEntity);
  const StreamPurpose purposes[] = {
      StreamPurpose::kCheckInBackoff, StreamPurpose::kExecTime,
      StreamPurpose::kAvailability, StreamPurpose::kProfileSynthesis};
  for (int round = 0; round < 50; ++round) {
    for (const std::uint64_t entity : {0ULL, 7ULL, 63ULL}) {
      for (const auto purpose : purposes) {
        const double a = dense.with(entity, purpose, [&](auto& g) {
          return g.uniform() + g.normal();  // two draws per call
        });
        const double b = mapped.with(entity, purpose, [&](auto& g) {
          return g.uniform() + g.normal();
        });
        ASSERT_DOUBLE_EQ(a, b) << "entity " << entity << " round " << round;
      }
    }
  }
  // Entities at or past the dense horizon fall back to the map inside the
  // dense-configured instance and still agree.
  EXPECT_DOUBLE_EQ(
      dense.uniform01(64, StreamPurpose::kExecTime),
      mapped.uniform01(64, StreamPurpose::kExecTime));
  EXPECT_DOUBLE_EQ(
      dense.uniform01(SimStreams::kServerEntity, StreamPurpose::kRouting),
      mapped.uniform01(SimStreams::kServerEntity, StreamPurpose::kRouting));
}

// ---------------------------------------------- lazy device materialization --

PopulationConfig keyed_population(std::size_t n, ProfileSynthesis synthesis) {
  PopulationConfig cfg;
  cfg.num_devices = n;
  cfg.seed = 7;
  cfg.synthesis = synthesis;
  return cfg;
}

TEST(ScalePopulation, LazyProfilesMatchKeyedEagerProfiles) {
  const DevicePopulation eager(
      keyed_population(500, ProfileSynthesis::kKeyedEager));
  const DevicePopulation lazy(
      keyed_population(500, ProfileSynthesis::kKeyedLazy));
  ASSERT_EQ(eager.size(), lazy.size());
  EXPECT_FALSE(eager.lazy());
  EXPECT_TRUE(lazy.lazy());
  // Access out of order: each profile is a pure function of (seed, i).
  for (std::size_t i = lazy.size(); i-- > 0;) {
    const DeviceProfile a = eager.profile(i);
    const DeviceProfile b = lazy.profile(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_DOUBLE_EQ(a.mean_exec_time_s, b.mean_exec_time_s);
    EXPECT_DOUBLE_EQ(a.hardware_factor, b.hardware_factor);
    EXPECT_EQ(a.num_examples, b.num_examples);
    EXPECT_DOUBLE_EQ(a.dropout_prob, b.dropout_prob);
  }
  // Repeated access is idempotent (no hidden draw-counter state).
  EXPECT_DOUBLE_EQ(lazy.profile(3).mean_exec_time_s,
                   lazy.profile(3).mean_exec_time_s);
}

TEST(ScalePopulation, LazyModeRefusesMaterializedAccessors) {
  const DevicePopulation lazy(
      keyed_population(10, ProfileSynthesis::kKeyedLazy));
  EXPECT_THROW((void)lazy.device(0), std::logic_error);
  EXPECT_THROW((void)lazy.devices(), std::logic_error);
  // profile() remains the mode-independent accessor.
  EXPECT_GT(lazy.profile(0).mean_exec_time_s, 0.0);
}

TEST(ScalePopulation, KeyedSynthesisKeepsPaperDistributionShape) {
  // The keyed draws are a different sequence from the legacy sequential
  // synthesis, so re-verify the Fig. 2 / Sec. 7.4 requirements hold for the
  // keyed law too: exec times spanning two orders of magnitude, and high
  // slowness/example-count correlation.
  const DevicePopulation pop(
      keyed_population(20000, ProfileSynthesis::kKeyedLazy));
  std::vector<double> times, slowness, examples;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const DeviceProfile d = pop.profile(i);
    times.push_back(d.mean_exec_time_s);
    slowness.push_back(std::log(d.hardware_factor));
    examples.push_back(static_cast<double>(d.num_examples));
  }
  EXPECT_GT(util::percentile(times, 99.0) / util::percentile(times, 1.0),
            100.0);
  EXPECT_GT(util::pearson(slowness, examples), 0.6);
}

// ------------------------------------------------ end-to-end equivalences --

SimulationConfig scale_config() {
  SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 12;
  cfg.task.aggregation_goal = 2;
  cfg.population.num_devices = 100;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.max_server_steps = 20;
  cfg.eval_every_steps = 10;
  cfg.seed = 5;
  return cfg;
}

TEST(ScaleSimulator, LazyPopulationReproducesEagerTrajectoryBitForBit) {
  // The acceptance bar for lazy materialization: a full simulated
  // deployment on the lazy population is indistinguishable from the same
  // run on the eagerly materialized keyed population — every profile read
  // resolves to the same values, so every event lands at the same time.
  SimulationConfig cfg = scale_config();
  cfg.population.synthesis = ProfileSynthesis::kKeyedEager;
  FlSimulator eager(cfg);
  cfg.population.synthesis = ProfileSynthesis::kKeyedLazy;
  FlSimulator lazy(cfg);

  const auto a = eager.run();
  const auto b = lazy.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
  EXPECT_EQ(a.server_steps, b.server_steps);
  EXPECT_EQ(a.participations_started, b.participations_started);
  ASSERT_EQ(a.participations.size(), b.participations.size());
  for (std::size_t i = 0; i < a.participations.size(); ++i) {
    EXPECT_EQ(a.participations[i].client_id, b.participations[i].client_id);
    EXPECT_DOUBLE_EQ(a.participations[i].start_time,
                     b.participations[i].start_time);
    EXPECT_DOUBLE_EQ(a.participations[i].exec_time_s,
                     b.participations[i].exec_time_s);
  }
  EXPECT_EQ(a.loss_curve.times, b.loss_curve.times);
  EXPECT_EQ(a.loss_curve.values, b.loss_curve.values);
}

TEST(ScaleSimulator, O1BackendsReproduceHeapTrajectoryBitForBit) {
  // Same documented total order, same pops, same everything — on a full
  // deployment including the legacy-stream golden config, not just on the
  // synthetic differential churn in sim_test.cpp.  Both amortized-O(1)
  // backends (calendar and timing wheel) are held to the heap reference.
  SimulationConfig cfg = scale_config();
  cfg.event_queue = EventQueueBackend::kHeap;
  FlSimulator heap(cfg);
  const auto a = heap.run();
  EXPECT_GT(a.events_processed, 0u);

  for (const auto backend :
       {EventQueueBackend::kCalendar, EventQueueBackend::kWheel}) {
    cfg.event_queue = backend;
    FlSimulator other(cfg);
    const auto b = other.run();
    EXPECT_EQ(a.final_model, b.final_model);
    EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
    EXPECT_EQ(a.server_steps, b.server_steps);
    EXPECT_EQ(a.participations_started, b.participations_started);
    EXPECT_EQ(a.loss_curve.times, b.loss_curve.times);
    EXPECT_EQ(a.events_processed, b.events_processed);
  }
}

TEST(ScaleSimulator, SummaryMatchesFullRecordsExactly) {
  // The streaming summary folds the same records the raw vector retains, so
  // in an uncapped run recomputing it from result.participations must
  // reproduce it bit for bit — counters, moments, and sketches.
  SimulationConfig cfg = scale_config();
  FlSimulator simulator(cfg);
  const auto r = simulator.run();
  ASSERT_GT(r.participations.size(), 0u);

  ParticipationSummary recomputed;
  for (const auto& rec : r.participations) recomputed.observe(rec);
  EXPECT_EQ(r.summary.records, recomputed.records);
  EXPECT_EQ(r.summary.records, r.participations.size());
  EXPECT_EQ(r.summary.dropped, recomputed.dropped);
  EXPECT_EQ(r.summary.applied, recomputed.applied);
  EXPECT_EQ(r.summary.exec_time_s.count(), recomputed.exec_time_s.count());
  EXPECT_DOUBLE_EQ(r.summary.exec_time_s.mean(),
                   recomputed.exec_time_s.mean());
  EXPECT_DOUBLE_EQ(r.summary.round_latency_s.mean(),
                   recomputed.round_latency_s.mean());
  EXPECT_DOUBLE_EQ(r.summary.exec_p95.value(), recomputed.exec_p95.value());
  EXPECT_DOUBLE_EQ(r.summary.latency_p50.value(),
                   recomputed.latency_p50.value());
}

TEST(ScaleSimulator, MetricsCapsBoundMemoryWithoutPerturbingTrajectory) {
  // Caps are observational: the reservoir draws from a dedicated purpose
  // (kMetricsSampling) and the series decimation is drawless, so the
  // trajectory — and the exact streaming summary — must not move.
  SimulationConfig cfg = scale_config();
  cfg.record_utilization = true;
  FlSimulator uncapped(cfg);
  cfg.metrics.max_participation_records = 8;
  cfg.metrics.max_timeseries_points = 16;
  FlSimulator capped(cfg);

  const auto a = uncapped.run();
  const auto b = capped.run();
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
  EXPECT_EQ(a.server_steps, b.server_steps);

  EXPECT_GT(a.participations.size(), 8u);
  EXPECT_EQ(b.participations.size(), 8u);  // reservoir holds exactly cap
  EXPECT_LE(b.loss_curve.size(), 16u);
  EXPECT_LE(b.active_clients.size(), 16u);
  // Every sampled record is one of the full run's records (same identity
  // and timing — the reservoir picks, it does not alter).
  for (const auto& rec : b.participations) {
    bool found = false;
    for (const auto& full : a.participations) {
      if (full.client_id == rec.client_id &&
          full.start_time == rec.start_time) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "sampled record not present in the full run";
  }
  // The summary stays exact under the cap.
  EXPECT_EQ(a.summary.records, b.summary.records);
  EXPECT_EQ(a.summary.applied, b.summary.applied);
  EXPECT_DOUBLE_EQ(a.summary.exec_time_s.mean(), b.summary.exec_time_s.mean());
  EXPECT_DOUBLE_EQ(a.summary.exec_p95.value(), b.summary.exec_p95.value());
}

TEST(ScaleSimulator, RecordingOffStillFeedsSummary) {
  SimulationConfig cfg = scale_config();
  cfg.record_participations = false;
  FlSimulator simulator(cfg);
  const auto r = simulator.run();
  EXPECT_TRUE(r.participations.empty());
  EXPECT_GT(r.summary.records, 0u);
  EXPECT_GT(r.summary.applied, 0u);
}

TEST(ScaleSimulator, FiftyThousandDeviceLazyCalendarSmoke) {
  // The scale recipe end to end, shrunk to CI size: lazy keyed population,
  // calendar queue, per-entity dense stream counters, streaming metrics
  // only.  10^6-device behaviour is the same code with bigger numbers
  // (bench_macro_population).
  SimulationConfig cfg = scale_config();
  cfg.population.num_devices = 50000;
  cfg.population.synthesis = ProfileSynthesis::kKeyedLazy;
  cfg.event_queue = EventQueueBackend::kCalendar;
  cfg.rng_streams = RngStreamMode::kPerEntity;
  cfg.record_participations = false;
  cfg.metrics.max_timeseries_points = 64;
  cfg.max_server_steps = 5;
  cfg.eval_every_steps = 5;
  FlSimulator simulator(cfg);
  const auto r = simulator.run();
  EXPECT_EQ(r.server_steps, 5u);
  EXPECT_GT(r.summary.records, 0u);
  EXPECT_GT(r.events_processed, 0u);
  EXPECT_TRUE(r.participations.empty());
  EXPECT_LE(r.loss_curve.size(), 64u);
  EXPECT_GT(r.end_time_s, 0.0);
}

}  // namespace
}  // namespace papaya::sim
