// Tests for the replicated Coordinator with leader election and the App.
// E.4 recovery period: leader failure pauses assignments but not
// participating clients, elections are deterministic and term-fenced, the
// new leader rebuilds routing from aggregator state, and Selectors keep
// serving their last cached map while leaderless.

#include <gtest/gtest.h>

#include "fl/aggregator.hpp"
#include "fl/election.hpp"
#include "fl/model_update.hpp"
#include "fl/selector.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace papaya::fl {
namespace {

TaskConfig tiny_task(const std::string& name = "t") {
  TaskConfig cfg;
  cfg.name = name;
  cfg.mode = TrainingMode::kAsync;
  cfg.concurrency = 4;
  cfg.aggregation_goal = 2;
  cfg.model_size = 2;
  return cfg;
}

util::Bytes update(std::uint64_t client, std::uint64_t version) {
  ModelUpdate u;
  u.client_id = client;
  u.initial_version = version;
  u.num_examples = 1;
  u.delta = {0.1f, 0.1f};
  return u.serialize();
}

CoordinatorGroup::Options fast_options() {
  CoordinatorGroup::Options o;
  o.election_timeout_s = 5.0;
  o.recovery_period_s = 30.0;
  return o;
}

struct GroupFixture {
  Aggregator a{"agg-a"}, b{"agg-b"};
  CoordinatorGroup group{{"c1", "c2", "c3"}, fast_options()};
  std::string owner_id;

  GroupFixture() {
    group.register_aggregator(a, 0.0);
    group.register_aggregator(b, 0.0);
    group.submit_task(tiny_task(), std::vector<float>(2, 0.0f), {}, 0.0);
    // Captured at submit time: the map is unavailable while leaderless.
    owner_id = group.assignment_map()->task_to_aggregator.at("t");
  }

  Aggregator& owner() { return owner_id == "agg-a" ? a : b; }
};

TEST(Election, BootstrapElectsLowestIdImmediately) {
  CoordinatorGroup group({"c2", "c1", "c3"});
  EXPECT_TRUE(group.has_leader());
  EXPECT_EQ(group.leader_id(), "c1");
  EXPECT_EQ(group.term(), 1u);
  EXPECT_TRUE(group.accepting_assignments(0.0));
}

TEST(Election, EmptyReplicaSetRejected) {
  EXPECT_THROW(CoordinatorGroup({}), std::invalid_argument);
}

TEST(Election, LeaderFailurePausesAssignmentsOnly) {
  GroupFixture f;
  ASSERT_TRUE(f.group.assign_client({}, 1.0).has_value());

  f.group.fail_leader(10.0);
  EXPECT_FALSE(f.group.has_leader());
  // No new clients are assigned while leaderless (App. E.4)...
  EXPECT_FALSE(f.group.assign_client({}, 11.0).has_value());
  // ...but participating clients are not affected: the Aggregator keeps
  // serving joins and reports using its last known assignment.
  ASSERT_TRUE(f.owner().client_join("t", 42, 11.0).accepted);
  const auto result = f.owner().client_report("t", update(42, 0), 12.0);
  EXPECT_EQ(result.outcome, ReportOutcome::kAccepted);
}

TEST(Election, NoElectionBeforeTimeout) {
  GroupFixture f;
  f.group.fail_leader(10.0);
  EXPECT_FALSE(f.group.tick(12.0));  // 2s < 5s timeout
  EXPECT_FALSE(f.group.has_leader());
}

TEST(Election, NextLowestLiveReplicaWinsAndTermIncrements) {
  GroupFixture f;
  EXPECT_EQ(f.group.leader_id(), "c1");
  EXPECT_EQ(f.group.term(), 1u);
  f.group.fail_leader(10.0);
  EXPECT_TRUE(f.group.tick(16.0));
  EXPECT_EQ(f.group.leader_id(), "c2");
  EXPECT_EQ(f.group.term(), 2u);
}

TEST(Election, RecoveryPeriodHoldsAssignments) {
  GroupFixture f;
  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  // In recovery until 46.0.
  EXPECT_TRUE(f.group.in_recovery(20.0));
  EXPECT_FALSE(f.group.assign_client({}, 20.0).has_value());
  EXPECT_THROW(f.group.submit_task(tiny_task("t2"), std::vector<float>(2, 0.0f),
                                   {}, 20.0),
               std::runtime_error);
  // After the recovery period and a demand report, assignments resume.
  EXPECT_FALSE(f.group.in_recovery(47.0));
  f.group.aggregator_report(f.owner().id(), f.owner().next_report_sequence(),
                            47.0, {TaskReport{"t", 4, 0}});
  EXPECT_TRUE(f.group.assign_client({}, 48.0).has_value());
}

TEST(Election, NewLeaderRebuildsRoutingFromAggregators) {
  GroupFixture f;
  const auto before = f.group.assignment_map()->task_to_aggregator;
  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  // The rebuilt map routes every task to the aggregator actually running it.
  EXPECT_EQ(f.group.assignment_map()->task_to_aggregator, before);
}

TEST(Election, DemandIsZeroUntilReportsArrive) {
  GroupFixture f;
  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  // Past recovery, but the adopted task has no reported demand yet.
  EXPECT_FALSE(f.group.assign_client({}, 50.0).has_value());
  f.group.aggregator_report(f.owner().id(), f.owner().next_report_sequence(),
                            50.0, {TaskReport{"t", 2, 0}});
  EXPECT_TRUE(f.group.assign_client({}, 51.0).has_value());
}

TEST(Election, AdoptedTaskIneligibleUntilOwnerReportClaimsIt) {
  // Regression: adopt_task leaves aggregator_id empty, and the report loop
  // used to drop the real owner's reports as "stale" (id mismatch), so an
  // adopted task could never become assignable — and any path that made it
  // eligible would have handed clients an empty-string aggregator id.
  // Adopted tasks must stay unassignable until the Aggregator actually
  // running the task reports it, which claims ownership.
  Aggregator owner{"agg-a"};
  owner.assign_task(tiny_task(), std::vector<float>(2, 0.0f), {});
  Coordinator coord;
  coord.register_aggregator(owner, 0.0);
  coord.adopt_task(tiny_task(), {});

  // Unowned: ineligible no matter what, and not in the routing map.
  EXPECT_FALSE(coord.assign_client({}).has_value());
  EXPECT_EQ(coord.assignment_map().task_to_aggregator.count("t"), 0u);

  // A report from an Aggregator *not* running the task must not claim it.
  Aggregator bystander{"agg-b"};
  coord.register_aggregator(bystander, 0.0);
  coord.aggregator_report("agg-b", 1, 1.0, {TaskReport{"t", 4, 0}});
  EXPECT_FALSE(coord.assign_client({}).has_value());

  // The true owner's first report claims ownership and restores assignment.
  coord.aggregator_report("agg-a", 1, 1.0, {TaskReport{"t", 4, 0}});
  const auto assignment = coord.assign_client({});
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->task, "t");
  EXPECT_EQ(assignment->aggregator_id, "agg-a");
  EXPECT_EQ(coord.assignment_map().task_to_aggregator.at("t"), "agg-a");
}

TEST(Election, RevivedOldLeaderDoesNotReclaim) {
  GroupFixture f;
  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  ASSERT_EQ(f.group.leader_id(), "c2");
  f.group.revive_replica("c1");
  EXPECT_TRUE(f.group.replica_alive("c1"));
  EXPECT_FALSE(f.group.tick(100.0));  // no election while a leader exists
  EXPECT_EQ(f.group.leader_id(), "c2");
  EXPECT_EQ(f.group.term(), 2u);
}

TEST(Election, CascadingFailuresExhaustReplicas) {
  GroupFixture f;
  f.group.fail_leader(10.0);   // c1 down
  ASSERT_TRUE(f.group.tick(16.0));
  f.group.fail_leader(20.0);   // c2 down
  ASSERT_TRUE(f.group.tick(26.0));
  EXPECT_EQ(f.group.leader_id(), "c3");
  EXPECT_EQ(f.group.term(), 3u);
  f.group.fail_leader(30.0);   // c3 down — nobody left
  EXPECT_FALSE(f.group.tick(100.0));
  EXPECT_FALSE(f.group.has_leader());
  EXPECT_FALSE(f.group.assign_client({}, 100.0).has_value());
  // A revival allows the next tick to elect.
  f.group.revive_replica("c2");
  EXPECT_TRUE(f.group.tick(101.0));
  EXPECT_EQ(f.group.leader_id(), "c2");
  EXPECT_EQ(f.group.term(), 4u);
}

TEST(Election, FollowerFailureDoesNotDisturbLeader) {
  GroupFixture f;
  f.group.fail_replica("c3", 10.0);
  EXPECT_EQ(f.group.leader_id(), "c1");
  EXPECT_EQ(f.group.term(), 1u);
  EXPECT_TRUE(f.group.assign_client({}, 11.0).has_value());
}

TEST(Election, SelectorsServeCachedMapWhileLeaderless) {
  GroupFixture f;
  Selector selector("s1");
  selector.refresh(f.group.leader());
  const std::string cached_owner = *selector.route("t");

  f.group.fail_leader(10.0);
  EXPECT_FALSE(f.group.assignment_map().has_value());
  // The Selector keeps routing from its cache (App. E.4: selectors continue
  // "to operate based on last known assignments").
  EXPECT_EQ(*selector.route("t"), cached_owner);

  ASSERT_TRUE(f.group.tick(16.0));
  selector.refresh(f.group.leader());
  EXPECT_EQ(*selector.route("t"), cached_owner);
}

TEST(Election, AggregatorFailureDuringLeaderOutageHandledAfterElection) {
  // An Aggregator dies while the group is leaderless; the new leader's
  // failure detector must still move its tasks once heartbeats lapse.
  GroupFixture f;
  Aggregator& dead = f.owner();
  Aggregator& standby = &dead == &f.a ? f.b : f.a;

  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  // Only the standby heartbeats after the election; the owner stays silent.
  for (double t = 20.0; t <= 120.0; t += 10.0) {
    f.group.aggregator_report(standby.id(), standby.next_report_sequence(), t,
                              {});
  }
  const auto failed = f.group.detect_failures(120.0, 30.0);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed.front(), dead.id());
  EXPECT_EQ(f.group.assignment_map()->task_to_aggregator.at("t"),
            standby.id());
  EXPECT_TRUE(standby.has_task("t"));
}

TEST(Election, ModelProgressSurvivesLeaderFailover) {
  // Server model version advances before the failover and is intact after:
  // leader state is soft, task state lives on the Aggregator.
  GroupFixture f;
  Aggregator& owner = f.owner();
  ASSERT_TRUE(owner.client_join("t", 1, 1.0).accepted);
  ASSERT_TRUE(owner.client_join("t", 2, 1.0).accepted);
  (void)owner.client_report("t", update(1, 0), 2.0);
  const auto r = owner.client_report("t", update(2, 0), 2.5);
  ASSERT_TRUE(r.server_stepped);
  const std::uint64_t version = owner.model_version("t");
  ASSERT_GE(version, 1u);

  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  EXPECT_EQ(owner.model_version("t"), version);
  EXPECT_EQ(f.group.assignment_map()->task_to_aggregator.at("t"), owner.id());
}

/// Randomized driver: any interleaving of failures, revivals, and ticks
/// preserves the group invariants — at most one leader, monotone terms, the
/// leader is always a live replica, and assignments only flow when a leader
/// exists and is out of recovery.
class ElectionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElectionFuzz, InvariantsHoldUnderRandomFailureSequences) {
  util::Rng rng(GetParam());
  CoordinatorGroup::Options options;
  options.election_timeout_s = 2.0;
  options.recovery_period_s = 5.0;
  const std::vector<std::string> ids{"c1", "c2", "c3", "c4"};
  CoordinatorGroup group(ids, options);

  std::uint64_t last_term = group.term();
  double now = 0.0;
  for (int step = 0; step < 300; ++step) {
    now += rng.uniform(0.5, 3.0);
    switch (rng.uniform_int(4)) {
      case 0:
        group.fail_replica(ids[rng.uniform_int(ids.size())], now);
        break;
      case 1:
        group.revive_replica(ids[rng.uniform_int(ids.size())]);
        break;
      case 2:
        group.fail_leader(now);
        break;
      default:
        (void)group.tick(now);
        break;
    }

    // Terms never move backwards.
    EXPECT_GE(group.term(), last_term);
    last_term = group.term();

    if (group.has_leader()) {
      // The leader must be a live replica.
      EXPECT_TRUE(group.replica_alive(group.leader_id()));
      // A leader implies an assignment map exists.
      EXPECT_TRUE(group.assignment_map().has_value());
    } else {
      // No leader: assignments must be refused.
      EXPECT_FALSE(group.assign_client({}, now).has_value());
      EXPECT_FALSE(group.accepting_assignments(now));
    }
    if (group.in_recovery(now)) {
      EXPECT_FALSE(group.assign_client({}, now).has_value());
    }
  }

  // Liveness: revive everyone and tick past the timeout — a leader must
  // emerge and eventually accept work again.
  for (const auto& id : ids) group.revive_replica(id);
  if (!group.has_leader()) {
    (void)group.tick(now + options.election_timeout_s + 1.0);
  }
  ASSERT_TRUE(group.has_leader());
  EXPECT_TRUE(group.accepting_assignments(now + options.election_timeout_s +
                                          options.recovery_period_s + 2.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectionFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Election, FailoverEmitsOperatorLog) {
  util::CapturingLogSink sink(util::LogLevel::kInfo);
  GroupFixture f;
  f.group.fail_leader(10.0);
  ASSERT_TRUE(f.group.tick(16.0));
  EXPECT_TRUE(sink.contains("leader c1 failed"));
  EXPECT_TRUE(sink.contains("leader elected: c2"));
}

TEST(Election, LateAggregatorRegistrationReachesCurrentLeader) {
  CoordinatorGroup group({"c1", "c2"}, fast_options());
  Aggregator late("agg-late");
  group.fail_leader(1.0);
  ASSERT_TRUE(group.tick(7.0));
  group.register_aggregator(late, 8.0);
  // Past recovery (7 + 30), the new leader can place tasks on it.
  group.submit_task(tiny_task("t-new"), std::vector<float>(2, 0.0f), {}, 40.0);
  EXPECT_TRUE(late.has_task("t-new"));
}

}  // namespace
}  // namespace papaya::fl
