// Parameterized property sweeps across modules: chunked uploads,
// fixed-point conversion, Diffie–Hellman, authenticated encryption, the
// verifiable log, one-time pads, and Aggregator invariants over the
// (mode, concurrency, aggregation-goal) grid.  Each sweep states one
// invariant and exercises it across a parameter lattice.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "crypto/auth_enc.hpp"
#include "crypto/dh.hpp"
#include "crypto/merkle.hpp"
#include "fl/aggregator.hpp"
#include "fl/chunking.hpp"
#include "fl/coordinator.hpp"
#include "fl/model_update.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/otp.hpp"
#include "util/rng.hpp"

namespace papaya {
namespace {

// ------------------------------------------------------------- Chunking ----

class ChunkingSweep : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t>> {};

TEST_P(ChunkingSweep, RoundTripsInAnyDeliveryOrder) {
  const auto [payload_size, chunk_size] = GetParam();
  util::Rng rng(payload_size * 31 + chunk_size);
  util::Bytes payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  auto chunks = fl::chunk_upload(7, payload, chunk_size);
  const std::size_t expected_chunks =
      payload_size == 0 ? 1 : (payload_size + chunk_size - 1) / chunk_size;
  EXPECT_EQ(chunks.size(), expected_chunks);

  // Deliver in reverse order, each chunk duplicated once.
  fl::ChunkAssembler assembler(7);
  std::reverse(chunks.begin(), chunks.end());
  for (const auto& c : chunks) {
    const auto first = assembler.accept(c);
    EXPECT_TRUE(first == fl::ChunkAssembler::Accept::kAccepted ||
                first == fl::ChunkAssembler::Accept::kComplete);
    EXPECT_EQ(assembler.accept(c), fl::ChunkAssembler::Accept::kDuplicate);
  }
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(*assembler.assemble(), payload);
}

TEST_P(ChunkingSweep, WireFormatSurvivesSerialization) {
  const auto [payload_size, chunk_size] = GetParam();
  util::Rng rng(payload_size * 57 + chunk_size);
  util::Bytes payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  fl::ChunkAssembler assembler(9);
  for (const auto& c : fl::chunk_upload(9, payload, chunk_size)) {
    const fl::UploadChunk wire = fl::UploadChunk::deserialize(c.serialize());
    const auto accept = assembler.accept(wire);
    EXPECT_TRUE(accept == fl::ChunkAssembler::Accept::kAccepted ||
                accept == fl::ChunkAssembler::Accept::kComplete);
  }
  EXPECT_EQ(*assembler.assemble(), payload);
}

TEST_P(ChunkingSweep, CorruptionOfEveryChunkIsDetected) {
  const auto [payload_size, chunk_size] = GetParam();
  if (payload_size == 0) GTEST_SKIP() << "empty payloads carry no bytes";
  util::Rng rng(payload_size * 91 + chunk_size);
  util::Bytes payload(payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  const auto chunks = fl::chunk_upload(3, payload, chunk_size);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    fl::UploadChunk corrupted = chunks[i];
    corrupted.payload[corrupted.payload.size() / 2] ^= 0x40;
    fl::ChunkAssembler assembler(3);
    EXPECT_EQ(assembler.accept(corrupted),
              fl::ChunkAssembler::Accept::kCorrupt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChunkingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 63, 64, 65, 1000),
                       ::testing::Values<std::size_t>(1, 16, 64, 256)));

TEST(Chunking, CorruptChunkRetransmissionCompletesUpload) {
  // The Sec. 6.1 resilience story: a corrupt chunk costs one retransmission,
  // not the whole upload.
  util::Bytes payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  const auto chunks = fl::chunk_upload(5, payload, 100);
  ASSERT_EQ(chunks.size(), 3u);

  fl::ChunkAssembler assembler(5);
  EXPECT_EQ(assembler.accept(chunks[0]), fl::ChunkAssembler::Accept::kAccepted);
  fl::UploadChunk corrupted = chunks[1];
  corrupted.payload[0] ^= 0xff;
  EXPECT_EQ(assembler.accept(corrupted), fl::ChunkAssembler::Accept::kCorrupt);
  EXPECT_FALSE(assembler.complete());
  // Retransmit the clean chunk; the upload completes normally.
  EXPECT_EQ(assembler.accept(chunks[1]), fl::ChunkAssembler::Accept::kAccepted);
  EXPECT_EQ(assembler.accept(chunks[2]), fl::ChunkAssembler::Accept::kComplete);
  EXPECT_EQ(*assembler.assemble(), payload);
}

// ---------------------------------------------------------- Fixed point ----

class FixedPointSweep : public ::testing::TestWithParam<
                            std::tuple<double, std::size_t>> {};

TEST_P(FixedPointSweep, AggregatedSumDecodesWithinResolution) {
  const auto [magnitude, num_updates] = GetParam();
  const auto params =
      secagg::FixedPointParams::for_budget(magnitude, num_updates);
  util::Rng rng(static_cast<std::uint64_t>(magnitude * 100) + num_updates);

  constexpr std::size_t kLen = 32;
  // Reference sum in double so the check isolates fixed-point error from
  // float32 accumulation error.
  std::vector<double> true_sum(kLen, 0.0);
  secagg::GroupVec encoded_sum(kLen, 0);
  for (std::size_t u = 0; u < num_updates; ++u) {
    std::vector<float> v(kLen);
    for (auto& x : v) {
      x = static_cast<float>(rng.uniform(-magnitude, magnitude));
    }
    for (std::size_t i = 0; i < kLen; ++i) true_sum[i] += v[i];
    secagg::add_in_place(encoded_sum, secagg::encode(v, params));
  }

  const std::vector<float> decoded = secagg::decode(encoded_sum, params);
  // Each encode rounds to 1/(2*scale); rounding errors add across updates,
  // and the float32 result carries its own representation error.
  for (std::size_t i = 0; i < kLen; ++i) {
    const double tolerance = static_cast<double>(num_updates) / params.scale +
                             std::abs(true_sum[i]) * 1e-6 + 1e-6;
    EXPECT_NEAR(decoded[i], true_sum[i], tolerance) << "element " << i;
  }
}

TEST_P(FixedPointSweep, BudgetLeavesSafetyMargin) {
  const auto [magnitude, num_updates] = GetParam();
  const auto params =
      secagg::FixedPointParams::for_budget(magnitude, num_updates);
  EXPECT_GE(params.max_aggregatable_magnitude(),
            magnitude * static_cast<double>(num_updates) * 2.0 * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, FixedPointSweep,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0, 100.0),
                       ::testing::Values<std::size_t>(1, 10, 100, 1000)));

// -------------------------------------------------------------------- DH ----

class DhSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DhSweep, BothSidesDeriveTheSameKey) {
  const auto [group, seed] = GetParam();
  const crypto::DhParams& params = group == 0
                                       ? crypto::DhParams::simulation256()
                                       : crypto::DhParams::rfc3526_1536();
  util::Bytes seed_a{static_cast<std::uint8_t>(seed), 1};
  util::Bytes seed_b{static_cast<std::uint8_t>(seed), 2};
  crypto::DhRandom ra(seed_a), rb(seed_b);
  const auto alice = crypto::dh_generate(params, ra);
  const auto bob = crypto::dh_generate(params, rb);

  const auto shared_a =
      crypto::dh_shared_element(params, alice.private_key, bob.public_key);
  const auto shared_b =
      crypto::dh_shared_element(params, bob.private_key, alice.public_key);
  EXPECT_EQ(shared_a, shared_b);

  const auto key_a = crypto::dh_derive_key(params, shared_a, "label");
  const auto key_b = crypto::dh_derive_key(params, shared_b, "label");
  EXPECT_EQ(key_a, key_b);
  // Different protocol labels must give unrelated keys.
  EXPECT_NE(key_a, crypto::dh_derive_key(params, shared_a, "other-label"));
}

TEST_P(DhSweep, DistinctPartiesDistinctSecrets) {
  const auto [group, seed] = GetParam();
  const crypto::DhParams& params = group == 0
                                       ? crypto::DhParams::simulation256()
                                       : crypto::DhParams::rfc3526_1536();
  util::Bytes seed_a{static_cast<std::uint8_t>(seed), 10};
  util::Bytes seed_b{static_cast<std::uint8_t>(seed), 20};
  util::Bytes seed_c{static_cast<std::uint8_t>(seed), 30};
  crypto::DhRandom ra(seed_a), rb(seed_b), rc(seed_c);
  const auto a = crypto::dh_generate(params, ra);
  const auto b = crypto::dh_generate(params, rb);
  const auto c = crypto::dh_generate(params, rc);
  EXPECT_NE(crypto::dh_shared_element(params, a.private_key, b.public_key),
            crypto::dh_shared_element(params, a.private_key, c.public_key));
}

INSTANTIATE_TEST_SUITE_P(Groups, DhSweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 2, 3)));

// ------------------------------------------------------ Authenticated enc ----

class AuthEncSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AuthEncSweep, RoundTripsAndRejectsEveryTamperRegion) {
  const std::size_t size = GetParam();
  crypto::Digest key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7 + size);
  }
  util::Rng rng(size);
  util::Bytes plaintext(size);
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next());
  const util::Bytes ad{0xaa, 0xbb};

  const auto box = crypto::seal(key, 5, plaintext, ad);
  const auto opened = crypto::open(key, 5, box, ad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);

  // Wrong sequence number, wrong AD, wrong key: all rejected.
  EXPECT_FALSE(crypto::open(key, 6, box, ad).has_value());
  EXPECT_FALSE(crypto::open(key, 5, box, {}).has_value());
  crypto::Digest wrong_key = key;
  wrong_key[0] ^= 1;
  EXPECT_FALSE(crypto::open(wrong_key, 5, box, ad).has_value());

  // Flipping any single byte region — nonce, body, tag — must be caught.
  for (const std::size_t pos :
       {std::size_t{0}, box.ciphertext.size() / 2, box.ciphertext.size() - 1}) {
    crypto::SealedBox tampered = box;
    tampered.ciphertext[pos] ^= 0x01;
    EXPECT_FALSE(crypto::open(key, 5, tampered, ad).has_value())
        << "byte " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AuthEncSweep,
                         ::testing::Values<std::size_t>(0, 1, 16, 100, 4096));

// -------------------------------------------------------- Verifiable log ----

class MerkleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MerkleSweep, EveryLeafProvesInclusion) {
  const std::uint64_t n = GetParam();
  crypto::VerifiableLog log;
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("record-" + std::to_string(i));
  }
  const auto snapshot = log.snapshot();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string record = "record-" + std::to_string(i);
    const auto leaf = crypto::VerifiableLog::leaf_hash(
        {reinterpret_cast<const std::uint8_t*>(record.data()), record.size()});
    EXPECT_TRUE(
        crypto::verify_inclusion(leaf, log.prove_inclusion(i), snapshot))
        << "leaf " << i;
    // The proof must not validate a different record.
    const std::string other = "record-x";
    const auto wrong_leaf = crypto::VerifiableLog::leaf_hash(
        {reinterpret_cast<const std::uint8_t*>(other.data()), other.size()});
    if (n > 1) {
      EXPECT_FALSE(crypto::verify_inclusion(wrong_leaf, log.prove_inclusion(i),
                                            snapshot));
    }
  }
}

TEST_P(MerkleSweep, EveryPrefixIsConsistentWithTheFinalLog) {
  const std::uint64_t n = GetParam();
  crypto::VerifiableLog log;
  std::vector<crypto::LogSnapshot> snapshots;
  for (std::uint64_t i = 0; i < n; ++i) {
    log.append("r" + std::to_string(i));
    snapshots.push_back(log.snapshot());
  }
  const auto latest = log.snapshot();
  for (const auto& old : snapshots) {
    EXPECT_TRUE(crypto::verify_consistency(
        old, latest, log.prove_consistency(old.tree_size)))
        << "prefix " << old.tree_size;
  }
  // A forked history (different root at the same old size) must fail.
  if (n >= 2) {
    crypto::LogSnapshot forked = snapshots.front();
    forked.root[0] ^= 1;
    EXPECT_FALSE(crypto::verify_consistency(
        forked, latest, log.prove_consistency(forked.tree_size)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSweep,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 16,
                                                          21, 64));

// --------------------------------------------------------- One-time pads ----

class OtpSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OtpSweep, HomomorphicAggregationUnmasksExactly) {
  const std::size_t num_clients = GetParam();
  constexpr std::size_t kLen = 64;
  util::Rng rng(num_clients);

  secagg::GroupVec masked_sum(kLen, 0);
  secagg::GroupVec mask_sum(kLen, 0);
  secagg::GroupVec plain_sum(kLen, 0);
  for (std::size_t c = 0; c < num_clients; ++c) {
    secagg::Seed seed{};
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
    secagg::GroupVec v(kLen);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());

    secagg::add_in_place(plain_sum, v);
    secagg::add_in_place(masked_sum, secagg::mask(v, seed));
    secagg::add_in_place(mask_sum, secagg::expand_mask(seed, kLen));
  }
  EXPECT_EQ(secagg::unmask(masked_sum, mask_sum), plain_sum);
}

INSTANTIATE_TEST_SUITE_P(Cohorts, OtpSweep,
                         ::testing::Values<std::size_t>(1, 2, 7, 32, 100));

// ------------------------------------------------- Aggregator invariants ----

struct AggGridParam {
  fl::TrainingMode mode;
  std::size_t concurrency;
  std::size_t goal;
};

class AggregatorGrid : public ::testing::TestWithParam<AggGridParam> {};

TEST_P(AggregatorGrid, CountersAndDemandStayConsistent) {
  const AggGridParam p = GetParam();
  fl::Aggregator agg("a");
  fl::TaskConfig cfg;
  cfg.name = "t";
  cfg.mode = p.mode;
  cfg.concurrency = p.concurrency;
  cfg.aggregation_goal = p.goal;
  cfg.model_size = 2;
  cfg.max_staleness = 1000;
  agg.assign_task(cfg, std::vector<float>(2, 0.0f), {});

  util::Rng rng(p.concurrency * 7 + p.goal);
  std::uint64_t next_client = 1;
  std::vector<std::uint64_t> active;
  double now = 0.0;

  for (int step = 0; step < 400; ++step) {
    now += 1.0;
    // Demand invariant: never negative, never above concurrency.
    const std::int64_t demand = agg.client_demand("t");
    EXPECT_GE(demand, 0);
    EXPECT_LE(demand, static_cast<std::int64_t>(p.concurrency));
    EXPECT_LE(agg.active_clients("t"), p.concurrency);

    if (demand > 0 && rng.bernoulli(0.7)) {
      const auto join = agg.client_join("t", next_client, now);
      if (join.accepted) active.push_back(next_client);
      ++next_client;
    }
    if (!active.empty() && rng.bernoulli(0.6)) {
      const std::size_t pick = rng.uniform_int(active.size());
      const std::uint64_t client = active[pick];
      active.erase(active.begin() + pick);
      fl::ModelUpdate u;
      u.client_id = client;
      u.initial_version = agg.model_version("t");
      u.num_examples = 4;
      u.delta = {0.01f, 0.01f};
      const auto r = agg.client_report("t", u.serialize(), now);
      if (r.server_stepped) {
        // Aborted clients leave the active set.
        for (const std::uint64_t aborted : r.aborted_clients) {
          active.erase(std::remove(active.begin(), active.end(), aborted),
                       active.end());
        }
      }
    }
  }

  const fl::TaskStats& stats = agg.stats("t");
  // Conservation: every received update is applied, discarded, or still
  // buffered toward the next goal.
  EXPECT_LE(stats.updates_applied + stats.updates_discarded,
            stats.updates_received);
  EXPECT_GE(stats.updates_received,
            stats.updates_applied + stats.updates_discarded);
  // Applied updates drive server steps in units of the aggregation goal.
  EXPECT_EQ(stats.server_steps, stats.updates_applied / p.goal);
  // The model actually moved if any step happened.
  if (stats.server_steps > 0) {
    EXPECT_NE(agg.model("t")[0], 0.0f);
    EXPECT_EQ(agg.model_version("t"), stats.server_steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AggregatorGrid,
    ::testing::Values(AggGridParam{fl::TrainingMode::kAsync, 4, 2},
                      AggGridParam{fl::TrainingMode::kAsync, 16, 4},
                      AggGridParam{fl::TrainingMode::kAsync, 32, 4},
                      AggGridParam{fl::TrainingMode::kAsync, 32, 32},
                      AggGridParam{fl::TrainingMode::kSync, 4, 4},
                      AggGridParam{fl::TrainingMode::kSync, 13, 10},
                      AggGridParam{fl::TrainingMode::kSync, 26, 20}),
    [](const ::testing::TestParamInfo<AggGridParam>& info) {
      return std::string(info.param.mode == fl::TrainingMode::kAsync ? "async"
                                                                     : "sync") +
             "_c" + std::to_string(info.param.concurrency) + "_k" +
             std::to_string(info.param.goal);
    });

// ------------------------------------------------- Coordinator assignment ----

TEST(CoordinatorAssignment, RandomAssignmentIsUniformOverEligibleTasks) {
  // Sec. 6.2: "the Coordinator randomly assigns the client to an eligible
  // task".  With two equally demanding tasks, assignments split ~50/50.
  fl::Aggregator agg("a");
  fl::Coordinator coord(7);
  coord.register_aggregator(agg, 0.0);
  fl::TaskConfig t1, t2;
  t1.name = "t1";
  t2.name = "t2";
  t1.concurrency = t2.concurrency = 100000;  // never exhausted
  t1.aggregation_goal = t2.aggregation_goal = 10;
  t1.model_size = t2.model_size = 1;
  coord.submit_task(t1, {0.0f}, {});
  coord.submit_task(t2, {0.0f}, {});

  int to_t1 = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const auto assignment = coord.assign_client({});
    ASSERT_TRUE(assignment.has_value());
    to_t1 += assignment->task == "t1";
    coord.assignment_concluded(assignment->task);
  }
  // Binomial(4000, 0.5): 5 sigma ~ 158.
  EXPECT_NEAR(to_t1, kTrials / 2, 160);
}

TEST(CoordinatorAssignment, CapabilityFilterRestrictsEligibility) {
  fl::Aggregator agg("a");
  fl::Coordinator coord(8);
  coord.register_aggregator(agg, 0.0);
  fl::TaskConfig open, gated;
  open.name = "open";
  gated.name = "gated";
  gated.required_capability = "lstm";
  open.concurrency = gated.concurrency = 1000;
  open.aggregation_goal = gated.aggregation_goal = 10;
  open.model_size = gated.model_size = 1;
  coord.submit_task(open, {0.0f}, {});
  coord.submit_task(gated, {0.0f}, {});

  // A plain client only ever lands on the open task.
  for (int i = 0; i < 50; ++i) {
    const auto a = coord.assign_client({});
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->task, "open");
    coord.assignment_concluded(a->task);
  }
  // A capable client reaches both.
  bool saw_gated = false;
  for (int i = 0; i < 100 && !saw_gated; ++i) {
    const auto a = coord.assign_client({fl::ClientCapabilities{{"lstm"}}});
    ASSERT_TRUE(a.has_value());
    saw_gated = a->task == "gated";
    coord.assignment_concluded(a->task);
  }
  EXPECT_TRUE(saw_gated);
}

}  // namespace
}  // namespace papaya
