// Randomized state-machine tests: drive the Aggregator with random event
// sequences (joins, reports, failures, timeout sweeps) in both training
// modes and check global invariants after every event.  This is the
// property-style complement to the scenario tests in fl_test.cpp.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fl/aggregator.hpp"
#include "util/rng.hpp"

namespace papaya::fl {
namespace {

struct DriverCase {
  TrainingMode mode;
  std::size_t concurrency;
  std::size_t goal;
  std::uint64_t seed;
};

class AggregatorDriver : public ::testing::TestWithParam<DriverCase> {};

TEST_P(AggregatorDriver, InvariantsHoldUnderRandomEventSequences) {
  const DriverCase param = GetParam();
  util::Rng rng(param.seed);

  Aggregator agg("a");
  TaskConfig cfg;
  cfg.name = "t";
  cfg.mode = param.mode;
  cfg.concurrency = param.concurrency;
  cfg.aggregation_goal = param.goal;
  cfg.model_size = 4;
  cfg.max_staleness = 5;
  cfg.client_timeout_s = 50.0;
  agg.assign_task(cfg, std::vector<float>(4, 0.0f), {.lr = 0.05f});

  std::set<std::uint64_t> joined;  // clients we believe are active
  std::uint64_t next_client = 1;
  double now = 0.0;
  std::uint64_t last_version = 0;
  std::map<std::uint64_t, std::uint64_t> join_version;

  for (int event = 0; event < 2000; ++event) {
    now += rng.uniform(0.0, 3.0);
    const double action = rng.uniform();

    if (action < 0.45) {
      // Join attempt by a fresh client.
      const std::uint64_t client = next_client++;
      const JoinResult join = agg.client_join("t", client, now);
      if (join.accepted) {
        joined.insert(client);
        join_version[client] = join.model_version;
        EXPECT_EQ(join.model_version, agg.model_version("t"));
      } else {
        // A rejection must mean demand was exhausted.
        EXPECT_LE(agg.client_demand("t"), 0);
      }
    } else if (action < 0.80 && !joined.empty()) {
      // A random active client reports.
      auto it = joined.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.uniform_int(joined.size())));
      const std::uint64_t client = *it;
      ModelUpdate u;
      u.client_id = client;
      u.initial_version = join_version[client];
      u.num_examples = 1 + rng.uniform_int(20);
      u.delta.assign(4, static_cast<float>(rng.normal()) * 0.1f);
      const ReportResult r = agg.client_report("t", u.serialize(), now);
      joined.erase(client);
      for (const std::uint64_t aborted : r.aborted_clients) {
        EXPECT_TRUE(joined.erase(aborted) == 1) << "abort of unknown client";
      }
      if (r.server_stepped) {
        EXPECT_EQ(agg.model_version("t"), last_version + 1);
        last_version = agg.model_version("t");
      }
    } else if (action < 0.90 && !joined.empty()) {
      // A random active client fails.
      auto it = joined.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.uniform_int(joined.size())));
      agg.client_failed("t", *it, now);
      joined.erase(it);
    } else {
      // Server timeout sweep.
      for (const std::uint64_t expired : agg.expire_timeouts("t", now)) {
        EXPECT_TRUE(joined.erase(expired) == 1);
      }
    }

    // -- Global invariants -------------------------------------------------
    // 1. The server's active set never exceeds concurrency (App. E.1).
    EXPECT_LE(agg.active_clients("t"), param.concurrency);
    // 2. Our mirror of the active set matches the server's.
    EXPECT_EQ(agg.active_clients("t"), joined.size());
    // 3. Demand is never negative and never exceeds the configured bound.
    EXPECT_GE(agg.client_demand("t"), 0);
    EXPECT_LE(agg.client_demand("t"),
              static_cast<std::int64_t>(param.concurrency));
    // 4. Version is monotone (checked via last_version above).
    EXPECT_GE(agg.model_version("t"), last_version);
    // 5. Counter consistency: applied + discarded <= received.
    const TaskStats& stats = agg.stats("t");
    EXPECT_LE(stats.updates_applied + stats.updates_discarded,
              stats.updates_received);
    // 6. Model stays finite.
    for (const float v : agg.model("t")) EXPECT_TRUE(std::isfinite(v));
  }

  // The run must have made progress: at least some server steps happened.
  EXPECT_GT(agg.stats("t").server_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AggregatorDriver,
    ::testing::Values(DriverCase{TrainingMode::kAsync, 8, 3, 1},
                      DriverCase{TrainingMode::kAsync, 20, 5, 2},
                      DriverCase{TrainingMode::kAsync, 3, 1, 3},
                      DriverCase{TrainingMode::kSync, 8, 6, 4},
                      DriverCase{TrainingMode::kSync, 13, 10, 5},
                      DriverCase{TrainingMode::kSync, 2, 2, 6}));

TEST(AggregatorInvariants, SyncDiscardsNeverCountTowardGoal) {
  // Drive many full sync rounds; every server step must consume exactly
  // `goal` applied updates.
  Aggregator agg("a");
  TaskConfig cfg;
  cfg.name = "t";
  cfg.mode = TrainingMode::kSync;
  cfg.aggregation_goal = 3;
  cfg.concurrency = 4;  // one over-selected slot
  cfg.model_size = 2;
  agg.assign_task(cfg, std::vector<float>(2, 0.0f), {});

  std::uint64_t client = 1;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> cohort;
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t c = client++;
      ASSERT_TRUE(agg.client_join("t", c, 0.0).accepted);
      cohort.push_back(c);
    }
    for (int i = 0; i < 3; ++i) {
      ModelUpdate u;
      u.client_id = cohort[static_cast<std::size_t>(i)];
      u.initial_version = agg.model_version("t");
      u.num_examples = 5;
      u.delta = {0.01f, 0.01f};
      agg.client_report("t", u.serialize(), 1.0);
    }
    EXPECT_EQ(agg.stats("t").server_steps, static_cast<std::uint64_t>(round + 1));
    EXPECT_EQ(agg.stats("t").updates_applied,
              static_cast<std::uint64_t>(3 * (round + 1)));
  }
}

TEST(AggregatorInvariants, AsyncManyStepsKeepModelFinite) {
  // Long async run with adversarially large deltas + DP clipping: the model
  // must remain finite (clipping bounds each update's influence).
  Aggregator agg("a");
  TaskConfig cfg;
  cfg.name = "t";
  cfg.mode = TrainingMode::kAsync;
  cfg.aggregation_goal = 2;
  cfg.concurrency = 4;
  cfg.model_size = 3;
  cfg.dp.enabled = true;
  cfg.dp.clip_norm = 1.0f;
  agg.assign_task(cfg, std::vector<float>(3, 0.0f), {.lr = 0.1f});

  util::Rng rng(3);
  for (std::uint64_t c = 1; c <= 400; ++c) {
    agg.client_join("t", c, 0.0);
    ModelUpdate u;
    u.client_id = c;
    u.initial_version = agg.model_version("t");
    u.num_examples = 1;
    const float magnitude = rng.bernoulli(0.1) ? 1e8f : 0.1f;
    u.delta.assign(3, magnitude * static_cast<float>(rng.normal()));
    agg.client_report("t", u.serialize(), 1.0);
  }
  EXPECT_EQ(agg.stats("t").server_steps, 200u);
  for (const float v : agg.model("t")) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::fabs(v), 100.0f);
  }
}

}  // namespace
}  // namespace papaya::fl
