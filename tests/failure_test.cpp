// Failure-injection tests (App. E.4): Aggregator crashes, Coordinator
// restarts, Selector staleness, and client-visible behaviour through each.

#include <gtest/gtest.h>

#include "fl/aggregator.hpp"
#include "fl/coordinator.hpp"
#include "fl/selector.hpp"
#include "sim/fl_simulator.hpp"

namespace papaya {
namespace {

fl::TaskConfig tiny_task(const std::string& name = "t") {
  fl::TaskConfig cfg;
  cfg.name = name;
  cfg.mode = fl::TrainingMode::kAsync;
  cfg.concurrency = 4;
  cfg.aggregation_goal = 2;
  cfg.model_size = 2;
  return cfg;
}

util::Bytes update(std::uint64_t client, std::uint64_t version) {
  fl::ModelUpdate u;
  u.client_id = client;
  u.initial_version = version;
  u.num_examples = 1;
  u.delta = {0.1f, 0.1f};
  return u.serialize();
}

TEST(Failover, InFlightClientsOnFailedAggregatorAreLost) {
  // Clients active on the dead Aggregator are not in the replacement's
  // active set: their uploads are rejected and they re-select (the paper
  // accepts this as "isolated impact").
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.submit_task(tiny_task(), std::vector<float>(2, 0.0f), {});
  const std::string owner_id = coord.assignment_map().task_to_aggregator.at("t");
  fl::Aggregator& owner = owner_id == "a" ? a : b;
  fl::Aggregator& standby = owner_id == "a" ? b : a;

  ASSERT_TRUE(owner.client_join("t", 1, 0.0).accepted);
  coord.aggregator_report(standby.id(), 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);
  ASSERT_TRUE(standby.has_task("t"));

  const auto result = standby.client_report("t", update(1, 0), 101.0);
  EXPECT_EQ(result.outcome, fl::ReportOutcome::kRejectedUnknown);
  // ...but the client can immediately rejoin on the new owner.
  EXPECT_TRUE(standby.client_join("t", 1, 102.0).accepted);
}

TEST(Failover, MultipleTasksAllMoveOffFailedAggregator) {
  fl::Aggregator a("a"), b("b"), c("c");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.register_aggregator(c, 0.0);
  for (int i = 0; i < 6; ++i) {
    coord.submit_task(tiny_task("t" + std::to_string(i)),
                      std::vector<float>(2, 0.0f), {});
  }
  // Fail aggregator "a"; others heartbeat.
  coord.aggregator_report("b", 1, 100.0, {});
  coord.aggregator_report("c", 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);
  EXPECT_TRUE(a.task_names().empty());
  for (const auto& [task, agg_id] :
       coord.assignment_map().task_to_aggregator) {
    EXPECT_NE(agg_id, "a") << task;
  }
}

TEST(Failover, FailedAggregatorStaysOutOfPlacement) {
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.aggregator_report("b", 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);  // "a" is now dead
  for (int i = 0; i < 4; ++i) {
    coord.submit_task(tiny_task("t" + std::to_string(i)),
                      std::vector<float>(2, 0.0f), {});
    EXPECT_EQ(coord.assignment_map().task_to_aggregator.at(
                  "t" + std::to_string(i)),
              "b");
  }
}

TEST(Failover, ShardedTaskKeepsCheckpointAndShardsAcrossFailover) {
  // detect_failures() must move a sharded task with its checkpointed model
  // *and* its shard count, rebuilding the same sharded pipeline on the
  // replacement Aggregator.
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  fl::TaskConfig cfg = tiny_task();
  cfg.aggregator_shards = 3;
  coord.submit_task(cfg, std::vector<float>(2, 0.25f), {});
  const std::string owner_id = coord.assignment_map().task_to_aggregator.at("t");
  fl::Aggregator& owner = owner_id == "a" ? a : b;
  fl::Aggregator& standby = owner_id == "a" ? b : a;
  ASSERT_EQ(owner.task_shards("t"), 3u);

  // Drive one server step so the checkpoint version is non-trivial.
  ASSERT_TRUE(owner.client_join("t", 1, 0.0).accepted);
  ASSERT_TRUE(owner.client_join("t", 2, 0.0).accepted);
  owner.client_report("t", update(1, 0), 1.0);
  ASSERT_TRUE(owner.client_report("t", update(2, 0), 1.0).server_stepped);
  ASSERT_EQ(owner.model_version("t"), 1u);
  const std::vector<float> stepped_model = owner.model("t");

  coord.aggregator_report(standby.id(), 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);
  ASSERT_TRUE(standby.has_task("t"));
  EXPECT_EQ(standby.model_version("t"), 1u);  // checkpoint version preserved
  EXPECT_EQ(standby.model("t"), stepped_model);
  EXPECT_EQ(standby.task_shards("t"), 3u);    // shard config preserved
  EXPECT_EQ(coord.task_shards("t"), 3u);

  // The rebuilt sharded pipeline keeps folding on the new owner.
  ASSERT_TRUE(standby.client_join("t", 7, 101.0).accepted);
  ASSERT_TRUE(standby.client_join("t", 8, 101.0).accepted);
  standby.client_report("t", update(7, 1), 102.0);
  EXPECT_TRUE(standby.client_report("t", update(8, 1), 102.0).server_stepped);
  EXPECT_EQ(standby.model_version("t"), 2u);
}

TEST(Failover, RecoveredAggregatorRejoinsViaReport) {
  // A failed Aggregator that starts heartbeating again becomes placeable.
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.aggregator_report("b", 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);
  // "a" comes back.
  coord.aggregator_report("a", 1, 150.0, {});
  coord.submit_task(tiny_task("big"), std::vector<float>(2, 0.0f), {});
  // Load "b" heavily first so "a" is least-loaded for the next task.
  coord.submit_task(tiny_task("t2"), std::vector<float>(2, 0.0f), {});
  EXPECT_TRUE(a.has_task("big") || a.has_task("t2"));
}

TEST(Failover, StaleSelectorRoutesToOldOwnerUntilRefresh) {
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  coord.submit_task(tiny_task(), std::vector<float>(2, 0.0f), {});
  const std::string original = coord.assignment_map().task_to_aggregator.at("t");

  fl::Selector stale("stale");
  stale.refresh(coord);

  fl::Aggregator& standby = original == "a" ? b : a;
  coord.aggregator_report(standby.id(), 1, 100.0, {});
  coord.detect_failures(100.0, 30.0);

  // The stale selector still points at the dead owner...
  EXPECT_EQ(*stale.route("t"), original);
  EXPECT_TRUE(stale.is_stale(coord));
  // ...until refresh, after which it routes to the replacement.
  stale.refresh(coord);
  EXPECT_EQ(*stale.route("t"), standby.id());
}

TEST(Failover, CoordinatorRestartPreservesRouting) {
  fl::Aggregator a("a"), b("b");
  fl::Coordinator coord;
  coord.register_aggregator(a, 0.0);
  coord.register_aggregator(b, 0.0);
  for (int i = 0; i < 4; ++i) {
    coord.submit_task(tiny_task("t" + std::to_string(i)),
                      std::vector<float>(2, 0.0f), {});
  }
  const auto before = coord.assignment_map().task_to_aggregator;
  coord.recover_from_aggregator_state(50.0);
  EXPECT_EQ(coord.assignment_map().task_to_aggregator, before);
  // Map version bumps so Selectors re-pull after the recovery period.
  fl::Selector sel("s");
  sel.refresh(coord);
  EXPECT_FALSE(sel.is_stale(coord));
}

TEST(Failover, SimulatedFailoverIsDeterministic) {
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 12;
  cfg.task.aggregation_goal = 4;
  cfg.population.num_devices = 100;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 6;
  cfg.model.hidden_dim = 8;
  cfg.trainer.compute_losses = false;
  cfg.num_aggregators = 2;
  cfg.aggregator_failure_at_s = 80.0;
  cfg.aggregator_failure_timeout_s = 15.0;
  cfg.max_sim_time_s = 400.0;
  cfg.seed = 21;
  sim::FlSimulator s1(cfg), s2(cfg);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.final_model, r2.final_model);
  EXPECT_EQ(r1.server_steps, r2.server_steps);
}

TEST(Failover, DropoutHeavyPopulationStillConverges) {
  // 30% dropouts: replacements keep the pipeline fed and training converges.
  sim::SimulationConfig cfg;
  cfg.task.name = "lm";
  cfg.task.mode = fl::TrainingMode::kAsync;
  cfg.task.concurrency = 16;
  cfg.task.aggregation_goal = 4;
  cfg.population.num_devices = 150;
  cfg.population.dropout_prob = 0.30;
  cfg.corpus.vocab_size = 32;
  cfg.model.vocab_size = 32;
  cfg.model.embed_dim = 8;
  cfg.model.hidden_dim = 12;
  cfg.trainer.compute_losses = false;
  cfg.server_opt.lr = 0.05f;
  cfg.max_server_steps = 25;
  cfg.eval_every_steps = 5;
  cfg.seed = 13;
  sim::FlSimulator simulator(cfg);
  const auto result = simulator.run();
  EXPECT_LT(result.final_eval_loss, result.loss_curve.values.front());
  EXPECT_GT(result.task_stats.clients_failed, 0u);
}

}  // namespace
}  // namespace papaya
