// Property-based test sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over the
// protocol and numeric invariants the system depends on:
//   - BigUInt ring axioms under random inputs
//   - fixed-point homomorphism across scales and widths
//   - SecAgg end-to-end correctness across (vector length, K, threshold)
//   - OTP masking uniformity
//   - model-gradient checks across architectures and shapes
//   - FedBuff weighting invariants
//   - serialization round-trips under random payloads
//   - chunked-upload reassembly under reordering, duplication, corruption
//     and cross-session interleaving (bit-identical or clean rejection)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "crypto/bigint.hpp"
#include "fl/chunking.hpp"
#include "fl/model_update.hpp"
#include "ml/model.hpp"
#include "secagg/fixed_point.hpp"
#include "secagg/otp.hpp"
#include "secagg/secagg_client.hpp"
#include "secagg/secagg_server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace papaya {
namespace {

// ----------------------------------------------------- BigUInt ring axioms --

class BigUIntAxioms : public ::testing::TestWithParam<std::uint64_t> {};

crypto::BigUInt random_biguint(util::Rng& rng, std::size_t max_bytes) {
  util::Bytes bytes(1 + rng.uniform_int(max_bytes));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return crypto::BigUInt::from_bytes(bytes);
}

TEST_P(BigUIntAxioms, AdditionCommutesAndAssociates) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto a = random_biguint(rng, 20);
    const auto b = random_biguint(rng, 20);
    const auto c = random_biguint(rng, 20);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST_P(BigUIntAxioms, MultiplicationDistributesOverAddition) {
  util::Rng rng(GetParam() ^ 1);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_biguint(rng, 12);
    const auto b = random_biguint(rng, 12);
    const auto c = random_biguint(rng, 12);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST_P(BigUIntAxioms, SubtractionInvertsAddition) {
  util::Rng rng(GetParam() ^ 2);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_biguint(rng, 16);
    const auto b = random_biguint(rng, 16);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(BigUIntAxioms, PowmodMultiplicativeHomomorphism) {
  // (a*b)^e mod m == a^e * b^e mod m.
  util::Rng rng(GetParam() ^ 3);
  for (int i = 0; i < 10; ++i) {
    const auto a = random_biguint(rng, 8);
    const auto b = random_biguint(rng, 8);
    const auto e = crypto::BigUInt(1 + rng.uniform_int(50));
    auto m = random_biguint(rng, 8);
    if (m.is_zero()) m = crypto::BigUInt(97);
    EXPECT_EQ((a * b).powmod(e, m),
              a.powmod(e, m).mulmod(b.powmod(e, m), m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUIntAxioms,
                         ::testing::Values(11, 22, 33, 44, 55));

// ----------------------------------------------- Fixed-point homomorphism --

class FixedPointSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(FixedPointSweep, SumOfEncodingsDecodesToSum) {
  const auto [magnitude, count] = GetParam();
  const secagg::FixedPointParams params =
      secagg::FixedPointParams::for_budget(magnitude, count);
  util::Rng rng(static_cast<std::uint64_t>(magnitude * 1000) + count);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint32_t acc = 0;
    double expected = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double v = rng.uniform(-magnitude, magnitude);
      expected += v;
      acc += secagg::encode_value(v, params);
    }
    EXPECT_NEAR(secagg::decode_value(acc, params), expected,
                static_cast<double>(count) / params.scale + 1e-9)
        << "magnitude " << magnitude << " count " << count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, FixedPointSweep,
    ::testing::Combine(::testing::Values(0.01, 1.0, 100.0),
                       ::testing::Values(2UL, 16UL, 256UL, 4096UL)));

// ------------------------------------------------------- OTP uniformity --

TEST(OtpProperty, MaskedValuesLookUniform) {
  // Chi-square-ish sanity: bytes of masked all-zero vectors across many
  // seeds should be roughly uniform.
  util::Rng rng(9);
  std::vector<std::uint64_t> bucket(16, 0);
  const std::size_t l = 64;
  for (int s = 0; s < 200; ++s) {
    secagg::Seed seed{};
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const secagg::GroupVec masked = secagg::mask(secagg::GroupVec(l, 0), seed);
    for (const std::uint32_t w : masked) ++bucket[w & 0xf];
  }
  const double expected = 200.0 * l / 16.0;
  for (const std::uint64_t count : bucket) {
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.15);
  }
}

// -------------------------------------------- SecAgg end-to-end sweep ----

struct SecAggCase {
  std::size_t length;
  std::size_t goal;
  std::size_t extra_messages;
};

class SecAggSweep : public ::testing::TestWithParam<SecAggCase> {};

TEST_P(SecAggSweep, SecureSumEqualsPlaintextSum) {
  const auto [length, goal, extra] = GetParam();
  const crypto::DhParams& dh = crypto::DhParams::simulation256();
  const secagg::SimulatedEnclavePlatform platform(5);
  const crypto::Digest binary = crypto::Sha256::hash(std::string("bin"));
  crypto::VerifiableLog log;
  log.append(binary);

  secagg::SecAggParams params{length, goal};
  const auto fp = secagg::FixedPointParams::for_budget(1.0, goal);
  secagg::TrustedSecureAggregator tsa(dh, params, goal + extra, platform,
                                      binary, 17);
  const secagg::QuoteExpectations expectations{params.hash(dh),
                                               log.snapshot()};
  secagg::SecureAggregationSession session(tsa, length, goal);

  util::Rng rng(31 + goal);
  std::vector<double> expected(length, 0.0);
  for (std::size_t c = 0; c < goal; ++c) {
    std::vector<float> update(length);
    for (std::size_t i = 0; i < length; ++i) {
      update[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      expected[i] += update[i];
    }
    secagg::SecAggClient client(dh, fp, c);
    const auto contribution = client.prepare_contribution(
        platform, expectations, tsa.initial_messages().at(c),
        log.prove_inclusion(0), update);
    ASSERT_TRUE(contribution.has_value());
    ASSERT_EQ(session.accept(*contribution), secagg::TsaAccept::kAccepted);
  }
  const auto sum = session.finalize_decoded(fp);
  ASSERT_TRUE(sum.has_value());
  for (std::size_t i = 0; i < length; ++i) {
    EXPECT_NEAR((*sum)[i], expected[i],
                static_cast<double>(goal) / fp.scale + 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SecAggSweep,
    ::testing::Values(SecAggCase{1, 1, 0}, SecAggCase{3, 2, 1},
                      SecAggCase{17, 5, 3}, SecAggCase{64, 8, 0},
                      SecAggCase{256, 3, 2}, SecAggCase{33, 12, 4}));

// ------------------------------------------------ Model gradient sweep ----

struct ModelCase {
  bool lstm;
  std::size_t vocab;
  std::size_t embed;
  std::size_t hidden;
  std::size_t context;
};

class GradientSweep : public ::testing::TestWithParam<ModelCase> {};

TEST_P(GradientSweep, AnalyticGradientMatchesNumeric) {
  const ModelCase c = GetParam();
  ml::LmConfig cfg;
  cfg.vocab_size = c.vocab;
  cfg.embed_dim = c.embed;
  cfg.hidden_dim = c.hidden;
  cfg.context = c.context;
  util::Rng rng(c.vocab * 31 + c.hidden);
  auto model = c.lstm ? ml::make_lstm_lm(cfg, rng) : ml::make_mlp_lm(cfg, rng);

  // Random batch within the vocabulary.
  std::vector<ml::Sequence> batch;
  for (int s = 0; s < 3; ++s) {
    ml::Sequence seq(4 + rng.uniform_int(5));
    for (auto& t : seq) t = static_cast<std::int32_t>(rng.uniform_int(c.vocab));
    batch.push_back(std::move(seq));
  }

  std::vector<float> grad(model->num_params());
  model->loss(batch, grad);
  const float eps = 1e-3f;
  for (int check = 0; check < 25; ++check) {
    const std::size_t i = rng.uniform_int(model->num_params());
    const float saved = model->params()[i];
    model->params()[i] = saved + eps;
    const double up = model->loss(batch, {});
    model->params()[i] = saved - eps;
    const double down = model->loss(batch, {});
    model->params()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, GradientSweep,
    ::testing::Values(ModelCase{false, 4, 2, 3, 1},
                      ModelCase{false, 16, 8, 8, 3},
                      ModelCase{false, 9, 3, 5, 4},
                      ModelCase{true, 4, 2, 3, 0},
                      ModelCase{true, 16, 6, 8, 0},
                      ModelCase{true, 7, 5, 2, 0}));

// ------------------------------------------- FedBuff weighting invariants --

class StalenessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StalenessSweep, WeightIsPositiveDecreasingAndNormalized) {
  const std::uint64_t s = GetParam();
  EXPECT_GT(fl::staleness_weight(s), 0.0);
  EXPECT_LE(fl::staleness_weight(s), 1.0);
  EXPECT_GE(fl::staleness_weight(s), fl::staleness_weight(s + 1));
  EXPECT_DOUBLE_EQ(fl::staleness_weight(s),
                   1.0 / std::sqrt(1.0 + static_cast<double>(s)));
}

INSTANTIATE_TEST_SUITE_P(Staleness, StalenessSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 100, 10000));

// ------------------------------------------- Serialization round-trips ----

class SerializationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationSweep, ModelUpdateRoundTripsRandomPayloads) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    fl::ModelUpdate u;
    u.client_id = rng.next();
    u.initial_version = rng.next();
    u.num_examples = rng.uniform_int(1000);
    u.delta.resize(rng.uniform_int(200));
    for (auto& v : u.delta) v = static_cast<float>(rng.normal());
    const fl::ModelUpdate back = fl::ModelUpdate::deserialize(u.serialize());
    EXPECT_EQ(back.client_id, u.client_id);
    EXPECT_EQ(back.initial_version, u.initial_version);
    EXPECT_EQ(back.num_examples, u.num_examples);
    EXPECT_EQ(back.delta, u.delta);
  }
}

TEST_P(SerializationSweep, TruncatedUpdateThrowsInsteadOfCrashing) {
  util::Rng rng(GetParam() ^ 7);
  fl::ModelUpdate u;
  u.client_id = 1;
  u.delta.assign(64, 1.0f);
  const util::Bytes full = u.serialize();
  for (int i = 0; i < 20; ++i) {
    util::Bytes truncated(full.begin(),
                          full.begin() + static_cast<std::ptrdiff_t>(
                                             rng.uniform_int(full.size())));
    EXPECT_THROW(fl::ModelUpdate::deserialize(truncated), std::out_of_range);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationSweep,
                         ::testing::Values(1, 2, 3));

// ------------------------------------------- Chunked-upload reassembly ----

class ChunkAssemblerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

util::Bytes random_bytes(util::Rng& rng, std::size_t size) {
  util::Bytes bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return bytes;
}

/// Flip one random bit somewhere in a chunk's serialized form (framing or
/// payload) and deserialize it back — models line corruption anywhere in
/// the message, not just the payload.  A flip in the payload length prefix
/// can truncate the message, which deserialize() rejects by throwing; that
/// is already a clean rejection, so retry until the flip yields a chunk
/// that parses.
fl::UploadChunk corrupt_anywhere(const fl::UploadChunk& chunk,
                                 util::Rng& rng) {
  for (;;) {
    util::Bytes wire = chunk.serialize();
    const std::size_t byte = rng.uniform_int(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    try {
      return fl::UploadChunk::deserialize(wire);
    } catch (const std::out_of_range&) {
      // Truncating corruption: rejected at parse time; try another flip.
    }
  }
}

TEST_P(ChunkAssemblerFuzz, ReassemblesBitIdenticalOrRejectsCleanly) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const util::Bytes payload_a = random_bytes(rng, rng.uniform_int(3000));
    const util::Bytes payload_b = random_bytes(rng, 1 + rng.uniform_int(500));
    const std::size_t chunk_size = 1 + rng.uniform_int(256);
    auto chunks_a = fl::chunk_upload(100, payload_a, chunk_size);
    auto chunks_b = fl::chunk_upload(200, payload_b, chunk_size);

    // Build a hostile delivery schedule for session A: every chunk at
    // least once, plus duplicates, corrupted copies, and session-B chunks
    // interleaved throughout; then shuffle the lot.
    struct Delivery {
      fl::UploadChunk chunk;
      enum class Kind { kGood, kDuplicateOrGood, kCorrupt, kForeign } kind;
    };
    std::vector<Delivery> schedule;
    for (const auto& chunk : chunks_a) {
      schedule.push_back({chunk, Delivery::Kind::kGood});
      if (rng.bernoulli(0.4)) {
        schedule.push_back({chunk, Delivery::Kind::kDuplicateOrGood});
      }
      if (rng.bernoulli(0.5)) {
        const fl::UploadChunk bad = corrupt_anywhere(chunk, rng);
        // A bit-flip can toggle the session id to something foreign.
        schedule.push_back({bad, bad.session_id == 100
                                     ? Delivery::Kind::kCorrupt
                                     : Delivery::Kind::kForeign});
      }
    }
    for (const auto& chunk : chunks_b) {
      schedule.push_back({chunk, Delivery::Kind::kForeign});
    }
    for (std::size_t i = schedule.size(); i > 1; --i) {
      std::swap(schedule[i - 1], schedule[rng.uniform_int(i)]);
    }

    fl::ChunkAssembler assembler(100);
    fl::ChunkAssembler assembler_b(200);
    for (const auto& delivery : schedule) {
      const auto verdict = assembler.accept(delivery.chunk);
      switch (delivery.kind) {
        case Delivery::Kind::kGood:
        case Delivery::Kind::kDuplicateOrGood:
          // Good chunks are only ever accepted or flagged as duplicates —
          // never rejected.
          EXPECT_TRUE(verdict == fl::ChunkAssembler::Accept::kAccepted ||
                      verdict == fl::ChunkAssembler::Accept::kComplete ||
                      verdict == fl::ChunkAssembler::Accept::kDuplicate);
          break;
        case Delivery::Kind::kForeign:
          EXPECT_EQ(verdict, fl::ChunkAssembler::Accept::kInconsistent);
          break;
        case Delivery::Kind::kCorrupt:
          // Any single-bit flip that keeps the session id must be caught:
          // the framing-covering CRC leaves no silent slot for it.
          EXPECT_TRUE(verdict == fl::ChunkAssembler::Accept::kCorrupt ||
                      verdict == fl::ChunkAssembler::Accept::kInconsistent)
              << "corrupt chunk slipped through as " << static_cast<int>(verdict);
          break;
      }
      if (delivery.kind == Delivery::Kind::kForeign &&
          delivery.chunk.session_id == 200) {
        assembler_b.accept(delivery.chunk);
      }
    }

    // All good chunks were delivered: reassembly must be bit-identical.
    ASSERT_TRUE(assembler.complete());
    EXPECT_EQ(*assembler.assemble(), payload_a);
    ASSERT_TRUE(assembler_b.complete());
    EXPECT_EQ(*assembler_b.assemble(), payload_b);
  }
}

TEST_P(ChunkAssemblerFuzz, MissingChunksRejectCleanlyInsteadOfGuessing) {
  util::Rng rng(GetParam() ^ 0xc0ffee);
  for (int trial = 0; trial < 20; ++trial) {
    const util::Bytes payload = random_bytes(rng, 200 + rng.uniform_int(2000));
    auto chunks = fl::chunk_upload(5, payload, 64 + rng.uniform_int(128));
    if (chunks.size() < 2) continue;
    // Withhold one random chunk.
    const std::size_t withheld = rng.uniform_int(chunks.size());
    fl::ChunkAssembler assembler(5);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (i != withheld) assembler.accept(chunks[i]);
    }
    EXPECT_FALSE(assembler.complete());
    EXPECT_FALSE(assembler.assemble().has_value());
    // Late delivery completes it with the exact original bytes.
    EXPECT_EQ(assembler.accept(chunks[withheld]),
              fl::ChunkAssembler::Accept::kComplete);
    EXPECT_EQ(*assembler.assemble(), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkAssemblerFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace papaya
