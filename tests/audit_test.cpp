// Tests for the App. C.2 trusted-binary update workflow: the release
// registry, public auditors detecting equivocation, snapshot-pinning
// clients accepting only logged binaries, and the end-to-end "roll a new
// enclave binary without a client update" flow against the attestation
// layer.

#include <gtest/gtest.h>

#include <string>

#include "secagg/attestation.hpp"
#include "secagg/audit.hpp"
#include "util/rng.hpp"

namespace papaya::secagg {
namespace {

BinaryRelease release(const std::string& version) {
  BinaryRelease r;
  r.measurement = crypto::Sha256::hash("tsa-binary-" + version);
  r.manifest = "tsa " + version + " built from tag v" + version;
  return r;
}

TEST(ReleaseRegistry, PublishAssignsSequentialIndices) {
  ReleaseRegistry registry;
  EXPECT_EQ(registry.publish(release("1.0")), 0u);
  EXPECT_EQ(registry.publish(release("1.1")), 1u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.current_release().manifest,
            "tsa 1.1 built from tag v1.1");
}

TEST(ReleaseRegistry, CurrentReleaseThrowsWhenEmpty) {
  ReleaseRegistry registry;
  EXPECT_THROW(registry.current_release(), std::logic_error);
}

TEST(ReleaseRegistry, InclusionProofsVerifyForEveryRelease) {
  ReleaseRegistry registry;
  for (int i = 0; i < 7; ++i) registry.publish(release(std::to_string(i)));
  const auto snapshot = registry.latest_snapshot();
  for (std::uint64_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(crypto::verify_inclusion(registry.releases()[i].leaf_hash(),
                                         registry.prove_release(i), snapshot));
  }
}

TEST(Auditor, FirstAuditAdoptsSnapshotAndSeesAllReleases) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  registry.publish(release("1.1"));
  Auditor auditor;
  const auto report = auditor.audit(registry);
  EXPECT_TRUE(report.consistent);
  ASSERT_EQ(report.new_releases.size(), 2u);
  EXPECT_EQ(report.new_releases[1].measurement, release("1.1").measurement);
  EXPECT_EQ(auditor.last_snapshot()->tree_size, 2u);
}

TEST(Auditor, RepeatAuditsSeeOnlyNewReleases) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  Auditor auditor;
  ASSERT_TRUE(auditor.audit(registry).consistent);

  // Nothing new.
  auto report = auditor.audit(registry);
  EXPECT_TRUE(report.consistent);
  EXPECT_TRUE(report.new_releases.empty());

  registry.publish(release("2.0"));
  report = auditor.audit(registry);
  EXPECT_TRUE(report.consistent);
  ASSERT_EQ(report.new_releases.size(), 1u);
  EXPECT_EQ(report.new_releases[0].measurement, release("2.0").measurement);
}

TEST(Auditor, DetectsHistoryRewrite) {
  // Operator equivocation: serve the auditor one history, then replace the
  // registry with a different one of the same length plus growth.
  ReleaseRegistry honest;
  honest.publish(release("1.0"));
  Auditor auditor;
  ASSERT_TRUE(auditor.audit(honest).consistent);

  ReleaseRegistry forked;
  forked.publish(release("evil-1.0"));  // different leaf at index 0
  forked.publish(release("1.1"));
  const auto report = auditor.audit(forked);
  EXPECT_FALSE(report.consistent);
}

TEST(Auditor, DetectsLogShrinkage) {
  ReleaseRegistry two;
  two.publish(release("1.0"));
  two.publish(release("1.1"));
  Auditor auditor;
  ASSERT_TRUE(auditor.audit(two).consistent);

  ReleaseRegistry one;
  one.publish(release("1.0"));
  EXPECT_FALSE(auditor.audit(one).consistent);
}

TEST(SnapshotPinningClient, AcceptsOnlyLoggedBinariesAtItsPin) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  SnapshotPinningClient client(registry.latest_snapshot());

  const BinaryRelease& logged = registry.releases()[0];
  EXPECT_TRUE(client.accepts_binary(logged.measurement, logged,
                                    registry.prove_release(0)));

  // An unlogged binary, even served with a valid proof for a *different*
  // logged record, must be rejected.
  const BinaryRelease rogue = release("rogue");
  EXPECT_FALSE(client.accepts_binary(rogue.measurement, logged,
                                     registry.prove_release(0)));
  EXPECT_FALSE(client.accepts_binary(rogue.measurement, rogue,
                                     registry.prove_release(0)));
}

TEST(SnapshotPinningClient, NewReleaseRequiresPinAdvance) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  SnapshotPinningClient client(registry.latest_snapshot());
  const std::uint64_t pinned_size = client.pinned().tree_size;

  // Roll a new binary.
  const std::uint64_t idx = registry.publish(release("2.0"));
  const BinaryRelease& v2 = registry.releases()[idx];

  // Against the old pin, the new binary's proof (sized for the new tree)
  // does not verify.
  EXPECT_FALSE(client.accepts_binary(v2.measurement, v2,
                                     registry.prove_release(idx)));

  // Advance across a consistency proof, then accept.
  EXPECT_TRUE(client.advance(registry.latest_snapshot(),
                             registry.prove_since(pinned_size)));
  EXPECT_TRUE(client.accepts_binary(v2.measurement, v2,
                                    registry.prove_release(idx)));
}

TEST(SnapshotPinningClient, RefusesAdvanceToForkedHistory) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  SnapshotPinningClient client(registry.latest_snapshot());

  ReleaseRegistry fork;
  fork.publish(release("evil-1.0"));
  fork.publish(release("2.0"));
  EXPECT_FALSE(client.advance(fork.latest_snapshot(), fork.prove_since(1)));
  // Pin unchanged.
  EXPECT_EQ(client.pinned().tree_size, 1u);
}

TEST(SnapshotPinningClient, RefusesAdvanceBackwards) {
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  const auto old_snapshot = registry.latest_snapshot();
  registry.publish(release("2.0"));
  SnapshotPinningClient client(registry.latest_snapshot());
  EXPECT_FALSE(client.advance(old_snapshot, registry.prove_since(1)));
  EXPECT_EQ(client.pinned().tree_size, 2u);
}

/// Randomized interleaving of publishes, audits, and client pin advances:
/// audits of an honest registry are always consistent, and a client accepts
/// exactly the releases visible at its current pin.
class AuditFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditFuzz, HonestRegistryAlwaysPassesAndPinsTrackVisibility) {
  util::Rng rng(GetParam());
  ReleaseRegistry registry;
  registry.publish(release("0"));
  Auditor auditor;
  SnapshotPinningClient client(registry.latest_snapshot());
  std::size_t releases_published = 1;

  for (int step = 0; step < 120; ++step) {
    switch (rng.uniform_int(3)) {
      case 0:
        registry.publish(release(std::to_string(releases_published++)));
        break;
      case 1: {
        const auto report = auditor.audit(registry);
        EXPECT_TRUE(report.consistent);
        EXPECT_EQ(report.snapshot.tree_size, registry.size());
        break;
      }
      default: {
        const std::uint64_t pinned = client.pinned().tree_size;
        EXPECT_TRUE(client.advance(registry.latest_snapshot(),
                                   registry.prove_since(pinned)));
        break;
      }
    }
    // Invariant: the registry serves proofs at its latest snapshot, so a
    // client whose pin matches accepts any logged release, and a client
    // with a stale pin accepts nothing until it advances (the same-size
    // check inside verify_inclusion is what forces the refresh).
    const std::uint64_t pin = client.pinned().tree_size;
    ASSERT_GE(pin, 1u);
    const std::uint64_t idx = rng.uniform_int(registry.size());
    const BinaryRelease& probe = registry.releases()[idx];
    const bool accepted = client.accepts_binary(probe.measurement, probe,
                                                registry.prove_release(idx));
    EXPECT_EQ(accepted, pin == registry.size())
        << "pin " << pin << " log " << registry.size() << " idx " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditFuzz, ::testing::Values(11, 22, 33, 44));

TEST(AuditFlow, BinaryRollWithoutClientUpdateEndToEnd) {
  // The full App. C story: a client shipped pinned to snapshot S1 keeps
  // working after the operator rolls the enclave binary, without any change
  // to what the client trusts a priori.
  const SimulatedEnclavePlatform platform(99);
  ReleaseRegistry registry;
  registry.publish(release("1.0"));
  SnapshotPinningClient pinning(registry.latest_snapshot());

  // Operator rolls v2 and runs it in the enclave.
  const std::uint64_t idx = registry.publish(release("2.0"));
  const BinaryRelease& v2 = registry.releases()[idx];

  // Client refreshes its snapshot through the standard API.
  ASSERT_TRUE(
      pinning.advance(registry.latest_snapshot(), registry.prove_since(1)));

  // The enclave attests a DH initial message under the v2 measurement.
  const util::Bytes dh_message{1, 2, 3, 4};
  const crypto::Digest params_hash = crypto::Sha256::hash("params");
  const AttestationQuote quote = platform.sign_quote(
      v2.measurement, params_hash, crypto::Sha256::hash(dh_message));

  // Full client-side check: quote verification + log inclusion at the pin.
  QuoteExpectations expectations{params_hash, pinning.pinned()};
  EXPECT_TRUE(verify_attested_release(platform, quote, expectations,
                                      dh_message, v2,
                                      registry.prove_release(idx)));
  // A quote for an unlogged binary fails the same check.
  const AttestationQuote rogue_quote = platform.sign_quote(
      crypto::Sha256::hash("rogue"), params_hash,
      crypto::Sha256::hash(dh_message));
  EXPECT_FALSE(verify_attested_release(platform, rogue_quote, expectations,
                                       dh_message, v2,
                                       registry.prove_release(idx)));
  EXPECT_TRUE(pinning.accepts_binary(quote.binary_measurement, v2,
                                     registry.prove_release(idx)));

  // An auditor reviewing the same log sees both releases and no forks.
  Auditor auditor;
  const auto report = auditor.audit(registry);
  EXPECT_TRUE(report.consistent);
  EXPECT_EQ(report.new_releases.size(), 2u);
}

}  // namespace
}  // namespace papaya::secagg
